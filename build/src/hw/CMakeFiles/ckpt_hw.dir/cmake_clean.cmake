file(REMOVE_RECURSE
  "CMakeFiles/ckpt_hw.dir/cacheline.cpp.o"
  "CMakeFiles/ckpt_hw.dir/cacheline.cpp.o.d"
  "libckpt_hw.a"
  "libckpt_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
