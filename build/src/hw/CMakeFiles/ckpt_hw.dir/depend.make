# Empty dependencies file for ckpt_hw.
# This may be replaced when dependencies are built.
