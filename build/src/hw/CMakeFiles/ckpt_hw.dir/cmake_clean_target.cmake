file(REMOVE_RECURSE
  "libckpt_hw.a"
)
