file(REMOVE_RECURSE
  "libckpt_mechanisms.a"
)
