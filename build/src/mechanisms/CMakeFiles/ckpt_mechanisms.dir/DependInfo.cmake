
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mechanisms/advanced.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/advanced.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/advanced.cpp.o.d"
  "/root/repo/src/mechanisms/catalog.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/catalog.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/catalog.cpp.o.d"
  "/root/repo/src/mechanisms/kthread.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/kthread.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/kthread.cpp.o.d"
  "/root/repo/src/mechanisms/mechanism.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/mechanism.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/mechanism.cpp.o.d"
  "/root/repo/src/mechanisms/originals.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/originals.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/originals.cpp.o.d"
  "/root/repo/src/mechanisms/probe.cpp" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/probe.cpp.o" "gcc" "src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ckpt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
