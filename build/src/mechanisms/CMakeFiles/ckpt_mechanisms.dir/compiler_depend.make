# Empty compiler generated dependencies file for ckpt_mechanisms.
# This may be replaced when dependencies are built.
