file(REMOVE_RECURSE
  "CMakeFiles/ckpt_mechanisms.dir/advanced.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/advanced.cpp.o.d"
  "CMakeFiles/ckpt_mechanisms.dir/catalog.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/catalog.cpp.o.d"
  "CMakeFiles/ckpt_mechanisms.dir/kthread.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/kthread.cpp.o.d"
  "CMakeFiles/ckpt_mechanisms.dir/mechanism.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/mechanism.cpp.o.d"
  "CMakeFiles/ckpt_mechanisms.dir/originals.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/originals.cpp.o.d"
  "CMakeFiles/ckpt_mechanisms.dir/probe.cpp.o"
  "CMakeFiles/ckpt_mechanisms.dir/probe.cpp.o.d"
  "libckpt_mechanisms.a"
  "libckpt_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
