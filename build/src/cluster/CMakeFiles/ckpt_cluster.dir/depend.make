# Empty dependencies file for ckpt_cluster.
# This may be replaced when dependencies are built.
