file(REMOVE_RECURSE
  "libckpt_cluster.a"
)
