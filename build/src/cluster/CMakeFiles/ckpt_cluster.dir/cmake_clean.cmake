file(REMOVE_RECURSE
  "CMakeFiles/ckpt_cluster.dir/batch.cpp.o"
  "CMakeFiles/ckpt_cluster.dir/batch.cpp.o.d"
  "CMakeFiles/ckpt_cluster.dir/failure.cpp.o"
  "CMakeFiles/ckpt_cluster.dir/failure.cpp.o.d"
  "CMakeFiles/ckpt_cluster.dir/mpi.cpp.o"
  "CMakeFiles/ckpt_cluster.dir/mpi.cpp.o.d"
  "CMakeFiles/ckpt_cluster.dir/node.cpp.o"
  "CMakeFiles/ckpt_cluster.dir/node.cpp.o.d"
  "libckpt_cluster.a"
  "libckpt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
