
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/file.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/file.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/file.cpp.o.d"
  "/root/repo/src/sim/guest.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/guest.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/guest.cpp.o.d"
  "/root/repo/src/sim/guests.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/guests.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/guests.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/signal.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/signal.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/signal.cpp.o.d"
  "/root/repo/src/sim/userapi.cpp" "src/sim/CMakeFiles/ckpt_sim.dir/userapi.cpp.o" "gcc" "src/sim/CMakeFiles/ckpt_sim.dir/userapi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
