file(REMOVE_RECURSE
  "libckpt_sim.a"
)
