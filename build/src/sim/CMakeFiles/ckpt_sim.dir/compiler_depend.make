# Empty compiler generated dependencies file for ckpt_sim.
# This may be replaced when dependencies are built.
