file(REMOVE_RECURSE
  "CMakeFiles/ckpt_sim.dir/file.cpp.o"
  "CMakeFiles/ckpt_sim.dir/file.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/guest.cpp.o"
  "CMakeFiles/ckpt_sim.dir/guest.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/guests.cpp.o"
  "CMakeFiles/ckpt_sim.dir/guests.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/kernel.cpp.o"
  "CMakeFiles/ckpt_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/memory.cpp.o"
  "CMakeFiles/ckpt_sim.dir/memory.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/process.cpp.o"
  "CMakeFiles/ckpt_sim.dir/process.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/signal.cpp.o"
  "CMakeFiles/ckpt_sim.dir/signal.cpp.o.d"
  "CMakeFiles/ckpt_sim.dir/userapi.cpp.o"
  "CMakeFiles/ckpt_sim.dir/userapi.cpp.o.d"
  "libckpt_sim.a"
  "libckpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
