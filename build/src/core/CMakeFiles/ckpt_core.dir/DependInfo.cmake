
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autonomic.cpp" "src/core/CMakeFiles/ckpt_core.dir/autonomic.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/autonomic.cpp.o.d"
  "/root/repo/src/core/capture.cpp" "src/core/CMakeFiles/ckpt_core.dir/capture.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/capture.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/ckpt_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/gang.cpp" "src/core/CMakeFiles/ckpt_core.dir/gang.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/gang.cpp.o.d"
  "/root/repo/src/core/hibernate.cpp" "src/core/CMakeFiles/ckpt_core.dir/hibernate.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/hibernate.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/ckpt_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/migrate.cpp" "src/core/CMakeFiles/ckpt_core.dir/migrate.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/migrate.cpp.o.d"
  "/root/repo/src/core/pod.cpp" "src/core/CMakeFiles/ckpt_core.dir/pod.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/pod.cpp.o.d"
  "/root/repo/src/core/systemlevel.cpp" "src/core/CMakeFiles/ckpt_core.dir/systemlevel.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/systemlevel.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/core/CMakeFiles/ckpt_core.dir/taxonomy.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/taxonomy.cpp.o.d"
  "/root/repo/src/core/userlevel.cpp" "src/core/CMakeFiles/ckpt_core.dir/userlevel.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/userlevel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ckpt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
