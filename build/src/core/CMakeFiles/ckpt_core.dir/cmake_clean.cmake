file(REMOVE_RECURSE
  "CMakeFiles/ckpt_core.dir/autonomic.cpp.o"
  "CMakeFiles/ckpt_core.dir/autonomic.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/capture.cpp.o"
  "CMakeFiles/ckpt_core.dir/capture.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/engine.cpp.o"
  "CMakeFiles/ckpt_core.dir/engine.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/gang.cpp.o"
  "CMakeFiles/ckpt_core.dir/gang.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/hibernate.cpp.o"
  "CMakeFiles/ckpt_core.dir/hibernate.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/incremental.cpp.o"
  "CMakeFiles/ckpt_core.dir/incremental.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/migrate.cpp.o"
  "CMakeFiles/ckpt_core.dir/migrate.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/pod.cpp.o"
  "CMakeFiles/ckpt_core.dir/pod.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/systemlevel.cpp.o"
  "CMakeFiles/ckpt_core.dir/systemlevel.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/taxonomy.cpp.o"
  "CMakeFiles/ckpt_core.dir/taxonomy.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/userlevel.cpp.o"
  "CMakeFiles/ckpt_core.dir/userlevel.cpp.o.d"
  "libckpt_core.a"
  "libckpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
