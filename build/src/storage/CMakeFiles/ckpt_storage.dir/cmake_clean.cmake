file(REMOVE_RECURSE
  "CMakeFiles/ckpt_storage.dir/backend.cpp.o"
  "CMakeFiles/ckpt_storage.dir/backend.cpp.o.d"
  "CMakeFiles/ckpt_storage.dir/chain.cpp.o"
  "CMakeFiles/ckpt_storage.dir/chain.cpp.o.d"
  "CMakeFiles/ckpt_storage.dir/image.cpp.o"
  "CMakeFiles/ckpt_storage.dir/image.cpp.o.d"
  "libckpt_storage.a"
  "libckpt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
