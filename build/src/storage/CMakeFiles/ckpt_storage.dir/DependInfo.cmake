
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/backend.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/backend.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/backend.cpp.o.d"
  "/root/repo/src/storage/chain.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/chain.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/chain.cpp.o.d"
  "/root/repo/src/storage/image.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/image.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/image.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
