file(REMOVE_RECURSE
  "CMakeFiles/ckpt_util.dir/crc64.cpp.o"
  "CMakeFiles/ckpt_util.dir/crc64.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/log.cpp.o"
  "CMakeFiles/ckpt_util.dir/log.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/serialize.cpp.o"
  "CMakeFiles/ckpt_util.dir/serialize.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/table.cpp.o"
  "CMakeFiles/ckpt_util.dir/table.cpp.o.d"
  "libckpt_util.a"
  "libckpt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
