# Empty compiler generated dependencies file for fault_tolerant_cluster.
# This may be replaced when dependencies are built.
