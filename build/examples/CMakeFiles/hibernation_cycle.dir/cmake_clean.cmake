file(REMOVE_RECURSE
  "CMakeFiles/hibernation_cycle.dir/hibernation_cycle.cpp.o"
  "CMakeFiles/hibernation_cycle.dir/hibernation_cycle.cpp.o.d"
  "hibernation_cycle"
  "hibernation_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hibernation_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
