# Empty dependencies file for hibernation_cycle.
# This may be replaced when dependencies are built.
