file(REMOVE_RECURSE
  "CMakeFiles/claim_userlevel_overhead.dir/claim_userlevel_overhead.cpp.o"
  "CMakeFiles/claim_userlevel_overhead.dir/claim_userlevel_overhead.cpp.o.d"
  "claim_userlevel_overhead"
  "claim_userlevel_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_userlevel_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
