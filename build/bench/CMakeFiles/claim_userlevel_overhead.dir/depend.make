# Empty dependencies file for claim_userlevel_overhead.
# This may be replaced when dependencies are built.
