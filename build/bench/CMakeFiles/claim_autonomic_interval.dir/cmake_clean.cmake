file(REMOVE_RECURSE
  "CMakeFiles/claim_autonomic_interval.dir/claim_autonomic_interval.cpp.o"
  "CMakeFiles/claim_autonomic_interval.dir/claim_autonomic_interval.cpp.o.d"
  "claim_autonomic_interval"
  "claim_autonomic_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_autonomic_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
