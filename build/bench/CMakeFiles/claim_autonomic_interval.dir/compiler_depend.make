# Empty compiler generated dependencies file for claim_autonomic_interval.
# This may be replaced when dependencies are built.
