file(REMOVE_RECURSE
  "CMakeFiles/claim_incremental_volume.dir/claim_incremental_volume.cpp.o"
  "CMakeFiles/claim_incremental_volume.dir/claim_incremental_volume.cpp.o.d"
  "claim_incremental_volume"
  "claim_incremental_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_incremental_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
