# Empty dependencies file for claim_incremental_volume.
# This may be replaced when dependencies are built.
