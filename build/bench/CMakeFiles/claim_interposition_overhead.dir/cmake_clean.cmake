file(REMOVE_RECURSE
  "CMakeFiles/claim_interposition_overhead.dir/claim_interposition_overhead.cpp.o"
  "CMakeFiles/claim_interposition_overhead.dir/claim_interposition_overhead.cpp.o.d"
  "claim_interposition_overhead"
  "claim_interposition_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_interposition_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
