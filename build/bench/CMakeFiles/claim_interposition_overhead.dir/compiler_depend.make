# Empty compiler generated dependencies file for claim_interposition_overhead.
# This may be replaced when dependencies are built.
