# Empty compiler generated dependencies file for claim_batch_vs_autonomic.
# This may be replaced when dependencies are built.
