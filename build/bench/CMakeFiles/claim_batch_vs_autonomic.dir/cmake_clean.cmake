file(REMOVE_RECURSE
  "CMakeFiles/claim_batch_vs_autonomic.dir/claim_batch_vs_autonomic.cpp.o"
  "CMakeFiles/claim_batch_vs_autonomic.dir/claim_batch_vs_autonomic.cpp.o.d"
  "claim_batch_vs_autonomic"
  "claim_batch_vs_autonomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_batch_vs_autonomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
