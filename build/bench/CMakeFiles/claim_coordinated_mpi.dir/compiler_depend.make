# Empty compiler generated dependencies file for claim_coordinated_mpi.
# This may be replaced when dependencies are built.
