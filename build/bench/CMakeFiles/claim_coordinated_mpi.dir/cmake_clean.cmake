file(REMOVE_RECURSE
  "CMakeFiles/claim_coordinated_mpi.dir/claim_coordinated_mpi.cpp.o"
  "CMakeFiles/claim_coordinated_mpi.dir/claim_coordinated_mpi.cpp.o.d"
  "claim_coordinated_mpi"
  "claim_coordinated_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_coordinated_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
