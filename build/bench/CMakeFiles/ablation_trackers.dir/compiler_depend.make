# Empty compiler generated dependencies file for ablation_trackers.
# This may be replaced when dependencies are built.
