
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_trackers.cpp" "bench/CMakeFiles/ablation_trackers.dir/ablation_trackers.cpp.o" "gcc" "bench/CMakeFiles/ablation_trackers.dir/ablation_trackers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ckpt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ckpt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
