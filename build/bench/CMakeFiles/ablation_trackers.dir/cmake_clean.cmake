file(REMOVE_RECURSE
  "CMakeFiles/ablation_trackers.dir/ablation_trackers.cpp.o"
  "CMakeFiles/ablation_trackers.dir/ablation_trackers.cpp.o.d"
  "ablation_trackers"
  "ablation_trackers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
