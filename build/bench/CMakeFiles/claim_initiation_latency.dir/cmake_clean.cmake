file(REMOVE_RECURSE
  "CMakeFiles/claim_initiation_latency.dir/claim_initiation_latency.cpp.o"
  "CMakeFiles/claim_initiation_latency.dir/claim_initiation_latency.cpp.o.d"
  "claim_initiation_latency"
  "claim_initiation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_initiation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
