# Empty compiler generated dependencies file for claim_initiation_latency.
# This may be replaced when dependencies are built.
