file(REMOVE_RECURSE
  "CMakeFiles/claim_hw_granularity.dir/claim_hw_granularity.cpp.o"
  "CMakeFiles/claim_hw_granularity.dir/claim_hw_granularity.cpp.o.d"
  "claim_hw_granularity"
  "claim_hw_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_hw_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
