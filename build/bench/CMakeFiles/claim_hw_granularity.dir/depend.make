# Empty dependencies file for claim_hw_granularity.
# This may be replaced when dependencies are built.
