# Empty compiler generated dependencies file for claim_storage_survivability.
# This may be replaced when dependencies are built.
