file(REMOVE_RECURSE
  "CMakeFiles/claim_storage_survivability.dir/claim_storage_survivability.cpp.o"
  "CMakeFiles/claim_storage_survivability.dir/claim_storage_survivability.cpp.o.d"
  "claim_storage_survivability"
  "claim_storage_survivability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_storage_survivability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
