# Empty compiler generated dependencies file for claim_probabilistic_blocks.
# This may be replaced when dependencies are built.
