file(REMOVE_RECURSE
  "CMakeFiles/claim_probabilistic_blocks.dir/claim_probabilistic_blocks.cpp.o"
  "CMakeFiles/claim_probabilistic_blocks.dir/claim_probabilistic_blocks.cpp.o.d"
  "claim_probabilistic_blocks"
  "claim_probabilistic_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_probabilistic_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
