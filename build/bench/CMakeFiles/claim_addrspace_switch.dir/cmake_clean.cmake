file(REMOVE_RECURSE
  "CMakeFiles/claim_addrspace_switch.dir/claim_addrspace_switch.cpp.o"
  "CMakeFiles/claim_addrspace_switch.dir/claim_addrspace_switch.cpp.o.d"
  "claim_addrspace_switch"
  "claim_addrspace_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_addrspace_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
