# Empty dependencies file for claim_addrspace_switch.
# This may be replaced when dependencies are built.
