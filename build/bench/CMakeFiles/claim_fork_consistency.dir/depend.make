# Empty dependencies file for claim_fork_consistency.
# This may be replaced when dependencies are built.
