file(REMOVE_RECURSE
  "CMakeFiles/claim_fork_consistency.dir/claim_fork_consistency.cpp.o"
  "CMakeFiles/claim_fork_consistency.dir/claim_fork_consistency.cpp.o.d"
  "claim_fork_consistency"
  "claim_fork_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_fork_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
