# Empty dependencies file for fig1_taxonomy.
# This may be replaced when dependencies are built.
