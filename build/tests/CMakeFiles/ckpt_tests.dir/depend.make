# Empty dependencies file for ckpt_tests.
# This may be replaced when dependencies are built.
