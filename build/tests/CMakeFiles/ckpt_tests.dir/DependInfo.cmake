
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autonomic.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_autonomic.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_autonomic.cpp.o.d"
  "/root/repo/tests/test_batch_gang.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_batch_gang.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_batch_gang.cpp.o.d"
  "/root/repo/tests/test_capture.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_capture.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_capture.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_engines.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_engines.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_engines.cpp.o.d"
  "/root/repo/tests/test_hibernate.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_hibernate.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_hibernate.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_incremental.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_incremental.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_mechanisms.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_mechanisms.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_mechanisms.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_pod_migrate.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_pod_migrate.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_pod_migrate.cpp.o.d"
  "/root/repo/tests/test_sched_signals.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_sched_signals.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_sched_signals.cpp.o.d"
  "/root/repo/tests/test_storage.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_storage.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_storage.cpp.o.d"
  "/root/repo/tests/test_userapi.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_userapi.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_userapi.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ckpt_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ckpt_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mechanisms/CMakeFiles/ckpt_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ckpt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ckpt_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
