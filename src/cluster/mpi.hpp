// Message-passing runtime with coordinated checkpointing.
//
// A small MPI-like layer sufficient to reproduce the parallel-application
// concerns of the survey: ranks spread over cluster nodes exchange halo
// messages through a fabric with transfer latency, so messages can be
// *in flight* when a checkpoint is requested.  Coordinated checkpointing
// (CoCheck / CLIP / LAM-MPI lineage) must therefore quiesce senders and
// drain the network before per-process images are taken; the drain cost
// grows with rank count and traffic, which claim C12 measures.
//
// The fabric object itself is reconnected (not serialized) at restart,
// exactly as LAM/MPI re-establishes communication channels around BLCR
// per-process images.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/engine.hpp"
#include "sim/guests.hpp"

namespace ckpt::cluster {

/// The interconnect for one job.  Registered globally by id so rank guests
/// (whose config must be immutable plain data) can look it up.
class MpiFabric {
 public:
  struct Message {
    int src = 0;
    int dst = 0;
    std::uint64_t tag = 0;
    std::vector<std::byte> payload;
    SimTime visible_at = 0;  ///< delivery time (send time + latency)
  };

  static std::uint64_t create(int nranks, SimTime latency);
  static MpiFabric& get(std::uint64_t id);
  static void destroy(std::uint64_t id);

  void send(int src, int dst, std::uint64_t tag, std::vector<std::byte> payload,
            SimTime now);
  std::optional<Message> try_recv(int dst, SimTime now);

  /// Quiesce: ranks stop sending; receives continue (the drain phase).
  void set_quiescing(bool value) { quiescing_ = value; }
  [[nodiscard]] bool quiescing() const { return quiescing_; }

  [[nodiscard]] std::uint64_t in_flight() const;
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] int nranks() const { return nranks_; }

 private:
  int nranks_ = 0;
  SimTime latency_ = 0;
  bool quiescing_ = false;
  std::map<int, std::deque<Message>> inboxes_;
  std::uint64_t total_sent_ = 0;
};

/// One MPI rank: computes on a local array, exchanges halo records with its
/// ring neighbours each iteration.  All rank state (iteration counter,
/// array, receive staging) lives in guest memory.
class MpiRankGuest : public sim::GuestProgram {
 public:
  static constexpr const char* kTypeName = "mpi_rank";

  struct Config {
    std::uint64_t fabric_id = 0;
    int rank = 0;
    int nranks = 1;
    std::uint64_t array_bytes = 64 * 1024;
    std::uint64_t halo_bytes = 1024;
    SimTime compute_ns = 50 * kMicrosecond;

    [[nodiscard]] std::vector<std::byte> encode() const;
    static Config decode(const std::vector<std::byte>& blob);
  };

  explicit MpiRankGuest(Config config) : config_(config) {}

  void on_start(sim::UserApi& api) override;
  sim::GuestStatus on_step(sim::UserApi& api) override;

  static void register_type();

  /// Iteration counter of a rank process (progress metric).
  static std::uint64_t read_iteration(sim::Process& proc);

 private:
  Config config_;
};

/// A parallel job: ranks placed round-robin over cluster nodes.
class MpiJob {
 public:
  struct Placement {
    int node = -1;
    sim::Pid pid = sim::kNoPid;
  };

  MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config);
  ~MpiJob();

  MpiJob(const MpiJob&) = delete;
  MpiJob& operator=(const MpiJob&) = delete;

  /// Spawn all ranks.
  void launch();

  struct CoordinatedResult {
    bool ok = false;
    std::string error;
    SimTime drain_time = 0;
    SimTime total_time = 0;
    std::uint64_t messages_drained = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// CoCheck/LAM-MPI-style coordinated checkpoint: quiesce, drain, then
  /// checkpoint every rank through its node's engine (engines indexed by
  /// node id; they should store to the cluster's remote backend so images
  /// survive node failures).
  CoordinatedResult coordinated_checkpoint(const std::vector<core::CheckpointEngine*>&
                                               engines_by_node);

  /// After `failed_node` died, restart its ranks on `target_node` from the
  /// engines' chains (the job-level knowledge lives with mpirun, which
  /// survives on the head node).  Other ranks keep running.
  bool restart_ranks_of_failed_node(const std::vector<core::CheckpointEngine*>&
                                        engines_by_node,
                                    int failed_node, int target_node);

  [[nodiscard]] const std::vector<Placement>& placements() const { return placements_; }
  [[nodiscard]] std::uint64_t fabric_id() const { return fabric_id_; }
  [[nodiscard]] MpiFabric& fabric() const { return MpiFabric::get(fabric_id_); }

  /// Minimum iteration across ranks (the job's true progress).
  [[nodiscard]] std::uint64_t min_iteration(Cluster& cluster) const;

 private:
  Cluster& cluster_;
  int nranks_;
  MpiRankGuest::Config base_config_;
  std::uint64_t fabric_id_ = 0;
  std::vector<Placement> placements_;
};

}  // namespace ckpt::cluster
