// Message-passing runtime with coordinated AND uncoordinated checkpointing.
//
// A small MPI-like layer sufficient to reproduce the parallel-application
// concerns of the survey: ranks spread over cluster nodes exchange halo
// messages through a fabric with transfer latency, so messages can be
// *in flight* when a checkpoint is requested.  Two protocols are modeled:
//
//   * Coordinated (CoCheck / CLIP / LAM-MPI lineage): quiesce senders and
//     drain the network before per-process images are taken; the drain cost
//     grows with rank count and traffic, which claim C12 and bench_mpi
//     measure.  MpiJob::coordinated_checkpoint.
//
//   * Uncoordinated with sender-based message logging (Johnson & Zwaenepoel
//     lineage): FabricOptions::sender_logging makes every send() append a
//     CRC64-enveloped, sequence-numbered entry to a MessageLog before the
//     message is visible (pessimistic logging), charged through the sim
//     clock.  Ranks then checkpoint independently (cluster/uncoordinated)
//     and a failure restarts ONLY the failed rank from its newest image,
//     replaying the logged suffix — see cluster/msglog for the recovery-line
//     math and DESIGN.md §14 for the protocol.
//
// The fabric object itself is reconnected (not serialized) at restart,
// exactly as LAM/MPI re-establishes communication channels around BLCR
// per-process images.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/msglog.hpp"
#include "cluster/node.hpp"
#include "core/engine.hpp"
#include "sim/guests.hpp"

namespace ckpt::cluster {

/// The interconnect for one job.  Registered globally by id so rank guests
/// (whose config must be immutable plain data) can look it up.
///
/// Failure modes: get() on an unknown id throws std::runtime_error; the
/// delivery path itself never fails — loss is impossible by construction,
/// so any sequence gap observed by try_recv is an internal-invariant
/// violation, counted in sequence_violations() (asserted zero by the
/// crash-replay harness and bench_mpi gate).
class MpiFabric {
 public:
  struct Message {
    int src = 0;
    int dst = 0;
    std::uint64_t seq = 0;  ///< per-(src,dst) channel sequence, 1-based
    std::uint64_t tag = 0;
    std::vector<std::byte> payload;
    SimTime visible_at = 0;  ///< delivery time (send time + latency)
  };

  struct FabricOptions {
    SimTime latency = 0;
    /// Log every send in a sender-based MessageLog (pessimistic: the append
    /// charge is returned by send() and must be paid before progress).
    bool sender_logging = false;
    /// Retain payloads in the log (replay-capable).  false = metadata-only:
    /// dependency tracking for domino *detection* without replay ability.
    bool log_payloads = true;
    sim::CostModel costs;
  };

  /// Create a fabric and register it globally; returns its id.
  /// Post: get(id) returns it until destroy(id).
  static std::uint64_t create(int nranks, SimTime latency);
  static std::uint64_t create(int nranks, const FabricOptions& options);
  /// Pre: `id` was returned by create() and not yet destroyed; throws
  /// std::runtime_error otherwise.
  static MpiFabric& get(std::uint64_t id);
  static void destroy(std::uint64_t id);

  /// Enqueue a message for delivery at now+latency, assigning the next
  /// sequence number on the (src,dst) channel.
  ///
  /// Pre: 0 <= src,dst < nranks.  Post: the message is in dst's inbox and,
  /// with sender_logging, a CRC-stamped copy is in log() — the returned
  /// SimTime is that append's charge (0 when logging is off), which the
  /// caller must charge to the sending rank's clock (pessimistic logging is
  /// synchronous with the send).
  SimTime send(int src, int dst, std::uint64_t tag, std::vector<std::byte> payload,
               SimTime now);

  /// Deliver the oldest visible message for `dst`, if any.
  ///
  /// Post: monotone per-channel delivery — a message with seq <= the
  /// channel's delivered frontier is dropped silently (duplicates_dropped();
  /// this is what makes replay + re-execution re-sends safe), and a message
  /// that would *skip* sequences bumps sequence_violations() (lost message:
  /// must never happen) but is still delivered.
  std::optional<Message> try_recv(int dst, SimTime now);

  /// Quiesce: ranks stop sending; receives continue (the drain phase).
  void set_quiescing(bool value) { quiescing_ = value; }
  [[nodiscard]] bool quiescing() const { return quiescing_; }

  // --- Uncoordinated-checkpointing surface ----------------------------------

  /// Channel frontier of `rank` at this instant: highest seq sent per
  /// destination, highest seq delivered per source.  Only meaningful while
  /// the rank is not mid-step (the uncoordinated manager samples it while
  /// the rank is stopped for its checkpoint).
  [[nodiscard]] ChannelCut channel_cut(int rank) const;

  /// Live send frontier of every channel (src,dst) -> highest seq sent.
  [[nodiscard]] std::map<std::pair<int, int>, std::uint64_t> current_sent() const;

  /// Reset `rank`'s fabric state to checkpoint cut `cut`: clear its inbox,
  /// rewind its per-destination send counters to cut.sent, and rewind its
  /// per-source delivered frontiers to cut.delivered.
  ///
  /// Pre: the rank's process is stopped/dead (nothing concurrently sending
  /// as it).  Post: the rank's re-execution re-assigns the same sequence
  /// numbers it used the first time, so receivers dedup the re-sends.
  void rewind_for_restart(int rank, const ChannelCut& cut);

  struct ReplayStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Re-enqueue, for `rank`, every logged message past its cut's delivered
  /// frontier (per source), CRC-verified, visible at now+latency.
  ///
  /// Pre: rewind_for_restart(rank, cut) was called; sender_logging with
  /// payloads is on (otherwise there is nothing to replay and the result is
  /// empty — the resolver will have rolled senders back instead).
  /// Post: the restarted rank re-receives exactly the suffix it needs, in
  /// per-channel sequence order.
  ReplayStats replay_into(int rank, const ChannelCut& cut, SimTime now);

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] std::uint64_t in_flight() const;
  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] bool sender_logging() const { return options_.sender_logging; }
  [[nodiscard]] MessageLog& log() { return log_; }
  [[nodiscard]] const MessageLog& log() const { return log_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  [[nodiscard]] std::uint64_t sequence_violations() const { return sequence_violations_; }
  [[nodiscard]] std::uint64_t total_delivered() const { return total_delivered_; }

 private:
  int nranks_ = 0;
  FabricOptions options_;
  bool quiescing_ = false;
  std::map<int, std::deque<Message>> inboxes_;
  std::map<std::pair<int, int>, std::uint64_t> next_seq_;       ///< (src,dst) -> last assigned
  std::map<std::pair<int, int>, std::uint64_t> delivered_seq_;  ///< (src,dst) -> last delivered
  MessageLog log_;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t sequence_violations_ = 0;
};

/// One MPI rank: computes on a local array, exchanges halo records with its
/// ring neighbours each iteration.  All rank state (iteration counter,
/// array, receive staging) lives in guest memory — so a restarted image plus
/// the replayed message suffix reproduces the state exactly (the
/// piecewise-deterministic assumption; DESIGN.md §14).
class MpiRankGuest : public sim::GuestProgram {
 public:
  static constexpr const char* kTypeName = "mpi_rank";

  struct Config {
    std::uint64_t fabric_id = 0;
    int rank = 0;
    int nranks = 1;
    std::uint64_t array_bytes = 64 * 1024;
    std::uint64_t halo_bytes = 1024;
    SimTime compute_ns = 50 * kMicrosecond;

    [[nodiscard]] std::vector<std::byte> encode() const;
    static Config decode(const std::vector<std::byte>& blob);
  };

  explicit MpiRankGuest(Config config) : config_(config) {}

  void on_start(sim::UserApi& api) override;
  sim::GuestStatus on_step(sim::UserApi& api) override;

  static void register_type();

  /// Iteration counter of a rank process (progress metric).
  static std::uint64_t read_iteration(sim::Process& proc);
  /// Fold of every byte the rank has received (order-sensitive state
  /// digest input; used by the crash-replay determinism checks).
  static std::uint64_t read_recv_digest(sim::Process& proc);

 private:
  Config config_;
};

/// A parallel job: ranks placed round-robin over cluster nodes (so ring
/// neighbours land on *different* nodes — a single node failure never takes
/// out both a sender and the only copy of its log's consumer).
class MpiJob {
 public:
  struct Placement {
    int node = -1;
    sim::Pid pid = sim::kNoPid;
  };

  /// Pre: cluster has >= 1 up node; nranks >= 1.  The fabric is created
  /// immediately (latency from node 0's cost model unless `fabric` given);
  /// ranks spawn on launch().
  MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config);
  MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config,
         const MpiFabric::FabricOptions& fabric);
  ~MpiJob();

  MpiJob(const MpiJob&) = delete;
  MpiJob& operator=(const MpiJob&) = delete;

  /// Spawn all ranks round-robin over the currently-up nodes.
  /// Post: placements()[r] names each rank's node and pid.
  void launch();

  struct CoordinatedResult {
    bool ok = false;
    std::string error;
    SimTime drain_time = 0;
    SimTime total_time = 0;
    std::uint64_t messages_drained = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// CoCheck/LAM-MPI-style coordinated checkpoint: quiesce, drain, then
  /// checkpoint every rank through its node's engine (engines indexed by
  /// node id; they should store to the cluster's remote backend so images
  /// survive node failures).
  ///
  /// Pre: not already quiescing (re-entry fails with an error rather than
  /// deadlocking the drain).  Failure modes reported via CoordinatedResult:
  /// drain timeout after 60 sim-seconds, a rank's node down, or a per-rank
  /// checkpoint failure — quiescing is always cleared on exit.
  CoordinatedResult coordinated_checkpoint(const std::vector<core::CheckpointEngine*>&
                                               engines_by_node);

  /// After `failed_node` died, restart its ranks on `target_node` from the
  /// engines' chains (the job-level knowledge lives with mpirun, which
  /// survives on the head node).  Other ranks keep running — but NOTE: with
  /// plain coordinated images this is only consistent if all ranks restart
  /// from the same coordinated cut; the uncoordinated manager
  /// (cluster/uncoordinated) is the path that makes restart-only-the-failed-
  /// rank actually correct via log replay.
  ///
  /// Pre: target node is up.  Returns false (job unrecoverable by this
  /// method) if the target is down or any per-rank restart fails.
  bool restart_ranks_of_failed_node(const std::vector<core::CheckpointEngine*>&
                                        engines_by_node,
                                    int failed_node, int target_node);

  /// Record that `rank` now runs as `pid` on `node` (the uncoordinated
  /// recovery path rebinds placements one rank at a time).
  /// Pre: 0 <= rank < nranks.
  void rehome_rank(int rank, int node, sim::Pid pid);

  /// Spawn a FRESH process for `rank` on `node` (initial application state
  /// — the cold-start arm of recovery for a rank that has no usable
  /// checkpoint yet).  Pre: node is up.  Post: placements()[rank] names the
  /// new process.
  sim::Pid respawn_rank(int rank, int node);

  [[nodiscard]] const std::vector<Placement>& placements() const { return placements_; }
  [[nodiscard]] std::uint64_t fabric_id() const { return fabric_id_; }
  [[nodiscard]] MpiFabric& fabric() const { return MpiFabric::get(fabric_id_); }

  /// Minimum iteration across ranks (the job's true progress).  Returns 0
  /// if any rank's node is down or its process is dead.
  [[nodiscard]] std::uint64_t min_iteration(Cluster& cluster) const;

 private:
  Cluster& cluster_;
  int nranks_;
  MpiRankGuest::Config base_config_;
  std::uint64_t fabric_id_ = 0;
  std::vector<Placement> placements_;
};

}  // namespace ckpt::cluster
