// Coordinated restart after node failure: the degradation ladder.
//
// §4's argument is that restart success is decided by *placement*: a
// checkpoint on the failed node's local disk is unreachable exactly when it
// is needed.  The RecoveryManager runs jobs whose checkpoints fan out
// through a ReplicatedStore (home-node local disk + cluster remote
// storage) and, when the home node fail-stops, walks a fixed degradation
// ladder on a surviving node:
//
//   1. newest committed image, local replica   (fast path after e.g. reboot)
//   2. newest committed image, remote replica  (the survivable copy)
//   3. reconstruct_newest_surviving()          (an older sequence point —
//      trade lost work for availability)
//   4. cold start                              (all storage lost; restart
//      the application from scratch)
//
// Every recovery emits a structured RecoveryReport recording what was
// tried, what failed and how much work was lost.  The report's
// data_loss_with_intact_replica flag is the CI gate: it may never be set,
// because losing state while an intact replica of a committed image exists
// means the ladder — not the fault — destroyed the work.
//
// After a successful failover the manager retargets the job's local
// replica slot to the new home's disk and scrubs, re-replicating committed
// history onto it — the self-healing closed loop.
//
// This ladder restarts a *whole job*.  Message-passing jobs under
// sender-based logging instead recover through
// UncoordinatedMpi::recover_failed_node (uncoordinated.hpp), which reuses
// the same engines and stores but restarts only the failed ranks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "storage/chain.hpp"
#include "storage/replicated.hpp"

namespace ckpt::storage {
class LogStructuredBackend;
}

namespace ckpt::cluster {

enum class RecoveryStep : std::uint8_t {
  kLocalNewest,
  kRemoteNewest,
  kOlderSurviving,
  kColdStart,
};

const char* to_string(RecoveryStep step);

struct RecoveryAttempt {
  RecoveryStep step = RecoveryStep::kLocalNewest;
  bool ok = false;
  std::string detail;
};

struct RecoveryReport {
  std::uint64_t job = 0;
  int failed_node = -1;
  int target_node = -1;  ///< -1: no surviving node to restart on
  sim::Pid restored_pid = sim::kNoPid;
  bool recovered = false;    ///< the job is running again (any rung)
  bool from_image = false;   ///< rungs 1-3: checkpoint state survived
  bool cold_started = false; ///< rung 4: restarted from scratch
  std::uint64_t restored_sequence = 0;  ///< chain sequence restored (rungs 1-3)
  SimTime failed_at = 0;
  /// Simulated work discarded: failure time minus the restored state's
  /// capture time (everything since job launch for a cold start).
  SimTime work_lost = 0;
  /// THE gate: state was lost (cold start or no recovery) although some
  /// committed image still had an intact replica.  Always a bug.
  bool data_loss_with_intact_replica = false;
  std::vector<RecoveryAttempt> attempts;

  [[nodiscard]] std::string summary() const;
};

struct RecoveryManagerOptions {
  /// Quorum / retry / verification for each job's replicated store.
  storage::ReplicatedOptions store;
  bool allow_cold_start = true;
  /// After failover, scrub the job's store so committed history is
  /// re-replicated onto the replacement local disk.
  bool scrub_after_recovery = true;
};

class RecoveryManager {
 public:
  using JobId = std::uint64_t;

  explicit RecoveryManager(Cluster& cluster, RecoveryManagerOptions options = {});

  /// Spawn `guest_type` on node `home` and manage it: checkpoints fan out
  /// to {home local disk, cluster remote storage}.
  JobId launch(int home, const std::string& guest_type, std::vector<std::byte> config,
               const sim::SpawnOptions& spawn = {});

  /// Storage a fleet-managed job checkpoints through: a *shared* per-shard
  /// ReplicatedStore (replica 0 = the shard's storage-home disk, replica 1
  /// = the shard remote), optionally fronted by the shard's log-structured
  /// journal so commits ride its group-commit append path.  The manager
  /// does not own either; replica placement (retarget + scrub) stays with
  /// the caller, because retargeting a shared store per job would fight
  /// between the jobs sharing it.
  struct ExternalStoreBinding {
    storage::ReplicatedStore* store = nullptr;
    storage::LogStructuredBackend* journal = nullptr;  ///< null = direct two-phase
  };

  /// Like launch(), but the job checkpoints through a caller-owned shared
  /// store/journal (see ExternalStoreBinding).  The degradation ladder and
  /// the data-loss gate still apply, scoped to this job's own chain.
  JobId adopt(int home, const std::string& guest_type, std::vector<std::byte> config,
              const sim::SpawnOptions& spawn, const ExternalStoreBinding& binding);

  /// Take a full checkpoint of the job through its replicated store.
  /// Returns false when the job's process is gone or the store refused.
  bool checkpoint(JobId job);

  /// Walk the degradation ladder for a job whose home node is down (or
  /// whose process died).  Appends to reports() and returns the report.
  /// `preferred_target` >= 0 restarts on that node when it is up (the
  /// fleet's freshly-allocated spare); otherwise the first up node is used.
  RecoveryReport recover(JobId job, int preferred_target = -1);

  /// Register a cluster failure observer that recovers every managed job
  /// homed on the failed node.
  void watch();

  /// Current pid (kNoPid for an unknown job; changes across recoveries).
  [[nodiscard]] sim::Pid pid_of(JobId job) const;
  /// Current home node (-1 for an unknown job; changes across recoveries).
  [[nodiscard]] int home_of(JobId job) const;
  /// Successful checkpoint() calls for the job (0 for an unknown job).
  [[nodiscard]] std::uint64_t checkpoints_taken(JobId job) const;
  /// The job's store / chain.  Pre: `job` was returned by launch()/adopt();
  /// throws std::invalid_argument otherwise.
  [[nodiscard]] storage::ReplicatedStore& store(JobId job);
  [[nodiscard]] storage::CheckpointChain& chain(JobId job);
  /// Every recover() outcome, oldest first (watch()-triggered included).
  [[nodiscard]] const std::vector<RecoveryReport>& reports() const { return reports_; }

  /// Replica slot layout of every job's store.
  static constexpr std::size_t kLocalReplica = 0;
  static constexpr std::size_t kRemoteReplica = 1;

 private:
  struct Job {
    sim::Pid pid = sim::kNoPid;
    int home = -1;
    std::string guest_type;
    std::vector<std::byte> config;
    sim::SpawnOptions spawn;
    std::unique_ptr<storage::ReplicatedStore> owned_store;  ///< launch() jobs only
    storage::ReplicatedStore* store = nullptr;  ///< owned_store or the shared store
    storage::LogStructuredBackend* journal = nullptr;  ///< adopt() jobs, optional
    std::unique_ptr<storage::CheckpointChain> chain;
    bool external = false;  ///< adopt(): shared store, caller-managed placement
    std::uint64_t checkpoints = 0;
  };

  Job& job_ref(JobId job);
  [[nodiscard]] const Job* find_job(JobId job) const;
  /// Per-job data-loss-gate input for external jobs: does any image of
  /// *this job's chain* still have an intact copy (journal-resident or on a
  /// home-store replica)?
  [[nodiscard]] bool external_intact_committed(const Job& job) const;

  Cluster& cluster_;
  RecoveryManagerOptions options_;
  std::map<JobId, Job> jobs_;
  JobId next_job_ = 1;
  std::vector<RecoveryReport> reports_;
};

}  // namespace ckpt::cluster
