#include "cluster/uncoordinated.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace ckpt::cluster {

UncoordinatedMpi::UncoordinatedMpi(Cluster& cluster, MpiJob& job,
                                   std::vector<core::CheckpointEngine*> engines_by_node,
                                   UncoordinatedOptions options)
    : cluster_(cluster),
      job_(job),
      engines_(std::move(engines_by_node)),
      options_(options) {
  const int nranks = fabric().nranks();
  estimators_.reserve(static_cast<std::size_t>(nranks));
  next_due_.reserve(static_cast<std::size_t>(nranks));
  const SimTime interval = options_.policy.initial_interval;
  for (int r = 0; r < nranks; ++r) {
    estimators_.emplace_back(options_.policy);
    // Stagger: rank r's first commit lands at interval*(r+1)/nranks, so
    // per-epoch commit load is flat instead of a thundering herd — the
    // same discipline as the fleet scheduler's seed-staggered shards.
    const SimTime first = options_.stagger
                              ? cluster_.now() + (interval * static_cast<SimTime>(r + 1)) /
                                                     static_cast<SimTime>(nranks)
                              : cluster_.now() + interval;
    next_due_.push_back(first);
  }
}

void UncoordinatedMpi::run_until(SimTime deadline) {
  while (cluster_.now() < deadline) {
    const SimTime target = std::min(deadline, cluster_.now() + options_.epoch);
    cluster_.run_until(target, options_.epoch);
    const SimTime now = cluster_.now();
    for (int r = 0; r < fabric().nranks(); ++r) {
      auto idx = static_cast<std::size_t>(r);
      if (now < next_due_[idx]) continue;
      if (checkpoint_rank(r)) {
        estimators_[idx].update();
      } else {
        ++stats_.failed_commits;
      }
      next_due_[idx] = cluster_.now() + estimators_[idx].interval();
    }
  }
}

bool UncoordinatedMpi::checkpoint_rank(int rank) {
  const MpiJob::Placement placement =
      job_.placements().at(static_cast<std::size_t>(rank));
  if (placement.node < 0) return false;
  Node& node = cluster_.node(placement.node);
  if (!node.up()) return false;
  sim::SimKernel& kernel = node.kernel();
  sim::Process* proc = kernel.find_process(placement.pid);
  if (proc == nullptr || !proc->alive()) return false;

  obs::SpanGuard span(obs::tracer(options_.observer), "mpi.uncoordinated_ckpt",
                      "cluster", obs::kControlTrack,
                      {obs::TraceArg::num("rank", static_cast<std::uint64_t>(rank))});

  // Freeze the rank so its image and its channel cut are one consistent
  // snapshot; every other rank keeps computing — this is the whole point.
  kernel.stop_process(*proc);
  const ChannelCut channels = fabric().channel_cut(rank);

  core::CheckpointEngine* engine = engines_.at(static_cast<std::size_t>(placement.node));
  engine->attach(kernel, placement.pid);
  const core::CheckpointResult ckpt = engine->request_checkpoint(kernel, placement.pid);
  if (sim::Process* still = kernel.find_process(placement.pid)) {
    kernel.resume_process(*still);
  }
  if (!ckpt.ok) {
    span.end({obs::TraceArg::str("error", ckpt.error)});
    return false;
  }

  const storage::CheckpointChain* chain = engine->chain_of(placement.pid);
  if (chain == nullptr) return false;  // engine reported ok but kept no chain
  CheckpointCut cut;
  cut.sequence = chain->newest_sequence();
  cut.taken_at = cluster_.now();
  cut.node = placement.node;
  cut.pid = placement.pid;
  cut.channels = channels;
  cuts_[rank].push_back(cut);

  if (options_.trim_logs) {
    stats_.messages_trimmed += fabric().log().trim_delivered(rank, channels.delivered);
  }
  if (options_.log_journal != nullptr && fabric().sender_logging()) {
    persist_sender_log(rank, kernel);
  }

  ++stats_.commits;
  stats_.commit_latency_total += ckpt.total_latency();
  stats_.commit_latency_max = std::max(stats_.commit_latency_max, ckpt.total_latency());
  stats_.log_bytes_peak = std::max(stats_.log_bytes_peak, fabric().log().resident_bytes());
  estimators_[static_cast<std::size_t>(rank)].observe_cost(ckpt.total_latency());

  if (options_.observer != nullptr) {
    auto& metrics = options_.observer->metrics();
    metrics.add("mpi.commits");
    metrics.observe("mpi.commit_ns", static_cast<std::uint64_t>(ckpt.total_latency()),
                    obs::MetricsRegistry::latency_bounds());
    metrics.set_gauge("mpi.log_bytes",
                      static_cast<std::int64_t>(fabric().log().resident_bytes()));
  }
  span.end({obs::TraceArg::num("sequence", cut.sequence),
            obs::TraceArg::num("latency_ns", static_cast<std::uint64_t>(ckpt.total_latency()))});
  return true;
}

void UncoordinatedMpi::persist_sender_log(int rank, sim::SimKernel& kernel) {
  const std::vector<std::byte> blob = fabric().log().encode_sender(rank);
  const bool ok = options_.log_journal->append_flight_record(
      options_.journal_key_base + static_cast<std::uint64_t>(rank), blob,
      [&](SimTime t) { kernel.charge_time(t); });
  if (!ok) {
    util::logf(util::LogLevel::kWarn, "mpi",
               "rank %d sender-log persist failed (journal full/crashed)", rank);
  }
}

RecoveryLine UncoordinatedMpi::plan_recovery(const std::vector<int>& failed_ranks,
                                             const std::set<int>& dead_logs) const {
  RollbackResolver resolver(fabric().log(), cuts_, fabric().current_sent());
  return resolver.resolve(failed_ranks, dead_logs);
}

UncoordinatedMpi::RecoverResult UncoordinatedMpi::recover_failed_node(int failed_node,
                                                                      int target_node) {
  RecoverResult result;
  const SimTime started = cluster_.now();
  obs::SpanGuard span(obs::tracer(options_.observer), "mpi.recover", "cluster",
                      obs::kControlTrack,
                      {obs::TraceArg::num("failed_node",
                                          static_cast<std::uint64_t>(failed_node))});
  Node& target = cluster_.node(target_node);
  if (!target.up()) {
    result.error = "recovery target node is down";
    span.end({obs::TraceArg::str("error", result.error)});
    return result;
  }

  // Which ranks died?  Every rank on ANY down node (a second node failing
  // concurrently is recovered in the same line — its logs are just as dead).
  std::vector<int> failed_ranks;
  for (int r = 0; r < fabric().nranks(); ++r) {
    const int home = job_.placements()[static_cast<std::size_t>(r)].node;
    if (home < 0 || !cluster_.node(home).up()) failed_ranks.push_back(r);
  }
  if (failed_ranks.empty()) {
    result.error = "no ranks were placed on a down node";
    span.end({obs::TraceArg::str("error", result.error)});
    return result;
  }

  // The failed ranks' volatile sender logs died with them; restore from the
  // journal where configured, otherwise mark them dead for the resolver.
  std::set<int> dead_logs;
  for (int r : failed_ranks) {
    fabric().log().drop_sender(r);
    bool restored = false;
    if (options_.log_journal != nullptr) {
      const auto blob = options_.log_journal->flight_record_of(
          options_.journal_key_base + static_cast<std::uint64_t>(r));
      if (blob.has_value()) {
        try {
          fabric().log().restore_sender(r, *blob);
          restored = true;
          ++result.journal_restored_logs;
        } catch (const util::SerializeError& err) {
          util::logf(util::LogLevel::kWarn, "mpi",
                     "rank %d journal log corrupt (%s); treating as lost", r,
                     err.what());
        }
      }
    }
    if (!restored) dead_logs.insert(r);
  }

  result.line = plan_recovery(failed_ranks, dead_logs);
  stats_.max_rollback_depth = std::max(stats_.max_rollback_depth, result.line.depth);
  util::logf(util::LogLevel::kInfo, "mpi", "node %d failed: %s", failed_node,
             result.line.describe().c_str());
  if (options_.observer != nullptr) {
    auto& metrics = options_.observer->metrics();
    metrics.observe("mpi.rollback_depth", result.line.depth,
                    obs::MetricsRegistry::size_bounds());
    metrics.observe("mpi.rollback_width", result.line.width,
                    obs::MetricsRegistry::size_bounds());
  }
  if (!result.line.bounded) {
    // The cascade escaped every checkpoint some rank holds.  Refuse: the
    // caller must cold-start the job (or re-run with journal-persisted
    // logs).  Reported loudly — an unbounded domino is the protocol's
    // failure mode, not a crash.
    result.error = "unbounded domino cascade: " + result.line.describe();
    span.end({obs::TraceArg::str("error", result.error)});
    return result;
  }

  // Execute the line: roll each rank on it back to its cut.
  for (const auto& [rank, cut_index] : result.line.restart_cut) {
    const MpiJob::Placement placement =
        job_.placements()[static_cast<std::size_t>(rank)];
    const bool rank_died = placement.node < 0 || !cluster_.node(placement.node).up();
    const int home = rank_died ? target_node : placement.node;
    sim::SimKernel& home_kernel = cluster_.node(home).kernel();

    if (!rank_died) {
      // Cascade victim on a live node: kill the running process before
      // restarting it from its cut (its present state is being discarded).
      sim::Process* proc = cluster_.node(placement.node).kernel().find_process(
          placement.pid);
      if (proc != nullptr && proc->alive()) {
        cluster_.node(placement.node).kernel().terminate(*proc, 0);
      }
    }

    if (cut_index == RecoveryLine::kToStart) {
      // Never-checkpointed rank: cold-start it fresh; replay (below) will
      // re-feed everything its peers' logs still hold.
      job_.respawn_rank(rank, home);
      fabric().rewind_for_restart(rank, ChannelCut{});
      cuts_[rank].clear();
      ++stats_.ranks_rolled_back;
      continue;
    }

    const CheckpointCut& cut =
        cuts_.at(rank).at(static_cast<std::size_t>(cut_index));
    core::CheckpointEngine* engine = engines_.at(static_cast<std::size_t>(cut.node));
    const storage::CheckpointChain* chain = engine->chain_of(cut.pid);
    std::optional<storage::CheckpointImage> image;
    if (chain != nullptr) {
      image = chain->reconstruct_at(cut.sequence,
                                    [&](SimTime t) { home_kernel.charge_time(t); });
    }
    if (!image.has_value()) {
      result.error = "rank " + std::to_string(rank) + " image at sequence " +
                     std::to_string(cut.sequence) + " did not reconstruct";
      span.end({obs::TraceArg::str("error", result.error)});
      return result;
    }
    const core::RestartResult restarted = core::restart_from_image(home_kernel, *image);
    if (!restarted.ok) {
      result.error = "rank " + std::to_string(rank) + " restart failed: " +
                     restarted.error;
      span.end({obs::TraceArg::str("error", result.error)});
      return result;
    }
    job_.rehome_rank(rank, home, restarted.pid);
    fabric().rewind_for_restart(rank, cut.channels);
    // Cuts newer than the restart point describe a rolled-back future;
    // they must never anchor a later recovery line.
    cuts_.at(rank).resize(static_cast<std::size_t>(cut_index) + 1);
    ++stats_.ranks_rolled_back;
  }

  // Replay logged suffixes into every rolled-back rank.  The receive side
  // pays normal delivery; the replay injection itself is charged as a
  // memory copy out of the log on the rank's new home.
  for (const auto& [rank, cut_index] : result.line.restart_cut) {
    const ChannelCut channels =
        cut_index == RecoveryLine::kToStart
            ? ChannelCut{}
            : cuts_.at(rank).at(static_cast<std::size_t>(cut_index)).channels;
    const int home = job_.placements()[static_cast<std::size_t>(rank)].node;
    const MpiFabric::ReplayStats replay =
        fabric().replay_into(rank, channels, cluster_.now());
    if (replay.bytes > 0) {
      // Copying the suffix back out of the log is the replay injection cost;
      // redelivery itself then pays normal fabric latency.
      cluster_.node(home).kernel().charge_time(
          sim::CostModel{}.mem_copy_cost(replay.bytes));
    }
    result.replayed_messages += replay.messages;
    result.replayed_bytes += replay.bytes;
  }

  ++stats_.recoveries;
  stats_.replayed_messages += result.replayed_messages;
  result.recovery_time = cluster_.now() - started;
  result.ok = true;
  if (options_.observer != nullptr) {
    auto& metrics = options_.observer->metrics();
    metrics.add("mpi.recoveries");
    metrics.add("mpi.replayed_messages", result.replayed_messages);
    metrics.observe("mpi.replay_bytes", result.replayed_bytes,
                    obs::MetricsRegistry::size_bounds());
  }
  span.end({obs::TraceArg::num("depth", result.line.depth),
            obs::TraceArg::num("width", result.line.width),
            obs::TraceArg::num("replayed", result.replayed_messages)});
  return result;
}

}  // namespace ckpt::cluster
