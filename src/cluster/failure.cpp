#include "cluster/failure.hpp"

#include <algorithm>
#include <cmath>

namespace ckpt::cluster {

FailureInjector::FailureInjector(Cluster& cluster, FailureModel model)
    : cluster_(cluster), model_(model), rng_(model.seed) {}

SimTime FailureInjector::sample_ttf() {
  const double mean = static_cast<double>(model_.mtbf);
  double sample = 0;
  switch (model_.kind) {
    case FailureModel::Kind::kExponential:
      sample = rng_.next_exponential(mean);
      break;
    case FailureModel::Kind::kWeibull: {
      // Scale chosen so the distribution mean equals the configured MTBF:
      // mean = scale * Gamma(1 + 1/k); use the Stirling-free lgamma.
      const double k = model_.weibull_shape;
      const double scale = mean / std::exp(std::lgamma(1.0 + 1.0 / k));
      sample = rng_.next_weibull(k, scale);
      break;
    }
  }
  return static_cast<SimTime>(std::max(1.0, sample));
}

void FailureInjector::schedule_failure(int node_id, SimTime when, SimTime horizon) {
  if (when > horizon) return;
  schedule_.push_back(ScheduledFailure{node_id, when});
  cluster_.add_event(when, [this, node_id, horizon](Cluster& c) {
    if (!c.node(node_id).up()) return;
    ++failures_;
    c.fail_node(node_id);
    // repair_time == 0: never repaired — no repair event, and therefore no
    // post-repair rescheduling; this node's schedule() entry is its last.
    if (model_.repair_time != 0) {
      const SimTime back_at = c.now() + model_.repair_time;
      c.add_event(back_at, [this, node_id, horizon](Cluster& c2) {
        c2.repair_node(node_id);
        // Next failure for this node after repair.
        schedule_failure(node_id, c2.now() + sample_ttf(), horizon);
      });
    }
  });
}

void FailureInjector::arm(SimTime horizon) {
  for (int id : cluster_.up_nodes()) {
    schedule_failure(id, cluster_.now() + sample_ttf(), horizon);
  }
}

}  // namespace ckpt::cluster
