// Fleet-scale autonomic checkpointing with failure detection and
// CRAFT-style automatic node replacement.
//
// The survey's central scalability argument (§4.1) is that *autonomic*,
// per-node-initiated checkpointing scales where centralized batch
// initiation collapses.  FleetManager makes that claim load-bearing: it
// runs hundreds-to-thousands of simulated nodes — each an independent
// SimKernel with its own guest and checkpoint chain — under one autonomic
// policy (a fleet-wide core::IntervalEstimator), and keeps the fleet
// correct and live under *continuous* stochastic failures instead of
// restarting once after one.
//
// The pieces:
//
//   * FailureDetector — fail-stop is *detected*, not announced by fiat.
//     Every up node heartbeats once per scheduling window; a node that
//     misses `suspect_after_missed` consecutive beats is suspected, and at
//     `confirm_after_missed` it is confirmed dead.  The underlying
//     FailureInjector still decides ground truth; the detector only ever
//     sees (possibly injector-suppressed) heartbeats.
//
//   * NodeReplacer — the CRAFT spare pool.  On confirmed death the lowest
//     up spare is allocated, a still-up-but-confirmed node is *fenced*
//     (fail-stopped — a false suspicion costs work, never a split brain),
//     the dead node's slot is re-seeded from the newest recoverable image
//     via the RecoveryManager ladder targeted at the spare, and — when the
//     dead node was a shard's storage home — the shard store's local
//     replica is retargeted to the spare's disk and scrubbed back to full
//     width.  Repaired nodes rejoin the pool.
//
//   * Sharded, staggered scheduling — slots are partitioned into shards;
//     the commit interval (in windows) is divided into per-shard slices
//     and each slot commits at a seed-deterministic offset inside its
//     shard's slice, so the stores see a level commit stream instead of a
//     stampede.  Each shard owns a ReplicatedStore (storage-home disk +
//     shard remote) fronted by a log-structured journal whose
//     begin_group()/end_group() amortizes one sync across the shard's
//     due slots per window.
//
// Determinism contract: guest windows run in parallel over the ThreadPool
// (per-node kernels share nothing and carry no observer), every random
// draw happens on the main thread before the parallel section, and all
// commits / detection / replacement / metrics run serially between
// windows — so reports, metrics and traces are byte-identical for any
// CKPT_WORKERS.  Tick-level time: the fleet advances in fixed windows;
// node kernels may individually run past a window boundary (commit
// charges), which only ever feeds back through their own future windows.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "cluster/recovery.hpp"
#include "core/autonomic.hpp"
#include "inject/injectors.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/overhead.hpp"
#include "obs/rollup.hpp"
#include "storage/journal.hpp"
#include "storage/replicated.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace ckpt::cluster {

struct DetectorOptions {
  /// Expected heartbeat cadence (the fleet's scheduling window).
  SimTime heartbeat_interval = 250 * kMillisecond;
  /// Consecutive missed beats before a node is suspected.
  std::uint32_t suspect_after_missed = 2;
  /// Consecutive missed beats before a node is confirmed dead.
  std::uint32_t confirm_after_missed = 4;
};

/// Heartbeat-based failure detector.  Knows nothing about ground truth:
/// state is a pure function of the beats it was (not) shown.
class FailureDetector {
 public:
  enum class NodeState : std::uint8_t { kAlive, kSuspected, kConfirmedDead };

  /// Pre: nodes >= 0; node ids passed below must be in [0, nodes).
  FailureDetector(int nodes, DetectorOptions options);

  /// A beat arrived; an alive-or-suspected node returns to kAlive.  A
  /// confirmed-dead node stays dead until reset() — confirmation is a
  /// one-way door, matching the fencing discipline.
  void observe_heartbeat(int node, SimTime at);
  /// Advance suspicion state to `now`; newly-confirmed nodes queue for
  /// take_confirmed().
  void tick(SimTime now);
  /// Drain nodes confirmed dead since the last call (ascending id).
  [[nodiscard]] std::vector<int> take_confirmed();
  /// Re-admit a node (repaired, or a spare entering service).
  void reset(int node, SimTime now);

  [[nodiscard]] NodeState state(int node) const;
  [[nodiscard]] std::uint64_t suspicions() const { return suspicions_; }
  [[nodiscard]] std::uint64_t confirmations() const { return confirmations_; }

 private:
  struct Tracked {
    SimTime last_beat = 0;
    NodeState state = NodeState::kAlive;
  };

  DetectorOptions options_;
  std::vector<Tracked> nodes_;
  std::vector<int> confirmed_queue_;
  std::uint64_t suspicions_ = 0;
  std::uint64_t confirmations_ = 0;
};

/// CRAFT-style spare pool: lowest-id-first allocation (deterministic),
/// repaired nodes rejoin, dead spares drop out.
class NodeReplacer {
 public:
  explicit NodeReplacer(std::vector<int> spares);

  /// Lowest up spare, removed from the pool; nullopt when none is up.
  std::optional<int> allocate(Cluster& cluster);
  void release(int node);  ///< a repaired / surplus node rejoins the pool
  void remove(int node);   ///< a pooled spare died: drop it

  [[nodiscard]] std::size_t available(Cluster& cluster) const;  ///< up spares
  [[nodiscard]] const std::set<int>& pool() const { return pool_; }

 private:
  std::set<int> pool_;
};

struct FleetOptions {
  /// Active compute nodes; each hosts exactly one guest slot.
  int active_nodes = 64;
  /// Spare nodes (ids follow the active range) forming the replacement pool.
  int spare_nodes = 8;
  /// Storage shards; shard s's storage home starts as node s.
  int shards = 8;
  std::uint64_t seed = 1;
  /// Scheduling window: heartbeat cadence, detector tick, commit slot.
  SimTime window = 250 * kMillisecond;
  std::uint32_t suspect_after_missed = 2;
  std::uint32_t confirm_after_missed = 4;
  /// The one autonomic policy the whole fleet runs under (fleet-wide
  /// IntervalEstimator; interval is quantized to whole windows).
  core::AutonomicPolicy policy;
  /// Guest work per window: steps drawn uniformly in [min, max] per slot.
  std::uint64_t guest_steps_min = 2;
  std::uint64_t guest_steps_max = 6;
  /// Dense-writer guest array size (the checkpointed state).
  std::uint64_t array_bytes = 16 * 1024;
  /// Commit through each shard's log-structured journal (group commit);
  /// false = two-phase replicated publish per commit.
  bool append_commit = true;
  std::uint64_t journal_segment_bytes = 256 * 1024;
  std::uint32_t journal_segments = 24;
  /// Background migrator cadence, in windows (per shard, staggered).
  std::uint32_t migrate_every = 4;
  /// Scrub cadence, in windows (per shard, staggered; 0 = only after a
  /// storage-home retarget).
  std::uint32_t scrub_every = 16;
  /// Prune a slot's chain every N commits (bounds chains and, via journal
  /// erase records, log occupancy; keeps N-deep older-surviving fallback).
  std::uint32_t prune_every = 4;
  /// Pinned worker-pool width (0 = the process-wide CKPT_WORKERS pool).
  std::uint32_t workers = 0;
  /// Per-slot flight-recorder ring capacity: the crash-surviving black box
  /// persisted through the shard journal around every commit, recovered and
  /// rendered as a post-mortem when the node is confirmed dead.
  std::uint32_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Closed-loop autonomic interval: feed the fleet IntervalEstimator from
  /// *detector confirmations* (measured failures, false confirms included)
  /// instead of injector ground truth, so the interval derives entirely
  /// from signals a real deployment could observe.  false = the legacy
  /// ground-truth feed.
  bool closed_loop_interval = true;
  /// Retry policy for the shard stores.
  storage::RetryPolicy store_retry;
  /// Content-addressed dedup mode for the shard stores.
  bool dedup = false;
  sim::CostModel costs;
  /// Observability sink (null = disabled): fleet.* metrics and spans, plus
  /// checkpoint/recovery spans from the RecoveryManager.  The trace clock
  /// is bound to cluster time.
  obs::Observer* observer = nullptr;
};

/// Concurrent-fault soak configuration (arm_torture()).
struct FleetTortureOptions {
  /// Stochastic fail-stop processes; every model is armed over the whole
  /// fleet (spares included), so e.g. one exponential + one Weibull model
  /// yields their superposition.  repair_time = 0 drains the spare pool.
  std::vector<FailureModel> failure_models;
  /// Per-node per-window probability of a heartbeat-suppression burst.
  double heartbeat_drop_per_window = 0.0;
  /// Burst length in beats (>= confirm_after_missed forces a false confirm).
  std::uint32_t heartbeat_drop_beats = 0;
  /// Per-window probability of one storage fault (random shard, random
  /// replica; rotates reject / corrupt-newest / one-window outage).
  double storage_fault_per_window = 0.0;
};

struct FleetReport {
  std::uint64_t windows = 0;
  std::uint64_t commits_scheduled = 0;  ///< due & live commit attempts
  std::uint64_t commits_ok = 0;
  std::uint64_t commits_failed = 0;
  std::uint64_t group_commits = 0;      ///< per-shard journal groups synced
  std::uint64_t max_commits_one_window = 0;  ///< stampede ceiling actually seen
  std::uint64_t heartbeats = 0;
  std::uint64_t heartbeats_suppressed = 0;
  std::uint64_t failures_injected = 0;  ///< ground truth (incl. fencings)
  std::uint64_t confirmed_dead = 0;     ///< detector confirmations acted on
  std::uint64_t false_confirms = 0;     ///< confirmed while actually up (fenced)
  std::uint64_t replacements = 0;       ///< slots re-seeded onto a spare
  std::uint64_t reseeds_from_image = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t local_restarts = 0;     ///< process gone but node up (fast repair)
  std::uint64_t retargets = 0;          ///< storage-home replica retargets
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_unrepairable = 0;
  std::uint64_t storage_faults_injected = 0;
  std::uint64_t migrated_images = 0;
  std::uint64_t migrated_bytes = 0;
  std::uint64_t flight_records_persisted = 0;  ///< kFlightRecord appends that landed
  std::uint64_t post_mortems = 0;       ///< black-box reports rendered for dead slots
  std::uint64_t repairs = 0;            ///< nodes rejoining as spares
  std::uint64_t spares_exhausted_windows = 0;  ///< windows with slots waiting
  std::uint64_t pending_at_end = 0;     ///< slots still waiting at run end
  std::uint64_t durable_bytes = 0;      ///< shard stores + resident journal bytes
  SimTime sim_elapsed = 0;
  /// Distributions (window-quantized detection; recovery includes the
  /// restore work charged to the target kernel).
  std::vector<SimTime> detect_latency;
  std::vector<SimTime> recover_latency;

  // --- Violations (the soak gate) -------------------------------------------
  std::uint64_t data_loss_with_intact_replica = 0;
  std::uint64_t verify_failures = 0;    ///< restored state != restored image
  std::uint64_t unrecovered = 0;        ///< ladder failed outright

  [[nodiscard]] bool ok() const {
    return data_loss_with_intact_replica == 0 && verify_failures == 0 &&
           unrecovered == 0;
  }
  /// CRC64 over a canonical serialization of every field — the byte-identity
  /// digest the 1-vs-8-worker gate compares.
  [[nodiscard]] std::uint64_t digest() const;
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const FleetReport&, const FleetReport&) = default;
};

class FleetManager {
 public:
  explicit FleetManager(FleetOptions options = {});

  /// Arm the concurrent-fault soak; call before run().  Arming twice
  /// replaces the previous torture configuration.
  void arm_torture(const FleetTortureOptions& torture);

  /// Drop the next `beats` heartbeats of `node` (deterministic targeted
  /// false-suspicion seam for tests; arm_torture() drives it stochastically).
  void suppress_heartbeats(int node, std::uint32_t beats);

  /// Run `windows` scheduling windows and return the cumulative report.
  /// Callable repeatedly: each call continues from the current fleet state
  /// and the report keeps accumulating (report() returns the same totals).
  FleetReport run(std::uint64_t windows);

  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] RecoveryManager& recovery() { return recovery_; }
  [[nodiscard]] const FailureDetector& detector() const { return detector_; }
  [[nodiscard]] const NodeReplacer& replacer() const { return replacer_; }
  [[nodiscard]] const FleetReport& report() const { return report_; }
  [[nodiscard]] const FleetOptions& options() const { return options_; }
  /// Current commit interval in windows (>= 1), from the fleet estimator.
  [[nodiscard]] std::uint64_t interval_windows() const;
  /// The fleet-wide autonomic estimator (continuous interval, pre-quantize).
  [[nodiscard]] const core::IntervalEstimator& estimator() const { return estimator_; }
  /// Useful/checkpoint/rework ledger fed from measured charges and detector
  /// confirmations — the closed loop's measured MTBF and commit cost.
  [[nodiscard]] const obs::OverheadAccountant& accountant() const { return accountant_; }
  /// Per-slot metric rollups, refreshed at the end of every run().
  [[nodiscard]] const obs::FleetTelemetry& telemetry() const { return telemetry_; }
  /// Post-mortem reports rendered on confirmed death, keyed by slot index.
  [[nodiscard]] const std::map<int, std::string>& post_mortems() const {
    return post_mortems_;
  }
  /// Node currently hosting slot `slot` (-1 while awaiting a spare).
  /// Pre for all three: the index is in range (slot < active_nodes,
  /// shard < shards); they are bounds-checked and throw otherwise.
  [[nodiscard]] int slot_node(int slot) const;
  /// RecoveryManager job id of slot `slot` (stable across replacements).
  [[nodiscard]] RecoveryManager::JobId slot_job(int slot) const;
  /// Node whose disk is shard `shard`'s replica 0 (moves on retarget).
  [[nodiscard]] int storage_home(int shard) const;

 private:
  struct Slot {
    RecoveryManager::JobId job = 0;
    int node = -1;       ///< current home (-1: pending replacement)
    int prev_node = -1;  ///< home it left when confirmed dead
    int shard = 0;
    std::uint64_t stagger = 0;  ///< seed-deterministic phase hash
    std::uint64_t commits = 0;
    bool pending = false;
    SimTime truth_failed_at = 0;
    SimTime confirmed_at = 0;
    SimTime last_commit_at = 0;  ///< rework baseline (restore point after a reseed)
    obs::FlightRecorder flight;  ///< the black box; persists via the shard journal
    obs::MetricsRegistry node_metrics;  ///< per-slot rollup input
  };
  struct Shard {
    std::unique_ptr<storage::RemoteBackend> remote;
    std::unique_ptr<storage::ReplicatedStore> store;
    std::unique_ptr<storage::LogStructuredBackend> journal;
    int storage_home = -1;  ///< node whose disk is replica 0
    std::vector<int> slots;
  };

  void step_window(std::uint64_t window_index);
  void heartbeat_phase();
  void on_confirmed_dead(int node_id);
  void process_pending();
  bool replace_slot(int slot_index);
  void sweep_dead_processes();
  void guest_phase(SimTime window_end, const std::vector<std::uint64_t>& steps);
  void commit_phase(std::uint64_t window_index);
  void maintenance_phase(std::uint64_t window_index);
  void inject_storage_fault();
  void persist_flight(int slot_index, sim::SimKernel& kernel);
  void render_post_mortem(int slot_index);
  void ingest_telemetry();
  void verify_restored(Slot& slot, const RecoveryReport& rr);
  [[nodiscard]] bool due_this_window(const Slot& slot, std::uint64_t window_index,
                                     std::uint64_t interval) const;
  void finalize_window(std::uint64_t window_index, std::uint64_t window_commits);

  FleetOptions options_;
  Cluster cluster_;
  std::unique_ptr<util::ThreadPool> pinned_pool_;
  util::ThreadPool* pool_;
  util::Rng rng_;
  core::IntervalEstimator estimator_;
  FailureDetector detector_;
  NodeReplacer replacer_;
  RecoveryManager recovery_;
  inject::HeartbeatInjector heartbeat_injector_;
  std::vector<Shard> shards_;
  std::vector<Slot> slots_;
  std::map<int, int> node_slot_;          ///< node id -> slot index
  std::deque<int> pending_;               ///< slot indices awaiting a spare
  std::map<int, SimTime> truth_failed_at_;
  std::vector<std::unique_ptr<FailureInjector>> injectors_;
  FleetTortureOptions torture_;
  bool torture_armed_ = false;
  /// Outages armed this window, to end at the next window boundary.
  std::vector<storage::BlobStoreBackend*> open_outages_;
  obs::OverheadAccountant accountant_;
  obs::FleetTelemetry telemetry_;
  std::map<int, std::string> post_mortems_;
  FleetReport report_;
};

}  // namespace ckpt::cluster
