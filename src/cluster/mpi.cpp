#include "cluster/mpi.hpp"

#include <cstring>
#include <stdexcept>

#include "util/serialize.hpp"

namespace ckpt::cluster {
namespace {

std::map<std::uint64_t, std::unique_ptr<MpiFabric>>& fabric_registry() {
  static std::map<std::uint64_t, std::unique_ptr<MpiFabric>> registry;
  return registry;
}

std::uint64_t next_fabric_id() {
  static std::uint64_t next = 1;
  return next++;
}

// Guest memory layout: [0] iteration, [8] messages received,
// [16] bytes received; array in heap.
constexpr sim::VAddr kIterAddr = sim::kDataBase;
constexpr sim::VAddr kRecvCountAddr = sim::kDataBase + 8;
constexpr sim::VAddr kRecvBytesAddr = sim::kDataBase + 16;

}  // namespace

// ---------------------------------------------------------------------------
// MpiFabric
// ---------------------------------------------------------------------------

std::uint64_t MpiFabric::create(int nranks, SimTime latency) {
  auto fabric = std::make_unique<MpiFabric>();
  fabric->nranks_ = nranks;
  fabric->latency_ = latency;
  const std::uint64_t id = next_fabric_id();
  fabric_registry()[id] = std::move(fabric);
  return id;
}

MpiFabric& MpiFabric::get(std::uint64_t id) {
  auto it = fabric_registry().find(id);
  if (it == fabric_registry().end()) {
    throw std::runtime_error("MpiFabric: unknown fabric id " + std::to_string(id));
  }
  return *it->second;
}

void MpiFabric::destroy(std::uint64_t id) { fabric_registry().erase(id); }

void MpiFabric::send(int src, int dst, std::uint64_t tag, std::vector<std::byte> payload,
                     SimTime now) {
  Message message;
  message.src = src;
  message.dst = dst;
  message.tag = tag;
  message.payload = std::move(payload);
  message.visible_at = now + latency_;
  inboxes_[dst].push_back(std::move(message));
  ++total_sent_;
}

std::optional<MpiFabric::Message> MpiFabric::try_recv(int dst, SimTime now) {
  auto it = inboxes_.find(dst);
  if (it == inboxes_.end() || it->second.empty()) return std::nullopt;
  if (it->second.front().visible_at > now) return std::nullopt;  // still in flight
  Message message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

std::uint64_t MpiFabric::in_flight() const {
  std::uint64_t count = 0;
  for (const auto& [dst, inbox] : inboxes_) count += inbox.size();
  return count;
}

// ---------------------------------------------------------------------------
// MpiRankGuest
// ---------------------------------------------------------------------------

std::vector<std::byte> MpiRankGuest::Config::encode() const {
  util::Serializer s;
  s.put(fabric_id);
  s.put<std::int32_t>(rank);
  s.put<std::int32_t>(nranks);
  s.put(array_bytes);
  s.put(halo_bytes);
  s.put(compute_ns);
  return std::move(s).take();
}

MpiRankGuest::Config MpiRankGuest::Config::decode(const std::vector<std::byte>& blob) {
  Config config;
  if (blob.empty()) return config;
  util::Deserializer d(blob);
  config.fabric_id = d.get<std::uint64_t>();
  config.rank = d.get<std::int32_t>();
  config.nranks = d.get<std::int32_t>();
  config.array_bytes = d.get<std::uint64_t>();
  config.halo_bytes = d.get<std::uint64_t>();
  config.compute_ns = d.get<SimTime>();
  return config;
}

void MpiRankGuest::on_start(sim::UserApi& api) {
  const sim::VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += 8) {
    api.store_u64(base + off, static_cast<std::uint64_t>(config_.rank) * 1000003ULL + off);
  }
}

sim::GuestStatus MpiRankGuest::on_step(sim::UserApi& api) {
  MpiFabric& fabric = MpiFabric::get(config_.fabric_id);
  const sim::VAddr base = api.process().heap_base;
  const std::uint64_t iter = api.load_u64(kIterAddr);

  // Drain whatever has arrived; received halos are folded into the local
  // array so they become part of the checkpointable state.
  while (auto message = fabric.try_recv(config_.rank, api.now())) {
    std::uint64_t received = api.load_u64(kRecvCountAddr);
    std::uint64_t bytes = api.load_u64(kRecvBytesAddr);
    api.store_u64(kRecvCountAddr, received + 1);
    api.store_u64(kRecvBytesAddr, bytes + message->payload.size());
    const std::uint64_t slot =
        (message->tag % (config_.array_bytes / sim::kPageSize)) * sim::kPageSize;
    const std::size_t n = std::min<std::size_t>(message->payload.size(), 256);
    api.store(base + slot, std::span(message->payload.data(), n));
  }

  if (fabric.quiescing()) {
    // Quiesced for a coordinated checkpoint: no sends, no local progress.
    api.compute(5 * kMicrosecond);
    return sim::GuestStatus::kRunning;
  }

  // Local compute sweep: touch a window of the array.
  const std::uint64_t window = std::min<std::uint64_t>(config_.array_bytes, 16 * 1024);
  const std::uint64_t start = (iter * window) % config_.array_bytes;
  for (std::uint64_t off = 0; off < window && start + off + 8 <= config_.array_bytes;
       off += 512) {
    const std::uint64_t v = api.load_u64(base + start + off);
    api.store_u64(base + start + off, v * 2654435761ULL + iter);
  }
  api.compute(config_.compute_ns);

  // Halo exchange with ring neighbours.
  std::vector<std::byte> halo(config_.halo_bytes);
  for (std::size_t i = 0; i < halo.size(); ++i) {
    halo[i] = static_cast<std::byte>((iter + i + static_cast<std::uint64_t>(config_.rank)) &
                                     0xFF);
  }
  const int right = (config_.rank + 1) % config_.nranks;
  const int left = (config_.rank + config_.nranks - 1) % config_.nranks;
  fabric.send(config_.rank, right, iter, halo, api.now());
  fabric.send(config_.rank, left, iter, std::move(halo), api.now());

  api.store_u64(kIterAddr, iter + 1);
  api.work_done();
  return sim::GuestStatus::kRunning;
}

void MpiRankGuest::register_type() {
  auto& registry = sim::GuestRegistry::instance();
  if (registry.has_type(kTypeName)) return;
  registry.register_type(kTypeName, [](const std::vector<std::byte>& blob) {
    return std::make_unique<MpiRankGuest>(Config::decode(blob));
  });
}

std::uint64_t MpiRankGuest::read_iteration(sim::Process& proc) {
  const auto data = proc.aspace->page_data(sim::page_of(kIterAddr));
  std::uint64_t value = 0;
  std::memcpy(&value, data.data() + sim::page_offset(kIterAddr), sizeof(value));
  return value;
}

// ---------------------------------------------------------------------------
// MpiJob
// ---------------------------------------------------------------------------

MpiJob::MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config)
    : cluster_(cluster), nranks_(nranks), base_config_(base_config) {
  MpiRankGuest::register_type();
  fabric_id_ = MpiFabric::create(nranks, cluster.node(0).kernel().costs().net_latency_ns);
  placements_.resize(static_cast<std::size_t>(nranks));
}

MpiJob::~MpiJob() { MpiFabric::destroy(fabric_id_); }

void MpiJob::launch() {
  const std::vector<int> up = cluster_.up_nodes();
  for (int r = 0; r < nranks_; ++r) {
    const int node_id = up[static_cast<std::size_t>(r) % up.size()];
    MpiRankGuest::Config config = base_config_;
    config.fabric_id = fabric_id_;
    config.rank = r;
    config.nranks = nranks_;
    sim::SpawnOptions options = sim::spawn_options_for_array(config.array_bytes);
    const sim::Pid pid = cluster_.node(node_id).kernel().spawn(MpiRankGuest::kTypeName,
                                                               config.encode(), options);
    placements_[static_cast<std::size_t>(r)] = Placement{node_id, pid};
  }
}

MpiJob::CoordinatedResult MpiJob::coordinated_checkpoint(
    const std::vector<core::CheckpointEngine*>& engines_by_node) {
  CoordinatedResult result;
  MpiFabric& net = fabric();
  const SimTime started = cluster_.now();
  const std::uint64_t in_flight_before = net.in_flight();

  // Phase 1: quiesce senders; ranks keep draining their inboxes.
  net.set_quiescing(true);
  const SimTime drain_deadline = cluster_.now() + 60 * kSecond;
  while (net.in_flight() > 0 && cluster_.now() < drain_deadline) {
    cluster_.run_until(cluster_.now() + 100 * kMicrosecond, 100 * kMicrosecond);
  }
  if (net.in_flight() > 0) {
    net.set_quiescing(false);
    result.error = "drain did not complete";
    return result;
  }
  result.drain_time = cluster_.now() - started;
  result.messages_drained = in_flight_before;

  // Phase 2: per-rank checkpoints through each node's engine.  Requests are
  // serialized by mpirun, so per-rank latencies accumulate.
  SimTime checkpoint_time = 0;
  for (const Placement& placement : placements_) {
    Node& node = cluster_.node(placement.node);
    if (!node.up()) {
      net.set_quiescing(false);
      result.error = "rank's node is down";
      return result;
    }
    core::CheckpointEngine* engine = engines_by_node.at(static_cast<std::size_t>(
        placement.node));
    engine->attach(node.kernel(), placement.pid);
    const core::CheckpointResult ckpt =
        engine->request_checkpoint(node.kernel(), placement.pid);
    if (!ckpt.ok) {
      net.set_quiescing(false);
      result.error = "rank checkpoint failed: " + ckpt.error;
      return result;
    }
    result.payload_bytes += ckpt.payload_bytes;
    checkpoint_time += ckpt.total_latency();
  }

  // Phase 3: resume communication.
  net.set_quiescing(false);
  result.ok = true;
  result.total_time = result.drain_time + checkpoint_time;
  return result;
}

bool MpiJob::restart_ranks_of_failed_node(
    const std::vector<core::CheckpointEngine*>& engines_by_node, int failed_node,
    int target_node) {
  Node& target = cluster_.node(target_node);
  if (!target.up()) return false;
  core::CheckpointEngine* engine =
      engines_by_node.at(static_cast<std::size_t>(failed_node));
  for (Placement& placement : placements_) {
    if (placement.node != failed_node) continue;
    const core::RestartResult restarted = engine->restart_on(target.kernel(), placement.pid);
    if (!restarted.ok) return false;
    placement.node = target_node;
    placement.pid = restarted.pid;
  }
  return true;
}

std::uint64_t MpiJob::min_iteration(Cluster& cluster) const {
  std::uint64_t minimum = UINT64_MAX;
  for (const Placement& placement : placements_) {
    Node& node = cluster.node(placement.node);
    if (!node.up()) return 0;
    sim::Process* proc = node.kernel().find_process(placement.pid);
    if (proc == nullptr || !proc->alive()) return 0;
    minimum = std::min(minimum, MpiRankGuest::read_iteration(*proc));
  }
  return minimum == UINT64_MAX ? 0 : minimum;
}

}  // namespace ckpt::cluster
