#include "cluster/mpi.hpp"

#include <cstring>
#include <stdexcept>

#include "util/serialize.hpp"

namespace ckpt::cluster {
namespace {

std::map<std::uint64_t, std::unique_ptr<MpiFabric>>& fabric_registry() {
  static std::map<std::uint64_t, std::unique_ptr<MpiFabric>> registry;
  return registry;
}

std::uint64_t next_fabric_id() {
  static std::uint64_t next = 1;
  return next++;
}

// Guest memory layout: [0] iteration, [8] messages received,
// [16] bytes received, [24] order-sensitive receive digest; array in heap.
constexpr sim::VAddr kIterAddr = sim::kDataBase;
constexpr sim::VAddr kRecvCountAddr = sim::kDataBase + 8;
constexpr sim::VAddr kRecvBytesAddr = sim::kDataBase + 16;
constexpr sim::VAddr kRecvDigestAddr = sim::kDataBase + 24;

std::uint64_t fold_payload(const std::vector<std::byte>& payload) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (std::byte b : payload) {
    h ^= std::to_integer<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t read_guest_u64(sim::Process& proc, sim::VAddr addr) {
  const auto data = proc.aspace->page_data(sim::page_of(addr));
  std::uint64_t value = 0;
  std::memcpy(&value, data.data() + sim::page_offset(addr), sizeof(value));
  return value;
}

}  // namespace

// ---------------------------------------------------------------------------
// MpiFabric
// ---------------------------------------------------------------------------

std::uint64_t MpiFabric::create(int nranks, SimTime latency) {
  FabricOptions options;
  options.latency = latency;
  return create(nranks, options);
}

std::uint64_t MpiFabric::create(int nranks, const FabricOptions& options) {
  auto fabric = std::make_unique<MpiFabric>();
  fabric->nranks_ = nranks;
  fabric->options_ = options;
  MessageLogOptions log_options;
  log_options.log_payloads = options.log_payloads;
  log_options.costs = options.costs;
  fabric->log_ = MessageLog(log_options);
  const std::uint64_t id = next_fabric_id();
  fabric_registry()[id] = std::move(fabric);
  return id;
}

MpiFabric& MpiFabric::get(std::uint64_t id) {
  auto it = fabric_registry().find(id);
  if (it == fabric_registry().end()) {
    throw std::runtime_error("MpiFabric: unknown fabric id " + std::to_string(id));
  }
  return *it->second;
}

void MpiFabric::destroy(std::uint64_t id) { fabric_registry().erase(id); }

SimTime MpiFabric::send(int src, int dst, std::uint64_t tag,
                        std::vector<std::byte> payload, SimTime now) {
  Message message;
  message.src = src;
  message.dst = dst;
  message.seq = ++next_seq_[{src, dst}];
  message.tag = tag;
  message.payload = std::move(payload);
  message.visible_at = now + options_.latency;

  SimTime charge = 0;
  if (options_.sender_logging) {
    LoggedMessage entry;
    entry.src = src;
    entry.dst = dst;
    entry.seq = message.seq;
    entry.tag = tag;
    entry.sent_at = now;
    entry.payload = message.payload;  // copy: the log owns its bytes
    charge = log_.record(std::move(entry));
  }

  inboxes_[dst].push_back(std::move(message));
  ++total_sent_;
  return charge;
}

std::optional<MpiFabric::Message> MpiFabric::try_recv(int dst, SimTime now) {
  auto it = inboxes_.find(dst);
  if (it == inboxes_.end()) return std::nullopt;
  while (!it->second.empty()) {
    if (it->second.front().visible_at > now) return std::nullopt;  // still in flight
    Message message = std::move(it->second.front());
    it->second.pop_front();
    std::uint64_t& frontier = delivered_seq_[{message.src, dst}];
    if (message.seq <= frontier) {
      // Re-send from a restarted sender's re-execution (or replay overlap):
      // already delivered, drop and keep looking.
      ++duplicates_dropped_;
      continue;
    }
    if (message.seq != frontier + 1) {
      // A skipped sequence means a message was lost — impossible by
      // construction; surfaced loudly, never silently.
      ++sequence_violations_;
    }
    frontier = message.seq;
    ++total_delivered_;
    return message;
  }
  return std::nullopt;
}

ChannelCut MpiFabric::channel_cut(int rank) const {
  ChannelCut cut;
  for (const auto& [key, seq] : next_seq_) {
    if (key.first == rank && seq > 0) cut.sent[key.second] = seq;
  }
  for (const auto& [key, seq] : delivered_seq_) {
    if (key.second == rank && seq > 0) cut.delivered[key.first] = seq;
  }
  return cut;
}

std::map<std::pair<int, int>, std::uint64_t> MpiFabric::current_sent() const {
  return next_seq_;
}

void MpiFabric::rewind_for_restart(int rank, const ChannelCut& cut) {
  inboxes_[rank].clear();
  for (auto& [key, seq] : next_seq_) {
    if (key.first != rank) continue;
    auto sent = cut.sent.find(key.second);
    seq = sent == cut.sent.end() ? 0 : sent->second;
  }
  for (auto& [key, seq] : delivered_seq_) {
    if (key.second != rank) continue;
    auto delivered = cut.delivered.find(key.first);
    seq = delivered == cut.delivered.end() ? 0 : delivered->second;
  }
}

MpiFabric::ReplayStats MpiFabric::replay_into(int rank, const ChannelCut& cut,
                                              SimTime now) {
  ReplayStats stats;
  for (int src = 0; src < nranks_; ++src) {
    if (src == rank) continue;
    auto delivered = cut.delivered.find(src);
    const std::uint64_t after = delivered == cut.delivered.end() ? 0 : delivered->second;
    for (const LoggedMessage* logged : log_.suffix(src, rank, after)) {
      if (logged->payload.empty()) continue;  // metadata-only: nothing to replay
      Message message;
      message.src = logged->src;
      message.dst = rank;
      message.seq = logged->seq;
      message.tag = logged->tag;
      message.payload = logged->payload;
      message.visible_at = now + options_.latency;
      inboxes_[rank].push_back(std::move(message));
      ++stats.messages;
      stats.bytes += logged->payload.size();
    }
  }
  return stats;
}

std::uint64_t MpiFabric::in_flight() const {
  std::uint64_t count = 0;
  for (const auto& [dst, inbox] : inboxes_) count += inbox.size();
  return count;
}

// ---------------------------------------------------------------------------
// MpiRankGuest
// ---------------------------------------------------------------------------

std::vector<std::byte> MpiRankGuest::Config::encode() const {
  util::Serializer s;
  s.put(fabric_id);
  s.put<std::int32_t>(rank);
  s.put<std::int32_t>(nranks);
  s.put(array_bytes);
  s.put(halo_bytes);
  s.put(compute_ns);
  return std::move(s).take();
}

MpiRankGuest::Config MpiRankGuest::Config::decode(const std::vector<std::byte>& blob) {
  Config config;
  if (blob.empty()) return config;
  util::Deserializer d(blob);
  config.fabric_id = d.get<std::uint64_t>();
  config.rank = d.get<std::int32_t>();
  config.nranks = d.get<std::int32_t>();
  config.array_bytes = d.get<std::uint64_t>();
  config.halo_bytes = d.get<std::uint64_t>();
  config.compute_ns = d.get<SimTime>();
  return config;
}

void MpiRankGuest::on_start(sim::UserApi& api) {
  const sim::VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += 8) {
    api.store_u64(base + off, static_cast<std::uint64_t>(config_.rank) * 1000003ULL + off);
  }
}

sim::GuestStatus MpiRankGuest::on_step(sim::UserApi& api) {
  MpiFabric& fabric = MpiFabric::get(config_.fabric_id);
  const sim::VAddr base = api.process().heap_base;
  const std::uint64_t iter = api.load_u64(kIterAddr);

  // Drain whatever has arrived; received halos are folded into the local
  // array and the order-sensitive digest, so they become part of the
  // checkpointable (and replay-verifiable) state.
  while (auto message = fabric.try_recv(config_.rank, api.now())) {
    std::uint64_t received = api.load_u64(kRecvCountAddr);
    std::uint64_t bytes = api.load_u64(kRecvBytesAddr);
    std::uint64_t digest = api.load_u64(kRecvDigestAddr);
    api.store_u64(kRecvCountAddr, received + 1);
    api.store_u64(kRecvBytesAddr, bytes + message->payload.size());
    digest = digest * 1000003ULL + fold_payload(message->payload) +
             message->tag * 31ULL + static_cast<std::uint64_t>(message->src);
    api.store_u64(kRecvDigestAddr, digest);
    const std::uint64_t slot =
        (message->tag % (config_.array_bytes / sim::kPageSize)) * sim::kPageSize;
    const std::size_t n = std::min<std::size_t>(message->payload.size(), 256);
    api.store(base + slot, std::span(message->payload.data(), n));
  }

  if (fabric.quiescing()) {
    // Quiesced for a coordinated checkpoint: no sends, no local progress.
    api.compute(5 * kMicrosecond);
    return sim::GuestStatus::kRunning;
  }

  // Local compute sweep: touch a window of the array.
  const std::uint64_t window = std::min<std::uint64_t>(config_.array_bytes, 16 * 1024);
  const std::uint64_t start = (iter * window) % config_.array_bytes;
  for (std::uint64_t off = 0; off < window && start + off + 8 <= config_.array_bytes;
       off += 512) {
    const std::uint64_t v = api.load_u64(base + start + off);
    api.store_u64(base + start + off, v * 2654435761ULL + iter);
  }
  api.compute(config_.compute_ns);

  // Halo exchange with ring neighbours.  With sender logging on, each send
  // returns the pessimistic log-append charge, paid here — the rank does
  // not progress past a send whose log entry is not durable-in-memory.
  std::vector<std::byte> halo(config_.halo_bytes);
  for (std::size_t i = 0; i < halo.size(); ++i) {
    halo[i] = static_cast<std::byte>((iter + i + static_cast<std::uint64_t>(config_.rank)) &
                                     0xFF);
  }
  const int right = (config_.rank + 1) % config_.nranks;
  const int left = (config_.rank + config_.nranks - 1) % config_.nranks;
  SimTime log_charge = 0;
  log_charge += fabric.send(config_.rank, right, iter, halo, api.now());
  log_charge += fabric.send(config_.rank, left, iter, std::move(halo), api.now());
  if (log_charge > 0) api.compute(log_charge);

  api.store_u64(kIterAddr, iter + 1);
  api.work_done();
  return sim::GuestStatus::kRunning;
}

void MpiRankGuest::register_type() {
  auto& registry = sim::GuestRegistry::instance();
  if (registry.has_type(kTypeName)) return;
  registry.register_type(kTypeName, [](const std::vector<std::byte>& blob) {
    return std::make_unique<MpiRankGuest>(Config::decode(blob));
  });
}

std::uint64_t MpiRankGuest::read_iteration(sim::Process& proc) {
  return read_guest_u64(proc, kIterAddr);
}

std::uint64_t MpiRankGuest::read_recv_digest(sim::Process& proc) {
  return read_guest_u64(proc, kRecvDigestAddr);
}

// ---------------------------------------------------------------------------
// MpiJob
// ---------------------------------------------------------------------------

MpiJob::MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config)
    : cluster_(cluster), nranks_(nranks), base_config_(base_config) {
  MpiRankGuest::register_type();
  fabric_id_ = MpiFabric::create(nranks, cluster.node(0).kernel().costs().net_latency_ns);
  placements_.resize(static_cast<std::size_t>(nranks));
}

MpiJob::MpiJob(Cluster& cluster, int nranks, MpiRankGuest::Config base_config,
               const MpiFabric::FabricOptions& fabric)
    : cluster_(cluster), nranks_(nranks), base_config_(base_config) {
  MpiRankGuest::register_type();
  fabric_id_ = MpiFabric::create(nranks, fabric);
  placements_.resize(static_cast<std::size_t>(nranks));
}

MpiJob::~MpiJob() { MpiFabric::destroy(fabric_id_); }

void MpiJob::launch() {
  const std::vector<int> up = cluster_.up_nodes();
  for (int r = 0; r < nranks_; ++r) {
    const int node_id = up[static_cast<std::size_t>(r) % up.size()];
    MpiRankGuest::Config config = base_config_;
    config.fabric_id = fabric_id_;
    config.rank = r;
    config.nranks = nranks_;
    sim::SpawnOptions options = sim::spawn_options_for_array(config.array_bytes);
    const sim::Pid pid = cluster_.node(node_id).kernel().spawn(MpiRankGuest::kTypeName,
                                                               config.encode(), options);
    placements_[static_cast<std::size_t>(r)] = Placement{node_id, pid};
  }
}

MpiJob::CoordinatedResult MpiJob::coordinated_checkpoint(
    const std::vector<core::CheckpointEngine*>& engines_by_node) {
  CoordinatedResult result;
  MpiFabric& net = fabric();
  if (net.quiescing()) {
    // Re-entry would hang the drain: the already-running drain holds the
    // quiesce flag, and clearing it on our error path would break it.
    result.error = "coordinated checkpoint already in progress";
    return result;
  }
  const SimTime started = cluster_.now();
  const std::uint64_t in_flight_before = net.in_flight();

  // Phase 1: quiesce senders; ranks keep draining their inboxes.
  net.set_quiescing(true);
  const SimTime drain_deadline = cluster_.now() + 60 * kSecond;
  while (net.in_flight() > 0 && cluster_.now() < drain_deadline) {
    cluster_.run_until(cluster_.now() + 100 * kMicrosecond, 100 * kMicrosecond);
  }
  if (net.in_flight() > 0) {
    net.set_quiescing(false);
    result.error = "drain did not complete";
    return result;
  }
  result.drain_time = cluster_.now() - started;
  result.messages_drained = in_flight_before;

  // Phase 2: per-rank checkpoints through each node's engine.  Requests are
  // serialized by mpirun, so per-rank latencies accumulate.
  SimTime checkpoint_time = 0;
  for (const Placement& placement : placements_) {
    Node& node = cluster_.node(placement.node);
    if (!node.up()) {
      net.set_quiescing(false);
      result.error = "rank's node is down";
      return result;
    }
    core::CheckpointEngine* engine = engines_by_node.at(static_cast<std::size_t>(
        placement.node));
    engine->attach(node.kernel(), placement.pid);
    const core::CheckpointResult ckpt =
        engine->request_checkpoint(node.kernel(), placement.pid);
    if (!ckpt.ok) {
      net.set_quiescing(false);
      result.error = "rank checkpoint failed: " + ckpt.error;
      return result;
    }
    result.payload_bytes += ckpt.payload_bytes;
    checkpoint_time += ckpt.total_latency();
  }

  // Phase 3: resume communication.
  net.set_quiescing(false);
  result.ok = true;
  result.total_time = result.drain_time + checkpoint_time;
  return result;
}

bool MpiJob::restart_ranks_of_failed_node(
    const std::vector<core::CheckpointEngine*>& engines_by_node, int failed_node,
    int target_node) {
  Node& target = cluster_.node(target_node);
  if (!target.up()) return false;
  core::CheckpointEngine* engine =
      engines_by_node.at(static_cast<std::size_t>(failed_node));
  for (Placement& placement : placements_) {
    if (placement.node != failed_node) continue;
    const core::RestartResult restarted = engine->restart_on(target.kernel(), placement.pid);
    if (!restarted.ok) return false;
    placement.node = target_node;
    placement.pid = restarted.pid;
  }
  return true;
}

void MpiJob::rehome_rank(int rank, int node, sim::Pid pid) {
  placements_.at(static_cast<std::size_t>(rank)) = Placement{node, pid};
}

sim::Pid MpiJob::respawn_rank(int rank, int node) {
  MpiRankGuest::Config config = base_config_;
  config.fabric_id = fabric_id_;
  config.rank = rank;
  config.nranks = nranks_;
  sim::SpawnOptions options = sim::spawn_options_for_array(config.array_bytes);
  const sim::Pid pid = cluster_.node(node).kernel().spawn(MpiRankGuest::kTypeName,
                                                          config.encode(), options);
  rehome_rank(rank, node, pid);
  return pid;
}

std::uint64_t MpiJob::min_iteration(Cluster& cluster) const {
  std::uint64_t minimum = UINT64_MAX;
  for (const Placement& placement : placements_) {
    Node& node = cluster.node(placement.node);
    if (!node.up()) return 0;
    sim::Process* proc = node.kernel().find_process(placement.pid);
    if (proc == nullptr || !proc->alive()) return 0;
    minimum = std::min(minimum, MpiRankGuest::read_iteration(*proc));
  }
  return minimum == UINT64_MAX ? 0 : minimum;
}

}  // namespace ckpt::cluster
