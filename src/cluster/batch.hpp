// LSF-style batch manager: the survey's user-initiated flexibility layer.
//
// The common 2004 practice: checkpoint mechanisms offer only user
// initiation, and flexibility comes from a batch system above the OS that
// triggers them.  The model captures the two structural weaknesses the
// survey names: every operation is a serialized RPC round-trip through one
// head node (scalability), and if the head node is down no checkpoint
// happens anywhere (centralized fault tolerance).  Claim C11 compares this
// against per-node autonomic managers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/engine.hpp"

namespace ckpt::cluster {

class BatchManager {
 public:
  struct JobProc {
    int node = -1;
    sim::Pid pid = sim::kNoPid;
  };
  struct Job {
    std::string name;
    std::vector<JobProc> procs;
  };

  BatchManager(Cluster& cluster, int head_node, std::vector<core::CheckpointEngine*>
                                                     engines_by_node);

  std::size_t submit(Job job);

  struct SweepResult {
    bool ok = false;
    std::string error;
    std::uint64_t checkpointed = 0;
    std::uint64_t failed = 0;
    SimTime duration = 0;
    SimTime rpc_overhead = 0;
  };

  /// Checkpoint every process of every job: one serialized RPC round trip
  /// from the head node per process, then the engine call on the target
  /// node.  Refuses entirely when the head node is down.
  SweepResult checkpoint_all();

  /// Arm a periodic sweep as a cluster event; re-arms until stop_periodic().
  void start_periodic(SimTime interval);
  void stop_periodic();

  [[nodiscard]] bool head_alive() const;
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

 private:
  void arm_next();

  Cluster& cluster_;
  int head_node_;
  std::vector<core::CheckpointEngine*> engines_;
  std::vector<Job> jobs_;
  std::uint64_t sweeps_ = 0;
  bool periodic_ = false;
  SimTime interval_ = 0;
};

}  // namespace ckpt::cluster
