#include "cluster/recovery.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/capture.hpp"
#include "core/engine.hpp"
#include "obs/observer.hpp"
#include "storage/journal.hpp"
#include "util/table.hpp"

namespace ckpt::cluster {

const char* to_string(RecoveryStep step) {
  switch (step) {
    case RecoveryStep::kLocalNewest: return "local-newest";
    case RecoveryStep::kRemoteNewest: return "remote-newest";
    case RecoveryStep::kOlderSurviving: return "older-surviving";
    case RecoveryStep::kColdStart: return "cold-start";
  }
  return "?";
}

std::string RecoveryReport::summary() const {
  std::ostringstream out;
  out << "job " << job << ": node " << failed_node << " failed at "
      << util::format_time_ns(failed_at) << "; ";
  if (!recovered) {
    out << "NOT RECOVERED";
  } else if (cold_started) {
    out << "cold-started on node " << target_node;
  } else {
    out << "restored seq " << restored_sequence << " on node " << target_node << " as pid "
        << restored_pid;
  }
  out << "; work lost " << util::format_time_ns(work_lost) << "; ladder:";
  for (const RecoveryAttempt& attempt : attempts) {
    out << " " << to_string(attempt.step) << (attempt.ok ? "=ok" : "=fail");
  }
  if (data_loss_with_intact_replica) out << " [DATA LOSS WITH INTACT REPLICA]";
  return out.str();
}

RecoveryManager::RecoveryManager(Cluster& cluster, RecoveryManagerOptions options)
    : cluster_(cluster), options_(std::move(options)) {}

RecoveryManager::Job& RecoveryManager::job_ref(JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::invalid_argument("RecoveryManager: unknown job " + std::to_string(job));
  }
  return it->second;
}

const RecoveryManager::Job* RecoveryManager::find_job(JobId job) const {
  auto it = jobs_.find(job);
  return it == jobs_.end() ? nullptr : &it->second;
}

RecoveryManager::JobId RecoveryManager::launch(int home, const std::string& guest_type,
                                               std::vector<std::byte> config,
                                               const sim::SpawnOptions& spawn) {
  Node& node = cluster_.node(home);
  if (!node.up()) {
    throw std::invalid_argument("RecoveryManager: launch on failed node " +
                                std::to_string(home));
  }
  Job job;
  job.home = home;
  job.guest_type = guest_type;
  job.config = config;
  job.spawn = spawn;
  job.pid = node.kernel().spawn(guest_type, std::move(config), spawn);
  job.owned_store = std::make_unique<storage::ReplicatedStore>(
      std::vector<storage::BlobStoreBackend*>{&node.disk(), &cluster_.remote_storage()},
      options_.store);
  job.store = job.owned_store.get();
  job.chain = std::make_unique<storage::CheckpointChain>(job.store);

  const JobId id = next_job_++;
  jobs_.emplace(id, std::move(job));
  return id;
}

RecoveryManager::JobId RecoveryManager::adopt(int home, const std::string& guest_type,
                                              std::vector<std::byte> config,
                                              const sim::SpawnOptions& spawn,
                                              const ExternalStoreBinding& binding) {
  if (binding.store == nullptr) {
    throw std::invalid_argument("RecoveryManager: adopt() needs a shared store");
  }
  Node& node = cluster_.node(home);
  if (!node.up()) {
    throw std::invalid_argument("RecoveryManager: adopt on failed node " +
                                std::to_string(home));
  }
  Job job;
  job.home = home;
  job.guest_type = guest_type;
  job.config = config;
  job.spawn = spawn;
  job.pid = node.kernel().spawn(guest_type, std::move(config), spawn);
  job.store = binding.store;
  job.journal = binding.journal;
  job.external = true;
  // The chain writes through the journal when one fronts the store, so
  // every commit is an append (group-commit eligible) and the migrator
  // publishes into the shared store off the critical path.
  storage::StorageBackend* chain_backend =
      binding.journal != nullptr ? static_cast<storage::StorageBackend*>(binding.journal)
                                 : binding.store;
  job.chain = std::make_unique<storage::CheckpointChain>(chain_backend);

  const JobId id = next_job_++;
  jobs_.emplace(id, std::move(job));
  return id;
}

bool RecoveryManager::external_intact_committed(const Job& job) const {
  if (job.chain == nullptr) return false;
  for (const storage::CheckpointChain::Entry& entry : job.chain->entries()) {
    if (job.journal == nullptr) {
      if (job.store->intact_replicas(entry.id) > 0) return true;
      continue;
    }
    if (const auto home_id = job.journal->home_id_of(entry.id)) {
      if (job.store->intact_replicas(*home_id) > 0) return true;
    } else if (job.journal->load(entry.id, storage::ChargeFn{}).has_value()) {
      // Still log-resident: the CRC-validated decode is the intactness
      // audit, exactly like a replica read-back.
      return true;
    }
  }
  return false;
}

bool RecoveryManager::checkpoint(JobId job_id) {
  Job& job = job_ref(job_id);
  if (job.home < 0 || !cluster_.node(job.home).up()) return false;
  sim::SimKernel& kernel = cluster_.node(job.home).kernel();
  sim::Process* proc = kernel.find_process(job.pid);
  if (proc == nullptr || !proc->alive()) return false;

  obs::SpanGuard span(obs::tracer(options_.store.observer), "checkpoint", "ckpt",
                      obs::kControlTrack,
                      {obs::TraceArg::num("job", job_id),
                       obs::TraceArg::num("pid", static_cast<std::uint64_t>(job.pid))});
  storage::CheckpointImage image = core::capture_kernel_level(kernel, *proc, {});
  image.pid = job.pid;
  image.process_name = proc->name;
  image.guest = proc->guest_image;
  image.kind = storage::ImageKind::kFull;

  auto charge = [&kernel](SimTime t) { kernel.charge_time(t); };
  if (job.chain->append(std::move(image), charge) == storage::kBadImageId) {
    span.end({obs::TraceArg::str("outcome", "store-failed")});
    return false;
  }
  ++job.checkpoints;
  span.end({obs::TraceArg::str("outcome", "ok")});
  return true;
}

RecoveryReport RecoveryManager::recover(JobId job_id, int preferred_target) {
  Job& job = job_ref(job_id);
  RecoveryReport report;
  report.job = job_id;
  report.failed_node = job.home;
  report.failed_at = cluster_.now();

  obs::Observer* observer = options_.store.observer;
  obs::TraceRecorder* trace = obs::tracer(observer);
  obs::SpanGuard span(trace, "recovery", "recovery", obs::kControlTrack,
                      {obs::TraceArg::num("job", job_id),
                       obs::TraceArg::num("failed_node",
                                          static_cast<std::uint64_t>(
                                              report.failed_node < 0 ? 0 : report.failed_node))});
  if (observer != nullptr) observer->metrics().add("recovery.attempts");

  // A rung can only run if there is a surviving node to restart on; without
  // one this is a capacity outage, not a storage verdict.
  const std::vector<int> up = cluster_.up_nodes();
  if (up.empty()) {
    report.attempts.push_back({RecoveryStep::kColdStart, false, "no surviving node"});
    span.end({obs::TraceArg::str("outcome", "no-surviving-node")});
    if (observer != nullptr) observer->metrics().add("recovery.failed");
    reports_.push_back(report);
    return reports_.back();
  }
  report.target_node =
      preferred_target >= 0 && cluster_.node(preferred_target).up() ? preferred_target
                                                                    : up.front();
  sim::SimKernel& target = cluster_.node(report.target_node).kernel();
  auto charge = [&target](SimTime t) { target.charge_time(t); };

  // --- The degradation ladder -----------------------------------------------
  std::optional<storage::CheckpointImage> image;
  const storage::ImageId newest = job.chain->newest_image_id();

  // Rungs 1-2 probe the newest image per replica.  When a journal fronts
  // the store the chain's ids are *journal* ids: a migrated image maps to
  // its home-store id (then the replicas are probed as usual), while a
  // still-log-resident image exists only in the log — probe it once, on the
  // local rung, via the journal's CRC-validated decode.
  auto load_newest_from = [&](std::size_t replica) -> std::optional<storage::CheckpointImage> {
    if (newest == storage::kBadImageId) return std::nullopt;
    if (job.journal == nullptr) return job.store->load_from(replica, newest, charge);
    if (const auto home_id = job.journal->home_id_of(newest)) {
      return job.store->load_from(replica, *home_id, charge);
    }
    if (replica != kLocalReplica) return std::nullopt;  // log has no second copy
    return job.journal->load(newest, charge);
  };

  auto rung = [&](RecoveryStep step, auto&& attempt) {
    if (image.has_value()) return;
    RecoveryAttempt record;
    record.step = step;
    obs::SpanGuard rung_span(trace, std::string("rung:") + to_string(step), "recovery",
                             obs::kControlTrack);
    image = attempt();
    record.ok = image.has_value();
    if (!record.ok) {
      record.detail = newest == storage::kBadImageId ? "no committed image" : "unreadable";
    } else {
      record.detail = "seq " + std::to_string(image->sequence);
    }
    rung_span.end({obs::TraceArg::str("outcome", record.ok ? "ok" : "fail"),
                   obs::TraceArg::str("detail", record.detail)});
    report.attempts.push_back(std::move(record));
  };

  rung(RecoveryStep::kLocalNewest, [&] { return load_newest_from(kLocalReplica); });
  rung(RecoveryStep::kRemoteNewest, [&] { return load_newest_from(kRemoteReplica); });
  rung(RecoveryStep::kOlderSurviving,
       [&] { return job.chain->reconstruct_newest_surviving(charge); });

  if (image.has_value()) {
    const core::RestartResult rr = core::restart_from_image(target, *image);
    if (rr.ok) {
      report.recovered = true;
      report.from_image = true;
      report.restored_pid = rr.pid;
      report.restored_sequence = image->sequence;
      report.work_lost =
          report.failed_at > image->taken_at ? report.failed_at - image->taken_at : 0;
      job.pid = rr.pid;
    } else {
      report.attempts.push_back({RecoveryStep::kOlderSurviving, false, rr.error});
    }
  }

  if (!report.recovered && options_.allow_cold_start) {
    RecoveryAttempt record;
    record.step = RecoveryStep::kColdStart;
    obs::SpanGuard cold_span(trace, "rung:cold-start", "recovery", obs::kControlTrack);
    job.pid = target.spawn(job.guest_type, job.config, job.spawn);
    record.ok = true;
    record.detail = "fresh pid " + std::to_string(job.pid);
    cold_span.end({obs::TraceArg::str("outcome", "ok"),
                   obs::TraceArg::num("pid", static_cast<std::uint64_t>(job.pid))});
    report.attempts.push_back(std::move(record));
    report.recovered = true;
    report.cold_started = true;
    report.restored_pid = job.pid;
    report.work_lost = report.failed_at;
  }

  // The gate: cold-starting (or failing outright) while a committed image
  // still has an intact replica means the ladder lost recoverable state.
  // External jobs share their store with other jobs, so the audit is scoped
  // to this job's own chain instead of the store-wide predicate.
  const bool intact_exists =
      job.external ? external_intact_committed(job) : job.store->any_intact_committed();
  if (!report.from_image && intact_exists) {
    report.data_loss_with_intact_replica = true;
  }

  if (report.recovered) {
    job.home = report.target_node;
    if (!job.external) {
      // Future checkpoints must land on the *new* home's disk; scrubbing
      // then re-replicates the committed history onto it (self-healing).
      // External jobs leave placement to the fleet: their store is shared
      // shard-wide and is retargeted once, when the shard's storage-home
      // node is replaced.
      job.store->retarget_replica(kLocalReplica, &cluster_.node(job.home).disk());
      if (options_.scrub_after_recovery) job.store->scrub(charge);
    }
  }

  span.end({obs::TraceArg::str("outcome", !report.recovered         ? "failed"
                                          : report.cold_started     ? "cold-start"
                                                                    : "restored"),
            obs::TraceArg::num("work_lost_ns", report.work_lost),
            obs::TraceArg::num("rungs_tried", report.attempts.size())});
  if (observer != nullptr) {
    obs::MetricsRegistry& metrics = observer->metrics();
    if (!report.recovered) {
      metrics.add("recovery.failed");
    } else {
      metrics.add(report.cold_started ? "recovery.cold_starts" : "recovery.from_image");
      metrics.observe("recovery.work_lost_ns", report.work_lost,
                      obs::MetricsRegistry::latency_bounds());
    }
    if (report.data_loss_with_intact_replica) metrics.add("recovery.data_loss_gate_hits");
  }

  reports_.push_back(std::move(report));
  return reports_.back();
}

void RecoveryManager::watch() {
  cluster_.on_failure([this](Cluster&, int node_id) {
    for (auto& [id, job] : jobs_) {
      if (job.home == node_id) recover(id);
    }
  });
}

sim::Pid RecoveryManager::pid_of(JobId job) const {
  const Job* j = find_job(job);
  return j == nullptr ? sim::kNoPid : j->pid;
}

int RecoveryManager::home_of(JobId job) const {
  const Job* j = find_job(job);
  return j == nullptr ? -1 : j->home;
}

std::uint64_t RecoveryManager::checkpoints_taken(JobId job) const {
  const Job* j = find_job(job);
  return j == nullptr ? 0 : j->checkpoints;
}

storage::ReplicatedStore& RecoveryManager::store(JobId job) { return *job_ref(job).store; }

storage::CheckpointChain& RecoveryManager::chain(JobId job) { return *job_ref(job).chain; }

}  // namespace ckpt::cluster
