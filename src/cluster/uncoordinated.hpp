// Uncoordinated per-rank checkpointing with sender-based message logging.
//
// The counterpoint to MpiJob::coordinated_checkpoint: no global quiesce, no
// drain.  Each rank checkpoints on its OWN cadence (a per-rank
// core::IntervalEstimator, seed-staggered so commits spread over the
// interval instead of thundering together), stopping only itself for the
// capture.  Consistency across ranks is recovered, not enforced: the fabric
// logs every message at the sender (cluster/msglog), and on failure a
// RollbackResolver computes the recovery line — in the common case the
// newest image of ONLY the failed rank, with the logged message suffix
// replayed into it (CRAFT's restart-only-the-failed-participant mode, which
// the fleet layer's NodeReplacer serves with a spare node).
//
// Domino cascades (possible when sender logs are lost with their rank, or
// when logging is metadata-only) are detected and bounded: the resolver
// reports consecutive-rollback depth, the manager publishes it through
// obs metrics and refuses to execute an *unbounded* line — never silent.
// DESIGN.md §14 derives the protocol; bench_mpi measures it against the
// coordinated drain.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/mpi.hpp"
#include "cluster/msglog.hpp"
#include "core/autonomic.hpp"
#include "obs/observer.hpp"
#include "storage/journal.hpp"

namespace ckpt::cluster {

struct UncoordinatedOptions {
  /// Per-rank interval policy (each rank gets its own IntervalEstimator).
  core::AutonomicPolicy policy;
  /// Cluster stepping granularity inside run_until.
  SimTime epoch = 10 * kMillisecond;
  /// Spread first checkpoints uniformly over one interval (rank r due at
  /// interval*(r+1)/nranks) instead of all ranks committing together.
  bool stagger = true;
  /// Trim sender-log entries a receiver's newest checkpoint made
  /// unnecessary (bounds log growth to roughly one interval of traffic).
  bool trim_logs = true;
  /// When set, each rank's sender log is persisted here (flight-record
  /// path, newest-per-key) at every checkpoint — surviving the rank's
  /// death and keeping even concurrent-node failures at rollback depth 1.
  storage::LogStructuredBackend* log_journal = nullptr;
  /// Flight-record key for rank r is journal_key_base + r; keep bases
  /// disjoint from other flight-record users of the same journal.
  std::uint64_t journal_key_base = 0x4D4C4F47'00000000ULL;  // "MLOG"
  /// Spans + metrics sink (null = silent, zero overhead).
  obs::Observer* observer = nullptr;
};

/// Drives one MpiJob's uncoordinated checkpoint/restart lifecycle.
///
/// Pre (ctor): `engines_by_node[n]` is the engine for node n, storing to
/// storage that survives node n's death (the remote/replicated store);
/// job.launch() already ran; the fabric was created with sender_logging on
/// (without it, recover_failed_node degenerates to pure rollback and will
/// report the resulting domino depth).
class UncoordinatedMpi {
 public:
  UncoordinatedMpi(Cluster& cluster, MpiJob& job,
                   std::vector<core::CheckpointEngine*> engines_by_node,
                   UncoordinatedOptions options = {});

  /// Step the cluster to `deadline`, checkpointing each rank as its own
  /// interval elapses.  No global synchronization: one rank's commit stops
  /// only that rank.  Post: stats().commits grew by the number of due
  /// checkpoints; failures inside a rank checkpoint are counted
  /// (stats().failed_commits) and retried next interval, never fatal.
  void run_until(SimTime deadline);

  /// Checkpoint one rank now: stop it, sample its channel cut, capture its
  /// image through its node's engine, optionally persist its sender log,
  /// resume it.  Other ranks keep running throughout.
  ///
  /// Pre: the rank's node is up and its process alive (else returns false).
  /// Post (true): cuts()[rank] gained one entry whose image/channel
  /// frontier are mutually consistent (sampled while the rank was frozen).
  bool checkpoint_rank(int rank);

  struct RecoverResult {
    bool ok = false;
    std::string error;
    RecoveryLine line;
    std::uint64_t replayed_messages = 0;
    std::uint64_t replayed_bytes = 0;
    std::uint64_t journal_restored_logs = 0;
    SimTime recovery_time = 0;
  };

  /// Recover from `failed_node`'s death: restore what sender logs survive
  /// (journal or live peers), resolve the recovery line, roll back exactly
  /// the ranks on it (dead ranks restart on `target_node`; cascade victims
  /// are killed and restarted in place), rewind their fabric state, and
  /// replay logged suffixes.  Every rank on ANY down node joins the line —
  /// a concurrent second node failure is recovered in the same call
  /// (`failed_node` names the triggering failure for reporting).
  ///
  /// Pre: failed_node is down, target_node is up.  Failure modes, all
  /// reported via RecoverResult.error and obs, never silent: an UNBOUNDED
  /// domino line (some rank would roll past its first checkpoint while
  /// holding checkpoints — refused, job must cold-start), a missing/corrupt
  /// image on the line, or a dead target.  Post (ok): every rank on the
  /// line runs again with placements rebound, rolled-back cut history
  /// truncated, and line.depth/width published (mpi.rollback_depth).
  RecoverResult recover_failed_node(int failed_node, int target_node);

  /// Side-effect-free what-if: the recovery line that WOULD be used if
  /// `failed_ranks` died and `dead_logs`' sender logs were unavailable.
  /// bench_mpi uses this to measure domino depth without executing it.
  [[nodiscard]] RecoveryLine plan_recovery(const std::vector<int>& failed_ranks,
                                           const std::set<int>& dead_logs) const;

  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t failed_commits = 0;
    SimTime commit_latency_total = 0;
    SimTime commit_latency_max = 0;
    std::uint64_t log_bytes_peak = 0;
    std::uint64_t messages_trimmed = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t replayed_messages = 0;
    std::uint64_t ranks_rolled_back = 0;
    std::uint32_t max_rollback_depth = 0;

    [[nodiscard]] SimTime mean_commit_latency() const {
      return commits == 0 ? 0 : commit_latency_total / static_cast<SimTime>(commits);
    }
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::map<int, std::vector<CheckpointCut>>& cuts() const {
    return cuts_;
  }

 private:
  [[nodiscard]] MpiFabric& fabric() const { return job_.fabric(); }
  void persist_sender_log(int rank, sim::SimKernel& kernel);

  Cluster& cluster_;
  MpiJob& job_;
  std::vector<core::CheckpointEngine*> engines_;
  UncoordinatedOptions options_;
  std::vector<core::IntervalEstimator> estimators_;  ///< one per rank
  std::vector<SimTime> next_due_;                    ///< per rank
  std::map<int, std::vector<CheckpointCut>> cuts_;   ///< oldest first
  Stats stats_;
};

}  // namespace ckpt::cluster
