#include "cluster/node.hpp"

#include <algorithm>

namespace ckpt::cluster {

Node::Node(int id, const NodeConfig& config)
    : id_(id), hostname_("node" + std::to_string(id)), config_(config) {
  kernel_ = std::make_unique<sim::SimKernel>(config.ncpus, config.costs,
                                             config.seed + static_cast<std::uint64_t>(id));
  kernel_->hostname = hostname_;
  disk_ = std::make_unique<storage::LocalDiskBackend>(config.costs);
}

void Node::fail() {
  up_ = false;
  disk_->fail_node();
  // Fail-stop: the kernel and everything on it is gone.  We drop the
  // kernel object entirely; a repaired node boots a fresh one.
  kernel_.reset();
}

void Node::repair(SimTime now) {
  up_ = true;
  kernel_ = std::make_unique<sim::SimKernel>(
      config_.ncpus, config_.costs,
      config_.seed + static_cast<std::uint64_t>(id_) + 0x1000);
  kernel_->hostname = hostname_;
  kernel_->idle_until(now);
  disk_->recover_node();
}

Cluster::Cluster(int node_count, const NodeConfig& config) {
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, config));
  }
  remote_ = std::make_unique<storage::RemoteBackend>(config.costs);
}

std::vector<int> Cluster::up_nodes() const {
  std::vector<int> out;
  for (const auto& node : nodes_) {
    if (node->up()) out.push_back(node->id());
  }
  return out;
}

void Cluster::add_event(SimTime when, std::function<void(Cluster&)> fn) {
  events_.push_back(Event{when, event_seq_++, std::move(fn)});
  std::sort(events_.begin(), events_.end());
}

void Cluster::on_failure(std::function<void(Cluster&, int)> fn) {
  failure_observers_.push_back(std::move(fn));
}

void Cluster::on_repair(std::function<void(Cluster&, int)> fn) {
  repair_observers_.push_back(std::move(fn));
}

void Cluster::fail_node(int id) {
  Node& target = node(id);
  if (!target.up()) return;
  target.fail();
  for (const auto& observer : failure_observers_) observer(*this, id);
}

void Cluster::repair_node(int id) {
  Node& target = node(id);
  if (target.up()) return;
  target.repair(now_);
  for (const auto& observer : repair_observers_) observer(*this, id);
}

void Cluster::advance(SimTime until) {
  // Fire cluster events due in (now_, until].  An event handler may add
  // further events at or before `until` (e.g. a repair scheduling the next
  // failure); the loop re-checks the sorted queue so they fire in order.
  while (!events_.empty() && events_.front().when <= until) {
    Event event = std::move(events_.front());
    events_.erase(events_.begin());
    now_ = std::max(now_, event.when);
    event.fn(*this);
  }
  now_ = std::max(now_, until);
}

void Cluster::run_until(SimTime deadline, SimTime epoch) {
  while (now_ < deadline) {
    const SimTime next = std::min(deadline, now_ + epoch);
    advance(next);
    for (auto& node : nodes_) {
      if (node->up()) node->kernel().run_until(next);
    }
  }
}

}  // namespace ckpt::cluster
