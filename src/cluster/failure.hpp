// Stochastic fail-stop failure injection.
//
// Per-node time-to-failure is drawn from an exponential (memoryless, the
// classic MTBF model) or Weibull distribution; failed nodes are repaired
// after a fixed repair time.  Every failure is announced to the cluster's
// observers — the fail-stop detectability assumption the survey adopts
// from [33].
//
// `repair_time = 0` means **never repaired**: the node stays down for good,
// no repair event is scheduled, and — because post-repair rescheduling only
// happens from the repair event — no further failure is ever armed for that
// node.  schedule() is then stable after arm(): exactly one entry per node
// whose first draw landed inside the horizon, and advancing the cluster
// never appends to it.  The fleet layer's spare-pool replacement
// (FleetManager / NodeReplacer) depends on this: permanently-dead nodes are
// what force replacement instead of waiting out a reboot.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/node.hpp"
#include "util/rng.hpp"

namespace ckpt::cluster {

struct FailureModel {
  enum class Kind : std::uint8_t { kExponential, kWeibull };
  Kind kind = Kind::kExponential;
  /// Mean time between failures per node.
  SimTime mtbf = 3600 * kSecond;
  /// Weibull shape (ignored for exponential); < 1 = infant mortality.
  double weibull_shape = 0.7;
  /// Time from failure to repair (0 = never repaired).
  SimTime repair_time = 300 * kSecond;
  std::uint64_t seed = 7;
};

/// One planned fail-stop event, recorded when it is armed.
struct ScheduledFailure {
  int node_id = 0;
  SimTime at = 0;

  friend bool operator==(const ScheduledFailure&, const ScheduledFailure&) = default;
};

class FailureInjector {
 public:
  FailureInjector(Cluster& cluster, FailureModel model);

  /// Schedule failures on every node up to `horizon` cluster time.
  void arm(SimTime horizon);

  [[nodiscard]] std::uint64_t failures_injected() const { return failures_; }

  /// Every failure armed so far (initial arm() plus post-repair
  /// rescheduling), in arming order.  Identical FailureModel::seed and
  /// cluster evolution ⇒ identical schedule — the determinism contract the
  /// torture tests pin down.
  [[nodiscard]] const std::vector<ScheduledFailure>& schedule() const { return schedule_; }

 private:
  SimTime sample_ttf();
  void schedule_failure(int node_id, SimTime when, SimTime horizon);

  Cluster& cluster_;
  FailureModel model_;
  util::Rng rng_;
  std::uint64_t failures_ = 0;
  std::vector<ScheduledFailure> schedule_;
};

}  // namespace ckpt::cluster
