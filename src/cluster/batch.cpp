#include "cluster/batch.hpp"

namespace ckpt::cluster {

BatchManager::BatchManager(Cluster& cluster, int head_node,
                           std::vector<core::CheckpointEngine*> engines_by_node)
    : cluster_(cluster), head_node_(head_node), engines_(std::move(engines_by_node)) {}

std::size_t BatchManager::submit(Job job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

bool BatchManager::head_alive() const {
  return const_cast<Cluster&>(cluster_).node(head_node_).up();
}

BatchManager::SweepResult BatchManager::checkpoint_all() {
  SweepResult result;
  if (!head_alive()) {
    // Centralized management: no head, no checkpoints anywhere.
    result.error = "batch manager head node is down";
    return result;
  }
  ++sweeps_;
  sim::SimKernel& head = cluster_.node(head_node_).kernel();
  // Durations are the serialized per-target latencies plus RPC overhead.

  for (const Job& job : jobs_) {
    for (const JobProc& proc : job.procs) {
      Node& node = cluster_.node(proc.node);
      if (!node.up()) {
        ++result.failed;
        continue;
      }
      // Serialized RPC round trip head -> node -> head.
      const SimTime rpc = 2 * head.costs().net_latency_ns;
      head.charge_time(rpc);
      result.rpc_overhead += rpc;

      core::CheckpointEngine* engine = engines_.at(static_cast<std::size_t>(proc.node));
      engine->attach(node.kernel(), proc.pid);
      const core::CheckpointResult ckpt = engine->request_checkpoint(node.kernel(), proc.pid);
      if (ckpt.ok) {
        ++result.checkpointed;
        // The head blocks on each RPC in turn: per-target checkpoint
        // latencies serialize.
        result.duration += ckpt.total_latency();
      } else {
        ++result.failed;
      }
    }
  }
  result.ok = result.failed == 0;

  result.duration += result.rpc_overhead;
  return result;
}

void BatchManager::start_periodic(SimTime interval) {
  periodic_ = true;
  interval_ = interval;
  arm_next();
}

void BatchManager::stop_periodic() { periodic_ = false; }

void BatchManager::arm_next() {
  cluster_.add_event(cluster_.now() + interval_, [this](Cluster&) {
    if (!periodic_) return;
    checkpoint_all();
    arm_next();
  });
}

}  // namespace ckpt::cluster
