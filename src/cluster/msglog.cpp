#include "cluster/msglog.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::cluster {
namespace {

template <typename Sink>
void encode_envelope(Sink& s, const LoggedMessage& m, std::uint64_t crc) {
  s.template put<std::int32_t>(m.src);
  s.template put<std::int32_t>(m.dst);
  s.put(m.seq);
  s.put(m.tag);
  s.put(m.sent_at);
  s.put_bytes(m.payload);
  s.put(crc);
}

LoggedMessage decode_envelope(util::Deserializer& d) {
  LoggedMessage m;
  m.src = d.get<std::int32_t>();
  m.dst = d.get<std::int32_t>();
  m.seq = d.get<std::uint64_t>();
  m.tag = d.get<std::uint64_t>();
  m.sent_at = d.get<SimTime>();
  m.payload = d.get_bytes();
  m.crc = d.get<std::uint64_t>();
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// LoggedMessage
// ---------------------------------------------------------------------------

std::uint64_t LoggedMessage::envelope_bytes() const {
  util::SizeCounter c;
  encode_envelope(c, *this, 0);
  return c.size();
}

std::uint64_t LoggedMessage::compute_crc() const {
  util::Serializer s;
  encode_envelope(s, *this, 0);
  return util::crc64(s.bytes());
}

// ---------------------------------------------------------------------------
// MessageLog
// ---------------------------------------------------------------------------

SimTime MessageLog::record(LoggedMessage message) {
  if (!options_.log_payloads) message.payload.clear();
  message.crc = message.compute_crc();
  const std::uint64_t bytes = message.envelope_bytes();
  channels_[{message.src, message.dst}].push_back(std::move(message));
  ++total_recorded_;
  // Pessimistic logging: the copy into the log plus the CRC pass happen
  // before the message leaves the sender.
  return options_.costs.mem_copy_cost(bytes) + options_.costs.hash_cost(bytes);
}

bool MessageLog::covers(int src, int dst, std::uint64_t from_seq, std::uint64_t to_seq,
                        const std::set<int>& dead_logs) const {
  if (from_seq > to_seq) return true;  // empty range
  if (dead_logs.contains(src)) return false;
  auto it = channels_.find({src, dst});
  if (it == channels_.end()) return false;
  // Entries are in ascending seq order; scan the needed window.
  std::uint64_t expect = from_seq;
  for (const LoggedMessage& m : it->second) {
    if (m.seq < expect) continue;
    if (m.seq > expect) return false;  // gap (trimmed or never logged)
    if (m.payload.empty() || m.crc != m.compute_crc()) return false;
    if (expect == to_seq) return true;
    ++expect;
  }
  return false;
}

std::vector<const LoggedMessage*> MessageLog::suffix(int src, int dst,
                                                     std::uint64_t after_seq) const {
  std::vector<const LoggedMessage*> out;
  auto it = channels_.find({src, dst});
  if (it == channels_.end()) return out;
  for (const LoggedMessage& m : it->second) {
    if (m.seq <= after_seq) continue;
    if (m.crc != m.compute_crc()) {
      ++crc_failures_;
      continue;
    }
    out.push_back(&m);
  }
  return out;
}

std::uint64_t MessageLog::trim_delivered(int dst,
                                         const std::map<int, std::uint64_t>& delivered_up_to) {
  std::uint64_t trimmed = 0;
  for (auto& [key, entries] : channels_) {
    if (key.second != dst) continue;
    auto found = delivered_up_to.find(key.first);
    if (found == delivered_up_to.end()) continue;
    const std::uint64_t up_to = found->second;
    while (!entries.empty() && entries.front().seq <= up_to) {
      entries.pop_front();
      ++trimmed;
    }
  }
  total_trimmed_ += trimmed;
  return trimmed;
}

std::uint64_t MessageLog::drop_sender(int src) {
  std::uint64_t dropped = 0;
  for (auto& [key, entries] : channels_) {
    if (key.first != src) continue;
    dropped += entries.size();
    entries.clear();
  }
  return dropped;
}

std::vector<std::byte> MessageLog::encode_sender(int src) const {
  util::Serializer s;
  std::uint64_t count = 0;
  for (const auto& [key, entries] : channels_) {
    if (key.first == src) count += entries.size();
  }
  s.put(count);
  for (const auto& [key, entries] : channels_) {
    if (key.first != src) continue;
    for (const LoggedMessage& m : entries) encode_envelope(s, m, m.crc);
  }
  return std::move(s).take();
}

std::uint64_t MessageLog::restore_sender(int src, const std::vector<std::byte>& blob) {
  util::Deserializer d(blob);
  const auto count = d.get<std::uint64_t>();
  std::map<std::pair<int, int>, std::deque<LoggedMessage>> restored;
  for (std::uint64_t i = 0; i < count; ++i) {
    LoggedMessage m = decode_envelope(d);
    if (m.src != src) throw util::SerializeError("message log blob owner mismatch");
    restored[{m.src, m.dst}].push_back(std::move(m));
  }
  drop_sender(src);
  for (auto& [key, entries] : restored) channels_[key] = std::move(entries);
  return count;
}

std::uint64_t MessageLog::message_count() const {
  std::uint64_t count = 0;
  for (const auto& [key, entries] : channels_) count += entries.size();
  return count;
}

std::uint64_t MessageLog::resident_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [key, entries] : channels_) {
    for (const LoggedMessage& m : entries) bytes += m.envelope_bytes();
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// RecoveryLine
// ---------------------------------------------------------------------------

std::string RecoveryLine::describe() const {
  std::ostringstream out;
  out << "recovery line: width=" << width << " depth=" << depth
      << " cascade_rounds=" << cascade_rounds << " missing=" << missing_messages
      << (bounded ? " (bounded)" : " (UNBOUNDED domino)");
  return out.str();
}

// ---------------------------------------------------------------------------
// RollbackResolver
// ---------------------------------------------------------------------------

const ChannelCut* RollbackResolver::cut_channels(int rank, int index) const {
  auto it = cuts_.find(rank);
  if (it == cuts_.end() || index < 0 ||
      index >= static_cast<int>(it->second.size())) {
    return nullptr;
  }
  return &it->second[static_cast<std::size_t>(index)].channels;
}

std::uint64_t RollbackResolver::sent_frontier(int src, int dst,
                                              const std::map<int, int>& line) const {
  // A rank on the line will re-execute from its cut: its send frontier is
  // the cut's, not the live one (messages past the cut will be re-sent, so
  // the receiver need not replay them from the log).
  auto placed = line.find(src);
  if (placed != line.end()) {
    if (placed->second == RecoveryLine::kToStart) return 0;
    const ChannelCut* channels = cut_channels(src, placed->second);
    if (channels == nullptr) return 0;
    auto sent = channels->sent.find(dst);
    return sent == channels->sent.end() ? 0 : sent->second;
  }
  auto live = current_sent_.find({src, dst});
  return live == current_sent_.end() ? 0 : live->second;
}

RecoveryLine RollbackResolver::resolve(const std::vector<int>& failed_ranks,
                                       const std::set<int>& dead_logs) const {
  RecoveryLine line;
  // Seed: every failed rank restarts from its newest cut (or from program
  // start if it never checkpointed).
  for (int rank : failed_ranks) {
    auto it = cuts_.find(rank);
    line.restart_cut[rank] =
        (it == cuts_.end() || it->second.empty())
            ? RecoveryLine::kToStart
            : static_cast<int>(it->second.size()) - 1;
  }

  // Fixpoint: a rank at cut C must replay every message delivered after C.
  // For each sender s of such messages, the window (delivered_at_cut,
  // sender_frontier] must be covered by s's log; if not, s joins the line at
  // its newest cut whose send frontier makes the window coverable — cut
  // indices only ever decrease, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot: demotions discovered this round apply against the line as it
    // stood at round start, keeping the result order-independent.
    const std::map<int, int> snapshot = line.restart_cut;
    for (const auto& [rank, cut_index] : snapshot) {
      if (cut_index == RecoveryLine::kToStart) continue;
      const ChannelCut* channels = cut_channels(rank, cut_index);
      if (channels == nullptr) continue;
      // Consider every potential sender: any rank with a known channel to
      // `rank`, per cut metadata or the live frontier.
      std::set<int> senders;
      for (const auto& [key, frontier] : current_sent_) {
        if (key.second == rank) senders.insert(key.first);
      }
      for (const auto& [s, d] : channels->delivered) {
        (void)d;
        senders.insert(s);
      }
      for (int src : senders) {
        if (src == rank) continue;
        auto delivered = channels->delivered.find(src);
        const std::uint64_t replay_from =
            (delivered == channels->delivered.end() ? 0 : delivered->second) + 1;
        const std::uint64_t replay_to = sent_frontier(src, rank, snapshot);
        if (replay_from > replay_to) continue;  // nothing to replay
        if (log_.covers(src, rank, replay_from, replay_to, dead_logs)) continue;

        // Log cannot supply the suffix: src must roll back until its own
        // send frontier to `rank` drops to at-or-below what `rank`'s cut
        // already delivered.
        line.missing_messages += replay_to - replay_from + 1;
        auto src_cuts = cuts_.find(src);
        int target = RecoveryLine::kToStart;
        if (src_cuts != cuts_.end()) {
          for (int i = static_cast<int>(src_cuts->second.size()) - 1; i >= 0; --i) {
            const ChannelCut& c = src_cuts->second[static_cast<std::size_t>(i)].channels;
            auto sent = c.sent.find(rank);
            const std::uint64_t frontier = sent == c.sent.end() ? 0 : sent->second;
            if (frontier < replay_from ||
                log_.covers(src, rank, replay_from, frontier, dead_logs)) {
              target = i;
              break;
            }
          }
        }
        auto existing = line.restart_cut.find(src);
        const int current = existing == line.restart_cut.end()
                                ? std::numeric_limits<int>::max()
                                : existing->second;
        const int current_key =
            current == RecoveryLine::kToStart ? -1 : current;
        const int target_key = target == RecoveryLine::kToStart ? -1 : target;
        if (target_key < current_key) {
          line.restart_cut[src] = target;
          changed = true;
        }
      }
    }
    if (changed) ++line.cascade_rounds;
  }

  // Summarize.
  line.width = static_cast<std::uint32_t>(line.restart_cut.size());
  for (const auto& [rank, cut_index] : line.restart_cut) {
    std::uint32_t steps;
    auto it = cuts_.find(rank);
    const std::uint32_t have =
        it == cuts_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
    if (cut_index == RecoveryLine::kToStart) {
      line.bounded = line.bounded && have == 0;  // never-checkpointed rank is fine
      steps = have + 1;
      if (have == 0) steps = 1;  // cold start was the only option anyway
    } else {
      steps = have - static_cast<std::uint32_t>(cut_index);
    }
    line.depth = std::max(line.depth, steps);
  }
  return line;
}

}  // namespace ckpt::cluster
