// Sender-based message logging and recovery-line computation for
// uncoordinated MPI checkpointing.
//
// The coordinated protocol (cluster/mpi) pays a global drain before any
// image is cut; the cost grows with rank count and traffic, which is the
// survey's scalability complaint about CoCheck/CLIP/LAM-MPI.  The classic
// alternative (Johnson & Zwaenepoel's sender-based logging) lets every rank
// checkpoint *independently* and makes a single failure recoverable without
// touching any other rank:
//
//   * every message is logged at the SENDER, synchronously with the send
//     (pessimistic logging: the log entry exists before the message is
//     visible), sequence-numbered per (src,dst) channel and CRC64-enveloped;
//   * execution is piecewise deterministic: a rank's state between received
//     messages is a pure function of its last checkpoint and the sequence
//     of messages delivered since — so replaying the logged suffix into a
//     restarted rank reproduces the lost state exactly;
//   * a restarted rank re-executes and re-SENDS messages its peers already
//     delivered; receivers drop those duplicates by channel sequence number
//     (MpiFabric::try_recv), so replay never double-delivers.
//
// When a needed suffix is NOT in the log (metadata-only logging, or the
// sender died and its volatile log died with it), the receiver's checkpoint
// is an orphan and the sender must roll back far enough to regenerate the
// missing messages — which can cascade: the domino effect.  RollbackResolver
// computes that recovery line explicitly and reports its depth; a cascade is
// *detected and bounded*, never silently executed.
//
// Persistence: a rank's sender log is volatile (it lives in the rank's
// memory and dies with it).  MessageLog::encode_sender/restore_sender
// serialize one rank's log so callers can persist it through the
// log-structured journal's flight-record path (storage/journal), which is
// what keeps concurrent failures at rollback depth 1 (see bench_mpi).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/costs.hpp"

namespace ckpt::cluster {

/// Per-rank channel frontier at one instant: the consistent cut metadata
/// recorded with every uncoordinated checkpoint.
///
/// `sent[dst]` is the highest sequence this rank has sent on (rank -> dst);
/// `delivered[src]` the highest sequence delivered to it on (src -> rank).
/// Channels never used are simply absent (frontier 0).
struct ChannelCut {
  std::map<int, std::uint64_t> sent;
  std::map<int, std::uint64_t> delivered;

  friend bool operator==(const ChannelCut&, const ChannelCut&) = default;
};

/// One logged message: the CRC64-enveloped unit of the sender-based log.
struct LoggedMessage {
  int src = 0;
  int dst = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst) channel sequence, 1-based
  std::uint64_t tag = 0;
  SimTime sent_at = 0;
  std::vector<std::byte> payload;  ///< empty in metadata-only logging
  std::uint64_t crc = 0;           ///< crc64 over the serialized envelope

  /// Serialized envelope size (header + payload), the unit the log append
  /// charge and the log-volume metrics are measured in.
  [[nodiscard]] std::uint64_t envelope_bytes() const;
  /// CRC64 over the envelope with the crc field zeroed; record() stamps it
  /// and suffix() re-verifies it before offering the entry for replay.
  [[nodiscard]] std::uint64_t compute_crc() const;
};

struct MessageLogOptions {
  /// Retain payload bytes (replay-capable sender-based log).  false keeps
  /// only dependency metadata — enough for RollbackResolver to *compute*
  /// the domino cascade, never enough to replay (models uncoordinated
  /// checkpointing without message logging).
  bool log_payloads = true;
  /// Append charge model: each record() costs mem_copy + CRC hashing of the
  /// envelope, returned to the caller to charge through the sim clock
  /// (pessimistic logging is synchronous with the send).
  sim::CostModel costs;
};

/// The sender-based log: per-(src,dst) channel deques in sequence order.
///
/// One MessageLog object serves the whole fabric, but entries are owned
/// per-sender: drop_sender() models the volatile log dying with its rank,
/// and encode_sender()/restore_sender() serialize exactly one rank's
/// entries for journal persistence.
class MessageLog {
 public:
  explicit MessageLog(MessageLogOptions options = {}) : options_(options) {}

  /// Append one entry (payload dropped in metadata-only mode), stamping its
  /// CRC.  Pre: entries per channel arrive in ascending `seq` order (the
  /// fabric assigns them).  Returns the sim-time append charge the sender
  /// must pay before the message becomes visible.
  SimTime record(LoggedMessage message);

  /// Is every message on (src,dst) with sequence in [from_seq, to_seq]
  /// present, payload-bearing and CRC-clean?  `dead_logs` names ranks whose
  /// volatile logs are assumed lost (the resolver's what-if seam; entries
  /// physically present are still unavailable when src is dead).
  /// from_seq > to_seq is an empty range and trivially covered.
  [[nodiscard]] bool covers(int src, int dst, std::uint64_t from_seq,
                            std::uint64_t to_seq,
                            const std::set<int>& dead_logs = {}) const;

  /// Entries on (src,dst) with seq > after_seq, ascending, CRC-verified.
  /// Entries failing their CRC are skipped and counted (crc_failures()) —
  /// replaying a corrupt envelope would be worse than losing it loudly.
  [[nodiscard]] std::vector<const LoggedMessage*> suffix(int src, int dst,
                                                         std::uint64_t after_seq) const;

  /// Discard entries destined to `dst` that `dst`'s newest checkpoint has
  /// made unnecessary: on (src,dst), everything with seq <= delivered_up_to
  /// at that src.  Called when dst checkpoints; returns entries trimmed.
  std::uint64_t trim_delivered(int dst, const std::map<int, std::uint64_t>& delivered_up_to);

  /// The volatile log of `src` dies with its rank: drop every entry it
  /// owns.  Returns entries dropped.
  std::uint64_t drop_sender(int src);

  /// Serialize every entry owned by `src` (all (src,*) channels) for
  /// journal persistence.  Deterministic: channels ascending, seq ascending.
  [[nodiscard]] std::vector<std::byte> encode_sender(int src) const;

  /// Replace `src`'s entries with a previously encoded blob (post-failure
  /// restore from the journal).  Returns entries restored.  Throws
  /// util::SerializeError on a corrupt blob — the caller decides whether to
  /// fall back to drop_sender() semantics.
  std::uint64_t restore_sender(int src, const std::vector<std::byte>& blob);

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] std::uint64_t message_count() const;
  /// Resident envelope bytes (the log-volume metric).
  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::uint64_t total_recorded() const { return total_recorded_; }
  [[nodiscard]] std::uint64_t total_trimmed() const { return total_trimmed_; }
  [[nodiscard]] std::uint64_t crc_failures() const { return crc_failures_; }
  [[nodiscard]] bool payloads_logged() const { return options_.log_payloads; }

 private:
  MessageLogOptions options_;
  /// (src,dst) -> entries in ascending seq order.
  std::map<std::pair<int, int>, std::deque<LoggedMessage>> channels_;
  std::uint64_t total_recorded_ = 0;
  std::uint64_t total_trimmed_ = 0;
  mutable std::uint64_t crc_failures_ = 0;
};

/// Metadata of one uncoordinated per-rank checkpoint: which image (chain
/// sequence under which engine/pid) and the channel frontier at the cut.
struct CheckpointCut {
  std::uint64_t sequence = 0;  ///< chain sequence of the image
  SimTime taken_at = 0;
  int node = -1;               ///< node whose engine holds the chain
  std::uint64_t pid = 0;       ///< pid key of the chain in that engine
  ChannelCut channels;
};

/// The computed recovery line: which ranks restart, from which checkpoint,
/// and how far the cascade reached.
struct RecoveryLine {
  /// A rank rolling back past its first checkpoint restarts from the
  /// initial application state — the unbounded-domino terminal.
  static constexpr int kToStart = -1;

  /// rank -> index into that rank's cut vector (newest = size-1), or
  /// kToStart.  Ranks absent keep running untouched.
  std::map<int, int> restart_cut;
  /// Max checkpoints walked back from the newest (1 = newest image only; a
  /// pessimistically-logged single failure is always exactly 1).
  std::uint32_t depth = 0;
  /// Ranks rolled back (1 = restart-only-the-failed-rank).
  std::uint32_t width = 0;
  /// Fixpoint iterations that extended the line (0 = no cascade).
  std::uint32_t cascade_rounds = 0;
  /// Messages needed for replay but unavailable in the log — each one is a
  /// reason some sender had to roll back instead.
  std::uint64_t missing_messages = 0;
  /// false iff some rank hit kToStart (the cascade escaped every
  /// checkpoint: the classic unbounded domino).
  bool bounded = true;

  [[nodiscard]] std::string describe() const;
};

/// Computes the recovery line for a set of failed ranks against the cut
/// history and the (possibly partial) sender log.
///
/// Pure function of its inputs — no side effects, so callers can plan
/// what-if lines (e.g. "suppose the failed ranks' logs died") before
/// executing anything.  UncoordinatedMpi::recover_failed_node executes the
/// line it returns; bench_mpi plans lines to measure domino depth.
class RollbackResolver {
 public:
  /// `cuts`: per-rank checkpoint history, oldest first.  `current_sent`:
  /// the live send frontier per (src,dst) channel (MpiFabric::current_sent).
  RollbackResolver(const MessageLog& log,
                   const std::map<int, std::vector<CheckpointCut>>& cuts,
                   std::map<std::pair<int, int>, std::uint64_t> current_sent)
      : log_(log), cuts_(cuts), current_sent_(std::move(current_sent)) {}

  /// Compute the line for `failed_ranks` (each restarts from, at best, its
  /// newest cut).  `dead_logs` marks ranks whose volatile sender logs are
  /// unavailable (usually == failed_ranks unless journal-restored).
  /// Postcondition: every failed rank appears in restart_cut; a live rank
  /// appears only when the cascade reached it; depth/width/bounded reflect
  /// the returned line exactly.
  [[nodiscard]] RecoveryLine resolve(const std::vector<int>& failed_ranks,
                                     const std::set<int>& dead_logs = {}) const;

 private:
  [[nodiscard]] std::uint64_t sent_frontier(int src, int dst,
                                            const std::map<int, int>& line) const;
  [[nodiscard]] const ChannelCut* cut_channels(int rank, int index) const;

  const MessageLog& log_;
  const std::map<int, std::vector<CheckpointCut>>& cuts_;
  std::map<std::pair<int, int>, std::uint64_t> current_sent_;
};

}  // namespace ckpt::cluster
