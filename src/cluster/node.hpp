// Cluster model: nodes (each a SimKernel + local disk), shared remote
// storage, and lock-step cluster time.
//
// Fail-stop semantics [33] throughout: a failed node's processes vanish
// and its local disk becomes unreachable; the failure is always detected.
// Remote storage survives any compute-node failure — the distinction
// driving the survivability experiment (C8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "storage/backend.hpp"

namespace ckpt::cluster {

struct NodeConfig {
  int ncpus = 1;
  sim::CostModel costs{};
  std::uint64_t seed = 42;
};

class Node {
 public:
  Node(int id, const NodeConfig& config);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] bool up() const { return up_; }

  [[nodiscard]] sim::SimKernel& kernel() { return *kernel_; }
  [[nodiscard]] storage::LocalDiskBackend& disk() { return *disk_; }

  /// Fail-stop: every process dies instantly, the local disk is
  /// unreachable until repair.
  void fail();

  /// Repair & reboot at cluster time `now`: a fresh kernel (empty process
  /// table) whose clock matches the cluster; the local disk is reachable
  /// again (its stored images survived the crash but were unreachable
  /// while the node was down — they are only useful again now).
  void repair(SimTime now);

 private:
  int id_;
  std::string hostname_;
  NodeConfig config_;
  bool up_ = true;
  std::unique_ptr<sim::SimKernel> kernel_;
  std::unique_ptr<storage::LocalDiskBackend> disk_;
};

class Cluster {
 public:
  Cluster(int node_count, const NodeConfig& config);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] storage::RemoteBackend& remote_storage() { return *remote_; }
  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] std::vector<int> up_nodes() const;

  /// Advance cluster time in `epoch` steps: per epoch, fire cluster events
  /// due, then run every up node's kernel to the epoch boundary.
  void run_until(SimTime deadline, SimTime epoch = 10 * kMillisecond);

  /// Fire every cluster event due at or before `until` and move the cluster
  /// clock there — *without* stepping any node kernel.  Fleet-scale callers
  /// (FleetManager) own node execution themselves: they run guest windows in
  /// parallel over the ThreadPool and only need the event clock (failure /
  /// repair injections) advanced between windows.
  void advance(SimTime until);

  /// Schedule a cluster-level event (failure injection, manager ticks).
  void add_event(SimTime when, std::function<void(Cluster&)> fn);

  /// Observer invoked on every node failure (failure detector clients).
  void on_failure(std::function<void(Cluster&, int node_id)> fn);

  /// Observer invoked on every node repair (spare-pool clients: a repaired
  /// node re-enters service as a spare).
  void on_repair(std::function<void(Cluster&, int node_id)> fn);

  /// Fail / repair with observer notification.
  void fail_node(int id);
  void repair_node(int id);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void(Cluster&)> fn;
    bool operator<(const Event& other) const {
      return when != other.when ? when < other.when : seq < other.seq;
    }
  };

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<storage::RemoteBackend> remote_;
  std::vector<Event> events_;
  std::uint64_t event_seq_ = 0;
  std::vector<std::function<void(Cluster&, int)>> failure_observers_;
  std::vector<std::function<void(Cluster&, int)>> repair_observers_;
  SimTime now_ = 0;
};

}  // namespace ckpt::cluster
