#include "cluster/fleet.hpp"

#include <algorithm>
#include <sstream>

#include "core/capture.hpp"
#include "obs/observer.hpp"
#include "sim/guests.hpp"
#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::cluster {
namespace {

/// FNV-1a over the seed and slot index: the per-slot stagger phase.
std::uint64_t stagger_hash(std::uint64_t seed, std::uint64_t slot) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (slot >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

/// Run the guest until it has taken `steps` more iterations (bounded by a
/// generous deadline so a dead process cannot spin the loop).
void run_guest_steps(sim::SimKernel& kernel, sim::Pid pid, std::uint64_t steps) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || steps == 0) return;
  const std::uint64_t goal = proc->stats.guest_iterations + steps;
  kernel.run_while(
      [&kernel, pid, goal] {
        sim::Process* p = kernel.find_process(pid);
        return p != nullptr && p->alive() && p->stats.guest_iterations < goal;
      },
      kernel.now() + 60 * kSecond);
}

/// Byte-compare of a restored process against the image it restored from
/// (the torture harness's states_match, scoped to what restart promises).
bool restored_matches(const storage::CheckpointImage& now_image,
                      const storage::CheckpointImage& truth) {
  if (!core::images_equal_memory(now_image, truth)) return false;
  if (now_image.brk != truth.brk || now_image.heap_base != truth.heap_base) return false;
  if (now_image.threads.size() != truth.threads.size()) return false;
  for (std::size_t i = 0; i < now_image.threads.size(); ++i) {
    if (!(now_image.threads[i].regs == truth.threads[i].regs)) return false;
  }
  return true;
}

}  // namespace

// --- FailureDetector --------------------------------------------------------

FailureDetector::FailureDetector(int nodes, DetectorOptions options)
    : options_(options), nodes_(static_cast<std::size_t>(nodes)) {}

void FailureDetector::observe_heartbeat(int node, SimTime at) {
  Tracked& t = nodes_.at(static_cast<std::size_t>(node));
  if (t.state == NodeState::kConfirmedDead) return;  // fenced until reset()
  t.last_beat = at;
  t.state = NodeState::kAlive;
}

void FailureDetector::tick(SimTime now) {
  const SimTime interval = options_.heartbeat_interval == 0 ? 1 : options_.heartbeat_interval;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Tracked& t = nodes_[i];
    if (t.state == NodeState::kConfirmedDead) continue;
    const std::uint64_t missed =
        now > t.last_beat ? static_cast<std::uint64_t>((now - t.last_beat) / interval) : 0;
    if (missed >= options_.confirm_after_missed) {
      t.state = NodeState::kConfirmedDead;
      ++confirmations_;
      confirmed_queue_.push_back(static_cast<int>(i));
    } else if (missed >= options_.suspect_after_missed) {
      if (t.state != NodeState::kSuspected) ++suspicions_;
      t.state = NodeState::kSuspected;
    }
  }
}

std::vector<int> FailureDetector::take_confirmed() {
  std::vector<int> out;
  out.swap(confirmed_queue_);
  std::sort(out.begin(), out.end());
  return out;
}

void FailureDetector::reset(int node, SimTime now) {
  Tracked& t = nodes_.at(static_cast<std::size_t>(node));
  t.last_beat = now;
  t.state = NodeState::kAlive;
}

FailureDetector::NodeState FailureDetector::state(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).state;
}

// --- NodeReplacer -----------------------------------------------------------

NodeReplacer::NodeReplacer(std::vector<int> spares)
    : pool_(spares.begin(), spares.end()) {}

std::optional<int> NodeReplacer::allocate(Cluster& cluster) {
  for (auto it = pool_.begin(); it != pool_.end(); ++it) {
    if (cluster.node(*it).up()) {
      const int id = *it;
      pool_.erase(it);
      return id;
    }
  }
  return std::nullopt;
}

void NodeReplacer::release(int node) { pool_.insert(node); }

void NodeReplacer::remove(int node) { pool_.erase(node); }

std::size_t NodeReplacer::available(Cluster& cluster) const {
  std::size_t n = 0;
  for (int id : pool_) {
    if (cluster.node(id).up()) ++n;
  }
  return n;
}

// --- FleetReport ------------------------------------------------------------

std::uint64_t FleetReport::digest() const {
  std::vector<std::byte> bytes;
  auto push = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(std::byte((v >> (8 * i)) & 0xFF));
  };
  push(windows);
  push(commits_scheduled);
  push(commits_ok);
  push(commits_failed);
  push(group_commits);
  push(max_commits_one_window);
  push(heartbeats);
  push(heartbeats_suppressed);
  push(failures_injected);
  push(confirmed_dead);
  push(false_confirms);
  push(replacements);
  push(reseeds_from_image);
  push(cold_starts);
  push(local_restarts);
  push(retargets);
  push(scrub_repairs);
  push(scrub_unrepairable);
  push(storage_faults_injected);
  push(migrated_images);
  push(migrated_bytes);
  push(flight_records_persisted);
  push(post_mortems);
  push(repairs);
  push(spares_exhausted_windows);
  push(pending_at_end);
  push(durable_bytes);
  push(sim_elapsed);
  push(data_loss_with_intact_replica);
  push(verify_failures);
  push(unrecovered);
  push(detect_latency.size());
  for (SimTime t : detect_latency) push(t);
  push(recover_latency.size());
  for (SimTime t : recover_latency) push(t);
  return util::crc64(bytes);
}

std::string FleetReport::summary() const {
  std::ostringstream out;
  out << "fleet: " << windows << " windows, " << commits_ok << "/" << commits_scheduled
      << " commits (" << commits_failed << " failed, peak " << max_commits_one_window
      << "/window), " << failures_injected << " failures, " << confirmed_dead
      << " confirmed (" << false_confirms << " false), " << replacements
      << " replacements (" << reseeds_from_image << " re-seeded, " << cold_starts
      << " cold, " << local_restarts << " local restarts), " << retargets
      << " retargets, " << repairs << " repairs";
  if (!ok()) {
    out << " [VIOLATIONS: data_loss=" << data_loss_with_intact_replica
        << " verify=" << verify_failures << " unrecovered=" << unrecovered << "]";
  }
  return out.str();
}

// --- FleetManager -----------------------------------------------------------

FleetManager::FleetManager(FleetOptions options)
    : options_(options),
      cluster_(options.active_nodes + options.spare_nodes,
               NodeConfig{1, options.costs, options.seed}),
      pinned_pool_(options.workers > 0 ? std::make_unique<util::ThreadPool>(options.workers)
                                       : nullptr),
      pool_(pinned_pool_ != nullptr ? pinned_pool_.get() : &util::ThreadPool::shared()),
      rng_(options.seed ^ 0xF1EE7F1EE7ull),
      estimator_(options.policy),
      detector_(options.active_nodes + options.spare_nodes,
                DetectorOptions{options.window, options.suspect_after_missed,
                                options.confirm_after_missed}),
      replacer_([&options] {
        std::vector<int> spares;
        for (int i = 0; i < options.spare_nodes; ++i) {
          spares.push_back(options.active_nodes + i);
        }
        return spares;
      }()),
      recovery_(cluster_,
                [&options] {
                  RecoveryManagerOptions ropts;
                  ropts.store.observer = options.observer;
                  return ropts;
                }()),
      heartbeat_injector_(options.observer) {
  sim::register_standard_guests();
  if (options_.shards <= 0) options_.shards = 1;
  if (options_.observer != nullptr) {
    options_.observer->set_clock([this] { return cluster_.now(); });
  }

  // Ground truth.  The detector never sees this: it is metrics (detection
  // latency baselines) only — and, in legacy open-loop mode, the estimator's
  // failure feed.  Closed-loop mode feeds the estimator from detector
  // confirmations instead (on_confirmed_dead), so the autonomic interval is
  // a function of *measured* signals alone.
  cluster_.on_failure([this](Cluster&, int id) {
    truth_failed_at_[id] = cluster_.now();
    ++report_.failures_injected;
    if (!options_.closed_loop_interval) estimator_.observe_failure(cluster_.now());
    if (options_.observer != nullptr) {
      options_.observer->metrics().add("fleet.failures");
      options_.observer->trace().instant(
          "fleet.node_failed", "fleet", obs::kControlTrack,
          {obs::TraceArg::num("node", static_cast<std::uint64_t>(id))});
    }
  });
  cluster_.on_repair([this](Cluster&, int id) {
    ++report_.repairs;
    detector_.reset(id, cluster_.now());
    // A repaired node with no slot re-enters service as a spare (CRAFT's
    // pool refill); one still mapped to a slot was never confirmed dead and
    // keeps its slot (the dead process is caught by the sweep).
    if (node_slot_.find(id) == node_slot_.end()) replacer_.release(id);
    if (options_.observer != nullptr) {
      options_.observer->metrics().add("fleet.repairs");
    }
  });

  // Shards: per-shard remote backend + replicated store (replica 0 = the
  // storage-home node's disk) optionally fronted by a journal.
  shards_.resize(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.remote = std::make_unique<storage::RemoteBackend>(options_.costs);
    shard.storage_home = s;  // lowest-id slot of shard s lives on node s
    storage::ReplicatedOptions ropts;
    ropts.write_quorum = 1;
    ropts.verify_writes = true;
    ropts.retry = options_.store_retry;
    ropts.pool = pool_;
    ropts.dedup = options_.dedup;
    shard.store = std::make_unique<storage::ReplicatedStore>(
        std::vector<storage::BlobStoreBackend*>{&cluster_.node(s).disk(),
                                                shard.remote.get()},
        ropts);
    if (options_.append_commit) {
      storage::JournalOptions jopts;
      jopts.segment_bytes = options_.journal_segment_bytes;
      jopts.segments = options_.journal_segments;
      jopts.migrate_on_demand = true;
      jopts.pool = pool_;
      jopts.costs = options_.costs;
      shard.journal =
          std::make_unique<storage::LogStructuredBackend>(shard.store.get(), jopts);
    }
  }

  // Slots: one guest per active node, round-robin over shards.
  slots_.resize(static_cast<std::size_t>(options_.active_nodes));
  for (int i = 0; i < options_.active_nodes; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    slot.node = i;
    slot.shard = i % options_.shards;
    slot.stagger = stagger_hash(options_.seed, static_cast<std::uint64_t>(i));
    slot.flight = obs::FlightRecorder(options_.flight_capacity);
    Shard& shard = shards_[static_cast<std::size_t>(slot.shard)];
    shard.slots.push_back(i);
    sim::WriterConfig config;
    config.array_bytes = options_.array_bytes;
    config.writes_per_step = 8;
    config.seed = options_.seed ^ (0x510700ull + static_cast<std::uint64_t>(i));
    slot.job = recovery_.adopt(
        i, sim::DenseWriterGuest::kTypeName, config.encode(),
        sim::spawn_options_for_array(options_.array_bytes),
        RecoveryManager::ExternalStoreBinding{shard.store.get(), shard.journal.get()});
    node_slot_[i] = i;
  }
}

void FleetManager::arm_torture(const FleetTortureOptions& torture) {
  torture_ = torture;
  torture_armed_ = true;
  for (const FailureModel& model : torture.failure_models) {
    injectors_.push_back(std::make_unique<FailureInjector>(cluster_, model));
  }
}

void FleetManager::suppress_heartbeats(int node, std::uint32_t beats) {
  heartbeat_injector_.suppress(node, beats);
}

std::uint64_t FleetManager::interval_windows() const {
  if (options_.window == 0) return 1;
  const SimTime interval = estimator_.interval();
  return std::max<std::uint64_t>(1, (interval + options_.window / 2) / options_.window);
}

int FleetManager::slot_node(int slot) const {
  return slots_.at(static_cast<std::size_t>(slot)).node;
}

RecoveryManager::JobId FleetManager::slot_job(int slot) const {
  return slots_.at(static_cast<std::size_t>(slot)).job;
}

int FleetManager::storage_home(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard)).storage_home;
}

bool FleetManager::due_this_window(const Slot& slot, std::uint64_t window_index,
                                   std::uint64_t interval) const {
  if (interval <= 1) return true;
  // Shard-sliced stagger: the interval is cut into one slice per shard so a
  // shard's store only ever sees its own slots' commits in any window; a
  // slot's phase inside the slice is its seed-deterministic hash.  Per
  // window the fleet commits ~active/interval slots, never everyone.
  const auto shard_count = static_cast<std::uint64_t>(shards_.size());
  const auto shard = static_cast<std::uint64_t>(slot.shard);
  const std::uint64_t begin = (shard * interval) / shard_count;
  const std::uint64_t end = ((shard + 1) * interval) / shard_count;
  const std::uint64_t width = end > begin ? end - begin : 1;
  const std::uint64_t phase = (begin + slot.stagger % width) % interval;
  return window_index % interval == phase;
}

FleetReport FleetManager::run(std::uint64_t windows) {
  const SimTime horizon = cluster_.now() + static_cast<SimTime>(windows) * options_.window;
  for (auto& injector : injectors_) injector->arm(horizon);
  const std::uint64_t first = report_.windows;
  for (std::uint64_t w = 0; w < windows; ++w) step_window(first + w);
  report_.sim_elapsed = cluster_.now();
  report_.pending_at_end = pending_.size();
  report_.durable_bytes = 0;
  for (const Shard& shard : shards_) {
    report_.durable_bytes += shard.store->stored_bytes();
    if (shard.journal != nullptr) report_.durable_bytes += shard.journal->stored_bytes();
  }
  ingest_telemetry();
  if (options_.observer != nullptr) {
    obs::MetricsRegistry& metrics = options_.observer->metrics();
    metrics.set_gauge("fleet.durable_bytes",
                      static_cast<std::int64_t>(report_.durable_bytes));
    metrics.set_gauge("fleet.pending_at_end",
                      static_cast<std::int64_t>(report_.pending_at_end));
    metrics.set_gauge("fleet.measured_mtbf_ns",
                      static_cast<std::int64_t>(accountant_.measured_mtbf()));
    metrics.set_gauge("fleet.mean_commit_cost_ns",
                      static_cast<std::int64_t>(accountant_.mean_commit_cost()));
    metrics.set_gauge("fleet.overhead_permille",
                      static_cast<std::int64_t>(accountant_.fleet().overhead_permille()));
  }
  return report_;
}

void FleetManager::step_window(std::uint64_t window_index) {
  const SimTime window_end = cluster_.now() + options_.window;

  // Pre-draw every random decision on the main thread: the parallel guest
  // phase must not touch the fleet rng (worker-count invariance).
  std::vector<std::uint64_t> steps(slots_.size());
  const std::uint64_t span = options_.guest_steps_max >= options_.guest_steps_min
                                 ? options_.guest_steps_max - options_.guest_steps_min + 1
                                 : 1;
  for (auto& s : steps) s = options_.guest_steps_min + rng_.next_below(span);
  // Yesterday's one-window outages end before new faults are drawn.
  for (storage::BlobStoreBackend* backend : open_outages_) {
    inject::StorageInjector(*backend, options_.observer).end_outage();
  }
  open_outages_.clear();
  if (torture_armed_) {
    if (torture_.heartbeat_drop_per_window > 0 && torture_.heartbeat_drop_beats > 0) {
      for (int id = 0; id < cluster_.size(); ++id) {
        if (rng_.next_double() < torture_.heartbeat_drop_per_window) {
          heartbeat_injector_.suppress(id, torture_.heartbeat_drop_beats);
        }
      }
    }
    if (torture_.storage_fault_per_window > 0 &&
        rng_.next_double() < torture_.storage_fault_per_window) {
      inject_storage_fault();
    }
  }

  // 1. Failure/repair events fire; the event clock reaches the boundary.
  cluster_.advance(window_end);

  // 2-3. Heartbeats, suspicion, confirmation, fencing, replacement.
  heartbeat_phase();
  sweep_dead_processes();
  process_pending();

  // 4. Guest windows, in parallel: per-node kernels share nothing.
  guest_phase(window_end, steps);

  // 5-6. Staggered commits + shard maintenance, serial on the main thread.
  commit_phase(window_index);
  maintenance_phase(window_index);

  ++report_.windows;
}

void FleetManager::heartbeat_phase() {
  const SimTime now = cluster_.now();
  for (int id = 0; id < cluster_.size(); ++id) {
    if (!cluster_.node(id).up()) continue;
    if (heartbeat_injector_.consume(id)) {
      ++report_.heartbeats_suppressed;
      continue;
    }
    detector_.observe_heartbeat(id, now);
    ++report_.heartbeats;
  }
  detector_.tick(now);
  for (int id : detector_.take_confirmed()) on_confirmed_dead(id);
}

void FleetManager::on_confirmed_dead(int node_id) {
  ++report_.confirmed_dead;
  // The measured-failure feed: confirmations (false confirms included — a
  // fencing destroys work exactly like a real crash) drive the overhead
  // ledger's MTBF and, in closed-loop mode, the autonomic estimator.
  accountant_.observe_failure(cluster_.now());
  if (options_.closed_loop_interval) estimator_.observe_failure(cluster_.now());
  const bool was_up = cluster_.node(node_id).up();
  if (was_up) {
    // False suspicion.  Fence: fail-stop the node before seeding a
    // replacement, so two incarnations of one slot can never both commit.
    // Costs the slot's work since its last checkpoint — never its data.
    ++report_.false_confirms;
    cluster_.fail_node(node_id);
    if (options_.observer != nullptr) {
      options_.observer->metrics().add("fleet.false_confirms");
      options_.observer->trace().instant(
          "fleet.fence", "fleet", obs::kControlTrack,
          {obs::TraceArg::num("node", static_cast<std::uint64_t>(node_id))});
    }
  }
  const auto truth_it = truth_failed_at_.find(node_id);
  const SimTime truth =
      truth_it != truth_failed_at_.end() ? truth_it->second : cluster_.now();
  if (!was_up) {
    const SimTime detect = cluster_.now() - truth;
    report_.detect_latency.push_back(detect);
    if (options_.observer != nullptr) {
      options_.observer->metrics().observe("fleet.detect_latency_ns", detect,
                                           obs::MetricsRegistry::latency_bounds());
    }
  }
  if (options_.observer != nullptr) options_.observer->metrics().add("fleet.confirmed_dead");

  const auto slot_it = node_slot_.find(node_id);
  if (slot_it == node_slot_.end()) {
    // A pooled spare died; it can no longer be allocated.
    replacer_.remove(node_id);
    return;
  }
  Slot& slot = slots_[static_cast<std::size_t>(slot_it->second)];
  slot.pending = true;
  slot.prev_node = node_id;
  slot.node = -1;
  slot.truth_failed_at = truth;
  slot.confirmed_at = cluster_.now();
  // Rework: progress since the last durable point is gone.  A fenced node
  // really did the work up to the fencing instant; a crashed one stopped
  // progressing at the ground-truth failure.
  const SimTime lost_until = was_up ? cluster_.now() : truth;
  if (lost_until > slot.last_commit_at) {
    accountant_.charge_rework(slot_it->second, lost_until - slot.last_commit_at);
    slot.node_metrics.add("node.reworks");
  }
  render_post_mortem(slot_it->second);
  pending_.push_back(slot_it->second);
  node_slot_.erase(slot_it);
}

void FleetManager::render_post_mortem(int slot_index) {
  Slot& slot = slots_[static_cast<std::size_t>(slot_index)];
  const Shard& shard = shards_[static_cast<std::size_t>(slot.shard)];
  std::string body;
  bool from_journal = false;
  if (shard.journal != nullptr) {
    const auto payload =
        shard.journal->flight_record_of(static_cast<std::uint64_t>(slot_index));
    if (payload.has_value()) {
      try {
        body = obs::FlightRecorder::deserialize(*payload).post_mortem();
        from_journal = true;
      } catch (const util::SerializeError&) {
        // Unreachable past the journal's CRC64 envelope; fall through.
      }
    }
  }
  if (!from_journal) body = slot.flight.post_mortem();
  std::string report = "post-mortem slot " + std::to_string(slot_index) + " node " +
                       std::to_string(slot.prev_node) +
                       (from_journal ? " (journal black box)\n" : " (in-memory black box)\n");
  report += body;
  post_mortems_[slot_index] = std::move(report);
  ++report_.post_mortems;
  if (options_.observer != nullptr) {
    options_.observer->metrics().add("fleet.post_mortems");
  }
}

void FleetManager::process_pending() {
  while (!pending_.empty()) {
    if (!replace_slot(pending_.front())) break;
    pending_.pop_front();
  }
  if (!pending_.empty()) ++report_.spares_exhausted_windows;
}

bool FleetManager::replace_slot(int slot_index) {
  Slot& slot = slots_[static_cast<std::size_t>(slot_index)];
  const std::optional<int> spare = replacer_.allocate(cluster_);
  if (!spare.has_value()) return false;
  const int target = *spare;

  obs::SpanGuard span(obs::tracer(options_.observer), "fleet.replace", "fleet",
                      obs::kControlTrack,
                      {obs::TraceArg::num("slot", static_cast<std::uint64_t>(slot_index)),
                       obs::TraceArg::num("dead_node",
                                          static_cast<std::uint64_t>(slot.prev_node)),
                       obs::TraceArg::num("spare", static_cast<std::uint64_t>(target))});

  sim::SimKernel& kernel = cluster_.node(target).kernel();
  if (kernel.now() < cluster_.now()) kernel.idle_until(cluster_.now());
  const SimTime restore_start = kernel.now();
  const RecoveryReport rr = recovery_.recover(slot.job, target);
  const SimTime restore_charge = kernel.now() - restore_start;

  ++report_.replacements;
  if (!rr.recovered) ++report_.unrecovered;
  if (rr.data_loss_with_intact_replica) ++report_.data_loss_with_intact_replica;
  if (rr.cold_started) {
    ++report_.cold_starts;
  } else if (rr.from_image) {
    ++report_.reseeds_from_image;
  }
  slot.node = target;
  slot.pending = false;
  node_slot_[target] = slot_index;
  detector_.reset(target, cluster_.now());
  // The black box follows the slot onto its new incarnation; the restore
  // point resets the rework baseline (work before it was already charged).
  slot.flight.instant(cluster_.now(), "replaced", static_cast<std::uint64_t>(target));
  slot.last_commit_at = cluster_.now();
  slot.node_metrics.add("node.replacements");
  persist_flight(slot_index, kernel);

  // CRAFT's storage half: when the dead node anchored its shard's local
  // replica, the replica set follows the slot onto the spare and a scrub
  // re-replicates committed history onto the fresh disk.
  Shard& shard = shards_[static_cast<std::size_t>(slot.shard)];
  if (shard.storage_home == slot.prev_node) {
    shard.store->retarget_replica(RecoveryManager::kLocalReplica,
                                  &cluster_.node(target).disk());
    shard.storage_home = target;
    ++report_.retargets;
    const storage::ScrubReport sr = shard.store->scrub(storage::ChargeFn{});
    report_.scrub_repairs += sr.repaired;
    report_.scrub_unrepairable += sr.unrepairable;
    if (options_.observer != nullptr) options_.observer->metrics().add("fleet.retargets");
  }

  if (rr.from_image) verify_restored(slot, rr);

  const SimTime total = (cluster_.now() - slot.truth_failed_at) + restore_charge;
  report_.recover_latency.push_back(total);
  if (options_.observer != nullptr) {
    obs::MetricsRegistry& metrics = options_.observer->metrics();
    metrics.add("fleet.replacements");
    metrics.add(rr.cold_started ? "fleet.cold_starts" : "fleet.reseeds_from_image");
    metrics.observe("fleet.recover_latency_ns", total,
                    obs::MetricsRegistry::latency_bounds());
  }
  span.end({obs::TraceArg::str("outcome", rr.cold_started ? "cold-start" : "re-seeded"),
            obs::TraceArg::num("latency_ns", total)});
  return true;
}

void FleetManager::verify_restored(Slot& slot, const RecoveryReport& rr) {
  // "Re-seeded to a verified-restorable image": before the guest takes a
  // single post-restore step, its captured state must byte-match the image
  // the ladder restored.  Charge-free audit reads.
  sim::SimKernel& kernel = cluster_.node(slot.node).kernel();
  sim::Process* proc = kernel.find_process(rr.restored_pid);
  if (proc == nullptr || !proc->alive()) {
    ++report_.verify_failures;
    return;
  }
  const std::optional<storage::CheckpointImage> truth =
      recovery_.chain(slot.job).reconstruct_at(rr.restored_sequence, storage::ChargeFn{});
  if (!truth.has_value()) {
    ++report_.verify_failures;
    return;
  }
  const storage::CheckpointImage now_image = core::capture_kernel_level(kernel, *proc, {});
  if (!restored_matches(now_image, *truth)) {
    ++report_.verify_failures;
    if (options_.observer != nullptr) {
      options_.observer->metrics().add("fleet.verify_failures");
    }
  }
}

void FleetManager::sweep_dead_processes() {
  // A node that failed and repaired faster than the confirmation window is
  // up with an empty process table: the slot is dead even though its node
  // never was (to the detector).  Restart in place through the ladder.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.pending || slot.node < 0) continue;
    Node& node = cluster_.node(slot.node);
    if (!node.up()) continue;
    sim::Process* proc = node.kernel().find_process(recovery_.pid_of(slot.job));
    if (proc != nullptr && proc->alive()) continue;
    const SimTime now = cluster_.now();
    if (now > slot.last_commit_at) {
      accountant_.charge_rework(static_cast<int>(i), now - slot.last_commit_at);
      slot.node_metrics.add("node.reworks");
    }
    const RecoveryReport rr = recovery_.recover(slot.job, slot.node);
    slot.flight.instant(now, "local-restart", static_cast<std::uint64_t>(slot.node));
    slot.last_commit_at = now;
    ++report_.local_restarts;
    if (!rr.recovered) ++report_.unrecovered;
    if (rr.data_loss_with_intact_replica) ++report_.data_loss_with_intact_replica;
    if (rr.from_image) verify_restored(slot, rr);
    if (options_.observer != nullptr) {
      options_.observer->metrics().add("fleet.local_restarts");
    }
  }
}

void FleetManager::guest_phase(SimTime window_end,
                               const std::vector<std::uint64_t>& steps) {
  std::vector<int> live;
  live.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.pending || slot.node < 0 || !cluster_.node(slot.node).up()) continue;
    live.push_back(static_cast<int>(i));
  }
  // Every kernel is private to its slot and carries no observer, and every
  // rng draw already happened: the fan-out is embarrassingly parallel and
  // byte-identical for any worker count.
  util::parallel_for(pool_, live.size(), [&](std::size_t k) {
    Slot& slot = slots_[static_cast<std::size_t>(live[k])];
    sim::SimKernel& kernel = cluster_.node(slot.node).kernel();
    run_guest_steps(kernel, recovery_.pid_of(slot.job),
                    steps[static_cast<std::size_t>(live[k])]);
    if (kernel.now() < window_end) kernel.idle_until(window_end);
  });
  // Useful-work ledger, charged serially after the join (the accountant is
  // main-thread state): every live slot progressed one guest window.
  for (int i : live) accountant_.charge_useful(i, options_.window);
}

void FleetManager::commit_phase(std::uint64_t window_index) {
  const std::uint64_t interval = interval_windows();
  std::uint64_t window_commits = 0;
  for (Shard& shard : shards_) {
    std::vector<int> due;
    for (int si : shard.slots) {
      const Slot& slot = slots_[static_cast<std::size_t>(si)];
      if (slot.pending || slot.node < 0 || !cluster_.node(slot.node).up()) continue;
      if (!due_this_window(slot, window_index, interval)) continue;
      due.push_back(si);
    }
    if (due.empty()) continue;
    const bool group = shard.journal != nullptr && !shard.journal->crashed();
    if (group) shard.journal->begin_group();
    for (int si : due) {
      Slot& slot = slots_[static_cast<std::size_t>(si)];
      sim::SimKernel& kernel = cluster_.node(slot.node).kernel();
      const SimTime commit_start = kernel.now();
      ++report_.commits_scheduled;
      // Black box, phase 1: persist the *open* commit span before any commit
      // byte lands, so a crash anywhere inside the group leaves a journal
      // record whose in-flight stack names the commit that tore.
      slot.flight.span_begin(commit_start, "commit", slot.commits + 1);
      persist_flight(si, kernel);
      const bool ok = recovery_.checkpoint(slot.job);
      if (ok) {
        ++report_.commits_ok;
        ++slot.commits;
        ++window_commits;
      } else {
        ++report_.commits_failed;
      }
      slot.flight.span_end(kernel.now(), "commit", ok ? 1 : 0);
      slot.flight.counter(kernel.now(), "commits", slot.commits);
      // Phase 2: persist the closed span, so a *later* death reads as idle
      // rather than mid-commit.
      persist_flight(si, kernel);
      const SimTime cost = kernel.now() - commit_start;
      accountant_.charge_checkpoint(si, cost);
      if (ok) {
        // The measured commit cost — flight persistence included — is what
        // the estimator prices checkpoints at: the closed loop's C.
        estimator_.observe_cost(cost);
        slot.last_commit_at = kernel.now();
        slot.node_metrics.add("node.commits");
        slot.node_metrics.observe("node.commit_latency_ns", cost,
                                  obs::MetricsRegistry::latency_bounds());
        if (options_.prune_every != 0 && slot.commits % options_.prune_every == 0) {
          recovery_.chain(slot.job).prune(storage::ChargeFn{});
        }
      } else {
        slot.node_metrics.add("node.commit_failures");
      }
    }
    if (group) {
      // One deferred device sync for the whole shard group, charged to the
      // first due slot (the deterministic payer).
      sim::SimKernel& payer =
          cluster_.node(slots_[static_cast<std::size_t>(due.front())].node).kernel();
      shard.journal->end_group([&payer](SimTime t) { payer.charge_time(t); });
      ++report_.group_commits;
    }
  }
  estimator_.update();
  report_.max_commits_one_window = std::max(report_.max_commits_one_window, window_commits);
  finalize_window(window_index, window_commits);
}

void FleetManager::maintenance_phase(std::uint64_t window_index) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    // Staggered per shard so background work is level, like the commits.
    if (shard.journal != nullptr && !shard.journal->crashed() &&
        options_.migrate_every != 0 &&
        (window_index + s) % options_.migrate_every == 0) {
      const auto mr = shard.journal->migrate(storage::ChargeFn{});
      report_.migrated_images += mr.images_drained;
      report_.migrated_bytes += mr.bytes_drained;
    }
    if (options_.scrub_every != 0 && (window_index + s) % options_.scrub_every == 0) {
      const storage::ScrubReport sr = shard.store->scrub(storage::ChargeFn{});
      report_.scrub_repairs += sr.repaired;
      report_.scrub_unrepairable += sr.unrepairable;
    }
  }
}

void FleetManager::inject_storage_fault() {
  ++report_.storage_faults_injected;
  Shard& shard = shards_[rng_.next_below(shards_.size())];
  const bool local = rng_.next_below(2) == 0;
  storage::BlobStoreBackend* backend =
      local ? static_cast<storage::BlobStoreBackend*>(
                  &cluster_.node(shard.storage_home).disk())
            : shard.remote.get();
  inject::StorageInjector injector(*backend, options_.observer);
  switch (rng_.next_below(3)) {
    case 0:
      injector.fail_next_store();
      break;
    case 1:
      injector.corrupt_newest(rng_, 1 + rng_.next_below(8));
      break;
    default:
      injector.begin_outage();
      open_outages_.push_back(backend);
      break;
  }
}

void FleetManager::persist_flight(int slot_index, sim::SimKernel& kernel) {
  Slot& slot = slots_[static_cast<std::size_t>(slot_index)];
  storage::LogStructuredBackend* journal =
      shards_[static_cast<std::size_t>(slot.shard)].journal.get();
  if (journal == nullptr || journal->crashed()) return;
  const std::vector<std::byte> payload = slot.flight.serialize();
  if (journal->append_flight_record(static_cast<std::uint64_t>(slot_index), payload,
                                    [&kernel](SimTime t) { kernel.charge_time(t); })) {
    ++report_.flight_records_persisted;
  }
}

void FleetManager::ingest_telemetry() {
  telemetry_.clear();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    telemetry_.ingest(static_cast<int>(i), slots_[i].node_metrics);
  }
}

void FleetManager::finalize_window(std::uint64_t window_index, std::uint64_t window_commits) {
  if (options_.observer == nullptr) return;
  obs::MetricsRegistry& metrics = options_.observer->metrics();
  metrics.add("fleet.windows");
  metrics.set_gauge("fleet.interval_windows",
                    static_cast<std::int64_t>(interval_windows()));
  metrics.set_gauge("fleet.spares_available",
                    static_cast<std::int64_t>(replacer_.available(cluster_)));
  metrics.set_gauge("fleet.pending_slots", static_cast<std::int64_t>(pending_.size()));
  options_.observer->trace().counter("fleet.window_commits", obs::kControlTrack,
                                     window_commits);
  (void)window_index;
}

}  // namespace ckpt::cluster
