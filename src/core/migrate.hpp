// Process migration: checkpoint -> transfer -> restart on another machine.
//
// The original use of system-level checkpointing on Linux clusters (BProc,
// CRAK, ZAP).  Naive migration carries the resource-conflict risks the
// survey describes; pod-based migration virtualizes identities and avoids
// them at a per-syscall cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/engine.hpp"
#include "core/pod.hpp"
#include "sim/kernel.hpp"

namespace ckpt::core {

struct MigrationOptions {
  CaptureOptions capture;
  /// Keep the original pid on the destination (fails on conflict unless a
  /// pod translates it).
  bool preserve_pid = true;
  /// Virtualize through this pod (ZAP); kNoPod = naive migration.
  PodId pod = 0;
  PodManager* pods = nullptr;
};

struct MigrationResult {
  bool ok = false;
  std::string error;
  sim::Pid new_pid = sim::kNoPid;
  std::uint64_t bytes_transferred = 0;
  SimTime downtime = 0;  ///< source-stop to destination-resume
  std::vector<std::string> warnings;
};

/// Migrate `pid` from `source` to `destination`.  The image moves over the
/// interconnect (network cost charged on the destination side, where the
/// receiving daemon runs); the original process is destroyed on success.
MigrationResult migrate_process(sim::SimKernel& source, sim::SimKernel& destination,
                                sim::Pid pid, const MigrationOptions& options = {});

}  // namespace ckpt::core
