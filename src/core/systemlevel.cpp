#include "core/systemlevel.hpp"

#include <cstring>

#include "obs/observer.hpp"

namespace ckpt::core {
namespace {

/// Initiation marker: every engine front-end emits one, so traces show the
/// request entering the system even when execution is deferred.
void note_initiate(sim::SimKernel& kernel, const std::string& engine, const char* interface,
                   sim::Pid pid) {
  obs::Observer* observer = kernel.observer();
  if (observer == nullptr) return;
  observer->trace().instant("initiate", "ckpt", static_cast<std::uint64_t>(pid),
                            {obs::TraceArg::str("engine", engine),
                             obs::TraceArg::str("interface", interface)});
  observer->metrics().add("ckpt.initiated");
}

}  // namespace

// ---------------------------------------------------------------------------
// SyscallEngine
// ---------------------------------------------------------------------------

SyscallEngine::SyscallEngine(std::string name, storage::StorageBackend* backend,
                             EngineOptions options, sim::SimKernel& kernel, TargetMode mode,
                             sim::KernelModule* module)
    : CheckpointEngine(std::move(name), backend, std::move(options)),
      mode_(mode),
      dump_name_(name_ + "_dump") {
  kernel.register_syscall(
      dump_name_,
      [this](sim::SimKernel& k, sim::Process& caller, std::uint64_t a0, std::uint64_t,
             std::uint64_t) { return handle_dump(k, caller, a0); },
      module);
}

TaxonomyPath SyscallEngine::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kSystemCall,
          KThreadInterface::kNone};
}

std::int64_t SyscallEngine::handle_dump(sim::SimKernel& kernel, sim::Process& caller,
                                        std::uint64_t a0) {
  sim::Process* target = nullptr;
  if (mode_ == TargetMode::kCurrent) {
    // The `current` macro: whoever made the call is the subject.
    target = &caller;
  } else {
    target = kernel.find_process(static_cast<sim::Pid>(a0));
    if (target == nullptr || !target->alive()) return -3;  // ESRCH
  }
  note_initiate(kernel, name_, mode_ == TargetMode::kCurrent ? "syscall-self" : "syscall",
                target->pid);
  CheckpointResult result = perform_kernel_checkpoint(kernel, *target, kernel.now());
  record_result(result);
  return result.ok ? static_cast<std::int64_t>(result.image_id) : -5;  // EIO
}

std::uint64_t SyscallEngine::request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) {
  if (mode_ == TargetMode::kCurrent) return 0;  // only the app itself can initiate
  sim::Process* target = kernel.find_process(pid);
  if (target == nullptr || !target->alive()) return 0;
  // An external tool invokes the syscall with the target's pid; the kernel
  // services it in the tool's context (hence the address-space switch paid
  // inside the capture when copying the target's pages).
  note_initiate(kernel, name_, "syscall", target->pid);
  CheckpointResult result = perform_kernel_checkpoint(kernel, *target, kernel.now());
  return record_result(std::move(result));
}

// ---------------------------------------------------------------------------
// KernelSignalEngine
// ---------------------------------------------------------------------------

KernelSignalEngine::KernelSignalEngine(std::string name, storage::StorageBackend* backend,
                                       EngineOptions options, sim::SimKernel& kernel,
                                       sim::Signal sig, sim::KernelModule* module)
    : CheckpointEngine(std::move(name), backend, std::move(options)), sig_(sig) {
  kernel.register_kernel_signal(
      sig,
      [this](sim::SimKernel& k, sim::Process& proc) { on_signal_delivered(k, proc); },
      module);
}

TaxonomyPath KernelSignalEngine::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelSignal,
          KThreadInterface::kNone};
}

std::uint64_t KernelSignalEngine::request_checkpoint_async(sim::SimKernel& kernel,
                                                           sim::Pid pid) {
  sim::Process* target = kernel.find_process(pid);
  if (target == nullptr || !target->alive()) return 0;
  const std::uint64_t ticket = new_ticket();
  record_pending(ticket);
  pending_[pid].push_back(PendingRequest{ticket, kernel.now()});
  note_initiate(kernel, name_, "kernel-signal", pid);
  // kill(pid, SIGCKPT): the action is deferred until the target's next
  // kernel->user transition — the deferral claim C6 quantifies.
  kernel.send_signal(pid, sig_);
  return ticket;
}

void KernelSignalEngine::on_signal_delivered(sim::SimKernel& kernel, sim::Process& proc) {
  SimTime initiated_at = kernel.now();
  std::uint64_t ticket = 0;
  auto it = pending_.find(proc.pid);
  if (it != pending_.end() && !it->second.empty()) {
    initiated_at = it->second.front().initiated_at;
    ticket = it->second.front().ticket;
    it->second.pop_front();
  }
  CheckpointResult result = perform_kernel_checkpoint(kernel, proc, initiated_at);
  if (ticket != 0) {
    complete_ticket(ticket, std::move(result));
  } else {
    record_result(std::move(result));  // signal raised by some other path
  }
}

// ---------------------------------------------------------------------------
// KernelThreadEngine
// ---------------------------------------------------------------------------

KernelThreadEngine::KernelThreadEngine(std::string name, storage::StorageBackend* backend,
                                       EngineOptions options, sim::SimKernel& kernel,
                                       ThreadConfig config, sim::KernelModule* module)
    : CheckpointEngine(std::move(name), backend, std::move(options)), config_(config) {
  thread_pid_ = kernel.spawn_kernel_thread(
      name_ + "-kthread", [this](sim::SimKernel& k) { return thread_body(k); },
      config_.sched);

  switch (config_.interface) {
    case KThreadInterface::kDeviceIoctl: {
      device_path_ = "/dev/" + name_;
      sim::DeviceHooks hooks;
      hooks.ioctl = [this](sim::SimKernel& k, sim::Process&, std::uint64_t cmd,
                           std::uint64_t arg) -> std::int64_t {
        if (cmd != kIoctlCheckpoint) return -22;  // EINVAL
        const std::uint64_t ticket = enqueue(k, static_cast<sim::Pid>(arg));
        return ticket == 0 ? -3 : static_cast<std::int64_t>(ticket);
      };
      kernel.vfs().register_device(device_path_, std::move(hooks));
      if (module != nullptr) {
        const std::string path = device_path_;
        module->add_cleanup([path](sim::SimKernel& k) { k.vfs().unregister_device(path); });
      }
      break;
    }
    case KThreadInterface::kProcFs: {
      proc_path_ = "/proc/" + name_;
      sim::ProcEntryHooks hooks;
      hooks.write = [this](sim::SimKernel& k, sim::Process&,
                           std::string_view in) -> std::int64_t {
        const sim::Pid pid = static_cast<sim::Pid>(std::atoi(std::string(in).c_str()));
        const std::uint64_t ticket = enqueue(k, pid);
        return ticket == 0 ? -3 : static_cast<std::int64_t>(ticket);
      };
      hooks.read = [this](sim::SimKernel&) -> std::string {
        return name_ + ": queued=" + std::to_string(queue_.size()) +
               " active=" + (active_.has_value() ? "yes" : "no") + "\n";
      };
      kernel.vfs().register_proc_entry(proc_path_, std::move(hooks));
      if (module != nullptr) {
        const std::string path = proc_path_;
        module->add_cleanup(
            [path](sim::SimKernel& k) { k.vfs().unregister_proc_entry(path); });
      }
      break;
    }
    case KThreadInterface::kSyscall: {
      kernel.register_syscall(
          name_ + "_request",
          [this](sim::SimKernel& k, sim::Process&, std::uint64_t a0, std::uint64_t,
                 std::uint64_t) -> std::int64_t {
            const std::uint64_t ticket = enqueue(k, static_cast<sim::Pid>(a0));
            return ticket == 0 ? -3 : static_cast<std::int64_t>(ticket);
          },
          module);
      break;
    }
    case KThreadInterface::kNone:
      break;
  }

  if (module != nullptr) {
    const sim::Pid tp = thread_pid_;
    module->add_cleanup([tp](sim::SimKernel& k) {
      if (sim::Process* thread = k.find_process(tp); thread != nullptr && thread->alive()) {
        k.terminate(*thread, 0);
        k.reap(tp);
      }
    });
  }
}

TaxonomyPath KernelThreadEngine::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          config_.interface};
}

std::uint64_t KernelThreadEngine::request_checkpoint_async(sim::SimKernel& kernel,
                                                           sim::Pid pid) {
  return enqueue(kernel, pid);
}

std::uint64_t KernelThreadEngine::enqueue(sim::SimKernel& kernel, sim::Pid pid) {
  sim::Process* target = kernel.find_process(pid);
  if (target == nullptr || !target->alive()) return 0;
  const std::uint64_t ticket = new_ticket();
  record_pending(ticket);
  queue_.push_back(Request{ticket, pid, kernel.now()});
  note_initiate(kernel, name_, to_string(config_.interface), pid);
  kernel.wake(thread_pid_);
  return ticket;
}

sim::KStepResult KernelThreadEngine::thread_body(sim::SimKernel& kernel) {
  if (!active_.has_value()) {
    if (queue_.empty()) return sim::KStepResult::kSleep;
    Request request = queue_.front();
    queue_.pop_front();
    begin_session(kernel, std::move(request));
    if (!active_.has_value()) return queue_.empty() ? sim::KStepResult::kSleep
                                                    : sim::KStepResult::kContinue;
  }

  // Copy a bounded number of pages this quantum; a concurrent-mode target
  // keeps running in other scheduler slots meanwhile.
  sim::Process* target = kernel.find_process(active_->request.target);
  sim::Process* source = active_->shadow_pid != sim::kNoPid
                             ? kernel.find_process(active_->shadow_pid)
                             : target;
  if (source == nullptr || !source->alive()) {
    abort_session(kernel, "target died during checkpoint");
    return queue_.empty() ? sim::KStepResult::kSleep : sim::KStepResult::kContinue;
  }

  if (active_->capture->copy_some(config_.pages_per_step)) {
    finish_session(kernel);
  }
  return (active_.has_value() || !queue_.empty()) ? sim::KStepResult::kContinue
                                                  : sim::KStepResult::kSleep;
}

void KernelThreadEngine::begin_session(sim::SimKernel& kernel, Request request) {
  sim::Process* target = kernel.find_process(request.target);
  if (target == nullptr || !target->alive()) {
    CheckpointResult result;
    result.initiated_at = request.initiated_at;
    result.error = name_ + ": target vanished before checkpoint started";
    complete_ticket(request.ticket, std::move(result));
    return;
  }

  ActiveSession session;
  session.request = request;
  session.started_at = kernel.now() + kernel.step_charge();
  session.was_runnable = target->runnable();

  obs::TraceRecorder* trace = obs::tracer(kernel.observer());
  const std::uint64_t track = static_cast<std::uint64_t>(target->pid);
  if (trace != nullptr) {
    // Queue wait + thread wakeup latency, rendered retroactively.
    if (session.started_at > request.initiated_at) {
      trace->begin_at(request.initiated_at, "deferral", "ckpt", track);
      trace->end_at(session.started_at, "deferral", track);
    }
    trace->begin("checkpoint", "ckpt", track,
                 {obs::TraceArg::str("engine", name_),
                  obs::TraceArg::str("consistency", to_string(options_.consistency)),
                  obs::TraceArg::num("pid", track)});
  }

  ProcState& state = state_for(target->pid);
  session.take_delta = options_.incremental && state.tracker != nullptr &&
                       state.taken > 0 &&
                       (options_.full_every == 0 ||
                        state.taken % options_.full_every != 0);
  CaptureOptions capture = options_.capture;
  if (session.take_delta) {
    capture.ranges = state.tracker->collect(kernel, *target);
  }

  sim::Process* source = target;
  {
    obs::SpanGuard quiesce(trace, "quiesce", "ckpt", track);
    switch (options_.consistency) {
      case ConsistencyMode::kStopTarget:
        kernel.stop_process(*target);
        break;
      case ConsistencyMode::kForkAndCopy:
        session.shadow_pid = kernel.fork_process(*target, /*freeze_child=*/true);
        session.cow_at_start = target->stats.cow_faults;
        source = &kernel.process(session.shadow_pid);
        break;
      case ConsistencyMode::kConcurrent:
        break;
    }
  }
  // The capture span stays open across quanta; finish/abort closes it.
  if (trace != nullptr) trace->begin("capture", "ckpt", track);

  session.capture = std::make_unique<PagedCaptureSession>(kernel, *source, capture);
  active_ = std::move(session);
}

void KernelThreadEngine::finish_session(sim::SimKernel& kernel) {
  ActiveSession& session = *active_;
  sim::Process* target = kernel.find_process(session.request.target);

  storage::CheckpointImage image = session.capture->take_image();
  if (target != nullptr) {
    image.pid = target->pid;
    image.process_name = target->name;
    image.guest = target->guest_image;
  }
  image.kind =
      session.take_delta ? storage::ImageKind::kIncremental : storage::ImageKind::kFull;

  CheckpointResult result;
  result.initiated_at = session.request.initiated_at;
  result.started_at = session.started_at;
  result.kind = image.kind;
  result.payload_bytes = image.payload_bytes();
  result.pages = image.page_count();

  obs::Observer* observer = kernel.observer();
  obs::TraceRecorder* trace = obs::tracer(observer);
  const std::uint64_t track = static_cast<std::uint64_t>(session.request.target);
  if (trace != nullptr) {
    trace->end("capture", track,
               {obs::TraceArg::str("kind", to_string(result.kind)),
                obs::TraceArg::num("pages", result.pages),
                obs::TraceArg::num("bytes", result.payload_bytes)});
    trace->begin("store", "ckpt", track);
  }

  ProcState& state = state_for(session.request.target);
  auto charge = [&](SimTime t) { kernel.charge_time(t); };
  result.image_id = state.chain.append(std::move(image), charge);
  if (trace != nullptr) {
    trace->end("store", track, {obs::TraceArg::num("image_id", result.image_id)});
  }

  if (session.shadow_pid != sim::kNoPid) {
    if (sim::Process* shadow = kernel.find_process(session.shadow_pid)) {
      kernel.terminate(*shadow, 0);
      kernel.reap(session.shadow_pid);
    }
  }
  if (options_.consistency == ConsistencyMode::kStopTarget && target != nullptr &&
      session.was_runnable) {
    kernel.resume_process(*target);
  }

  // COW activity the live shadow induced while the target kept running: every
  // write the target made to a still-shared page paid a fault + page copy.
  std::uint64_t cow_faults = 0;
  if (session.shadow_pid != sim::kNoPid && target != nullptr) {
    cow_faults = target->stats.cow_faults - session.cow_at_start;
  }
  const SimTime cow_fault_ns =
      cow_faults * (kernel.costs().cow_fault_extra_ns +
                    kernel.costs().mem_copy_cost(sim::kPageSize));

  if (result.image_id == storage::kBadImageId) {
    result.error = name_ + ": storage backend rejected the image";
  } else {
    result.ok = true;
    ++state.taken;
    if (state.tracker != nullptr && target != nullptr) {
      state.tracker->begin_interval(kernel, *target);
    }
  }
  // The clock freezes within a scheduling step; time this step's work has
  // already charged (page copies, the storage write) counts toward the
  // completion instant.
  result.completed_at = kernel.now() + kernel.step_charge();
  if (trace != nullptr) {
    trace->end("checkpoint", track,
               {obs::TraceArg::str("outcome", result.ok ? "ok" : "store-failed"),
                obs::TraceArg::num("cow_faults", cow_faults)});
    if (session.shadow_pid != sim::kNoPid && target != nullptr) {
      trace->counter("ckpt.cow_faults", track, target->stats.cow_faults);
    }
  }
  if (observer != nullptr) {
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("ckpt.cow_faults", cow_faults);
    metrics.add("ckpt.cow_fault_ns", cow_fault_ns);
    if (result.ok) {
      metrics.add("ckpt.completed");
      metrics.add(result.kind == storage::ImageKind::kIncremental ? "ckpt.incremental"
                                                                  : "ckpt.full");
      metrics.add("ckpt.bytes_captured", result.payload_bytes);
      metrics.observe("ckpt.total_latency_ns", result.completed_at - result.initiated_at,
                      obs::MetricsRegistry::latency_bounds());
      metrics.observe("ckpt.initiation_latency_ns",
                      result.started_at - result.initiated_at,
                      obs::MetricsRegistry::latency_bounds());
      metrics.observe("ckpt.image_bytes", result.payload_bytes,
                      obs::MetricsRegistry::size_bounds());
    } else {
      metrics.add("ckpt.failed");
    }
  }
  complete_ticket(session.request.ticket, std::move(result));
  active_.reset();
}

void KernelThreadEngine::abort_session(sim::SimKernel& kernel, const std::string& reason) {
  CheckpointResult result;
  result.initiated_at = active_->request.initiated_at;
  result.started_at = active_->started_at;
  result.error = name_ + ": " + reason;
  // An aborted session must release its consistency protection too: a
  // leaked frozen shadow pins every COW frame of the snapshot forever, and
  // a target stopped for kStopTarget would never run again.
  if (active_->shadow_pid != sim::kNoPid) {
    if (sim::Process* shadow = kernel.find_process(active_->shadow_pid)) {
      if (shadow->alive()) kernel.terminate(*shadow, 0);
      kernel.reap(active_->shadow_pid);
    }
    active_->shadow_pid = sim::kNoPid;
  }
  if (options_.consistency == ConsistencyMode::kStopTarget && active_->was_runnable) {
    if (sim::Process* target = kernel.find_process(active_->request.target);
        target != nullptr && target->alive() && !target->runnable()) {
      kernel.resume_process(*target);
    }
  }
  if (obs::Observer* observer = kernel.observer()) {
    const std::uint64_t track = static_cast<std::uint64_t>(active_->request.target);
    observer->trace().end("capture", track);
    observer->trace().end("checkpoint", track,
                          {obs::TraceArg::str("outcome", "aborted")});
    observer->metrics().add("ckpt.aborted");
  }
  complete_ticket(active_->request.ticket, std::move(result));
  active_.reset();
}

}  // namespace ckpt::core
