// Gang scheduling built on checkpoint-based preemption.
//
// One of the classic non-fault-tolerance uses of checkpointing (§1): jobs
// are groups of processes that must run together; at a slice boundary the
// active gang is checkpointed out (safe preemption — its state is on
// stable storage, so a failure during the pause loses nothing) and the
// next gang is resumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "sim/kernel.hpp"

namespace ckpt::core {

class GangScheduler {
 public:
  /// `engine` provides the checkpoint-based preemption; pass nullptr for
  /// plain stop/resume gang switching (no failure safety).
  GangScheduler(sim::SimKernel& kernel, CheckpointEngine* engine)
      : kernel_(kernel), engine_(engine) {}

  std::size_t add_job(std::string name, std::vector<sim::Pid> pids);

  /// Make exactly job `index` runnable; checkpoint-preempt all others.
  /// Returns false if any preemption checkpoint failed.
  bool activate(std::size_t index);

  /// Round-robin the jobs: each runs for `slice`, `rounds` times around.
  void rotate(SimTime slice, int rounds);

  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  [[nodiscard]] const std::vector<sim::Pid>& job_pids(std::size_t index) const {
    return jobs_.at(index).pids;
  }
  /// Useful-work iterations accumulated by a job's processes.
  [[nodiscard]] std::uint64_t job_progress(std::size_t index) const;

 private:
  struct Job {
    std::string name;
    std::vector<sim::Pid> pids;
  };

  sim::SimKernel& kernel_;
  CheckpointEngine* engine_;
  std::vector<Job> jobs_;
};

}  // namespace ckpt::core
