#include "core/taxonomy.hpp"

#include <map>
#include <sstream>

namespace ckpt::core {

const char* to_string(Context value) {
  switch (value) {
    case Context::kUserLevel: return "user-level";
    case Context::kSystemLevel: return "system-level";
  }
  return "?";
}

const char* to_string(Agent value) {
  switch (value) {
    case Agent::kApplicationSource: return "application source code";
    case Agent::kPrecompiler: return "pre-compiler";
    case Agent::kSignalHandlerLib: return "signal-handler library";
    case Agent::kPreloadLib: return "LD_PRELOAD library";
    case Agent::kOperatingSystem: return "operating system";
    case Agent::kHardware: return "hardware";
  }
  return "?";
}

const char* to_string(Technique value) {
  switch (value) {
    case Technique::kLibraryCall: return "library call";
    case Technique::kUserSignalHandler: return "user signal handler";
    case Technique::kSystemCall: return "system call";
    case Technique::kKernelSignal: return "kernel-mode signal handler";
    case Technique::kKernelThread: return "kernel thread";
    case Technique::kDirectoryController: return "directory controller";
    case Technique::kCacheBuffer: return "cache checkpoint buffers";
  }
  return "?";
}

const char* to_string(KThreadInterface value) {
  switch (value) {
    case KThreadInterface::kNone: return "-";
    case KThreadInterface::kDeviceIoctl: return "/dev ioctl";
    case KThreadInterface::kProcFs: return "/proc";
    case KThreadInterface::kSyscall: return "syscall";
  }
  return "?";
}

TaxonomyRegistry& TaxonomyRegistry::instance() {
  static TaxonomyRegistry registry;
  return registry;
}

void TaxonomyRegistry::add(TaxonomyEntry entry) { entries_.push_back(std::move(entry)); }

void TaxonomyRegistry::clear() { entries_.clear(); }

std::string TaxonomyRegistry::render_tree() const {
  // context -> agent -> technique -> [mechanisms]
  std::map<Context, std::map<Agent, std::map<Technique, std::vector<const TaxonomyEntry*>>>>
      tree;
  for (const auto& entry : entries_) {
    tree[entry.path.context][entry.path.agent][entry.path.technique].push_back(&entry);
  }
  std::ostringstream out;
  out << "checkpoint/restart implementations\n";
  for (const auto& [context, agents] : tree) {
    out << "+- " << to_string(context) << "\n";
    for (const auto& [agent, techniques] : agents) {
      out << "|  +- " << to_string(agent) << "\n";
      for (const auto& [technique, mechanisms] : techniques) {
        out << "|  |  +- " << to_string(technique) << "\n";
        for (const TaxonomyEntry* mech : mechanisms) {
          out << "|  |  |  * " << mech->name;
          if (mech->path.interface != KThreadInterface::kNone) {
            out << " [" << to_string(mech->path.interface) << "]";
          }
          if (!mech->note.empty()) out << " -- " << mech->note;
          out << "\n";
        }
      }
    }
  }
  return out.str();
}

}  // namespace ckpt::core
