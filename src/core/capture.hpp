// Process-state capture: kernel-level and user-level flavours.
//
// Both produce the same CheckpointImage; what differs — and what claims C1
// and C2 quantify — is *how* the state is obtained:
//
//   * capture_kernel_level() reads the task structure directly: registers,
//     VMA list, descriptor offsets and signal state cost a handful of
//     field reads, and pages are copied in kernel mode.
//
//   * UserLevelRuntime::capture() is restricted to what user space can
//     see.  The VMA list comes from a /proc/self/maps walk, heap bounds
//     from sbrk(0), descriptor offsets from one lseek() per descriptor,
//     pending signals from sigpending() — each a syscall crossing — and
//     descriptors/mappings must have been *shadow-tracked* all along via
//     syscall interposition, since the kernel's fd table is not readable
//     from user space.  Untracked descriptors are silently missed: the
//     transparency hazard the survey describes.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/userapi.hpp"
#include "storage/image.hpp"

namespace ckpt::core {

/// A dirty range within a page (block / cache-line granularity support).
struct DirtyRange {
  sim::PageNum page = 0;
  std::uint32_t offset = 0;
  std::uint32_t length = sim::kPageSize;
};

struct CaptureOptions {
  /// nullopt => capture all mapped pages (full checkpoint).  Otherwise only
  /// the listed ranges (incremental).
  std::optional<std::vector<DirtyRange>> ranges;
  /// Skip the text segment (it is reconstructible from the executable);
  /// PsncR/C sets false — it "does not perform any data optimization".
  bool skip_code_segment = true;
  /// Snapshot regular-file contents into the image (UCLiK, PsncR/C).
  bool save_file_contents = false;
  /// Clear MMU dirty bits once captured.
  bool clear_dirty_bits = true;
};

/// Capture in kernel mode with direct task-structure access.
storage::CheckpointImage capture_kernel_level(sim::SimKernel& kernel, sim::Process& proc,
                                              const CaptureOptions& options);

/// The metadata half of capture_kernel_level: header, registers, heap
/// bounds, signals, descriptors — everything but page payloads.  The
/// streaming commit path runs it against the frozen COW shadow and then
/// streams the payloads straight into storage, chunk by chunk.
void capture_image_metadata(sim::SimKernel& kernel, sim::Process& proc,
                            const CaptureOptions& options,
                            storage::CheckpointImage& image);

/// Build the page-copy plan for `proc`: (segment index, range) pairs
/// honouring `options`, filling image.segments with the VMA layout (no
/// payloads yet).  Pages may vanish between planning and copying; copiers
/// must skip entries whose PTE is gone.
std::vector<std::pair<std::size_t, DirtyRange>> build_capture_plan(
    const sim::Process& proc, const CaptureOptions& options,
    storage::CheckpointImage& image);

/// Restore semantics shared by all mechanisms: materialise the image's
/// state into an existing (stopped) process shell.
void restore_into_process(sim::SimKernel& kernel, sim::Process& proc,
                          const storage::CheckpointImage& image);

/// Incremental kernel-mode capture session for kernel-thread engines: copy
/// a bounded number of pages per scheduler quantum so a *concurrent*
/// checkpoint interleaves with application execution (the data-consistency
/// hazard of §4.1).  The metadata snapshot is taken at construction; page
/// payloads are copied across successive copy_some() calls.
class PagedCaptureSession {
 public:
  PagedCaptureSession(sim::SimKernel& kernel, sim::Process& proc, CaptureOptions options);

  /// Copy up to `max_pages` more page payloads.  Returns true when done.
  bool copy_some(std::size_t max_pages);

  [[nodiscard]] bool done() const { return cursor_ >= plan_.size(); }
  [[nodiscard]] std::size_t pages_total() const { return plan_.size(); }
  [[nodiscard]] std::size_t pages_copied() const { return cursor_; }

  /// Finalize and take the image (valid once done()).
  storage::CheckpointImage take_image();

 private:
  sim::SimKernel& kernel_;
  sim::Process& proc_;
  CaptureOptions options_;
  storage::CheckpointImage image_;
  std::vector<std::pair<std::size_t, DirtyRange>> plan_;  ///< (segment idx, range)
  std::size_t cursor_ = 0;
};

/// The state a user-level checkpoint library accumulates inside the
/// process: shadow descriptor and mapping tables maintained by syscall
/// interposition, installed either by relinking (install with
/// `via_preload=false`) or LD_PRELOAD (`via_preload=true`).
class UserLevelRuntime {
 public:
  /// Install the library into the process: interposer plus shadow tables.
  /// Must happen at process start; descriptors opened before installation
  /// are never seen (tested by the transparency probes).
  void install(sim::SimKernel& kernel, sim::Process& proc, bool via_preload);
  void uninstall(sim::Process& proc);

  /// Capture using only user-visible operations; runs in the process's own
  /// context (library call or signal handler).
  storage::CheckpointImage capture(sim::UserApi& api, const CaptureOptions& options);

  [[nodiscard]] const std::vector<sim::Fd>& shadow_fds() const { return shadow_fds_; }
  [[nodiscard]] bool installed() const { return installed_; }

 private:
  bool installed_ = false;
  bool via_preload_ = false;
  std::vector<sim::Fd> shadow_fds_;
  std::uint64_t interposed_calls_ = 0;
};

/// Byte-compare two images' memory payloads (test/bench helper).
bool images_equal_memory(const storage::CheckpointImage& a,
                         const storage::CheckpointImage& b);

}  // namespace ckpt::core
