#include "core/capture.hpp"

#include <algorithm>
#include <map>

namespace ckpt::core {

using storage::CheckpointImage;
using storage::FileDescriptorImage;
using storage::MemorySegmentImage;
using storage::PageImage;
using storage::ThreadImage;

/// Fill the image header + non-memory state from direct kernel access.
void capture_image_metadata(sim::SimKernel& kernel, sim::Process& proc,
                            const CaptureOptions& options, CheckpointImage& image) {
  image.pid = proc.pid;
  image.process_name = proc.name;
  image.hostname = kernel.hostname;
  image.taken_at = kernel.now();
  image.guest = proc.guest_image;

  // Registers: a handful of direct field reads per thread.
  for (const sim::Thread& thread : proc.threads) {
    image.threads.push_back(ThreadImage{thread.tid, thread.regs});
    kernel.charge_kernel_field_reads(10);
  }

  image.brk = proc.brk;
  image.heap_base = proc.heap_base;
  image.mmap_next = proc.mmap_next;
  image.sig_pending = proc.signals.pending;
  image.sig_mask = proc.signals.mask;
  image.sig_dispositions.reserve(proc.signals.disposition.size());
  for (auto d : proc.signals.disposition) {
    image.sig_dispositions.push_back(static_cast<std::uint8_t>(d));
  }
  kernel.charge_kernel_field_reads(4);

  proc.fds.for_each([&](sim::Fd fd, const sim::OpenFileDescription& ofd) {
    FileDescriptorImage entry;
    entry.fd = fd;
    entry.kind = ofd.kind;
    entry.path = ofd.kind == sim::FileKind::kRegular && ofd.file ? ofd.file->path
                                                                 : ofd.object_path;
    entry.offset = ofd.offset;
    entry.flags = ofd.flags;
    entry.was_deleted = ofd.kind == sim::FileKind::kRegular && ofd.file && ofd.file->deleted;
    if (options.save_file_contents && ofd.kind == sim::FileKind::kRegular && ofd.file) {
      entry.contents = ofd.file->data;
      kernel.charge_time(kernel.costs().mem_copy_cost(ofd.file->data.size()),
                         sim::ChargeKind::kCompute);
    }
    kernel.charge_kernel_field_reads(4);
    image.files.push_back(std::move(entry));
  });

  image.bound_ports = proc.bound_ports;
}

/// Build the copy plan: (segment index, range) pairs honouring options.
std::vector<std::pair<std::size_t, DirtyRange>> build_capture_plan(
    const sim::Process& proc, const CaptureOptions& options, CheckpointImage& image) {
  std::vector<std::pair<std::size_t, DirtyRange>> plan;
  const auto& vmas = proc.aspace->vmas();
  image.segments.clear();
  image.segments.reserve(vmas.size());
  for (const sim::Vma& vma : vmas) {
    MemorySegmentImage seg;
    seg.vma = vma;
    image.segments.push_back(std::move(seg));
  }

  auto segment_of = [&](sim::PageNum page) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < vmas.size(); ++i) {
      if (vmas[i].contains_page(page)) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };

  if (options.ranges.has_value()) {
    for (const DirtyRange& range : *options.ranges) {
      const std::ptrdiff_t seg = segment_of(range.page);
      if (seg < 0) continue;  // page unmapped since tracking began
      if (options.skip_code_segment && vmas[static_cast<std::size_t>(seg)].kind ==
                                           sim::VmaKind::kCode) {
        continue;
      }
      plan.emplace_back(static_cast<std::size_t>(seg), range);
    }
  } else {
    for (std::size_t i = 0; i < vmas.size(); ++i) {
      if (options.skip_code_segment && vmas[i].kind == sim::VmaKind::kCode) continue;
      for (sim::PageNum p = vmas[i].first_page; p < vmas[i].first_page + vmas[i].page_count;
           ++p) {
        plan.emplace_back(i, DirtyRange{p, 0, sim::kPageSize});
      }
    }
  }
  return plan;
}

CheckpointImage capture_kernel_level(sim::SimKernel& kernel, sim::Process& proc,
                                     const CaptureOptions& options) {
  PagedCaptureSession session(kernel, proc, options);
  while (!session.copy_some(1024)) {
  }
  return session.take_image();
}

// ---------------------------------------------------------------------------
// PagedCaptureSession
// ---------------------------------------------------------------------------

PagedCaptureSession::PagedCaptureSession(sim::SimKernel& kernel, sim::Process& proc,
                                         CaptureOptions options)
    : kernel_(kernel), proc_(proc), options_(std::move(options)) {
  capture_image_metadata(kernel_, proc_, options_, image_);
  plan_ = build_capture_plan(proc_, options_, image_);
}

bool PagedCaptureSession::copy_some(std::size_t max_pages) {
  std::size_t copied = 0;
  while (cursor_ < plan_.size() && copied < max_pages) {
    const auto& [seg_idx, range] = plan_[cursor_];
    const std::uint32_t length =
        std::min<std::uint32_t>(range.length, sim::kPageSize - range.offset);
    PageImage page;
    page.page = range.page;
    page.offset = range.offset;
    page.data.resize(length);
    // Page may have been unmapped while the (concurrent) capture was in
    // flight; skip it rather than crash — another face of the consistency
    // hazard of not stopping the target.
    if (proc_.aspace->pte(range.page) != nullptr) {
      kernel_.kernel_read_user_range(proc_, sim::page_base(range.page) + range.offset,
                                     page.data);
      image_.segments[seg_idx].pages.push_back(std::move(page));
    }
    ++cursor_;
    ++copied;
  }
  return done();
}

CheckpointImage PagedCaptureSession::take_image() {
  if (!done()) throw std::logic_error("PagedCaptureSession: capture incomplete");
  if (options_.clear_dirty_bits) proc_.aspace->clear_dirty_bits();
  return std::move(image_);
}

// ---------------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------------

void restore_into_process(sim::SimKernel& kernel, sim::Process& proc,
                          const CheckpointImage& image) {
  // Fresh address space, rebuilt from the image's layout.
  proc.aspace = std::make_unique<sim::AddressSpace>(&kernel.physical_memory());
  for (const MemorySegmentImage& seg : image.segments) {
    proc.aspace->map_region(seg.vma.start(), seg.vma.page_count, seg.vma.prot, seg.vma.kind,
                            seg.vma.name);
    for (const PageImage& page : seg.pages) {
      kernel.kernel_write_user_range(proc, sim::page_base(page.page) + page.offset,
                                     page.data);
    }
  }
  proc.aspace->clear_dirty_bits();

  proc.threads.clear();
  for (const ThreadImage& t : image.threads) {
    proc.threads.push_back(sim::Thread{t.tid, t.regs});
  }

  proc.brk = image.brk;
  proc.heap_base = image.heap_base;
  proc.mmap_next = image.mmap_next;
  proc.signals.pending = image.sig_pending;
  proc.signals.mask = image.sig_mask;
  for (std::size_t i = 0; i < proc.signals.disposition.size() &&
                          i < image.sig_dispositions.size();
       ++i) {
    proc.signals.disposition[i] =
        static_cast<sim::SignalDisposition>(image.sig_dispositions[i]);
  }

  // Descriptors: reattach by kind.  Missing regular files are recreated
  // from saved contents when present (UCLiK), otherwise as empty files —
  // the restore still succeeds but data-dependent behaviour may differ,
  // which the UCLiK tests assert on.
  proc.fds.clear();
  auto& vfs = kernel.vfs();
  for (const FileDescriptorImage& f : image.files) {
    auto ofd = std::make_shared<sim::OpenFileDescription>();
    ofd->kind = f.kind;
    ofd->offset = f.offset;
    ofd->flags = f.flags;
    ofd->object_path = f.path;
    switch (f.kind) {
      case sim::FileKind::kRegular: {
        auto file = vfs.lookup(f.path);
        if (file == nullptr) {
          file = vfs.create(f.path, f.contents.value_or(std::vector<std::byte>{}));
        } else if (f.contents.has_value()) {
          file->data = *f.contents;  // roll file content back to checkpoint time
        }
        ofd->file = std::move(file);
        break;
      }
      case sim::FileKind::kDevice:
        ofd->device = vfs.device(f.path);
        break;
      case sim::FileKind::kProcEntry:
        ofd->proc = vfs.proc_entry(f.path);
        break;
      case sim::FileKind::kPipe:
        ofd->pipe = std::make_shared<sim::SimPipe>();
        break;
      case sim::FileKind::kSocket:
        ofd->socket = std::make_shared<sim::SimSocket>();
        break;
    }
    proc.fds.install_at(f.fd, std::move(ofd));
  }
}

// ---------------------------------------------------------------------------
// UserLevelRuntime
// ---------------------------------------------------------------------------

void UserLevelRuntime::install(sim::SimKernel&, sim::Process& proc, bool via_preload) {
  installed_ = true;
  via_preload_ = via_preload;
  shadow_fds_.clear();
  // Shadow-track descriptor lifecycle.  Descriptors that already exist are
  // invisible: the library cannot read the kernel's fd table.
  proc.fd_hook = [this](sim::Process&, sim::Process::FdOp op, sim::Fd fd, const std::string&,
                        std::uint32_t) {
    switch (op) {
      case sim::Process::FdOp::kOpen:
      case sim::Process::FdOp::kDup:
      case sim::Process::FdOp::kSocket:
        shadow_fds_.push_back(fd);
        break;
      case sim::Process::FdOp::kClose:
        shadow_fds_.erase(std::remove(shadow_fds_.begin(), shadow_fds_.end(), fd),
                          shadow_fds_.end());
        break;
    }
  };
  // The interposer itself: every syscall pays the wrapper cost.
  proc.interposer = [this](sim::SimKernel&, sim::Process&, const char*, std::uint64_t,
                           std::uint64_t) { ++interposed_calls_; };
}

void UserLevelRuntime::uninstall(sim::Process& proc) {
  installed_ = false;
  proc.fd_hook = nullptr;
  proc.interposer.reset();
}

CheckpointImage UserLevelRuntime::capture(sim::UserApi& api, const CaptureOptions& options) {
  sim::Process& proc = api.process();
  sim::SimKernel& kernel = api.kernel();
  CheckpointImage image;
  image.pid = proc.pid;  // getpid(): one more crossing
  (void)api.sys_getpid();
  image.process_name = proc.name;
  image.hostname = kernel.hostname;
  image.taken_at = kernel.now();
  image.guest = proc.guest_image;

  // Registers via setjmp: cheap, no crossing.
  kernel.charge_time(100, sim::ChargeKind::kCompute);
  for (const sim::Thread& thread : proc.threads) {
    image.threads.push_back(ThreadImage{thread.tid, thread.regs});
  }

  // The user-level extraction tour the survey describes.
  const auto vmas = api.sys_proc_maps();          // one crossing per VMA
  image.brk = api.sys_sbrk(0);  // the classic sbrk(0) heap-bound query
  image.heap_base = proc.heap_base;
  image.mmap_next = proc.mmap_next;
  image.sig_pending = api.sys_sigpending();       // sigpending()
  image.sig_mask = proc.signals.mask;             // library tracks its own mask
  image.sig_dispositions.reserve(proc.signals.disposition.size());
  for (auto d : proc.signals.disposition) {
    image.sig_dispositions.push_back(static_cast<std::uint8_t>(d));
  }

  // Memory: the process reads its own address space (no crossings, but
  // every byte moves through user-space buffers).
  image.segments.reserve(vmas.size());
  for (const sim::Vma& vma : vmas) {
    MemorySegmentImage seg;
    seg.vma = vma;
    if (!(options.skip_code_segment && vma.kind == sim::VmaKind::kCode)) {
      const bool filter = options.ranges.has_value();
      for (sim::PageNum p = vma.first_page; p < vma.first_page + vma.page_count; ++p) {
        std::uint32_t offset = 0;
        std::uint32_t length = sim::kPageSize;
        if (filter) {
          bool found = false;
          for (const DirtyRange& r : *options.ranges) {
            if (r.page == p) {
              offset = r.offset;
              length = r.length;
              found = true;
              break;
            }
          }
          if (!found) continue;
        }
        PageImage page;
        page.page = p;
        page.offset = offset;
        page.data.resize(std::min<std::uint32_t>(length, sim::kPageSize - offset));
        if (!api.load(sim::page_base(p) + offset, page.data)) break;
        seg.pages.push_back(std::move(page));
      }
    }
    image.segments.push_back(std::move(seg));
  }

  // Descriptors: only shadow-tracked ones; offset costs one lseek() each.
  for (sim::Fd fd : shadow_fds_) {
    const auto ofd = proc.fds.get(fd);
    if (!ofd) continue;
    FileDescriptorImage entry;
    entry.fd = fd;
    entry.kind = ofd->kind;
    entry.path = ofd->kind == sim::FileKind::kRegular && ofd->file ? ofd->file->path
                                                                   : ofd->object_path;
    entry.flags = ofd->flags;
    entry.offset = static_cast<std::uint64_t>(api.sys_lseek(fd, 0, sim::SeekWhence::kCur));
    entry.was_deleted =
        ofd->kind == sim::FileKind::kRegular && ofd->file && ofd->file->deleted;
    image.files.push_back(std::move(entry));
  }

  image.bound_ports = proc.bound_ports;
  return image;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool images_equal_memory(const CheckpointImage& a, const CheckpointImage& b) {
  std::map<std::pair<sim::PageNum, std::uint32_t>, const std::vector<std::byte>*> pa, pb;
  for (const auto& seg : a.segments) {
    for (const auto& page : seg.pages) pa[{page.page, page.offset}] = &page.data;
  }
  for (const auto& seg : b.segments) {
    for (const auto& page : seg.pages) pb[{page.page, page.offset}] = &page.data;
  }
  if (pa.size() != pb.size()) return false;
  for (const auto& [key, data] : pa) {
    auto it = pb.find(key);
    if (it == pb.end() || *it->second != *data) return false;
  }
  return true;
}

}  // namespace ckpt::core
