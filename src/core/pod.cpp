#include "core/pod.hpp"

#include "core/capture.hpp"

namespace ckpt::core {

std::optional<sim::Pid> Pod::real_pid(sim::Pid vpid) const {
  auto it = vpid_to_real.find(vpid);
  return it == vpid_to_real.end() ? std::nullopt : std::optional(it->second);
}

std::optional<sim::Pid> Pod::virtual_pid(sim::Pid real) const {
  for (const auto& [vpid, rpid] : vpid_to_real) {
    if (rpid == real) return vpid;
  }
  return std::nullopt;
}

Pod& PodManager::create_pod(const std::string& name) {
  const PodId id = next_id_++;
  Pod pod;
  pod.id = id;
  pod.name = name;
  auto [it, inserted] = pods_.emplace(id, std::move(pod));
  return it->second;
}

Pod* PodManager::find_pod(PodId id) {
  auto it = pods_.find(id);
  return it == pods_.end() ? nullptr : &it->second;
}

sim::Pid PodManager::adopt(sim::SimKernel& kernel, sim::Pid real_pid, PodId pod_id) {
  Pod* pod = find_pod(pod_id);
  sim::Process* proc = kernel.find_process(real_pid);
  if (pod == nullptr || proc == nullptr || !proc->alive()) return sim::kNoPid;

  const sim::Pid vpid = pod->next_vpid++;
  pod->vpid_to_real[vpid] = real_pid;
  proc->pod_id = pod_id;
  proc->syscall_extra_ns = translation_ns_;

  // Existing bound ports become virtual aliases of themselves.
  for (std::uint16_t port : proc->bound_ports) {
    pod->vport_to_real[port] = port;
  }
  return vpid;
}

std::uint16_t PodManager::pick_real_port(sim::SimKernel& kernel, std::uint16_t wanted,
                                         sim::Pid owner) {
  if (kernel.bind_port(wanted, owner)) return wanted;
  for (std::uint16_t candidate = 32768; candidate != 0; ++candidate) {
    if (kernel.bind_port(candidate, owner)) return candidate;
  }
  return 0;
}

RestartResult PodManager::restart_in_pod(sim::SimKernel& kernel,
                                         const storage::CheckpointImage& image,
                                         PodId pod_id) {
  RestartResult result;
  Pod* pod = find_pod(pod_id);
  if (pod == nullptr) {
    result.error = "no such pod";
    return result;
  }

  // The real pid is whatever the kernel hands out; the *virtual* pid is the
  // checkpointed one, so the application's notion of its identity survives.
  sim::Pid real;
  try {
    real = kernel.create_restored_process(image.process_name, image.guest, std::nullopt);
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }
  sim::Process& proc = kernel.process(real);
  restore_into_process(kernel, proc, image);

  const sim::Pid vpid = image.pid;
  pod->vpid_to_real[vpid] = real;
  if (vpid >= pod->next_vpid) pod->next_vpid = vpid + 1;
  proc.pod_id = pod_id;
  proc.syscall_extra_ns = translation_ns_;

  // Virtual ports: rebind each checkpointed port to any free real port and
  // record the translation; the process keeps using the virtual number.
  for (std::uint16_t vport : image.bound_ports) {
    const std::uint16_t real_port = pick_real_port(kernel, vport, real);
    if (real_port == 0) {
      result.warnings.push_back("no free real port for virtual port " +
                                std::to_string(vport));
      continue;
    }
    pod->vport_to_real[vport] = real_port;
    proc.bound_ports.push_back(real_port);
    if (real_port != vport) {
      result.warnings.push_back("virtual port " + std::to_string(vport) +
                                " remapped to real port " + std::to_string(real_port));
    }
  }

  kernel.resume_process(proc);
  result.ok = true;
  result.pid = real;
  return result;
}

void PodManager::clear_host_bindings(PodId pod_id) {
  if (Pod* pod = find_pod(pod_id)) {
    pod->vpid_to_real.clear();
    pod->vport_to_real.clear();
  }
}

}  // namespace ckpt::core
