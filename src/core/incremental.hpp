// Dirty tracking for incremental checkpointing.
//
// Four tracking techniques from the survey, all producing DirtyRange lists
// consumed by the capture layer:
//
//   * KernelWpTracker   — §4: write-protect pages; the *kernel* page-fault
//                         handler records the page and restores access.
//                         Cost per first touch: one kernel fault.
//   * UserWpTracker     — §3: mprotect() + SIGSEGV to a *user-level*
//                         handler that records the page and re-mprotects.
//                         Cost per first touch: signal delivery plus an
//                         mprotect syscall — the expensive flavour.
//   * PteScanTracker    — scan/clear the MMU dirty bits at checkpoint time;
//                         zero per-write cost (the cheapest kernel option).
//   * ProbabilisticTracker — [23]: no write tracking at all; at checkpoint
//                         time hash fixed-size blocks and compare against
//                         the previous interval's signatures.  Granularity
//                         finer than a page; a truncated signature admits a
//                         small false-clean (missed update) probability.
//   * AdaptiveBlockTracker — [1]: probabilistic tracking with per-region
//                         block sizes adapted to observed dirty density.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "sim/kernel.hpp"

namespace ckpt::core {

class DirtyTracker {
 public:
  virtual ~DirtyTracker() = default;

  /// Begin a tracking interval (called after attach and after every
  /// checkpoint).  May write-protect pages, snapshot hashes, etc.
  virtual void begin_interval(sim::SimKernel& kernel, sim::Process& proc) = 0;

  /// Ranges that changed during the interval (called at checkpoint time).
  virtual std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) = 0;

  /// Remove any hooks from the process.
  virtual void detach(sim::Process& proc) { (void)proc; }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Kernel page-fault dirty tracking (write-protect + wp_hook).
class KernelWpTracker final : public DirtyTracker {
 public:
  void begin_interval(sim::SimKernel& kernel, sim::Process& proc) override;
  std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) override;
  void detach(sim::Process& proc) override;
  [[nodiscard]] const char* name() const override { return "kernel-wp"; }

  [[nodiscard]] std::uint64_t faults_taken() const { return faults_; }

 private:
  std::set<sim::PageNum> dirty_;
  std::uint64_t faults_ = 0;
};

/// User-level mprotect/SIGSEGV dirty tracking.  Requires the process to
/// have a UserLevelRuntime-style library handler slot available; installs
/// a library SIGSEGV handler.
class UserWpTracker final : public DirtyTracker {
 public:
  void begin_interval(sim::SimKernel& kernel, sim::Process& proc) override;
  std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) override;
  void detach(sim::Process& proc) override;
  [[nodiscard]] const char* name() const override { return "user-wp"; }

  [[nodiscard]] std::uint64_t signals_taken() const { return signals_; }

 private:
  /// mprotect all writable regions read-only, from user context (syscalls).
  void protect_all(sim::SimKernel& kernel, sim::Process& proc);

  std::set<sim::PageNum> dirty_;
  std::uint64_t signals_ = 0;
};

/// MMU dirty-bit scan.
class PteScanTracker final : public DirtyTracker {
 public:
  void begin_interval(sim::SimKernel& kernel, sim::Process& proc) override;
  std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) override;
  [[nodiscard]] const char* name() const override { return "pte-scan"; }
};

/// Probabilistic (block-hash) tracking [23].
class ProbabilisticTracker final : public DirtyTracker {
 public:
  /// `block_bytes` must divide the page size.  `signature_bits` truncates
  /// the block hash; fewer bits => smaller signature memory, higher
  /// false-clean probability.
  explicit ProbabilisticTracker(std::uint32_t block_bytes = 1024,
                                std::uint32_t signature_bits = 64);

  void begin_interval(sim::SimKernel& kernel, sim::Process& proc) override;
  std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) override;
  [[nodiscard]] const char* name() const override { return "probabilistic"; }

  [[nodiscard]] std::uint32_t block_bytes() const { return block_bytes_; }
  /// Signature memory the tracker currently holds.
  [[nodiscard]] std::uint64_t signature_bytes() const;
  /// Theoretical per-block false-clean probability (2^-signature_bits).
  [[nodiscard]] double false_clean_probability() const;

 private:
  std::uint64_t block_signature(sim::SimKernel& kernel, sim::Process& proc,
                                sim::PageNum page, std::uint32_t offset);

  std::uint32_t block_bytes_;
  std::uint32_t signature_bits_;
  std::map<std::pair<sim::PageNum, std::uint32_t>, std::uint64_t> signatures_;
};

/// Adaptive block-size tracking [1]: starts from `initial_block`, then per
/// checkpoint halves the block size in regions writing sparsely and doubles
/// it in regions writing densely, within [min_block, max_block].
class AdaptiveBlockTracker final : public DirtyTracker {
 public:
  AdaptiveBlockTracker(std::uint32_t initial_block = 1024, std::uint32_t min_block = 128,
                       std::uint32_t max_block = sim::kPageSize);

  void begin_interval(sim::SimKernel& kernel, sim::Process& proc) override;
  std::vector<DirtyRange> collect(sim::SimKernel& kernel, sim::Process& proc) override;
  [[nodiscard]] const char* name() const override { return "adaptive-block"; }

  /// Current block size chosen for a VMA (by first page), for inspection.
  [[nodiscard]] std::uint32_t block_size_for(sim::PageNum first_page) const;

 private:
  struct RegionState {
    std::uint32_t block_bytes;
    std::map<std::pair<sim::PageNum, std::uint32_t>, std::uint64_t> signatures;
  };

  std::uint32_t min_block_;
  std::uint32_t max_block_;
  std::uint32_t initial_block_;
  std::map<sim::PageNum, RegionState> regions_;  ///< keyed by VMA first page
};

}  // namespace ckpt::core
