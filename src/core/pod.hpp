// ZAP-style pods: private virtual namespaces for migratable process groups.
//
// The survey (§3, §4.1) identifies persistent operating-system state —
// PIDs, bound ports, open resources — as what breaks naive migration: the
// identifiers a process saw before migration may be taken, or simply mean
// something else, on the destination machine.  ZAP's answer is the *pod*:
// processes see virtual identifiers, and a per-pod translation table maps
// them to real ones on whatever machine currently hosts the pod.  The
// price is intercepting every system call (Process::syscall_extra_ns).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "sim/kernel.hpp"

namespace ckpt::core {

using PodId = std::uint64_t;

struct Pod {
  PodId id = 0;
  std::string name;
  /// Virtual pid -> real pid on the current host.
  std::map<sim::Pid, sim::Pid> vpid_to_real;
  /// Virtual port -> real port on the current host.
  std::map<std::uint16_t, std::uint16_t> vport_to_real;
  sim::Pid next_vpid = 1;

  [[nodiscard]] std::optional<sim::Pid> real_pid(sim::Pid vpid) const;
  [[nodiscard]] std::optional<sim::Pid> virtual_pid(sim::Pid real) const;
};

class PodManager {
 public:
  /// Per-syscall interception overhead inside a pod (the ZAP run-time tax).
  explicit PodManager(SimTime translation_ns = 200) : translation_ns_(translation_ns) {}

  Pod& create_pod(const std::string& name);
  [[nodiscard]] Pod* find_pod(PodId id);

  /// Move an existing process into a pod; it receives a virtual pid and its
  /// bound ports get virtual aliases.
  sim::Pid adopt(sim::SimKernel& kernel, sim::Pid real_pid, PodId pod_id);

  /// Restart a checkpoint image inside a pod on `kernel`: the image's pid
  /// and ports become *virtual* identifiers, so the restart succeeds even
  /// when the real ones are taken — the resource-conflict solution naive
  /// restart lacks.
  RestartResult restart_in_pod(sim::SimKernel& kernel,
                               const storage::CheckpointImage& image, PodId pod_id);

  /// Re-home a pod's translation tables after the pod's processes have been
  /// restarted on another machine (ports get fresh real bindings there).
  void clear_host_bindings(PodId pod_id);

  [[nodiscard]] SimTime translation_overhead() const { return translation_ns_; }

 private:
  /// Find a free real port on the kernel, preferring `wanted`.
  static std::uint16_t pick_real_port(sim::SimKernel& kernel, std::uint16_t wanted,
                                      sim::Pid owner);

  SimTime translation_ns_;
  std::map<PodId, Pod> pods_;
  PodId next_id_ = 1;
};

}  // namespace ckpt::core
