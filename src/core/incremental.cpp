#include "core/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/userapi.hpp"
#include "util/crc64.hpp"

namespace ckpt::core {
namespace {

/// Pages eligible for dirty tracking: writable data (skip code; its pages
/// never change).
bool trackable(const sim::Vma& vma) { return vma.kind != sim::VmaKind::kCode; }

std::vector<DirtyRange> pages_to_ranges(const std::set<sim::PageNum>& pages) {
  std::vector<DirtyRange> out;
  out.reserve(pages.size());
  for (sim::PageNum p : pages) out.push_back(DirtyRange{p, 0, sim::kPageSize});
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// KernelWpTracker
// ---------------------------------------------------------------------------

void KernelWpTracker::begin_interval(sim::SimKernel&, sim::Process& proc) {
  dirty_.clear();
  // Write-protect every trackable page; the fault path consults wp_hook.
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    proc.aspace->protect_pages(vma.first_page, vma.page_count,
                               vma.prot & static_cast<std::uint8_t>(~sim::kProtWrite));
  }
  proc.wp_hook = [this](sim::SimKernel&, sim::Process& p, sim::PageNum page) {
    ++faults_;
    dirty_.insert(page);
    p.aspace->unprotect_page(page);  // in kernel mode: no syscall, no signal
    return true;
  };
}

std::vector<DirtyRange> KernelWpTracker::collect(sim::SimKernel&, sim::Process&) {
  return pages_to_ranges(dirty_);
}

void KernelWpTracker::detach(sim::Process& proc) {
  proc.wp_hook = nullptr;
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    proc.aspace->protect_pages(vma.first_page, vma.page_count, vma.prot);
  }
}

// ---------------------------------------------------------------------------
// UserWpTracker
// ---------------------------------------------------------------------------

void UserWpTracker::protect_all(sim::SimKernel& kernel, sim::Process& proc) {
  // The library calls mprotect() from user space: one crossing per region.
  sim::UserApi api(kernel, proc);
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    api.sys_mprotect(vma.start(), vma.bytes(),
                     vma.prot & static_cast<std::uint8_t>(~sim::kProtWrite));
  }
}

void UserWpTracker::begin_interval(sim::SimKernel& kernel, sim::Process& proc) {
  dirty_.clear();
  protect_all(kernel, proc);
  proc.signals.disposition[sim::kSigSegv] = sim::SignalDisposition::kHandler;
  proc.library_handlers[sim::kSigSegv] = [this](sim::SimKernel& k, sim::Process& p,
                                                sim::Signal) {
    ++signals_;
    const sim::PageNum page = sim::page_of(p.fault_addr);
    dirty_.insert(page);
    // Re-enable writes with an mprotect() syscall from the handler.
    sim::UserApi api(k, p);
    const sim::Vma* vma = p.aspace->find_vma(p.fault_addr);
    api.sys_mprotect(sim::page_base(page), sim::kPageSize,
                     vma != nullptr ? vma->prot
                                    : static_cast<std::uint8_t>(sim::kProtRW));
  };
}

std::vector<DirtyRange> UserWpTracker::collect(sim::SimKernel&, sim::Process&) {
  return pages_to_ranges(dirty_);
}

void UserWpTracker::detach(sim::Process& proc) {
  proc.library_handlers.erase(sim::kSigSegv);
  proc.signals.disposition[sim::kSigSegv] = sim::SignalDisposition::kDefault;
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    proc.aspace->protect_pages(vma.first_page, vma.page_count, vma.prot);
  }
}

// ---------------------------------------------------------------------------
// PteScanTracker
// ---------------------------------------------------------------------------

void PteScanTracker::begin_interval(sim::SimKernel&, sim::Process& proc) {
  proc.aspace->clear_dirty_bits();
}

std::vector<DirtyRange> PteScanTracker::collect(sim::SimKernel& kernel,
                                                sim::Process& proc) {
  std::set<sim::PageNum> dirty;
  proc.aspace->for_each_page([&](sim::PageNum page, const sim::PageTableEntry& pte) {
    if (pte.dirty) dirty.insert(page);
  });
  // Scanning the page table costs one field read per PTE.
  kernel.charge_kernel_field_reads(proc.aspace->mapped_bytes() / sim::kPageSize);
  return pages_to_ranges(dirty);
}

// ---------------------------------------------------------------------------
// ProbabilisticTracker
// ---------------------------------------------------------------------------

ProbabilisticTracker::ProbabilisticTracker(std::uint32_t block_bytes,
                                           std::uint32_t signature_bits)
    : block_bytes_(block_bytes), signature_bits_(signature_bits) {
  if (block_bytes == 0 || sim::kPageSize % block_bytes != 0) {
    throw std::invalid_argument("ProbabilisticTracker: block size must divide page size");
  }
  if (signature_bits == 0 || signature_bits > 64) {
    throw std::invalid_argument("ProbabilisticTracker: signature bits in [1,64]");
  }
}

std::uint64_t ProbabilisticTracker::block_signature(sim::SimKernel& kernel,
                                                    sim::Process& proc, sim::PageNum page,
                                                    std::uint32_t offset) {
  const auto data = proc.aspace->page_data(page);
  // Hash throughput plus a fixed per-block cost (signature lookup/compare):
  // finer blocks hash the same bytes but pay more per-block overhead — the
  // compromise [1] tunes.
  kernel.charge_time(kernel.costs().hash_cost(block_bytes_) + 50, sim::ChargeKind::kCompute);
  const std::uint64_t full = util::crc64(data.data() + offset, block_bytes_);
  return signature_bits_ == 64 ? full : (full & ((1ULL << signature_bits_) - 1));
}

void ProbabilisticTracker::begin_interval(sim::SimKernel& kernel, sim::Process& proc) {
  signatures_.clear();
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    for (sim::PageNum p = vma.first_page; p < vma.first_page + vma.page_count; ++p) {
      if (proc.aspace->pte(p) == nullptr) continue;
      for (std::uint32_t off = 0; off < sim::kPageSize; off += block_bytes_) {
        signatures_[{p, off}] = block_signature(kernel, proc, p, off);
      }
    }
  }
}

std::vector<DirtyRange> ProbabilisticTracker::collect(sim::SimKernel& kernel,
                                                      sim::Process& proc) {
  std::vector<DirtyRange> dirty;
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    for (sim::PageNum p = vma.first_page; p < vma.first_page + vma.page_count; ++p) {
      if (proc.aspace->pte(p) == nullptr) continue;
      for (std::uint32_t off = 0; off < sim::kPageSize; off += block_bytes_) {
        const std::uint64_t sig = block_signature(kernel, proc, p, off);
        auto it = signatures_.find({p, off});
        if (it == signatures_.end() || it->second != sig) {
          dirty.push_back(DirtyRange{p, off, block_bytes_});
        }
      }
    }
  }
  return dirty;
}

std::uint64_t ProbabilisticTracker::signature_bytes() const {
  return signatures_.size() * ((signature_bits_ + 7) / 8);
}

double ProbabilisticTracker::false_clean_probability() const {
  return signature_bits_ >= 64 ? 0.0 : 1.0 / static_cast<double>(1ULL << signature_bits_);
}

// ---------------------------------------------------------------------------
// AdaptiveBlockTracker
// ---------------------------------------------------------------------------

AdaptiveBlockTracker::AdaptiveBlockTracker(std::uint32_t initial_block,
                                           std::uint32_t min_block, std::uint32_t max_block)
    : min_block_(min_block), max_block_(max_block), initial_block_(initial_block) {}

void AdaptiveBlockTracker::begin_interval(sim::SimKernel& kernel, sim::Process& proc) {
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    auto [it, inserted] = regions_.try_emplace(vma.first_page);
    RegionState& region = it->second;
    if (inserted) region.block_bytes = initial_block_;
    region.signatures.clear();
    for (sim::PageNum p = vma.first_page; p < vma.first_page + vma.page_count; ++p) {
      if (proc.aspace->pte(p) == nullptr) continue;
      const auto data = proc.aspace->page_data(p);
      for (std::uint32_t off = 0; off < sim::kPageSize; off += region.block_bytes) {
        kernel.charge_time(kernel.costs().hash_cost(region.block_bytes),
                           sim::ChargeKind::kCompute);
        region.signatures[{p, off}] = util::crc64(data.data() + off, region.block_bytes);
      }
    }
  }
}

std::vector<DirtyRange> AdaptiveBlockTracker::collect(sim::SimKernel& kernel,
                                                      sim::Process& proc) {
  std::vector<DirtyRange> dirty;
  for (const sim::Vma& vma : proc.aspace->vmas()) {
    if (!trackable(vma)) continue;
    auto rit = regions_.find(vma.first_page);
    if (rit == regions_.end()) continue;
    RegionState& region = rit->second;
    std::uint64_t blocks_total = 0;
    std::uint64_t blocks_dirty = 0;
    for (sim::PageNum p = vma.first_page; p < vma.first_page + vma.page_count; ++p) {
      if (proc.aspace->pte(p) == nullptr) continue;
      const auto data = proc.aspace->page_data(p);
      for (std::uint32_t off = 0; off < sim::kPageSize; off += region.block_bytes) {
        kernel.charge_time(kernel.costs().hash_cost(region.block_bytes),
                           sim::ChargeKind::kCompute);
        const std::uint64_t sig = util::crc64(data.data() + off, region.block_bytes);
        ++blocks_total;
        auto it = region.signatures.find({p, off});
        if (it == region.signatures.end() || it->second != sig) {
          dirty.push_back(DirtyRange{p, off, region.block_bytes});
          ++blocks_dirty;
        }
      }
    }
    // Adapt: dense regions coarsen (less hashing metadata), sparse regions
    // refine (tighter deltas) — the compromise described in [1].
    if (blocks_total > 0) {
      const double density =
          static_cast<double>(blocks_dirty) / static_cast<double>(blocks_total);
      if (density > 0.5 && region.block_bytes * 2 <= max_block_) {
        region.block_bytes *= 2;
      } else if (density < 0.1 && region.block_bytes / 2 >= min_block_) {
        region.block_bytes /= 2;
      }
    }
  }
  return dirty;
}

std::uint32_t AdaptiveBlockTracker::block_size_for(sim::PageNum first_page) const {
  auto it = regions_.find(first_page);
  return it == regions_.end() ? initial_block_ : it->second.block_bytes;
}

}  // namespace ckpt::core
