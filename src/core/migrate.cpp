#include "core/migrate.hpp"

namespace ckpt::core {

MigrationResult migrate_process(sim::SimKernel& source, sim::SimKernel& destination,
                                sim::Pid pid, const MigrationOptions& options) {
  MigrationResult result;
  sim::Process* proc = source.find_process(pid);
  if (proc == nullptr || !proc->alive()) {
    result.error = "no such process on " + source.hostname;
    return result;
  }

  const SimTime stop_at = source.now();
  source.stop_process(*proc);

  storage::CheckpointImage image = capture_kernel_level(source, *proc, options.capture);
  const std::vector<std::byte> wire = image.serialize();
  result.bytes_transferred = wire.size();

  // Transfer over the interconnect; the receiving side pays the cost.
  destination.charge_time(destination.costs().net_cost(wire.size()));

  RestartResult restarted;
  if (options.pod != 0 && options.pods != nullptr) {
    restarted = options.pods->restart_in_pod(destination, image, options.pod);
  } else {
    RestartOptions ropts;
    ropts.restore_original_pid = options.preserve_pid;
    ropts.require_original_pid = options.preserve_pid;
    restarted = restart_from_image(destination, image, ropts);
  }
  result.warnings = restarted.warnings;
  if (!restarted.ok) {
    // Migration failed: the original continues where it was.
    source.resume_process(*proc);
    result.error = restarted.error;
    return result;
  }

  // Destroy the original; its identity now lives on the destination.
  source.terminate(*proc, 0);
  source.reap(pid);

  result.ok = true;
  result.new_pid = restarted.pid;
  result.downtime = destination.now() > stop_at ? destination.now() - stop_at : 0;
  return result;
}

}  // namespace ckpt::core
