#include "core/hibernate.hpp"

#include "core/capture.hpp"

namespace ckpt::core {

HibernationManager::HibernationManager(sim::SimKernel& kernel, storage::StorageBackend* swap,
                                       storage::StorageBackend* ram)
    : kernel_(kernel), swap_(swap), ram_(ram) {
  // Static kernel extension: the freeze signal's default action, executed
  // in kernel mode, stops the delivered-to task.
  kernel_.register_kernel_signal(
      sim::kSigFreeze,
      [](sim::SimKernel& k, sim::Process& proc) { k.stop_process(proc); },
      /*module=*/nullptr);
}

bool HibernationManager::freeze_all(std::vector<sim::Pid>& frozen) {
  for (sim::Pid pid : kernel_.live_pids()) {
    const sim::Process& proc = kernel_.process(pid);
    if (proc.is_kernel_thread) continue;
    kernel_.send_signal(pid, sim::kSigFreeze);
    frozen.push_back(pid);
  }
  // Run until every targeted process has actually stopped (each must reach
  // its next delivery point first — the freeze is not instantaneous).
  const SimTime deadline = kernel_.now() + 60 * kSecond;
  return kernel_.run_while(
      [&] {
        for (sim::Pid pid : frozen) {
          const sim::Process* proc = kernel_.find_process(pid);
          if (proc != nullptr && proc->alive() &&
              proc->state != sim::TaskState::kStopped) {
            return true;
          }
        }
        return false;
      },
      deadline);
}

HibernationManager::HibernateResult HibernationManager::do_suspend(
    storage::StorageBackend* backend) {
  HibernateResult result;
  const SimTime started = kernel_.now();

  std::vector<sim::Pid> frozen;
  if (!freeze_all(frozen)) {
    result.error = "processes did not freeze in time";
    return result;
  }
  result.freeze_latency = kernel_.now() - started;

  auto charge = [&](SimTime t) { kernel_.charge_time(t); };
  CaptureOptions options;
  options.save_file_contents = false;
  for (sim::Pid pid : frozen) {
    sim::Process* proc = kernel_.find_process(pid);
    if (proc == nullptr || !proc->alive()) continue;
    storage::CheckpointImage image = capture_kernel_level(kernel_, *proc, options);
    const storage::ImageId id = backend->store(image, charge);
    if (id == storage::kBadImageId) {
      result.error = "swap write failed";
      return result;
    }
    result.images.push_back(id);
    result.total_bytes += image.payload_bytes();
  }

  last_image_set_ = result.images;
  last_backend_ = backend;
  result.ok = true;
  result.total_latency = kernel_.now() - started;
  return result;
}

HibernationManager::HibernateResult HibernationManager::hibernate() {
  HibernateResult result = do_suspend(swap_);
  if (result.ok) powered_down_ = true;  // processes stay frozen: machine is "off"
  return result;
}

HibernationManager::HibernateResult HibernationManager::standby() {
  return do_suspend(ram_);
}

bool HibernationManager::resume(sim::SimKernel& target) {
  if (last_backend_ == nullptr) return false;
  auto charge = [&](SimTime t) { target.charge_time(t); };
  bool all_ok = true;
  for (storage::ImageId id : last_image_set_) {
    auto image = last_backend_->load(id, charge);
    if (!image.has_value()) {
      all_ok = false;  // e.g. standby image lost to a power cycle
      continue;
    }
    if (&target == &kernel_) {
      // Same machine: the frozen originals still exist; thaw them instead
      // of duplicating.
      if (sim::Process* proc = target.find_process(image->pid);
          proc != nullptr && proc->alive()) {
        target.resume_process(*proc);
        continue;
      }
    }
    RestartOptions options;
    options.restore_original_pid = true;
    const RestartResult restored = restart_from_image(target, *image, options);
    all_ok = all_ok && restored.ok;
  }
  if (all_ok) powered_down_ = false;
  return all_ok;
}

}  // namespace ckpt::core
