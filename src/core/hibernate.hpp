// Software-Suspend-style whole-machine hibernation.
//
// A new kernel signal (SIGFREEZE) is delivered to every process; its
// kernel-mode default action freezes the task.  Once everything is frozen
// the RAM image (all process state) is written to the swap partition on
// the local disk and the machine powers down; at the next boot the image
// is read back and every process resumes.  A standby variant keeps the
// image in RAM instead — fast, but lost on power cycle, which the
// survivability tests exercise.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "sim/kernel.hpp"
#include "storage/backend.hpp"

namespace ckpt::core {

class HibernationManager {
 public:
  /// `swap` receives hibernation images (LocalDiskBackend in practice);
  /// `ram` receives standby images (MemoryBackend).  Registered as a
  /// static kernel extension, as Software Suspend lives in the stock
  /// kernel tree.
  HibernationManager(sim::SimKernel& kernel, storage::StorageBackend* swap,
                     storage::StorageBackend* ram);

  struct HibernateResult {
    bool ok = false;
    std::string error;
    std::vector<storage::ImageId> images;
    std::uint64_t total_bytes = 0;
    SimTime freeze_latency = 0;  ///< from signal broadcast to all-frozen
    SimTime total_latency = 0;
  };

  /// Freeze all user processes, dump RAM to swap, power down.
  HibernateResult hibernate();
  /// Standby: image to RAM, machine stays powered.
  HibernateResult standby();

  /// Boot-time resume from the most recent hibernation (or standby) image
  /// set.  Restores every process and continues them.
  bool resume(sim::SimKernel& target);

  [[nodiscard]] bool powered_down() const { return powered_down_; }
  [[nodiscard]] sim::Signal freeze_signal() const { return sim::kSigFreeze; }

 private:
  HibernateResult do_suspend(storage::StorageBackend* backend);
  /// Broadcast SIGFREEZE and run until every user process is stopped.
  bool freeze_all(std::vector<sim::Pid>& frozen);

  sim::SimKernel& kernel_;
  storage::StorageBackend* swap_;
  storage::StorageBackend* ram_;
  std::vector<storage::ImageId> last_image_set_;
  storage::StorageBackend* last_backend_ = nullptr;
  bool powered_down_ = false;
};

}  // namespace ckpt::core
