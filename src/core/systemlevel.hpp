// System-level (operating-system) checkpoint engines — survey §4.1.
//
//   * SyscallEngine      — new checkpoint/restart system calls.  In
//     "current" mode (VMADump) the caller checkpoints itself via the
//     `current` macro: no external initiation, no transparency, but also
//     no consistency problem and no address-space switch.  In "by-pid"
//     mode (EPCKPT) a tool passes the target's pid; capture then runs in
//     the caller's context and pays the address-space switch to read the
//     target's memory.
//
//   * KernelSignalEngine — a new kernel signal whose default action, run
//     in kernel mode at the target's next kernel->user transition,
//     checkpoints the process.  Initiation latency = scheduling delay of
//     the target: it grows with load, which claim C6 measures.
//
//   * KernelThreadEngine — a dedicated kernel thread serves a request
//     queue fed through /dev ioctl (CRAK, BLCR), /proc (CHPOX, PsncR/C) or
//     a syscall.  The thread copies a bounded number of pages per quantum,
//     so captures genuinely interleave with application execution; the
//     ConsistencyMode decides whether the target is stopped, forked, or
//     raced (kConcurrent: the torn-snapshot hazard).  SCHED_FIFO priority
//     makes the thread immune to timeshare load (claim C6).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "core/engine.hpp"

namespace ckpt::core {

class SyscallEngine final : public CheckpointEngine {
 public:
  enum class TargetMode : std::uint8_t {
    kCurrent,  ///< VMADump: the calling process checkpoints itself
    kByPid,    ///< EPCKPT: any process, identified by pid
  };

  /// Registers syscall `<name>_dump` (and `<name>_restart`).  When `module`
  /// is null the registration is static (not unloadable) — the VMADump /
  /// EPCKPT situation Table 1's last column records.
  SyscallEngine(std::string name, storage::StorageBackend* backend, EngineOptions options,
                sim::SimKernel& kernel, TargetMode mode, sim::KernelModule* module);

  [[nodiscard]] TaxonomyPath taxonomy() const override;
  [[nodiscard]] bool supports_external_initiation() const override {
    return mode_ == TargetMode::kByPid;
  }
  std::uint64_t request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) override;

  [[nodiscard]] const std::string& dump_syscall() const { return dump_name_; }

 private:
  std::int64_t handle_dump(sim::SimKernel& kernel, sim::Process& caller, std::uint64_t a0);

  TargetMode mode_;
  std::string dump_name_;
};

class KernelSignalEngine final : public CheckpointEngine {
 public:
  /// Adds `sig` as a new kernel signal whose default action checkpoints the
  /// delivered-to process in kernel mode.
  KernelSignalEngine(std::string name, storage::StorageBackend* backend,
                     EngineOptions options, sim::SimKernel& kernel, sim::Signal sig,
                     sim::KernelModule* module);

  [[nodiscard]] TaxonomyPath taxonomy() const override;
  [[nodiscard]] bool supports_external_initiation() const override { return true; }
  std::uint64_t request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) override;

  [[nodiscard]] sim::Signal signal() const { return sig_; }

 private:
  void on_signal_delivered(sim::SimKernel& kernel, sim::Process& proc);

  sim::Signal sig_;
  struct PendingRequest {
    std::uint64_t ticket;
    SimTime initiated_at;
  };
  std::map<sim::Pid, std::deque<PendingRequest>> pending_;
};

class KernelThreadEngine final : public CheckpointEngine {
 public:
  struct ThreadConfig {
    KThreadInterface interface = KThreadInterface::kDeviceIoctl;
    /// Scheduling class of the checkpoint thread; kFifo with high priority
    /// is the survey's recommendation, kTimeshare demonstrates the
    /// preemption problem.
    sim::SchedParams sched{sim::SchedClass::kFifo, 50, 0, 0};
    /// Pages copied per scheduling quantum.
    std::size_t pages_per_step = 32;
  };

  KernelThreadEngine(std::string name, storage::StorageBackend* backend,
                     EngineOptions options, sim::SimKernel& kernel, ThreadConfig config,
                     sim::KernelModule* module);

  [[nodiscard]] TaxonomyPath taxonomy() const override;
  [[nodiscard]] bool supports_external_initiation() const override { return true; }
  std::uint64_t request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) override;

  [[nodiscard]] const std::string& device_path() const { return device_path_; }
  [[nodiscard]] const std::string& proc_path() const { return proc_path_; }
  [[nodiscard]] sim::Pid thread_pid() const { return thread_pid_; }

  /// ioctl command codes for the device interface.
  static constexpr std::uint64_t kIoctlCheckpoint = 1;

 private:
  struct Request {
    std::uint64_t ticket;
    sim::Pid target;
    SimTime initiated_at;
  };
  struct ActiveSession {
    Request request;
    std::unique_ptr<PagedCaptureSession> capture;
    sim::Pid shadow_pid = sim::kNoPid;
    bool was_runnable = true;
    bool take_delta = false;
    SimTime started_at = 0;
    /// Target's cumulative COW-fault count when the shadow was forked; the
    /// delta at finish is the COW activity this checkpoint induced.
    std::uint64_t cow_at_start = 0;
  };

  std::uint64_t enqueue(sim::SimKernel& kernel, sim::Pid pid);
  sim::KStepResult thread_body(sim::SimKernel& kernel);
  void begin_session(sim::SimKernel& kernel, Request request);
  void finish_session(sim::SimKernel& kernel);
  void abort_session(sim::SimKernel& kernel, const std::string& reason);

  ThreadConfig config_;
  std::string device_path_;
  std::string proc_path_;
  sim::Pid thread_pid_ = sim::kNoPid;
  std::deque<Request> queue_;
  std::optional<ActiveSession> active_;
};

}  // namespace ckpt::core
