// User-level checkpoint engines — survey §3.
//
// All four user-level agents of Figure 1 are configurations of one engine:
//
//   * kSourceCode   — the application calls the library's ckpt_now() at
//                     points programmed into its source (libckpt, libckp).
//   * kPrecompiler  — identical at run time, but the calls were inserted
//                     by a pre-compiler (CCIFT-style).
//   * kSignalHandler— the library installs SIGALRM/SIGUSR1 handlers; a
//                     timer (automatic) or kill(1) (user) initiates
//                     (libckpt, Esky, Condor).
//   * kPreload      — same handlers, but the library was injected via
//                     LD_PRELOAD: no recompile/relink, at the price of a
//                     per-syscall interposition tax from process start.
//
// Capture uses UserLevelRuntime: state is extracted through syscalls and
// shadow tables, which is precisely the inefficiency + incompleteness the
// survey attributes to user-level schemes.  The engine also models the
// §3 reentrancy hazard: if the checkpoint signal lands while the guest is
// inside a non-reentrant C-library call, the process deadlocks.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "core/capture.hpp"
#include "core/engine.hpp"

namespace ckpt::core {

class UserLevelEngine final : public CheckpointEngine {
 public:
  enum class Mode : std::uint8_t {
    kSourceCode,
    kPrecompiler,
    kSignalHandler,
    kPreload,
  };

  struct UserConfig {
    Mode mode = Mode::kSignalHandler;
    /// Signal used for on-demand initiation (signal-handler/preload modes).
    sim::Signal trigger_signal = sim::kSigUsr1;
    /// Non-zero: install a periodic SIGALRM checkpoint timer at attach.
    SimTime periodic_interval = 0;
    /// Model the non-reentrant-libc deadlock when a handler fires inside
    /// malloc/free.
    bool model_reentrancy_hazard = true;
  };

  UserLevelEngine(std::string name, storage::StorageBackend* backend,
                  EngineOptions options, UserConfig config);

  [[nodiscard]] TaxonomyPath taxonomy() const override;

  /// "Linking" the checkpoint library into the process: installs the
  /// UserLevelRuntime (shadow tables, interposer for preload mode),
  /// registers ckpt_now() and the signal handlers.  Required for every
  /// mode — the defining transparency failure of user-level schemes.
  bool attach(sim::SimKernel& kernel, sim::Pid pid) override;
  void detach(sim::SimKernel& kernel, sim::Pid pid) override;

  [[nodiscard]] bool supports_external_initiation() const override {
    return config_.mode == Mode::kSignalHandler || config_.mode == Mode::kPreload;
  }
  std::uint64_t request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) override;

  /// Count of checkpoints that deadlocked on the reentrancy hazard.
  [[nodiscard]] std::uint64_t deadlocks() const { return deadlocks_; }

  [[nodiscard]] const UserConfig& user_config() const { return config_; }

 private:
  /// The body of ckpt_now() / the signal handler: runs in the process's
  /// own user context.
  void perform_user_checkpoint(sim::SimKernel& kernel, sim::Process& proc,
                               SimTime initiated_at, std::uint64_t ticket);

  UserConfig config_;
  std::map<sim::Pid, std::unique_ptr<UserLevelRuntime>> runtimes_;
  struct PendingRequest {
    std::uint64_t ticket;
    SimTime initiated_at;
  };
  std::map<sim::Pid, std::deque<PendingRequest>> pending_;
  std::uint64_t deadlocks_ = 0;
};

}  // namespace ckpt::core
