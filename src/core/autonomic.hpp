// The survey's "direction forward": an autonomic checkpoint manager.
//
// System-level, automatically initiated checkpointing that manages itself
// per the policies of §1: periodic initiation from a kernel timer, online
// adjustment of the checkpoint interval to the observed failure rate
// (Young's first-order optimum  t = sqrt(2 * C * MTBF)  with C the
// measured checkpoint cost), safe preemption, and operator-initiated
// suspension for planned outages.  It drives any system-level engine —
// no application involvement, no batch-manager dependence (the
// decentralization argument of §4.1).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/engine.hpp"
#include "sim/kernel.hpp"

namespace ckpt::core {

struct AutonomicPolicy {
  /// Interval used until enough observations exist to adapt.
  SimTime initial_interval = 60 * kSecond;
  /// Adapt the interval with Young's formula as failures are observed.
  bool adapt_interval = true;
  /// Prior MTBF estimate before any failure is seen.
  SimTime initial_mtbf = 3600 * kSecond;
  /// Clamp for the adapted interval.
  SimTime min_interval = 1 * kSecond;
  SimTime max_interval = 3600 * kSecond;
  /// Exponential smoothing factor for cost / MTBF estimates.
  double smoothing = 0.3;
};

/// Young's first-order optimal checkpoint interval.
SimTime young_interval(SimTime checkpoint_cost, SimTime mtbf);

/// The interval-adaptation core shared by every autonomic client: smoothed
/// online estimates of checkpoint cost and MTBF, folded through Young's
/// formula into a clamped interval.  AutonomicManager uses one per kernel;
/// FleetManager uses one fleet-wide (its policy is the *one* autonomic
/// policy hundreds of per-node engines run under).  Pure arithmetic — no
/// kernel, no observer — so it is trivially deterministic.
class IntervalEstimator {
 public:
  explicit IntervalEstimator(const AutonomicPolicy& policy)
      : policy_(policy),
        interval_(policy.initial_interval),
        mtbf_(policy.initial_mtbf) {}

  /// Fold one observed checkpoint cost into the smoothed estimate (the
  /// first observation seeds the estimate directly).  Ignores 0.
  void observe_cost(SimTime cost);

  /// Fold the gap since the previous failure into the smoothed MTBF
  /// estimate.  The first failure only anchors the gap baseline; the first
  /// *gap* seeds the estimate directly (replacing the configured prior),
  /// mirroring observe_cost.
  void observe_failure(SimTime now);

  /// Recompute the interval from the current estimates (no-op until a cost
  /// has been observed, or when the policy disables adaptation).
  void update();

  [[nodiscard]] SimTime interval() const { return interval_; }
  [[nodiscard]] SimTime mtbf_estimate() const { return mtbf_; }
  [[nodiscard]] SimTime cost_estimate() const { return cost_; }
  [[nodiscard]] std::uint64_t failures_seen() const { return failures_; }
  [[nodiscard]] const AutonomicPolicy& policy() const { return policy_; }

 private:
  AutonomicPolicy policy_;
  SimTime interval_;
  SimTime mtbf_;
  SimTime cost_ = 0;
  SimTime last_failure_at_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t gaps_seen_ = 0;
};

class AutonomicManager {
 public:
  AutonomicManager(sim::SimKernel& kernel, CheckpointEngine& engine,
                   AutonomicPolicy policy = {});

  /// Place a process under autonomic management (attaches the engine).
  bool manage(sim::Pid pid);
  void unmanage(sim::Pid pid);

  /// Arm the periodic timer.  Re-arms itself after every tick.
  void start();
  void stop();

  /// Failure-rate feedback (called by the failure detector).
  void observe_failure();

  /// Planned outage: checkpoint every managed process, then stop them all.
  /// Returns true if every checkpoint succeeded.
  bool suspend_for_maintenance();
  /// Resume after maintenance.
  void resume_after_maintenance();

  /// Safe preemption: checkpoint then stop one process, freeing its CPU for
  /// a higher-priority job; resume_preempted() continues it.
  bool preempt(sim::Pid pid);
  void resume_preempted(sim::Pid pid);

  [[nodiscard]] SimTime current_interval() const { return estimator_.interval(); }
  [[nodiscard]] SimTime mtbf_estimate() const { return estimator_.mtbf_estimate(); }
  [[nodiscard]] SimTime cost_estimate() const { return estimator_.cost_estimate(); }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] const std::vector<sim::Pid>& managed() const { return managed_; }

 private:
  void tick();
  void arm_timer();
  void update_interval();

  sim::SimKernel& kernel_;
  CheckpointEngine& engine_;
  AutonomicPolicy policy_;

  std::vector<sim::Pid> managed_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< invalidates stale timers after stop()
  IntervalEstimator estimator_;
  std::uint64_t ticks_ = 0;
};

}  // namespace ckpt::core
