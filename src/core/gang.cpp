#include "core/gang.hpp"

namespace ckpt::core {

std::size_t GangScheduler::add_job(std::string name, std::vector<sim::Pid> pids) {
  jobs_.push_back(Job{std::move(name), std::move(pids)});
  if (engine_ != nullptr) {
    for (sim::Pid pid : jobs_.back().pids) engine_->attach(kernel_, pid);
  }
  return jobs_.size() - 1;
}

bool GangScheduler::activate(std::size_t index) {
  bool all_ok = true;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    for (sim::Pid pid : jobs_[j].pids) {
      sim::Process* proc = kernel_.find_process(pid);
      if (proc == nullptr || !proc->alive()) continue;
      if (j == index) {
        kernel_.resume_process(*proc);
      } else if (proc->state != sim::TaskState::kStopped) {
        if (engine_ != nullptr) {
          const CheckpointResult result = engine_->request_checkpoint(kernel_, pid);
          all_ok = all_ok && result.ok;
        }
        kernel_.stop_process(*proc);
      }
    }
  }
  return all_ok;
}

void GangScheduler::rotate(SimTime slice, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      activate(j);
      kernel_.run_until(kernel_.now() + slice);
    }
  }
  // Leave everything runnable.
  for (const Job& job : jobs_) {
    for (sim::Pid pid : job.pids) {
      if (sim::Process* proc = kernel_.find_process(pid)) kernel_.resume_process(*proc);
    }
  }
}

std::uint64_t GangScheduler::job_progress(std::size_t index) const {
  std::uint64_t total = 0;
  for (sim::Pid pid : jobs_.at(index).pids) {
    if (const sim::Process* proc = kernel_.find_process(pid)) {
      total += proc->stats.guest_iterations;
    }
  }
  return total;
}

}  // namespace ckpt::core
