#include "core/userlevel.hpp"

#include "sim/userapi.hpp"
#include "util/log.hpp"

namespace ckpt::core {

UserLevelEngine::UserLevelEngine(std::string name, storage::StorageBackend* backend,
                                 EngineOptions options, UserConfig config)
    : CheckpointEngine(std::move(name), backend, std::move(options)), config_(config) {}

TaxonomyPath UserLevelEngine::taxonomy() const {
  switch (config_.mode) {
    case Mode::kSourceCode:
      return {Context::kUserLevel, Agent::kApplicationSource, Technique::kLibraryCall,
              KThreadInterface::kNone};
    case Mode::kPrecompiler:
      return {Context::kUserLevel, Agent::kPrecompiler, Technique::kLibraryCall,
              KThreadInterface::kNone};
    case Mode::kSignalHandler:
      return {Context::kUserLevel, Agent::kSignalHandlerLib,
              Technique::kUserSignalHandler, KThreadInterface::kNone};
    case Mode::kPreload:
      return {Context::kUserLevel, Agent::kPreloadLib, Technique::kUserSignalHandler,
              KThreadInterface::kNone};
  }
  return {Context::kUserLevel, Agent::kSignalHandlerLib, Technique::kUserSignalHandler,
          KThreadInterface::kNone};
}

bool UserLevelEngine::attach(sim::SimKernel& kernel, sim::Pid pid) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) return false;

  auto runtime = std::make_unique<UserLevelRuntime>();
  runtime->install(kernel, *proc, config_.mode == Mode::kPreload);

  // The library's entry points, linked into the process image.
  proc->library_calls["ckpt_now"] = [this](sim::SimKernel& k, sim::Process& p,
                                           std::uint64_t) -> std::int64_t {
    perform_user_checkpoint(k, p, k.now(), /*ticket=*/0);
    return 0;
  };

  if (config_.mode == Mode::kSignalHandler || config_.mode == Mode::kPreload) {
    proc->signals.disposition[config_.trigger_signal] = sim::SignalDisposition::kHandler;
    proc->library_handlers[config_.trigger_signal] = [this](sim::SimKernel& k,
                                                            sim::Process& p, sim::Signal) {
      SimTime initiated_at = k.now();
      std::uint64_t ticket = 0;
      auto it = pending_.find(p.pid);
      if (it != pending_.end() && !it->second.empty()) {
        initiated_at = it->second.front().initiated_at;
        ticket = it->second.front().ticket;
        it->second.pop_front();
      }
      perform_user_checkpoint(k, p, initiated_at, ticket);
    };
    if (config_.periodic_interval != 0) {
      // Automatic initiation: the library arms a periodic SIGALRM.
      proc->signals.disposition[sim::kSigAlrm] = sim::SignalDisposition::kHandler;
      proc->library_handlers[sim::kSigAlrm] = [this](sim::SimKernel& k, sim::Process& p,
                                                     sim::Signal) {
        perform_user_checkpoint(k, p, k.now(), /*ticket=*/0);
      };
      sim::UserApi api(kernel, *proc);
      api.sys_setitimer(config_.periodic_interval);
    }
  }

  runtimes_[pid] = std::move(runtime);
  return CheckpointEngine::attach(kernel, pid);
}

void UserLevelEngine::detach(sim::SimKernel& kernel, sim::Pid pid) {
  auto it = runtimes_.find(pid);
  if (it != runtimes_.end()) {
    if (sim::Process* proc = kernel.find_process(pid)) {
      it->second->uninstall(*proc);
      proc->library_calls.erase("ckpt_now");
      proc->library_handlers.erase(config_.trigger_signal);
      proc->library_handlers.erase(sim::kSigAlrm);
    }
    runtimes_.erase(it);
  }
  CheckpointEngine::detach(kernel, pid);
}

std::uint64_t UserLevelEngine::request_checkpoint_async(sim::SimKernel& kernel,
                                                        sim::Pid pid) {
  if (!supports_external_initiation()) return 0;
  if (runtimes_.count(pid) == 0) return 0;  // library not linked: signal would kill
  sim::Process* target = kernel.find_process(pid);
  if (target == nullptr || !target->alive()) return 0;
  const std::uint64_t ticket = new_ticket();
  record_pending(ticket);
  pending_[pid].push_back(PendingRequest{ticket, kernel.now()});
  kernel.send_signal(pid, config_.trigger_signal);
  return ticket;
}

void UserLevelEngine::perform_user_checkpoint(sim::SimKernel& kernel, sim::Process& proc,
                                              SimTime initiated_at, std::uint64_t ticket) {
  CheckpointResult result;
  result.initiated_at = initiated_at;
  result.started_at = kernel.now();
  const SimTime charge_before = kernel.step_charge();

  // §3: signal handlers may not call non-reentrant functions.  If the
  // checkpoint signal interrupted malloc/free, the handler's own heap use
  // deadlocks the process.
  if (config_.model_reentrancy_hazard && proc.in_nonreentrant_call) {
    ++deadlocks_;
    kernel.block_process(proc);  // hung on the heap lock, forever
    result.error = name_ + ": handler fired inside non-reentrant libc call; deadlock";
    result.completed_at = kernel.now();
    if (ticket != 0) {
      complete_ticket(ticket, std::move(result));
    } else {
      record_result(std::move(result));
    }
    return;
  }

  auto rit = runtimes_.find(proc.pid);
  if (rit == runtimes_.end()) {
    result.error = name_ + ": checkpoint library not linked into process";
    if (ticket != 0) complete_ticket(ticket, std::move(result));
    return;
  }

  ProcState& state = state_for(proc.pid);
  const bool take_delta = options_.incremental && state.tracker != nullptr &&
                          state.taken > 0 &&
                          (options_.full_every == 0 ||
                           state.taken % options_.full_every != 0);
  CaptureOptions capture = options_.capture;
  if (take_delta) {
    capture.ranges = state.tracker->collect(kernel, proc);
  }

  sim::UserApi api(kernel, proc);
  storage::CheckpointImage image = rit->second->capture(api, capture);
  image.kind =
      take_delta ? storage::ImageKind::kIncremental : storage::ImageKind::kFull;

  result.kind = image.kind;
  result.payload_bytes = image.payload_bytes();
  result.pages = image.page_count();

  // Writing the image out happens through 64 KiB write() syscalls in the
  // process context: crossings plus storage cost land on the application.
  const std::uint64_t write_chunks = result.payload_bytes / (64 * 1024) + 1;
  proc.stats.syscalls += write_chunks;
  kernel.charge_time(write_chunks * kernel.costs().syscall_crossing_ns,
                     sim::ChargeKind::kSyscall);
  auto charge = [&](SimTime t) { kernel.charge_time(t); };
  result.image_id = state.chain.append(std::move(image), charge);

  if (result.image_id == storage::kBadImageId) {
    result.error = name_ + ": storage backend rejected the image";
  } else {
    result.ok = true;
    ++state.taken;
    if (state.tracker != nullptr) state.tracker->begin_interval(kernel, proc);
  }
  result.completed_at = kernel.now() + (kernel.step_charge() - charge_before);
  if (ticket != 0) {
    complete_ticket(ticket, std::move(result));
  } else {
    record_result(std::move(result));
  }
}

}  // namespace ckpt::core
