#include "core/autonomic.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace ckpt::core {

SimTime young_interval(SimTime checkpoint_cost, SimTime mtbf) {
  const double c = static_cast<double>(checkpoint_cost);
  const double m = static_cast<double>(mtbf);
  return static_cast<SimTime>(std::sqrt(2.0 * c * m));
}

void IntervalEstimator::observe_cost(SimTime cost) {
  if (cost == 0) return;
  const double c = static_cast<double>(cost);
  cost_ = cost_ == 0 ? static_cast<SimTime>(c)
                     : static_cast<SimTime>(policy_.smoothing * c +
                                            (1.0 - policy_.smoothing) *
                                                static_cast<double>(cost_));
}

void IntervalEstimator::observe_failure(SimTime now) {
  if (failures_ > 0 && now > last_failure_at_) {
    const auto gap = static_cast<double>(now - last_failure_at_);
    // The first measured gap replaces the configured prior outright (the
    // same seeding rule as observe_cost): a measurement, however noisy, is
    // closer to the truth than a guess, and exponential smoothing from a
    // wildly wrong prior would otherwise take ~1/smoothing gaps to forget it.
    mtbf_ = gaps_seen_++ == 0
                ? static_cast<SimTime>(gap)
                : static_cast<SimTime>(policy_.smoothing * gap +
                                       (1.0 - policy_.smoothing) *
                                           static_cast<double>(mtbf_));
  }
  last_failure_at_ = now;
  ++failures_;
}

void IntervalEstimator::update() {
  if (!policy_.adapt_interval || cost_ == 0) return;
  const SimTime young = young_interval(cost_, mtbf_);
  interval_ = std::clamp(young, policy_.min_interval, policy_.max_interval);
}

AutonomicManager::AutonomicManager(sim::SimKernel& kernel, CheckpointEngine& engine,
                                   AutonomicPolicy policy)
    : kernel_(kernel), engine_(engine), policy_(policy), estimator_(policy) {}

bool AutonomicManager::manage(sim::Pid pid) {
  if (!engine_.attach(kernel_, pid)) return false;
  if (std::find(managed_.begin(), managed_.end(), pid) == managed_.end()) {
    managed_.push_back(pid);
  }
  return true;
}

void AutonomicManager::unmanage(sim::Pid pid) {
  managed_.erase(std::remove(managed_.begin(), managed_.end(), pid), managed_.end());
}

void AutonomicManager::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  arm_timer();
}

void AutonomicManager::stop() {
  running_ = false;
  ++generation_;
}

void AutonomicManager::arm_timer() {
  const std::uint64_t my_generation = generation_;
  kernel_.add_timer(kernel_.now() + estimator_.interval(),
                    [this, my_generation](sim::SimKernel&) {
    if (!running_ || generation_ != my_generation) return;
    tick();
    arm_timer();
  });
}

void AutonomicManager::tick() {
  ++ticks_;
  if (obs::Observer* observer = kernel_.observer()) {
    observer->trace().instant("autonomic.tick", "policy", obs::kControlTrack,
                              {obs::TraceArg::num("managed", managed_.size()),
                               obs::TraceArg::num("interval_ns", estimator_.interval())});
    observer->metrics().add("autonomic.ticks");
  }
  // Drop processes that have exited.
  managed_.erase(std::remove_if(managed_.begin(), managed_.end(),
                                [&](sim::Pid pid) {
                                  const sim::Process* p = kernel_.find_process(pid);
                                  return p == nullptr || !p->alive();
                                }),
                 managed_.end());
  for (sim::Pid pid : managed_) {
    const std::uint64_t ticket = engine_.request_checkpoint_async(kernel_, pid);
    if (ticket == 0) {
      util::logf(util::LogLevel::kWarn, "autonomic", "engine refused checkpoint of pid %d",
                 pid);
    }
  }
  // Update the cost estimate from the engine's recent history.
  const auto& history = engine_.history();
  if (!history.empty()) {
    const CheckpointResult& last = history.back();
    if (last.ok) estimator_.observe_cost(last.completed_at - last.started_at);
  }
  update_interval();
}

void AutonomicManager::observe_failure() {
  estimator_.observe_failure(kernel_.now());
  if (obs::Observer* observer = kernel_.observer()) {
    observer->trace().instant("autonomic.failure_observed", "policy", obs::kControlTrack,
                              {obs::TraceArg::num("failures", estimator_.failures_seen()),
                               obs::TraceArg::num("mtbf_ns", estimator_.mtbf_estimate())});
    observer->metrics().add("autonomic.failures_observed");
  }
  update_interval();
}

void AutonomicManager::update_interval() {
  if (!policy_.adapt_interval || estimator_.cost_estimate() == 0) return;
  estimator_.update();
  if (obs::Observer* observer = kernel_.observer()) {
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.set_gauge("autonomic.interval_ns",
                      static_cast<std::int64_t>(estimator_.interval()));
    metrics.set_gauge("autonomic.mtbf_estimate_ns",
                      static_cast<std::int64_t>(estimator_.mtbf_estimate()));
    metrics.set_gauge("autonomic.cost_estimate_ns",
                      static_cast<std::int64_t>(estimator_.cost_estimate()));
    observer->trace().counter("autonomic.interval_ns", obs::kControlTrack,
                              estimator_.interval());
  }
}

bool AutonomicManager::suspend_for_maintenance() {
  bool all_ok = true;
  for (sim::Pid pid : managed_) {
    const CheckpointResult result = engine_.request_checkpoint(kernel_, pid);
    all_ok = all_ok && result.ok;
  }
  for (sim::Pid pid : managed_) {
    if (sim::Process* proc = kernel_.find_process(pid)) kernel_.stop_process(*proc);
  }
  return all_ok;
}

void AutonomicManager::resume_after_maintenance() {
  for (sim::Pid pid : managed_) {
    if (sim::Process* proc = kernel_.find_process(pid)) kernel_.resume_process(*proc);
  }
}

bool AutonomicManager::preempt(sim::Pid pid) {
  const CheckpointResult result = engine_.request_checkpoint(kernel_, pid);
  if (!result.ok) return false;
  if (sim::Process* proc = kernel_.find_process(pid)) kernel_.stop_process(*proc);
  return true;
}

void AutonomicManager::resume_preempted(sim::Pid pid) {
  if (sim::Process* proc = kernel_.find_process(pid)) kernel_.resume_process(*proc);
}

}  // namespace ckpt::core
