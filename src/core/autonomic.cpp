#include "core/autonomic.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observer.hpp"
#include "util/log.hpp"

namespace ckpt::core {

SimTime young_interval(SimTime checkpoint_cost, SimTime mtbf) {
  const double c = static_cast<double>(checkpoint_cost);
  const double m = static_cast<double>(mtbf);
  return static_cast<SimTime>(std::sqrt(2.0 * c * m));
}

AutonomicManager::AutonomicManager(sim::SimKernel& kernel, CheckpointEngine& engine,
                                   AutonomicPolicy policy)
    : kernel_(kernel),
      engine_(engine),
      policy_(policy),
      interval_(policy.initial_interval),
      mtbf_estimate_(policy.initial_mtbf) {}

bool AutonomicManager::manage(sim::Pid pid) {
  if (!engine_.attach(kernel_, pid)) return false;
  if (std::find(managed_.begin(), managed_.end(), pid) == managed_.end()) {
    managed_.push_back(pid);
  }
  return true;
}

void AutonomicManager::unmanage(sim::Pid pid) {
  managed_.erase(std::remove(managed_.begin(), managed_.end(), pid), managed_.end());
}

void AutonomicManager::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  arm_timer();
}

void AutonomicManager::stop() {
  running_ = false;
  ++generation_;
}

void AutonomicManager::arm_timer() {
  const std::uint64_t my_generation = generation_;
  kernel_.add_timer(kernel_.now() + interval_, [this, my_generation](sim::SimKernel&) {
    if (!running_ || generation_ != my_generation) return;
    tick();
    arm_timer();
  });
}

void AutonomicManager::tick() {
  ++ticks_;
  if (obs::Observer* observer = kernel_.observer()) {
    observer->trace().instant("autonomic.tick", "policy", obs::kControlTrack,
                              {obs::TraceArg::num("managed", managed_.size()),
                               obs::TraceArg::num("interval_ns", interval_)});
    observer->metrics().add("autonomic.ticks");
  }
  // Drop processes that have exited.
  managed_.erase(std::remove_if(managed_.begin(), managed_.end(),
                                [&](sim::Pid pid) {
                                  const sim::Process* p = kernel_.find_process(pid);
                                  return p == nullptr || !p->alive();
                                }),
                 managed_.end());
  for (sim::Pid pid : managed_) {
    const std::uint64_t ticket = engine_.request_checkpoint_async(kernel_, pid);
    if (ticket == 0) {
      util::logf(util::LogLevel::kWarn, "autonomic", "engine refused checkpoint of pid %d",
                 pid);
    }
  }
  // Update the cost estimate from the engine's recent history.
  const auto& history = engine_.history();
  if (!history.empty()) {
    const CheckpointResult& last = history.back();
    if (last.ok) {
      const auto cost = static_cast<double>(last.completed_at - last.started_at);
      cost_estimate_ = cost_estimate_ == 0
                           ? static_cast<SimTime>(cost)
                           : static_cast<SimTime>(policy_.smoothing * cost +
                                                  (1.0 - policy_.smoothing) *
                                                      static_cast<double>(cost_estimate_));
    }
  }
  update_interval();
}

void AutonomicManager::observe_failure() {
  const SimTime now = kernel_.now();
  if (failures_seen_ > 0 && now > last_failure_at_) {
    const auto gap = static_cast<double>(now - last_failure_at_);
    mtbf_estimate_ = static_cast<SimTime>(
        policy_.smoothing * gap + (1.0 - policy_.smoothing) *
                                      static_cast<double>(mtbf_estimate_));
  }
  last_failure_at_ = now;
  ++failures_seen_;
  if (obs::Observer* observer = kernel_.observer()) {
    observer->trace().instant("autonomic.failure_observed", "policy", obs::kControlTrack,
                              {obs::TraceArg::num("failures", failures_seen_),
                               obs::TraceArg::num("mtbf_ns", mtbf_estimate_)});
    observer->metrics().add("autonomic.failures_observed");
  }
  update_interval();
}

void AutonomicManager::update_interval() {
  if (!policy_.adapt_interval || cost_estimate_ == 0) return;
  const SimTime young = young_interval(cost_estimate_, mtbf_estimate_);
  interval_ = std::clamp(young, policy_.min_interval, policy_.max_interval);
  if (obs::Observer* observer = kernel_.observer()) {
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.set_gauge("autonomic.interval_ns", static_cast<std::int64_t>(interval_));
    metrics.set_gauge("autonomic.mtbf_estimate_ns",
                      static_cast<std::int64_t>(mtbf_estimate_));
    metrics.set_gauge("autonomic.cost_estimate_ns",
                      static_cast<std::int64_t>(cost_estimate_));
    observer->trace().counter("autonomic.interval_ns", obs::kControlTrack, interval_);
  }
}

bool AutonomicManager::suspend_for_maintenance() {
  bool all_ok = true;
  for (sim::Pid pid : managed_) {
    const CheckpointResult result = engine_.request_checkpoint(kernel_, pid);
    all_ok = all_ok && result.ok;
  }
  for (sim::Pid pid : managed_) {
    if (sim::Process* proc = kernel_.find_process(pid)) kernel_.stop_process(*proc);
  }
  return all_ok;
}

void AutonomicManager::resume_after_maintenance() {
  for (sim::Pid pid : managed_) {
    if (sim::Process* proc = kernel_.find_process(pid)) kernel_.resume_process(*proc);
  }
}

bool AutonomicManager::preempt(sim::Pid pid) {
  const CheckpointResult result = engine_.request_checkpoint(kernel_, pid);
  if (!result.ok) return false;
  if (sim::Process* proc = kernel_.find_process(pid)) kernel_.stop_process(*proc);
  return true;
}

void AutonomicManager::resume_preempted(sim::Pid pid) {
  if (sim::Process* proc = kernel_.find_process(pid)) kernel_.resume_process(*proc);
}

}  // namespace ckpt::core
