// The survey's taxonomy (Figure 1) as a typed classification.
//
// Three dimensions: the *context* an implementation lives in, the *agent*
// that provides the functionality within that context, and the *technique*
// (implementation specifics).  Every checkpoint engine and every surveyed
// mechanism declares its TaxonomyPath; the Figure 1 reproduction renders
// the tree from the registered descriptors, so the figure cannot drift
// from the code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ckpt::core {

enum class Context : std::uint8_t { kUserLevel, kSystemLevel };

enum class Agent : std::uint8_t {
  // User-level agents.
  kApplicationSource,  ///< checkpoint calls programmed into the source
  kPrecompiler,        ///< calls inserted automatically by a pre-compiler
  kSignalHandlerLib,   ///< user-level signal handlers from a checkpoint library
  kPreloadLib,         ///< LD_PRELOAD-installed library, no relink
  // System-level agents.
  kOperatingSystem,
  kHardware,
};

enum class Technique : std::uint8_t {
  kLibraryCall,          ///< user level: explicit library API
  kUserSignalHandler,    ///< user level: SIGALRM/SIGUSR1 handlers
  kSystemCall,           ///< OS: new checkpoint/restart syscalls
  kKernelSignal,         ///< OS: new kernel signal with kernel-mode action
  kKernelThread,         ///< OS: dedicated kernel thread
  kDirectoryController,  ///< HW: ReVive-style directory logging
  kCacheBuffer,          ///< HW: SafetyNet-style cache checkpoint buffers
};

/// Interface a kernel-thread mechanism exposes to user space.
enum class KThreadInterface : std::uint8_t { kNone, kDeviceIoctl, kProcFs, kSyscall };

const char* to_string(Context value);
const char* to_string(Agent value);
const char* to_string(Technique value);
const char* to_string(KThreadInterface value);

struct TaxonomyPath {
  Context context;
  Agent agent;
  Technique technique;
  KThreadInterface interface = KThreadInterface::kNone;
};

/// A registered node in the Figure 1 tree.
struct TaxonomyEntry {
  std::string name;  ///< mechanism or engine name
  TaxonomyPath path;
  std::string note;  ///< short annotation shown in the tree
};

/// Registry used by the Figure 1 bench; mechanisms self-register.
class TaxonomyRegistry {
 public:
  static TaxonomyRegistry& instance();

  void add(TaxonomyEntry entry);
  void clear();
  [[nodiscard]] const std::vector<TaxonomyEntry>& entries() const { return entries_; }

  /// Render the classification tree (Figure 1) as indented text.
  [[nodiscard]] std::string render_tree() const;

 private:
  std::vector<TaxonomyEntry> entries_;
};

}  // namespace ckpt::core
