// Checkpoint/restart engines: the taxonomy of Figure 1 as running code.
//
// A CheckpointEngine owns the policy of *one* point in the design space —
// who initiates, in which context capture runs, how consistency is ensured,
// whether deltas are tracked — and delegates the mechanics to the capture,
// incremental and storage layers.  The twelve surveyed mechanisms
// (src/mechanisms) are thin configurations of these engines.
//
// Initiation is asynchronous by nature (a signal is deferred until the
// target runs; a kernel thread runs when scheduled), so the core API is
// request_checkpoint_async() + poll; request_checkpoint() is a convenience
// that drives the simulation until the request completes, which is how the
// initiation-latency benchmark (C6) measures the deferral the survey
// describes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/incremental.hpp"
#include "core/taxonomy.hpp"
#include "sim/kernel.hpp"
#include "storage/backend.hpp"
#include "storage/chain.hpp"
#include "storage/retry.hpp"

namespace ckpt::core {

/// How a non-cooperative checkpointer keeps the image consistent while the
/// application may be running (survey §4.1).
enum class ConsistencyMode : std::uint8_t {
  kStopTarget,   ///< remove the target from the runqueue for the duration
  kForkAndCopy,  ///< fork(); checkpoint the frozen COW child; app keeps running
  kConcurrent,   ///< no protection: copy while the app runs (tearing risk)
};

const char* to_string(ConsistencyMode mode);

struct EngineOptions {
  CaptureOptions capture;
  ConsistencyMode consistency = ConsistencyMode::kStopTarget;
  /// Take incremental checkpoints (after an initial full one).
  bool incremental = false;
  /// Factory for the dirty tracker used when incremental is set.
  std::function<std::unique_ptr<DirtyTracker>()> tracker_factory;
  /// Force a full image every N checkpoints to bound chain length.
  std::uint64_t full_every = 8;
  /// Retry schedule for transient storage faults on both the store path
  /// (the backend rejected the image) and the load path (the chain did not
  /// reconstruct).  Backoff is charged through the sim clock.  The default
  /// performs no retries — identical to the pre-retry behaviour.
  storage::RetryPolicy store_retry;
  /// After each successful *full* checkpoint, prune the chain down to its
  /// fallback-keep set (CheckpointChain::live_set) and, when the backend is
  /// ChunkReclaimable (DedupStore, ReplicatedStore in dedup mode), collect
  /// unreferenced content chunks — so dropping old sequence points actually
  /// returns media bytes.  The verification loads and GC charge sim time
  /// through the checkpointing context like every other storage access.
  bool prune_after_full = false;
  /// Append-commit mode (the CapROS direction): when the backend is a
  /// storage::LogStructuredBackend, each successful checkpoint drains the
  /// journal's migrator right after the commit point.  The drain's charges
  /// land on the kernel clock *after* the commit latency was measured, so
  /// CheckpointResult::total_latency covers only the sequential log append —
  /// chunk placement in the home store happens off the critical path.
  /// Ignored for every other backend.
  bool append_commit = false;
  /// Streaming commit (requires kForkAndCopy): capture pages from the
  /// frozen COW shadow, encode them in chunks and append each chunk to the
  /// replicas *as it is produced* (ReplicatedStore::store_streamed), instead
  /// of capture → serialize → store running phase-sequential.  The guest
  /// resumes after the fork's page-table walk; the whole transfer overlaps
  /// its execution.  Requires a flat (non-dedup) ReplicatedStore backend;
  /// any other backend falls back to classic capture+store from the shadow,
  /// which still gets the O(page-table-walk) pause.
  bool streaming = false;
  /// Page payloads per streamed chunk.  Chunking is fixed by this knob
  /// alone — never by worker count — so streamed blobs are byte-identical
  /// for any CKPT_WORKERS.
  std::uint32_t stream_chunk_pages = 64;
};

struct CheckpointResult {
  bool ok = false;
  std::string error;
  storage::ImageId image_id = storage::kBadImageId;
  storage::ImageKind kind = storage::ImageKind::kFull;
  SimTime initiated_at = 0;  ///< when the request was made
  SimTime started_at = 0;    ///< when capture actually began (deferral!)
  SimTime completed_at = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t pages = 0;
  /// Store retries the engine's RetryPolicy granted before success/giving up.
  std::uint64_t store_retries = 0;
  /// Guest-visible pause: how long the application was kept off the CPU for
  /// consistency.  kStopTarget: stop → resume (the whole capture+store).
  /// kForkAndCopy: the fork's page-table walk only.  kConcurrent: 0.
  SimTime pause_ns = 0;

  [[nodiscard]] SimTime initiation_latency() const { return started_at - initiated_at; }
  [[nodiscard]] SimTime total_latency() const { return completed_at - initiated_at; }
};

struct RestartOptions {
  /// Restore the original PID (UCLiK); fails over to a fresh PID with a
  /// warning when taken, unless `require_original_pid`.
  bool restore_original_pid = false;
  bool require_original_pid = false;
  /// Rebind the ports the process held; conflicts are warnings.
  bool rebind_ports = true;
  /// When the newest checkpoint is unreadable (corrupt, torn, missing),
  /// fall back to the newest older state that still reconstructs instead
  /// of refusing outright.  Restarting from a corrupt image is never an
  /// option either way — fallback trades lost work for availability.
  bool fall_back_to_older_images = false;
};

struct RestartResult {
  bool ok = false;
  std::string error;
  sim::Pid pid = sim::kNoPid;
  std::vector<std::string> warnings;
};

/// Restore an image into `kernel` as a fresh, runnable process — the common
/// restart path every engine and mechanism shares.
RestartResult restart_from_image(sim::SimKernel& kernel,
                                 const storage::CheckpointImage& image,
                                 const RestartOptions& options = {});

class CheckpointEngine {
 public:
  CheckpointEngine(std::string name, storage::StorageBackend* backend,
                   EngineOptions options);
  virtual ~CheckpointEngine();

  CheckpointEngine(const CheckpointEngine&) = delete;
  CheckpointEngine& operator=(const CheckpointEngine&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual TaxonomyPath taxonomy() const = 0;

  /// Prepare a process for checkpointing by this engine.  The default is a
  /// no-op; engines that *require* attachment (library linking, BLCR's
  /// registration phase, trackers) override it — and their transparency
  /// probe fails when checkpointing an unattached process.
  virtual bool attach(sim::SimKernel& kernel, sim::Pid pid);
  virtual void detach(sim::SimKernel& kernel, sim::Pid pid);

  /// Can an agent other than the application itself initiate a checkpoint?
  [[nodiscard]] virtual bool supports_external_initiation() const = 0;

  /// Begin an externally initiated checkpoint.  Returns a ticket, or 0 on
  /// refusal (unsupported / unknown pid).
  virtual std::uint64_t request_checkpoint_async(sim::SimKernel& kernel, sim::Pid pid) = 0;

  [[nodiscard]] bool is_complete(std::uint64_t ticket) const;
  [[nodiscard]] CheckpointResult result(std::uint64_t ticket) const;

  /// Synchronous convenience: request and drive the simulation until the
  /// checkpoint completes (or `timeout` of simulated time passes).
  CheckpointResult request_checkpoint(sim::SimKernel& kernel, sim::Pid pid,
                                      SimTime timeout = 60 * kSecond);

  /// Restart the newest state of `original_pid` recorded by this engine.
  virtual RestartResult restart(sim::SimKernel& kernel, sim::Pid original_pid,
                                const RestartOptions& options = {});

  /// Restart onto a different kernel (migration / failover).
  RestartResult restart_on(sim::SimKernel& target_kernel, sim::Pid original_pid,
                           const RestartOptions& options = {});

  [[nodiscard]] storage::StorageBackend* backend() const { return backend_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<CheckpointResult>& history() const { return history_; }

  /// Number of completed checkpoints for a pid.
  [[nodiscard]] std::uint64_t checkpoints_taken(sim::Pid pid) const;

  /// The checkpoint chain recorded for `original_pid`, or nullptr if this
  /// engine never checkpointed it.  Chains stay keyed by the ORIGINAL pid
  /// even after restart_on() produced a fresh pid — callers doing
  /// older-image rollback (uncoordinated MPI recovery) reconstruct through
  /// this and then restart_from_image directly.
  [[nodiscard]] const storage::CheckpointChain* chain_of(sim::Pid original_pid) const;

 protected:
  struct ProcState {
    storage::CheckpointChain chain;
    std::unique_ptr<DirtyTracker> tracker;
    bool attached = false;
    std::uint64_t taken = 0;
    explicit ProcState(storage::StorageBackend* backend) : chain(backend) {}
  };

  ProcState& state_for(sim::Pid pid);
  [[nodiscard]] const ProcState* find_state(sim::Pid pid) const;

  /// The shared kernel-mode checkpoint step: applies the consistency mode,
  /// captures (full or delta), stores, restarts the tracking interval.
  /// `initiated_at` feeds the latency accounting.  Runs synchronously in
  /// the current execution context.
  CheckpointResult perform_kernel_checkpoint(sim::SimKernel& kernel, sim::Process& proc,
                                             SimTime initiated_at);

  std::uint64_t record_result(CheckpointResult result);
  std::uint64_t new_ticket();
  void record_pending(std::uint64_t ticket);
  void complete_ticket(std::uint64_t ticket, CheckpointResult result);

  std::string name_;
  storage::StorageBackend* backend_;
  EngineOptions options_;
  std::map<sim::Pid, std::unique_ptr<ProcState>> states_;
  std::map<std::uint64_t, std::optional<CheckpointResult>> tickets_;
  std::uint64_t next_ticket_ = 1;
  std::vector<CheckpointResult> history_;
};

}  // namespace ckpt::core
