#include "core/engine.hpp"

#include <stdexcept>

#include "obs/observer.hpp"
#include "storage/dedup.hpp"
#include "storage/journal.hpp"
#include "storage/replicated.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace ckpt::core {
namespace {

/// Mapped pages of the target's address space (dirty-ratio denominator).
std::uint64_t mapped_pages(const sim::Process& proc) {
  if (proc.aspace == nullptr) return 0;
  std::uint64_t total = 0;
  for (const auto& vma : proc.aspace->vmas()) total += vma.page_count;
  return total;
}

/// Reap the frozen COW shadow on *every* exit path — success, store-failed,
/// injected fault, exception.  A leaked shadow pins every COW frame of the
/// snapshot forever (the shadow-fork leak the regression tests guard).
struct ShadowReaper {
  sim::SimKernel& kernel;
  sim::Pid pid = sim::kNoPid;

  void reap_now() {
    if (pid == sim::kNoPid) return;
    if (sim::Process* shadow = kernel.find_process(pid)) {
      if (shadow->alive()) kernel.terminate(*shadow, 0);
      kernel.reap(pid);
    }
    pid = sim::kNoPid;
  }

  ~ShadowReaper() { reap_now(); }
};

}  // namespace

const char* to_string(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kStopTarget: return "stop-target";
    case ConsistencyMode::kForkAndCopy: return "fork-and-copy";
    case ConsistencyMode::kConcurrent: return "concurrent";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// restart_from_image
// ---------------------------------------------------------------------------

RestartResult restart_from_image(sim::SimKernel& kernel,
                                 const storage::CheckpointImage& image,
                                 const RestartOptions& options) {
  RestartResult result;

  std::optional<sim::Pid> desired;
  if (options.restore_original_pid) {
    if (kernel.pid_in_use(image.pid)) {
      if (options.require_original_pid) {
        result.error = "original pid " + std::to_string(image.pid) +
                       " already in use on " + kernel.hostname;
        return result;
      }
      result.warnings.push_back("pid " + std::to_string(image.pid) +
                                " in use; restarted under a new pid");
    } else {
      desired = image.pid;
    }
  }

  sim::Pid pid;
  try {
    pid = kernel.create_restored_process(image.process_name, image.guest, desired);
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }
  sim::Process& proc = kernel.process(pid);
  restore_into_process(kernel, proc, image);

  for (const auto& f : image.files) {
    if (f.was_deleted) {
      result.warnings.push_back("file '" + f.path +
                                "' was deleted while open at checkpoint time");
    }
  }

  if (options.rebind_ports) {
    for (std::uint16_t port : image.bound_ports) {
      if (kernel.bind_port(port, pid)) {
        proc.bound_ports.push_back(port);
      } else {
        result.warnings.push_back("port " + std::to_string(port) + " already bound");
      }
    }
  }

  kernel.resume_process(proc);
  result.ok = true;
  result.pid = pid;
  if (obs::Observer* observer = kernel.observer()) {
    observer->trace().instant(
        "restart.restored", "restart", static_cast<std::uint64_t>(pid),
        {obs::TraceArg::num("original_pid", static_cast<std::uint64_t>(image.pid)),
         obs::TraceArg::num("warnings", result.warnings.size())});
  }
  return result;
}

// ---------------------------------------------------------------------------
// CheckpointEngine
// ---------------------------------------------------------------------------

CheckpointEngine::CheckpointEngine(std::string name, storage::StorageBackend* backend,
                                   EngineOptions options)
    : name_(std::move(name)), backend_(backend), options_(std::move(options)) {
  if (backend_ == nullptr) throw std::invalid_argument("CheckpointEngine: null backend");
  if (options_.incremental && !options_.tracker_factory) {
    throw std::invalid_argument("CheckpointEngine: incremental requires a tracker factory");
  }
  if (options_.streaming && options_.consistency != ConsistencyMode::kForkAndCopy) {
    throw std::invalid_argument(
        "CheckpointEngine: streaming requires kForkAndCopy consistency (the frozen "
        "shadow is the capture source the guest runs ahead of)");
  }
  if (options_.streaming && options_.stream_chunk_pages == 0) {
    throw std::invalid_argument("CheckpointEngine: stream_chunk_pages must be >= 1");
  }
}

CheckpointEngine::~CheckpointEngine() = default;

bool CheckpointEngine::attach(sim::SimKernel& kernel, sim::Pid pid) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) return false;
  ProcState& state = state_for(pid);
  if (options_.incremental && state.tracker == nullptr) {
    state.tracker = options_.tracker_factory();
    state.tracker->begin_interval(kernel, *proc);
  }
  state.attached = true;
  return true;
}

void CheckpointEngine::detach(sim::SimKernel& kernel, sim::Pid pid) {
  auto it = states_.find(pid);
  if (it == states_.end()) return;
  if (it->second->tracker != nullptr) {
    if (sim::Process* proc = kernel.find_process(pid)) {
      it->second->tracker->detach(*proc);
    }
  }
  it->second->attached = false;
}

CheckpointEngine::ProcState& CheckpointEngine::state_for(sim::Pid pid) {
  auto it = states_.find(pid);
  if (it == states_.end()) {
    it = states_.emplace(pid, std::make_unique<ProcState>(backend_)).first;
  }
  return *it->second;
}

const CheckpointEngine::ProcState* CheckpointEngine::find_state(sim::Pid pid) const {
  auto it = states_.find(pid);
  return it == states_.end() ? nullptr : it->second.get();
}

bool CheckpointEngine::is_complete(std::uint64_t ticket) const {
  auto it = tickets_.find(ticket);
  return it != tickets_.end() && it->second.has_value();
}

CheckpointResult CheckpointEngine::result(std::uint64_t ticket) const {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end() || !it->second.has_value()) {
    CheckpointResult r;
    r.error = "ticket not complete";
    return r;
  }
  return *it->second;
}

CheckpointResult CheckpointEngine::request_checkpoint(sim::SimKernel& kernel, sim::Pid pid,
                                                      SimTime timeout) {
  const std::uint64_t ticket = request_checkpoint_async(kernel, pid);
  if (ticket == 0) {
    CheckpointResult r;
    r.error = name_ + ": external initiation refused";
    return r;
  }
  const SimTime deadline = kernel.now() + timeout;
  kernel.run_while([&] { return !is_complete(ticket); }, deadline);
  if (!is_complete(ticket)) {
    CheckpointResult r;
    r.error = name_ + ": checkpoint did not complete within timeout";
    return r;
  }
  return result(ticket);
}

std::uint64_t CheckpointEngine::checkpoints_taken(sim::Pid pid) const {
  const ProcState* state = find_state(pid);
  return state == nullptr ? 0 : state->taken;
}

const storage::CheckpointChain* CheckpointEngine::chain_of(sim::Pid original_pid) const {
  const ProcState* state = find_state(original_pid);
  return state == nullptr ? nullptr : &state->chain;
}

RestartResult CheckpointEngine::restart(sim::SimKernel& kernel, sim::Pid original_pid,
                                        const RestartOptions& options) {
  return restart_on(kernel, original_pid, options);
}

RestartResult CheckpointEngine::restart_on(sim::SimKernel& target_kernel,
                                           sim::Pid original_pid,
                                           const RestartOptions& options) {
  RestartResult result;
  obs::Observer* observer = target_kernel.observer();
  obs::SpanGuard span(obs::tracer(observer), "restart", "restart", obs::kControlTrack,
                      {obs::TraceArg::str("engine", name_),
                       obs::TraceArg::num("pid", static_cast<std::uint64_t>(original_pid))});
  const ProcState* state = find_state(original_pid);
  if (state == nullptr || state->chain.length() == 0) {
    result.error = name_ + ": no checkpoints recorded for pid " +
                   std::to_string(original_pid);
    span.end({obs::TraceArg::str("outcome", "no-chain")});
    if (observer != nullptr) observer->metrics().add("restart.failed");
    return result;
  }
  auto charge = [&](SimTime t) { target_kernel.charge_time(t); };
  auto reconstruct = [&] {
    return options.fall_back_to_older_images
               ? state->chain.reconstruct_newest_surviving(charge)
               : state->chain.reconstruct(charge);
  };
  // Load with the same bounded retry as the store path: a restart racing a
  // transient storage outage waits it out instead of refusing.
  auto image = reconstruct();
  if (!image.has_value()) {
    storage::Retrier retrier(options_.store_retry,
                             static_cast<std::uint64_t>(original_pid) ^ 0x10AD);
    while (!image.has_value()) {
      const std::optional<SimTime> delay = retrier.next_delay();
      if (!delay.has_value()) break;
      charge(*delay);
      image = reconstruct();
    }
  }
  if (!image.has_value()) {
    result.error = name_ + ": checkpoint chain unreadable (storage lost or corrupt)";
    span.end({obs::TraceArg::str("outcome", "chain-unreadable")});
    if (observer != nullptr) observer->metrics().add("restart.failed");
    return result;
  }
  result = restart_from_image(target_kernel, *image, options);
  span.end({obs::TraceArg::str("outcome", result.ok ? "ok" : "restore-failed"),
            obs::TraceArg::num("sequence", image->sequence)});
  if (observer != nullptr) {
    observer->metrics().add(result.ok ? "restart.completed" : "restart.failed");
  }
  return result;
}

CheckpointResult CheckpointEngine::perform_kernel_checkpoint(sim::SimKernel& kernel,
                                                             sim::Process& proc,
                                                             SimTime initiated_at) {
  CheckpointResult result;
  result.initiated_at = initiated_at;
  result.started_at = kernel.now();
  const SimTime charge_before = kernel.step_charge();
  // effective_now() advances whether the engine runs inside a guest step
  // (syscall/signal engines: step_charge accrues) or between steps (direct
  // requests: the clock itself moves) — the only origin valid for both.
  const SimTime pause_origin = kernel.effective_now();

  obs::Observer* observer = kernel.observer();
  obs::TraceRecorder* trace = obs::tracer(observer);
  const std::uint64_t track = static_cast<std::uint64_t>(proc.pid);
  if (trace != nullptr) {
    // The request may have waited for a delivery point (signal engines) or a
    // kernel-thread wakeup; render that deferral as a retroactive span.
    const SimTime started = kernel.effective_now();
    if (started > initiated_at) {
      trace->begin_at(initiated_at, "deferral", "ckpt", track);
      trace->end_at(started, "deferral", track);
    }
    trace->begin("checkpoint", "ckpt", track,
                 {obs::TraceArg::str("engine", name_),
                  obs::TraceArg::str("consistency", to_string(options_.consistency)),
                  obs::TraceArg::num("pid", static_cast<std::uint64_t>(proc.pid))});
  }

  ProcState& state = state_for(proc.pid);

  // Decide full vs incremental.
  const bool take_delta = options_.incremental && state.tracker != nullptr &&
                          state.taken > 0 &&
                          (options_.full_every == 0 || state.taken % options_.full_every != 0);

  CaptureOptions capture = options_.capture;
  if (take_delta) {
    capture.ranges = state.tracker->collect(kernel, proc);
  }

  // Consistency.
  sim::Process* capture_target = &proc;
  ShadowReaper shadow{kernel};
  const bool was_runnable = proc.runnable();
  {
    obs::SpanGuard quiesce(trace, "quiesce", "ckpt", track);
    switch (options_.consistency) {
      case ConsistencyMode::kStopTarget:
        kernel.stop_process(proc);
        break;
      case ConsistencyMode::kForkAndCopy:
        shadow.pid = kernel.fork_process(proc, /*freeze_child=*/true);
        capture_target = &kernel.process(shadow.pid);
        break;
      case ConsistencyMode::kConcurrent:
        break;  // no protection — the hazard the survey warns about
    }
  }
  if (options_.consistency == ConsistencyMode::kForkAndCopy) {
    // The application is schedulable again right here: its pause was only
    // the fork's page-table walk, not the capture+store that follows.
    result.pause_ns = kernel.effective_now() - pause_origin;
  }

  auto charge = [&](SimTime t) { kernel.charge_time(t); };
  auto* replicated = dynamic_cast<storage::ReplicatedStore*>(backend_);
  const bool streamed =
      options_.streaming && replicated != nullptr && !replicated->dedup_enabled();
  const bool may_retry = options_.store_retry.max_attempts > 1;

  if (streamed) {
    // Streaming commit: metadata and the page plan come off the frozen
    // shadow up front; page payloads are encoded in fixed-size chunks and
    // appended to the replicas as they are produced (store_streamed).
    if (trace != nullptr) trace->begin("capture", "ckpt", track);
    storage::CheckpointImage image;
    capture_image_metadata(kernel, *capture_target, capture, image);
    // The image describes the *application*, not the shadow copy.
    image.pid = proc.pid;
    image.process_name = proc.name;
    image.guest = proc.guest_image;
    image.kind = take_delta ? storage::ImageKind::kIncremental : storage::ImageKind::kFull;
    auto plan = build_capture_plan(*capture_target, capture, image);
    // The shadow is frozen, but the plan may still list pages without a PTE
    // (never touched); prune them here — deterministically, on the caller —
    // exactly as the classic copier skips them.
    std::erase_if(plan, [&](const std::pair<std::size_t, DirtyRange>& entry) {
      return capture_target->aspace->pte(entry.second.page) == nullptr;
    });
    // One address-space switch maps the shadow for reading (the classic
    // path charges the same on its first page read).
    kernel.charge_time(kernel.costs().addr_space_switch_ns, sim::ChargeKind::kCompute);

    // Partition the plan into chunks.  The split depends only on the plan
    // and stream_chunk_pages — never on worker count — and the chunk
    // concatenation is byte-identical to the classic encode_segment stream:
    // each segment's lead chunk carries its VMA header and page count.
    const std::size_t seg_count = image.segments.size();
    std::vector<std::vector<DirtyRange>> seg_entries(seg_count);
    for (const auto& [seg_idx, range] : plan) seg_entries[seg_idx].push_back(range);
    struct StreamPiece {
      std::size_t seg = 0;
      std::size_t first = 0;
      std::size_t count = 0;
      bool lead = false;
    };
    std::vector<StreamPiece> pieces;
    for (std::size_t s = 0; s < seg_count; ++s) {
      const std::size_t entries = seg_entries[s].size();
      std::size_t first = 0;
      bool lead = true;
      do {
        const std::size_t take =
            std::min<std::size_t>(options_.stream_chunk_pages, entries - first);
        pieces.push_back(StreamPiece{s, first, take, lead});
        lead = false;
        first += take;
      } while (first < entries);
    }

    std::uint64_t payload = 0;
    for (const auto& [seg_idx, range] : plan) {
      payload += std::min<std::uint32_t>(range.length, sim::kPageSize - range.offset);
    }
    result.kind = image.kind;
    result.payload_bytes = payload;
    result.pages = plan.size();
    if (trace != nullptr) {
      trace->end("capture", track,
                 {obs::TraceArg::str("kind", to_string(result.kind)),
                  obs::TraceArg::num("pages", result.pages),
                  obs::TraceArg::num("bytes", result.payload_bytes)});
      trace->begin("store", "ckpt", track, {obs::TraceArg::num("streamed", 1)});
    }

    const auto produce = [&](std::size_t i) {
      const StreamPiece& piece = pieces[i];
      storage::ReplicatedStore::StreamChunk chunk;
      util::Serializer s;
      if (piece.lead) {
        storage::encode_image_vma(s, image.segments[piece.seg].vma);
        s.put(static_cast<std::uint64_t>(seg_entries[piece.seg].size()));
      }
      for (std::size_t e = piece.first; e < piece.first + piece.count; ++e) {
        const DirtyRange& range = seg_entries[piece.seg][e];
        const std::uint32_t length =
            std::min<std::uint32_t>(range.length, sim::kPageSize - range.offset);
        s.put(range.page);
        s.put(range.offset);
        s.put_bytes(
            capture_target->aspace->page_data(range.page).subspan(range.offset, length));
        chunk.capture_ns += kernel.costs().mem_copy_cost(length);
      }
      chunk.bytes = std::move(s).take();
      return chunk;
    };
    const auto stream_store = [&](const storage::CheckpointImage& img) {
      storage::ReplicatedStore::StreamSource source;
      util::Serializer prelude;
      storage::encode_image_prelude(prelude, img);
      source.prelude = std::move(prelude).take();
      util::Serializer trailer;
      storage::encode_image_trailer(trailer, img);
      source.trailer = std::move(trailer).take();
      source.chunk_count = pieces.size();
      source.produce = produce;
      return replicated->store_streamed(source, charge).id;
    };
    // append_via assigns sequence/parent before the prelude is encoded; a
    // failed streamed store never advances the chain, so re-running the
    // whole stream under the retry policy is safe.
    result.image_id = state.chain.append_via(image, stream_store);
    if (result.image_id == storage::kBadImageId && may_retry) {
      storage::Retrier retrier(options_.store_retry,
                               (static_cast<std::uint64_t>(proc.pid) << 20) ^ state.taken);
      while (result.image_id == storage::kBadImageId) {
        const std::optional<SimTime> delay = retrier.next_delay();
        if (!delay.has_value()) break;
        charge(*delay);
        result.image_id = state.chain.append_via(image, stream_store);
      }
      result.store_retries = retrier.retries();
    }
    if (trace != nullptr) {
      trace->end("store", track,
                 {obs::TraceArg::num("image_id", result.image_id),
                  obs::TraceArg::num("retries", result.store_retries),
                  obs::TraceArg::num("chunks", pieces.size())});
    }
  } else {
    if (trace != nullptr) trace->begin("capture", "ckpt", track);
    storage::CheckpointImage image =
        capture_kernel_level(kernel, *capture_target, capture);
    // The image describes the *application*, not the shadow copy.
    image.pid = proc.pid;
    image.process_name = proc.name;
    image.guest = proc.guest_image;
    image.kind = take_delta ? storage::ImageKind::kIncremental : storage::ImageKind::kFull;

    result.kind = image.kind;
    result.payload_bytes = image.payload_bytes();
    result.pages = image.page_count();
    if (trace != nullptr) {
      trace->end("capture", track,
                 {obs::TraceArg::str("kind", to_string(result.kind)),
                  obs::TraceArg::num("pages", result.pages),
                  obs::TraceArg::num("bytes", result.payload_bytes)});
      trace->begin("store", "ckpt", track);
    }

    // Store with bounded retry: a transient StoreFault (rejection, outage
    // window) costs backoff time instead of a lost checkpoint.  A failed
    // append never advances the chain, so re-appending is safe.  The image is
    // only copied when a retry is actually possible.
    std::optional<storage::CheckpointImage> spare;
    if (may_retry) spare = image;
    result.image_id = state.chain.append(std::move(image), charge);
    if (result.image_id == storage::kBadImageId && may_retry) {
      storage::Retrier retrier(options_.store_retry,
                               (static_cast<std::uint64_t>(proc.pid) << 20) ^ state.taken);
      while (result.image_id == storage::kBadImageId) {
        const std::optional<SimTime> delay = retrier.next_delay();
        if (!delay.has_value()) break;
        charge(*delay);
        result.image_id = state.chain.append(*spare, charge);
      }
      result.store_retries = retrier.retries();
    }
    if (trace != nullptr) {
      trace->end("store", track,
                 {obs::TraceArg::num("image_id", result.image_id),
                  obs::TraceArg::num("retries", result.store_retries)});
    }
  }

  // Reap the shadow here on the normal paths (the ShadowReaper backstops
  // early returns and exceptions, so no exit can leak it).
  shadow.reap_now();
  if (options_.consistency == ConsistencyMode::kStopTarget) {
    // Stop-the-world pays for everything between stop and resume.
    result.pause_ns = kernel.effective_now() - pause_origin;
    if (was_runnable) kernel.resume_process(proc);
  }

  // The clock freezes inside a scheduling step; the checkpoint's duration
  // is the time charged against the executing context.
  const SimTime consumed = kernel.step_charge() - charge_before;

  if (result.image_id == storage::kBadImageId) {
    result.error = name_ + ": storage backend rejected the image";
    result.completed_at = kernel.now() + consumed;
    if (trace != nullptr) {
      trace->end("checkpoint", track,
                 {obs::TraceArg::str("outcome", "store-failed"),
                  obs::TraceArg::num("pause_ns", result.pause_ns)});
    }
    if (observer != nullptr) {
      observer->metrics().add("ckpt.failed");
      observer->metrics().add("ckpt.store_retries", result.store_retries);
      observer->metrics().observe("ckpt.pause_ns", result.pause_ns,
                                  obs::MetricsRegistry::latency_bounds());
    }
    return result;
  }

  ++state.taken;
  if (state.tracker != nullptr) state.tracker->begin_interval(kernel, proc);

  // A fresh full image is the one moment pruning can pay off: everything
  // before the newest verified full image leaves the fallback-keep set, and
  // chunk GC can then return the bytes only those images referenced.
  if (options_.prune_after_full && result.kind == storage::ImageKind::kFull &&
      state.chain.length() > 1) {
    obs::SpanGuard prune_span(trace, "prune", "ckpt", track);
    const std::size_t before = state.chain.length();
    state.chain.prune(charge);
    std::uint64_t chunks_freed = 0;
    std::uint64_t bytes_freed = 0;
    if (auto* reclaimable = dynamic_cast<storage::ChunkReclaimable*>(backend_)) {
      const storage::GcReport report = reclaimable->gc(charge);
      chunks_freed = report.chunks_freed;
      bytes_freed = report.bytes_freed;
    }
    if (observer != nullptr) {
      obs::MetricsRegistry& metrics = observer->metrics();
      metrics.add("gc.runs");
      metrics.add("gc.images_pruned", before - state.chain.length());
      metrics.add("gc.chunks_freed", chunks_freed);
      metrics.add("gc.bytes_freed", bytes_freed);
    }
  }

  result.ok = true;
  result.completed_at = kernel.now() + consumed;

  // Append-commit drain: the image is already durable in the log, so the
  // migrator publishes it to the home store *after* completed_at was fixed —
  // its charges extend the kernel clock but never the commit latency.
  if (options_.append_commit) {
    if (auto* journal = dynamic_cast<storage::LogStructuredBackend*>(backend_)) {
      obs::SpanGuard drain_span(trace, "journal.drain", "ckpt", track);
      const storage::LogStructuredBackend::MigrateReport drained = journal->migrate(charge);
      if (observer != nullptr) {
        obs::MetricsRegistry& metrics = observer->metrics();
        metrics.add("journal.drain_runs");
        metrics.add("journal.drained_images", drained.images_drained);
        metrics.add("journal.drained_bytes", drained.bytes_drained);
      }
      drain_span.end({obs::TraceArg::num("drained", drained.images_drained),
                      obs::TraceArg::num("reclaimed", drained.segments_reclaimed)});
    }
  }

  if (trace != nullptr) {
    trace->end("checkpoint", track,
               {obs::TraceArg::str("outcome", "ok"),
                obs::TraceArg::num("pause_ns", result.pause_ns)});
  }
  if (observer != nullptr) {
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("ckpt.completed");
    metrics.add(result.kind == storage::ImageKind::kIncremental ? "ckpt.incremental"
                                                                : "ckpt.full");
    metrics.add("ckpt.bytes_captured", result.payload_bytes);
    metrics.add("ckpt.store_retries", result.store_retries);
    metrics.observe("ckpt.total_latency_ns", result.completed_at - result.initiated_at,
                    obs::MetricsRegistry::latency_bounds());
    metrics.observe("ckpt.initiation_latency_ns", result.started_at - result.initiated_at,
                    obs::MetricsRegistry::latency_bounds());
    metrics.observe("ckpt.image_bytes", result.payload_bytes,
                    obs::MetricsRegistry::size_bounds());
    metrics.observe("ckpt.pause_ns", result.pause_ns,
                    obs::MetricsRegistry::latency_bounds());
    if (result.kind == storage::ImageKind::kIncremental) {
      const std::uint64_t total = mapped_pages(proc);
      if (total > 0) {
        metrics.observe("ckpt.dirty_ratio_pct", result.pages * 100 / total,
                        obs::MetricsRegistry::percent_bounds());
      }
    }
  }
  util::logf(util::LogLevel::kDebug, "engine", "%s: checkpointed pid %d (%s, %llu bytes)",
             name_.c_str(), proc.pid, to_string(result.kind),
             static_cast<unsigned long long>(result.payload_bytes));
  return result;
}

std::uint64_t CheckpointEngine::record_result(CheckpointResult result) {
  const std::uint64_t ticket = new_ticket();
  history_.push_back(result);
  tickets_[ticket] = std::move(result);
  return ticket;
}

std::uint64_t CheckpointEngine::new_ticket() { return next_ticket_++; }

void CheckpointEngine::record_pending(std::uint64_t ticket) {
  tickets_.emplace(ticket, std::nullopt);
}

void CheckpointEngine::complete_ticket(std::uint64_t ticket, CheckpointResult result) {
  history_.push_back(result);
  tickets_[ticket] = std::move(result);
}

}  // namespace ckpt::core
