#include "core/engine.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace ckpt::core {

const char* to_string(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kStopTarget: return "stop-target";
    case ConsistencyMode::kForkAndCopy: return "fork-and-copy";
    case ConsistencyMode::kConcurrent: return "concurrent";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// restart_from_image
// ---------------------------------------------------------------------------

RestartResult restart_from_image(sim::SimKernel& kernel,
                                 const storage::CheckpointImage& image,
                                 const RestartOptions& options) {
  RestartResult result;

  std::optional<sim::Pid> desired;
  if (options.restore_original_pid) {
    if (kernel.pid_in_use(image.pid)) {
      if (options.require_original_pid) {
        result.error = "original pid " + std::to_string(image.pid) +
                       " already in use on " + kernel.hostname;
        return result;
      }
      result.warnings.push_back("pid " + std::to_string(image.pid) +
                                " in use; restarted under a new pid");
    } else {
      desired = image.pid;
    }
  }

  sim::Pid pid;
  try {
    pid = kernel.create_restored_process(image.process_name, image.guest, desired);
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }
  sim::Process& proc = kernel.process(pid);
  restore_into_process(kernel, proc, image);

  for (const auto& f : image.files) {
    if (f.was_deleted) {
      result.warnings.push_back("file '" + f.path +
                                "' was deleted while open at checkpoint time");
    }
  }

  if (options.rebind_ports) {
    for (std::uint16_t port : image.bound_ports) {
      if (kernel.bind_port(port, pid)) {
        proc.bound_ports.push_back(port);
      } else {
        result.warnings.push_back("port " + std::to_string(port) + " already bound");
      }
    }
  }

  kernel.resume_process(proc);
  result.ok = true;
  result.pid = pid;
  return result;
}

// ---------------------------------------------------------------------------
// CheckpointEngine
// ---------------------------------------------------------------------------

CheckpointEngine::CheckpointEngine(std::string name, storage::StorageBackend* backend,
                                   EngineOptions options)
    : name_(std::move(name)), backend_(backend), options_(std::move(options)) {
  if (backend_ == nullptr) throw std::invalid_argument("CheckpointEngine: null backend");
  if (options_.incremental && !options_.tracker_factory) {
    throw std::invalid_argument("CheckpointEngine: incremental requires a tracker factory");
  }
}

CheckpointEngine::~CheckpointEngine() = default;

bool CheckpointEngine::attach(sim::SimKernel& kernel, sim::Pid pid) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) return false;
  ProcState& state = state_for(pid);
  if (options_.incremental && state.tracker == nullptr) {
    state.tracker = options_.tracker_factory();
    state.tracker->begin_interval(kernel, *proc);
  }
  state.attached = true;
  return true;
}

void CheckpointEngine::detach(sim::SimKernel& kernel, sim::Pid pid) {
  auto it = states_.find(pid);
  if (it == states_.end()) return;
  if (it->second->tracker != nullptr) {
    if (sim::Process* proc = kernel.find_process(pid)) {
      it->second->tracker->detach(*proc);
    }
  }
  it->second->attached = false;
}

CheckpointEngine::ProcState& CheckpointEngine::state_for(sim::Pid pid) {
  auto it = states_.find(pid);
  if (it == states_.end()) {
    it = states_.emplace(pid, std::make_unique<ProcState>(backend_)).first;
  }
  return *it->second;
}

const CheckpointEngine::ProcState* CheckpointEngine::find_state(sim::Pid pid) const {
  auto it = states_.find(pid);
  return it == states_.end() ? nullptr : it->second.get();
}

bool CheckpointEngine::is_complete(std::uint64_t ticket) const {
  auto it = tickets_.find(ticket);
  return it != tickets_.end() && it->second.has_value();
}

CheckpointResult CheckpointEngine::result(std::uint64_t ticket) const {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end() || !it->second.has_value()) {
    CheckpointResult r;
    r.error = "ticket not complete";
    return r;
  }
  return *it->second;
}

CheckpointResult CheckpointEngine::request_checkpoint(sim::SimKernel& kernel, sim::Pid pid,
                                                      SimTime timeout) {
  const std::uint64_t ticket = request_checkpoint_async(kernel, pid);
  if (ticket == 0) {
    CheckpointResult r;
    r.error = name_ + ": external initiation refused";
    return r;
  }
  const SimTime deadline = kernel.now() + timeout;
  kernel.run_while([&] { return !is_complete(ticket); }, deadline);
  if (!is_complete(ticket)) {
    CheckpointResult r;
    r.error = name_ + ": checkpoint did not complete within timeout";
    return r;
  }
  return result(ticket);
}

std::uint64_t CheckpointEngine::checkpoints_taken(sim::Pid pid) const {
  const ProcState* state = find_state(pid);
  return state == nullptr ? 0 : state->taken;
}

RestartResult CheckpointEngine::restart(sim::SimKernel& kernel, sim::Pid original_pid,
                                        const RestartOptions& options) {
  return restart_on(kernel, original_pid, options);
}

RestartResult CheckpointEngine::restart_on(sim::SimKernel& target_kernel,
                                           sim::Pid original_pid,
                                           const RestartOptions& options) {
  RestartResult result;
  const ProcState* state = find_state(original_pid);
  if (state == nullptr || state->chain.length() == 0) {
    result.error = name_ + ": no checkpoints recorded for pid " +
                   std::to_string(original_pid);
    return result;
  }
  auto charge = [&](SimTime t) { target_kernel.charge_time(t); };
  auto reconstruct = [&] {
    return options.fall_back_to_older_images
               ? state->chain.reconstruct_newest_surviving(charge)
               : state->chain.reconstruct(charge);
  };
  // Load with the same bounded retry as the store path: a restart racing a
  // transient storage outage waits it out instead of refusing.
  auto image = reconstruct();
  if (!image.has_value()) {
    storage::Retrier retrier(options_.store_retry,
                             static_cast<std::uint64_t>(original_pid) ^ 0x10AD);
    while (!image.has_value()) {
      const std::optional<SimTime> delay = retrier.next_delay();
      if (!delay.has_value()) break;
      charge(*delay);
      image = reconstruct();
    }
  }
  if (!image.has_value()) {
    result.error = name_ + ": checkpoint chain unreadable (storage lost or corrupt)";
    return result;
  }
  return restart_from_image(target_kernel, *image, options);
}

CheckpointResult CheckpointEngine::perform_kernel_checkpoint(sim::SimKernel& kernel,
                                                             sim::Process& proc,
                                                             SimTime initiated_at) {
  CheckpointResult result;
  result.initiated_at = initiated_at;
  result.started_at = kernel.now();
  const SimTime charge_before = kernel.step_charge();

  ProcState& state = state_for(proc.pid);

  // Decide full vs incremental.
  const bool take_delta = options_.incremental && state.tracker != nullptr &&
                          state.taken > 0 &&
                          (options_.full_every == 0 || state.taken % options_.full_every != 0);

  CaptureOptions capture = options_.capture;
  if (take_delta) {
    capture.ranges = state.tracker->collect(kernel, proc);
  }

  // Consistency.
  sim::Process* capture_target = &proc;
  sim::Pid shadow_pid = sim::kNoPid;
  const bool was_runnable = proc.runnable();
  switch (options_.consistency) {
    case ConsistencyMode::kStopTarget:
      kernel.stop_process(proc);
      break;
    case ConsistencyMode::kForkAndCopy:
      shadow_pid = kernel.fork_process(proc, /*freeze_child=*/true);
      capture_target = &kernel.process(shadow_pid);
      break;
    case ConsistencyMode::kConcurrent:
      break;  // no protection — the hazard the survey warns about
  }

  storage::CheckpointImage image =
      capture_kernel_level(kernel, *capture_target, capture);
  // The image describes the *application*, not the shadow copy.
  image.pid = proc.pid;
  image.process_name = proc.name;
  image.guest = proc.guest_image;
  image.kind = take_delta ? storage::ImageKind::kIncremental : storage::ImageKind::kFull;

  result.kind = image.kind;
  result.payload_bytes = image.payload_bytes();
  result.pages = image.page_count();

  auto charge = [&](SimTime t) { kernel.charge_time(t); };
  // Store with bounded retry: a transient StoreFault (rejection, outage
  // window) costs backoff time instead of a lost checkpoint.  A failed
  // append never advances the chain, so re-appending is safe.  The image is
  // only copied when a retry is actually possible.
  const bool may_retry = options_.store_retry.max_attempts > 1;
  std::optional<storage::CheckpointImage> spare;
  if (may_retry) spare = image;
  result.image_id = state.chain.append(std::move(image), charge);
  if (result.image_id == storage::kBadImageId && may_retry) {
    storage::Retrier retrier(options_.store_retry,
                             (static_cast<std::uint64_t>(proc.pid) << 20) ^ state.taken);
    while (result.image_id == storage::kBadImageId) {
      const std::optional<SimTime> delay = retrier.next_delay();
      if (!delay.has_value()) break;
      charge(*delay);
      result.image_id = state.chain.append(*spare, charge);
    }
    result.store_retries = retrier.retries();
  }

  if (shadow_pid != sim::kNoPid) {
    kernel.terminate(kernel.process(shadow_pid), 0);
    kernel.reap(shadow_pid);
  }
  if (options_.consistency == ConsistencyMode::kStopTarget && was_runnable) {
    kernel.resume_process(proc);
  }

  // The clock freezes inside a scheduling step; the checkpoint's duration
  // is the time charged against the executing context.
  const SimTime consumed = kernel.step_charge() - charge_before;

  if (result.image_id == storage::kBadImageId) {
    result.error = name_ + ": storage backend rejected the image";
    result.completed_at = kernel.now() + consumed;
    return result;
  }

  ++state.taken;
  if (state.tracker != nullptr) state.tracker->begin_interval(kernel, proc);

  result.ok = true;
  result.completed_at = kernel.now() + consumed;
  util::logf(util::LogLevel::kDebug, "engine", "%s: checkpointed pid %d (%s, %llu bytes)",
             name_.c_str(), proc.pid, to_string(result.kind),
             static_cast<unsigned long long>(result.payload_bytes));
  return result;
}

std::uint64_t CheckpointEngine::record_result(CheckpointResult result) {
  const std::uint64_t ticket = new_ticket();
  history_.push_back(result);
  tickets_[ticket] = std::move(result);
  return ticket;
}

std::uint64_t CheckpointEngine::new_ticket() { return next_ticket_++; }

void CheckpointEngine::record_pending(std::uint64_t ticket) {
  tickets_.emplace(ticket, std::nullopt);
}

void CheckpointEngine::complete_ticket(std::uint64_t ticket, CheckpointResult result) {
  history_.push_back(result);
  tickets_[ticket] = std::move(result);
}

}  // namespace ckpt::core
