#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace ckpt::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_bytes(std::uint64_t bytes) {
  char buffer[64];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GiB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MiB", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KiB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

std::string format_time_ns(std::uint64_t ns) {
  char buffer[64];
  if (ns >= 1000000000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buffer, sizeof(buffer), "%.3f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu ns", static_cast<unsigned long long>(ns));
  }
  return buffer;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace ckpt::util
