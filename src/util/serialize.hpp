// Binary serialization primitives for checkpoint images.
//
// Checkpoint images must round-trip exactly: the restart engine compares the
// restored process state byte-for-byte against the checkpointed state in the
// test suite.  The encoding is little-endian, length-prefixed, and versioned
// at the image level (storage/image.hpp), not here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ckpt::util {

/// Error thrown when a deserializer runs past the end of its buffer or a
/// length prefix is implausible.  Storage backends convert this into a
/// corrupted-image failure.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink with primitive encoders.
class Serializer {
 public:
  Serializer() = default;

  /// Adopt `reuse` as the backing buffer: contents are cleared, capacity is
  /// retained (pair with util::BufferPool to kill per-checkpoint regrowth).
  explicit Serializer(std::vector<std::byte> reuse) : bytes_(std::move(reuse)) {
    bytes_.clear();
  }

  /// Pre-size the backing buffer (see SizeCounter for exact estimation).
  void reserve(std::size_t n) { bytes_.reserve(n); }

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  void put(T value) {
    using U = std::make_unsigned_t<typename std::conditional_t<
        std::is_enum_v<T>, std::underlying_type<T>, std::type_identity<T>>::type>;
    auto u = static_cast<U>(value);
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      bytes_.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xFF));
    }
  }

  void put_double(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    put(bits);
  }

  void put_bytes(std::span<const std::byte> data) {
    put<std::uint64_t>(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void put_string(std::string_view s) {
    put_bytes(std::span(reinterpret_cast<const std::byte*>(s.data()), s.size()));
  }

  /// Raw append without a length prefix (caller encodes its own framing).
  void put_raw(std::span<const std::byte> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& items, Fn&& encode_one) {
    put<std::uint64_t>(items.size());
    for (const T& item : items) encode_one(*this, item);
  }

  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Serializer-shaped sink that only counts bytes.  Encoders written against
/// a generic sink (`template <typename Sink>`) run once against a
/// SizeCounter to learn the exact output size, then once against a
/// Serializer whose buffer was reserve()d to that size — one allocation,
/// zero regrowth on the image hot path.
class SizeCounter {
 public:
  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  void put(T) {
    using U = std::make_unsigned_t<typename std::conditional_t<
        std::is_enum_v<T>, std::underlying_type<T>, std::type_identity<T>>::type>;
    size_ += sizeof(U);
  }

  void put_double(double) { size_ += sizeof(std::uint64_t); }

  void put_bytes(std::span<const std::byte> data) {
    size_ += sizeof(std::uint64_t) + data.size();
  }

  void put_string(std::string_view s) { size_ += sizeof(std::uint64_t) + s.size(); }

  void put_raw(std::span<const std::byte> data) { size_ += data.size(); }

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& items, Fn&& encode_one) {
    size_ += sizeof(std::uint64_t);
    for (const T& item : items) encode_one(*this, item);
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Sequential reader over a byte span; throws SerializeError on underrun.
class Deserializer {
 public:
  explicit Deserializer(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  T get() {
    using U = std::make_unsigned_t<typename std::conditional_t<
        std::is_enum_v<T>, std::underlying_type<T>, std::type_identity<T>>::type>;
    require(sizeof(U));
    U u = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      u |= static_cast<U>(std::to_integer<std::uint64_t>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(U);
    return static_cast<T>(u);
  }

  double get_double() {
    const auto bits = get<std::uint64_t>();
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::vector<std::byte> get_bytes() {
    const auto n = get<std::uint64_t>();
    require(n);
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const auto raw = get_bytes();
    return {reinterpret_cast<const char*>(raw.data()), raw.size()};
  }

  std::span<const std::byte> get_raw(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& decode_one) {
    const auto n = get<std::uint64_t>();
    if (n > remaining()) {
      throw SerializeError("vector length prefix exceeds remaining bytes");
    }
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_one(*this));
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw SerializeError("deserializer underrun");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ckpt::util
