#include "util/crc64.hpp"

#include <array>
#include <bit>

namespace ckpt::util {
namespace {

constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693ULL;  // ECMA-182

constexpr std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i << 56;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & (1ULL << 63)) != 0 ? (crc << 1) ^ kPoly : crc << 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256> kTable = make_table();

// Slicing-by-8: kSliced[k][b] is the register contribution of byte value b
// advanced through k further zero bytes, so an aligned 8-byte block needs
// eight independent lookups instead of eight dependent shift-xor rounds.
constexpr std::array<std::array<std::uint64_t, 256>, 8> make_sliced_tables() {
  std::array<std::array<std::uint64_t, 256>, 8> tables{};
  tables[0] = make_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::size_t i = 0; i < 256; ++i) {
      const std::uint64_t prev = tables[k - 1][i];
      tables[k][i] = (prev << 8) ^ tables[0][static_cast<std::size_t>(prev >> 56)];
    }
  }
  return tables;
}

const std::array<std::array<std::uint64_t, 256>, 8> kSliced = make_sliced_tables();

// --- GF(2) linear algebra for crc64_combine --------------------------------
//
// Advancing the CRC register across n zero bytes is a linear operator on the
// 64-bit register; column i of `Gf2Matrix` is the operator applied to basis
// vector 1<<i.  crc64_combine raises the one-zero-byte operator to the n-th
// power by square-and-multiply, zlib's crc32_combine technique adapted to
// the non-reflected ECMA-182 register.

using Gf2Matrix = std::array<std::uint64_t, 64>;

std::uint64_t gf2_apply(const Gf2Matrix& m, std::uint64_t v) {
  std::uint64_t out = 0;
  while (v != 0) {
    out ^= m[static_cast<std::size_t>(std::countr_zero(v))];
    v &= v - 1;
  }
  return out;
}

Gf2Matrix gf2_multiply(const Gf2Matrix& a, const Gf2Matrix& b) {
  Gf2Matrix out{};
  for (std::size_t i = 0; i < 64; ++i) out[i] = gf2_apply(a, b[i]);
  return out;
}

Gf2Matrix make_zero_byte_matrix() {
  // One zero bit: r' = (r << 1) ^ (msb(r) ? poly : 0).
  Gf2Matrix bit{};
  for (std::size_t i = 0; i < 63; ++i) bit[i] = 1ULL << (i + 1);
  bit[63] = kPoly;
  // One zero byte = eight zero bits: square three times.
  Gf2Matrix byte = gf2_multiply(bit, bit);   // 2 bits
  byte = gf2_multiply(byte, byte);           // 4 bits
  return gf2_multiply(byte, byte);           // 8 bits
}

const Gf2Matrix kZeroByte = make_zero_byte_matrix();

}  // namespace

std::uint64_t crc64(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    // Fold the whole register into this 8-byte block (big-endian: the first
    // message byte meets the register's top byte), then one lookup per lane.
    const std::uint64_t block =
        (std::to_integer<std::uint64_t>(p[0]) << 56) |
        (std::to_integer<std::uint64_t>(p[1]) << 48) |
        (std::to_integer<std::uint64_t>(p[2]) << 40) |
        (std::to_integer<std::uint64_t>(p[3]) << 32) |
        (std::to_integer<std::uint64_t>(p[4]) << 24) |
        (std::to_integer<std::uint64_t>(p[5]) << 16) |
        (std::to_integer<std::uint64_t>(p[6]) << 8) |
        std::to_integer<std::uint64_t>(p[7]);
    const std::uint64_t y = crc ^ block;
    crc = kSliced[7][(y >> 56) & 0xFF] ^ kSliced[6][(y >> 48) & 0xFF] ^
          kSliced[5][(y >> 40) & 0xFF] ^ kSliced[4][(y >> 32) & 0xFF] ^
          kSliced[3][(y >> 24) & 0xFF] ^ kSliced[2][(y >> 16) & 0xFF] ^
          kSliced[1][(y >> 8) & 0xFF] ^ kSliced[0][y & 0xFF];
    p += 8;
    n -= 8;
  }
  for (; n != 0; ++p, --n) {
    const auto idx = static_cast<std::size_t>(
        (crc >> 56) ^ std::to_integer<std::uint64_t>(*p));
    crc = (crc << 8) ^ kTable[idx & 0xFF];
  }
  return ~crc;
}

std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed) {
  return crc64(std::span(static_cast<const std::byte*>(data), size), seed);
}

std::uint64_t crc64_bytewise(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t crc = ~seed;
  for (std::byte b : data) {
    const auto idx = static_cast<std::size_t>(
        (crc >> 56) ^ static_cast<std::uint64_t>(std::to_integer<unsigned>(b)));
    crc = (crc << 8) ^ kTable[idx & 0xFF];
  }
  return ~crc;
}

std::uint64_t crc64_combine(std::uint64_t crc_a, std::uint64_t crc_b,
                            std::uint64_t len_b) {
  // crc(A ++ B) = shift(crc(A), len_b) ^ crc(B): the pre/post inversions of
  // the two halves cancel under the shift's linearity.
  if (len_b == 0 || crc_a == 0) return crc_a ^ crc_b;
  std::uint64_t shifted = crc_a;
  Gf2Matrix power = kZeroByte;
  std::uint64_t n = len_b;
  while (true) {
    if ((n & 1) != 0) shifted = gf2_apply(power, shifted);
    n >>= 1;
    if (n == 0) break;
    power = gf2_multiply(power, power);
  }
  return shifted ^ crc_b;
}

}  // namespace ckpt::util
