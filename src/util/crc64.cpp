#include "util/crc64.hpp"

#include <array>

namespace ckpt::util {
namespace {

constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693ULL;  // ECMA-182

constexpr std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i << 56;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & (1ULL << 63)) != 0 ? (crc << 1) ^ kPoly : crc << 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256> kTable = make_table();

}  // namespace

std::uint64_t crc64(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t crc = ~seed;
  for (std::byte b : data) {
    const auto idx = static_cast<std::size_t>(
        (crc >> 56) ^ static_cast<std::uint64_t>(std::to_integer<unsigned>(b)));
    crc = (crc << 8) ^ kTable[idx & 0xFF];
  }
  return ~crc;
}

std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed) {
  return crc64(std::span(static_cast<const std::byte*>(data), size), seed);
}

}  // namespace ckpt::util
