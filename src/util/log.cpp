#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace ckpt::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

void logf(LogLevel level, const char* component, const char* fmt, ...) {
  if (level < log_level()) return;  // skip formatting entirely when filtered
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  log_message(level, component, buffer);
}

}  // namespace ckpt::util
