#include "util/serialize.hpp"

// Header-only implementation; this translation unit exists so the library
// has a concrete archive member and the header is compiled standalone once.
namespace ckpt::util {}
