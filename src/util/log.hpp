// Minimal leveled logger.  Quiet by default so tests and benchmarks stay
// clean; examples raise the level to narrate what the simulator is doing.
//
// logf is a real varargs function carrying [[gnu::format]], so every format
// string is checked against its arguments at compile time (-Wformat fires
// under the project-wide -Wall).  The level threshold is atomic: harness
// threads may log concurrently with a test thread adjusting verbosity.
#pragma once

#include <string_view>

namespace ckpt::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are dropped.  Reads/writes are
/// relaxed-atomic — a level change is advisory, not a synchronisation point.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, std::string_view component, std::string_view message);

/// printf-style convenience wrapper with compile-time format checking.
[[gnu::format(printf, 3, 4)]]
void logf(LogLevel level, const char* component, const char* fmt, ...);

}  // namespace ckpt::util
