// Minimal leveled logger.  Quiet by default so tests and benchmarks stay
// clean; examples raise the level to narrate what the simulator is doing.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace ckpt::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, std::string_view component, std::string_view message);

/// printf-style convenience wrapper.
template <typename... Args>
void logf(LogLevel level, std::string_view component, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  log_message(level, component, buffer);
}

}  // namespace ckpt::util
