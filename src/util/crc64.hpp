// CRC64 (ECMA-182) used for checkpoint-image integrity and for the
// probabilistic-checkpointing block hashes [Nam et al., "Probabilistic
// Checkpointing"].
//
// The default crc64() runs slicing-by-8 (eight 256-entry tables, one table
// lookup per input byte position in an 8-byte block) — the commit pipeline
// CRCs every blob at serialize, stage-verify, load and scrub time, so the
// bytewise loop was the single hottest loop in the repo.  crc64_bytewise()
// keeps the original one-table implementation as the reference the
// equivalence tests pin the sliced version against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ckpt::util {

/// Compute the CRC64/ECMA-182 checksum of `data`, seeded with `seed`.
///
/// The seed parameter allows chaining: crc64(b, crc64(a)) == crc64(a ++ b).
std::uint64_t crc64(std::span<const std::byte> data, std::uint64_t seed = 0);

/// Convenience overload for raw buffers.
std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed = 0);

/// Reference single-table, byte-at-a-time implementation (the pre-pipeline
/// hot loop).  Bit-identical to crc64(); kept for equivalence tests and as
/// the serial baseline in bench_pipeline.
std::uint64_t crc64_bytewise(std::span<const std::byte> data, std::uint64_t seed = 0);

/// Combine independently computed checksums of adjacent buffers:
///
///   crc64_combine(crc64(A), crc64(B), B.size()) == crc64(A ++ B)
///
/// in O(log len_b) GF(2) matrix work, no data pass.  This is what lets the
/// parallel serializer CRC its shards on workers *concurrently* and still
/// join them into the exact envelope checksum a serial pass produces —
/// seed-chaining alone would force shard i to wait for shard i-1's result.
std::uint64_t crc64_combine(std::uint64_t crc_a, std::uint64_t crc_b,
                            std::uint64_t len_b);

}  // namespace ckpt::util
