// CRC64 (ECMA-182) used for checkpoint-image integrity and for the
// probabilistic-checkpointing block hashes [Nam et al., "Probabilistic
// Checkpointing"].
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ckpt::util {

/// Compute the CRC64/ECMA-182 checksum of `data`, seeded with `seed`.
///
/// The seed parameter allows chaining: crc64(b, crc64(a)) == crc64(a ++ b).
std::uint64_t crc64(std::span<const std::byte> data, std::uint64_t seed = 0);

/// Convenience overload for raw buffers.
std::uint64_t crc64(const void* data, std::size_t size, std::uint64_t seed = 0);

}  // namespace ckpt::util
