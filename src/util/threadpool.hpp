// Deterministic fixed-size thread pool + reusable buffer pool for the
// parallel checkpoint commit pipeline.
//
// The paper's "direction forward" (§4.1) argues for concurrent kernel-thread
// checkpointing: overlap the expensive parts of taking a checkpoint with
// application progress.  Our host-side analogue is a worker pool that
// parallelizes the commit pipeline's hot stages — per-segment image
// encoding, CRC64 verification, and replica fan-out — while keeping every
// observable output *bit-identical* to a serial run:
//
//   * No work stealing, no completion-order dependence: run(n, body) hands
//     out indices 0..n-1 from a shared counter and every result is written
//     into the caller's per-index slot, so joins are ordered by index and
//     output never depends on which worker ran what.
//   * Simulated-time accounting is the caller's job: parallel stages must
//     ledger their ChargeFn calls per index and replay them in index order
//     after the join (see ReplicatedStore::store_verbose).  Parallelism is
//     host wall-clock only; the sim clock sees the exact serial sequence.
//   * A 1-worker pool executes inline on the calling thread — the serial
//     reference the determinism tests compare an 8-worker run against.
//
// The worker count defaults to the CKPT_WORKERS environment variable
// (clamped), falling back to hardware concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ckpt::util {

/// Worker count from the CKPT_WORKERS env var (clamped to [1, 64]); when
/// unset or unparsable, hardware concurrency clamped to [1, 8].
unsigned default_workers();

class ThreadPool {
 public:
  /// `workers` is clamped to >= 1.  A 1-worker pool spawns no threads at
  /// all: run() executes inline on the caller, the serial reference.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const { return worker_count_; }

  /// Run body(0..count-1), blocking until every index completed.  The
  /// calling thread participates, so a pool is never slower than inline by
  /// more than the dispatch handshake.  If any body throws, the exception
  /// from the *lowest* index is rethrown after all indices ran (lowest, so
  /// the error surfaced does not depend on scheduling).  Nested calls from
  /// inside a worker execute inline rather than deadlocking.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized by default_workers() — the CKPT_WORKERS knob.
  static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t refs = 0;  ///< workers currently inside process() (under mu_)
    std::mutex error_mu;
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void worker_main();
  void process(Job& job);
  static void record_error(Job& job, std::size_t index);

  unsigned worker_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;  ///< one run() at a time
};

/// Convenience: run on `pool` when non-null, inline (index order) otherwise.
/// Same contract as ThreadPool::run — callers own determinism: any sim-time
/// the bodies would charge must be ledgered per index and replayed in index
/// order after the call, never charged from inside a body.
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Bounded freelist of byte buffers so per-checkpoint scratch allocations
/// (shard encoders, staging copies) reuse capacity instead of regrowing a
/// fresh vector every commit.  Purely a host-allocation optimization:
/// buffers come back cleared, so pooling can never leak bytes between
/// commits or change any output, and it charges no sim time.
class BufferPool {
 public:
  /// An empty buffer, with whatever capacity a previous release() left in it.
  [[nodiscard]] std::vector<std::byte> acquire();

  /// Return a buffer for reuse; contents are cleared, capacity retained.
  /// Buffers beyond the retention bound are simply freed.
  void release(std::vector<std::byte> buffer);

  [[nodiscard]] std::size_t pooled() const;

  static BufferPool& shared();

 private:
  static constexpr std::size_t kMaxRetained = 64;

  mutable std::mutex mu_;
  std::vector<std::vector<std::byte>> free_;
};

}  // namespace ckpt::util
