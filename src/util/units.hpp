// Common scalar types and unit helpers used throughout the simulator.
//
// Simulated time is measured in integer nanoseconds (SimTime).  All cost
// accounting in the simulated kernel, storage and network models is in this
// unit, so overhead comparisons between checkpointing strategies are exact
// and deterministic.
#pragma once

#include <cstdint>

namespace ckpt {

/// Simulated time in nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Convert simulated nanoseconds to fractional seconds (reporting only).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Convert simulated nanoseconds to fractional milliseconds (reporting only).
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace ckpt
