#include "util/threadpool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace ckpt::util {

namespace {

/// The pool the current thread is a worker of, so nested run() calls from a
/// task body execute inline instead of deadlocking on their own pool.
thread_local const ThreadPool* tl_worker_of = nullptr;

}  // namespace

unsigned default_workers() {
  if (const char* env = std::getenv("CKPT_WORKERS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<unsigned>(std::clamp(parsed, 1L, 64L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

ThreadPool::ThreadPool(unsigned workers) : worker_count_(std::max(workers, 1u)) {
  if (worker_count_ < 2) return;  // 1-worker pool: strictly inline
  workers_.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::record_error(Job& job, std::size_t index) {
  std::lock_guard<std::mutex> lock(job.error_mu);
  if (job.error == nullptr || index < job.error_index) {
    job.error = std::current_exception();
    job.error_index = index;
  }
}

void ThreadPool::process(Job& job) {
  while (true) {
    const std::size_t index = job.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.count) return;
    try {
      (*job.body)(index);
    } catch (...) {
      record_error(job, index);
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::worker_main() {
  tl_worker_of = this;
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_generation = 0;
  while (true) {
    cv_work_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    Job* job = job_;
    seen_generation = generation_;
    ++job->refs;
    lock.unlock();
    process(*job);
    lock.lock();
    if (--job->refs == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Inline paths: serial pool, single task, or a task body re-entering its
  // own pool.  Index order is ascending, matching any multi-worker join.
  if (workers_.empty() || count == 1 || tl_worker_of == this) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.body = &body;
  job.count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  cv_work_.notify_all();
  // The caller pulls indices too.  While it does, it counts as a worker of
  // this pool so a body that re-enters run() executes inline instead of
  // self-deadlocking on run_mu_.
  const ThreadPool* const prev_worker_of = tl_worker_of;
  tl_worker_of = this;
  process(job);
  tl_worker_of = prev_worker_of;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return job.done == job.count && job.refs == 0; });
    job_ = nullptr;
  }
  if (job.error != nullptr) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_workers());
  return pool;
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->run(count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
}

std::vector<std::byte> BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) return {};
  std::vector<std::byte> buffer = std::move(free_.back());
  free_.pop_back();
  return buffer;
}

void BufferPool::release(std::vector<std::byte> buffer) {
  if (buffer.capacity() == 0) return;
  buffer.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= kMaxRetained) return;  // beyond the bound: just free
  free_.push_back(std::move(buffer));
}

std::size_t BufferPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

BufferPool& BufferPool::shared() {
  static BufferPool pool;
  return pool;
}

}  // namespace ckpt::util
