// Deterministic random-number generation for the simulator.
//
// Everything stochastic in the reproduction (failure injection, guest write
// patterns, scheduler tie-breaking) draws from an explicitly seeded Rng so
// that every test and benchmark run is bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ckpt::util {

/// xoshiro256** with a SplitMix64 seeding sequence.  Small, fast and
/// statistically strong enough for workload generation and fault injection.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into four state words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponentially distributed sample with the given mean (e.g. MTBF).
  double next_exponential(double mean) {
    double u = next_double();
    // Avoid log(0).
    if (u <= std::numeric_limits<double>::min()) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Weibull(shape k, scale lambda) sample; k < 1 models infant mortality,
  /// k > 1 models wear-out — both appear in cluster failure studies.
  double next_weibull(double shape, double scale) {
    double u = next_double();
    if (u <= std::numeric_limits<double>::min()) u = std::numeric_limits<double>::min();
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ckpt::util
