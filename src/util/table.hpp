// Plain-text table rendering for benchmark output.
//
// The Table 1 / Figure 1 reproduction binaries print aligned ASCII tables in
// a stable format so EXPERIMENTS.md can quote them verbatim.
#pragma once

#include <string>
#include <vector>

namespace ckpt::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by the bench binaries.
std::string format_bytes(std::uint64_t bytes);
std::string format_time_ns(std::uint64_t ns);
std::string format_double(double value, int precision = 2);

}  // namespace ckpt::util
