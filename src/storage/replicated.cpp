#include "storage/replicated.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/observer.hpp"
#include "util/crc64.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {

const char* to_string(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::kNone: return "none";
    case StoreErrorKind::kUnreachable: return "unreachable";
    case StoreErrorKind::kRejected: return "rejected";
    case StoreErrorKind::kTornWrite: return "torn-write";
    case StoreErrorKind::kCorrupt: return "corrupt";
    case StoreErrorKind::kMissing: return "missing";
    case StoreErrorKind::kNoQuorum: return "no-quorum";
  }
  return "?";
}

std::string ScrubReport::summary() const {
  std::ostringstream out;
  out << entries << " entries";
  if (chunks > 0) out << " + " << chunks << " chunks";
  out << " / " << copies_checked << " copies audited: " << corrupt_found << " corrupt, "
      << missing_found << " missing, " << repaired << " repaired, " << unrepairable
      << " unrepairable, " << skipped_unreachable << " unreachable";
  return out.str();
}

ReplicatedStore::ReplicatedStore(std::vector<BlobStoreBackend*> replicas,
                                 ReplicatedOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicatedStore: at least one replica required");
  }
  for (BlobStoreBackend* replica : replicas_) {
    if (replica == nullptr) throw std::invalid_argument("ReplicatedStore: null replica");
  }
  if (options_.write_quorum == 0 || options_.write_quorum > replicas_.size()) {
    throw std::invalid_argument("ReplicatedStore: write_quorum out of range");
  }
  const std::unordered_set<const BlobStoreBackend*> distinct(replicas_.begin(),
                                                             replicas_.end());
  distinct_replicas_ = distinct.size() == replicas_.size();
  if (!options_.serial_commit) {
    pool_ = options_.pool != nullptr ? options_.pool : &util::ThreadPool::shared();
  }
  if (options_.dedup) {
    // The table is pure host-side identity bookkeeping shared by all
    // replicas; metrics go through options_.observer from this layer, so
    // the table's own observer hook stays disabled.
    DedupOptions table_options = options_.dedup_options;
    table_options.observer = nullptr;
    table_ = std::make_unique<ChunkTable>(table_options);
  }
}

ImageId ReplicatedStore::stage_on_replica(std::size_t r, const std::vector<std::byte>& blob,
                                          std::uint64_t crc, const ChargeFn& charge,
                                          std::uint64_t salt, std::uint64_t& retries,
                                          StoreErrorKind& error, StageTraceLog* log) {
  BlobStoreBackend& replica = *replicas_[r];
  Retrier retrier(options_.retry, salt ^ (r + 1));
  while (true) {
    StoreErrorKind attempt_error;
    if (!replica.reachable()) {
      attempt_error = StoreErrorKind::kUnreachable;
    } else {
      const ImageId id = replica.put_raw(blob, charge);
      if (id == kBadImageId) {
        // put_raw fails for exactly two reasons on a reachable replica: an
        // armed rejection fault, or an outage that began mid-call.
        attempt_error = replica.reachable() ? StoreErrorKind::kRejected
                                            : StoreErrorKind::kUnreachable;
      } else if (!options_.verify_writes) {
        return id;
      } else {
        // Read-back verify in place: the simulated media is read in full
        // (same charge as read_blob) but no host-side copy is made.
        const auto staged_crc = replica.blob_crc64(id, charge);
        if (staged_crc == crc) return id;
        // Torn or vanished: roll the stage back so nothing half-written
        // survives under a live id.
        replica.erase(id);
        attempt_error = staged_crc.has_value() ? StoreErrorKind::kTornWrite
                                               : StoreErrorKind::kMissing;
      }
    }
    error = attempt_error;
    if (log != nullptr) log->retry_marks.emplace_back(log->spent, attempt_error);
    const std::optional<SimTime> delay = retrier.next_delay();
    if (!delay.has_value()) return kBadImageId;
    if (charge) charge(*delay);
    ++retries;
  }
}

ReplicatedStore::DedupStage ReplicatedStore::stage_dedup_on_replica(
    std::size_t r, const ChunkTable::EncodedImage& enc,
    const std::vector<ChunkKey>& missing, const ChargeFn& charge, std::uint64_t salt,
    std::uint64_t& retries, StoreErrorKind& error, StageTraceLog* log) {
  DedupStage stage;
  // Chunks first (closure order), manifest last — a reader can only see the
  // manifest once every chunk it references is durable on this replica.
  for (const ChunkKey& key : missing) {
    const ImageId id = stage_on_replica(r, table_->blob_copy(key), table_->blob_crc(key),
                                        charge, salt, retries, error, log);
    if (id == kBadImageId) {
      for (auto it = stage.chunks.rbegin(); it != stage.chunks.rend(); ++it) {
        replicas_[r]->erase(it->second);
      }
      stage.chunks.clear();
      return stage;
    }
    stage.chunks.emplace_back(key, id);
  }
  stage.manifest_id = stage_on_replica(r, enc.manifest, enc.manifest_crc, charge, salt,
                                       retries, error, log);
  if (stage.manifest_id == kBadImageId) {
    for (auto it = stage.chunks.rbegin(); it != stage.chunks.rend(); ++it) {
      replicas_[r]->erase(it->second);
    }
    stage.chunks.clear();
  }
  return stage;
}

StoreReceipt ReplicatedStore::store_verbose_dedup(const CheckpointImage& image,
                                                  const ChargeFn& charge) {
  StoreReceipt receipt;
  obs::Observer* observer = options_.observer;
  obs::TraceRecorder* trace = obs::tracer(observer);

  if (trace != nullptr) {
    trace->begin("serialize", "storage", obs::kStorageTrack,
                 {obs::TraceArg::num("replicas", replicas_.size())});
  }
  ChunkTable::EncodedImage enc = table_->encode(image);
  if (trace != nullptr) {
    trace->end("serialize", obs::kStorageTrack,
               {obs::TraceArg::num("bytes", enc.stored_bytes),
                obs::TraceArg::num("logical_bytes", enc.logical_bytes),
                obs::TraceArg::num("fresh_chunks", enc.fresh.size()),
                obs::TraceArg::num("reused_refs", enc.reused_refs)});
  }
  const std::uint64_t salt = ++op_counter_;

  // Per-replica diff against the placement map, computed up front so the
  // parallel fan-out only ever reads shared state.  Fresh chunks are missing
  // everywhere by definition; reused chunks are missing only on replicas
  // that sat out the store that created them.
  std::vector<std::vector<ChunkKey>> missing(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    for (const ChunkKey& key : enc.refs) {
      const auto it = chunk_placements_.find(key);
      if (it == chunk_placements_.end() || !it->second.contains(r)) {
        missing[r].push_back(key);
      }
    }
  }

  const auto emit_stage = [&](std::size_t r, SimTime base, const StageTraceLog& log,
                              ImageId id, std::uint64_t staged_chunks) {
    if (trace == nullptr) return;
    trace->begin_at(base, "replica-stage", "storage", obs::kStorageTrack,
                    {obs::TraceArg::num("replica", r),
                     obs::TraceArg::num("chunks", staged_chunks)});
    std::uint64_t outages = 0;
    for (const auto& [offset, kind] : log.retry_marks) {
      if (kind == StoreErrorKind::kUnreachable) ++outages;
      trace->instant_at(base + offset, "stage-retry", "storage", obs::kStorageTrack,
                        {obs::TraceArg::num("replica", r),
                         obs::TraceArg::str("error", to_string(kind))});
    }
    std::vector<obs::TraceArg> end_args{
        obs::TraceArg::num("replica", r),
        obs::TraceArg::str("outcome", id != kBadImageId ? "verified" : "failed"),
        obs::TraceArg::num("retries", log.retry_marks.size())};
    if (id == kBadImageId && !log.retry_marks.empty()) {
      end_args.push_back(
          obs::TraceArg::str("error", to_string(log.retry_marks.back().second)));
    }
    trace->end_at(base + log.spent, "replica-stage", obs::kStorageTrack,
                  std::move(end_args));
    if (outages > 0) observer->metrics().add("store.replica_outages", outages);
  };

  // Phase 1: stage the per-replica diff + manifest on every replica.  Same
  // ledger-replay contract as the flat path: with a pool, each replica's
  // sim-time charges are recorded by the worker and replayed through the
  // caller's ChargeFn in replica order.
  std::vector<DedupStage> stages(replicas_.size());
  if (pool_ != nullptr && distinct_replicas_ && replicas_.size() >= 2 &&
      pool_->worker_count() >= 2) {
    struct StageOutcome {
      std::uint64_t retries = 0;
      StoreErrorKind error = StoreErrorKind::kNone;
      std::vector<SimTime> charges;
      StageTraceLog log;
    };
    std::vector<StageOutcome> outcomes(replicas_.size());
    pool_->run(replicas_.size(), [&](std::size_t r) {
      StageOutcome& out = outcomes[r];
      const ChargeFn ledger = [&out](SimTime t) {
        out.log.spent += t;
        out.charges.push_back(t);
      };
      stages[r] = stage_dedup_on_replica(r, enc, missing[r], ledger, salt, out.retries,
                                         out.error, &out.log);
    });
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      StageOutcome& out = outcomes[r];
      const SimTime base = trace != nullptr ? trace->now() : 0;
      if (charge) {
        for (SimTime t : out.charges) charge(t);
      }
      receipt.retries += out.retries;
      if (out.error != StoreErrorKind::kNone) receipt.last_error = out.error;
      emit_stage(r, base, out.log, stages[r].manifest_id, stages[r].chunks.size());
    }
  } else {
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      StageTraceLog log;
      const SimTime base = trace != nullptr ? trace->now() : 0;
      ChargeFn wrapped = charge;
      if (trace != nullptr) {
        wrapped = [&log, &charge](SimTime t) {
          log.spent += t;
          if (charge) charge(t);
        };
      }
      stages[r] = stage_dedup_on_replica(r, enc, missing[r], wrapped, salt,
                                         receipt.retries, receipt.last_error,
                                         trace != nullptr ? &log : nullptr);
      emit_stage(r, base, log, stages[r].manifest_id, stages[r].chunks.size());
    }
  }

  std::map<std::size_t, ImageId> placements;
  for (std::size_t r = 0; r < stages.size(); ++r) {
    if (stages[r].manifest_id != kBadImageId) placements.emplace(r, stages[r].manifest_id);
  }

  // Phase 2: publish iff the write quorum verified; otherwise roll every
  // replica's newly staged blobs back and forget the encode.
  if (placements.size() < options_.write_quorum) {
    for (std::size_t r = 0; r < stages.size(); ++r) {
      if (stages[r].manifest_id == kBadImageId) continue;
      replicas_[r]->erase(stages[r].manifest_id);
      for (auto it = stages[r].chunks.rbegin(); it != stages[r].chunks.rend(); ++it) {
        replicas_[r]->erase(it->second);
      }
    }
    table_->abort(enc);
    if (receipt.last_error == StoreErrorKind::kNone) {
      receipt.last_error = StoreErrorKind::kNoQuorum;
    }
    if (observer != nullptr) {
      observer->trace().instant(
          "commit-failed", "storage", obs::kStorageTrack,
          {obs::TraceArg::str("error", to_string(receipt.last_error)),
           obs::TraceArg::num("staged", placements.size()),
           obs::TraceArg::num("quorum", options_.write_quorum)});
      observer->metrics().add("store.commit_failed");
      observer->metrics().add("store.stage_retries", receipt.retries);
    }
    return receipt;
  }

  receipt.id = next_id_++;
  receipt.committed_replicas = static_cast<std::uint32_t>(placements.size());
  for (std::size_t r = 0; r < stages.size(); ++r) {
    if (stages[r].manifest_id == kBadImageId) continue;  // scrub re-replicates
    for (const auto& [key, physical] : stages[r].chunks) {
      chunk_placements_[key].emplace(r, physical);
    }
  }
  table_->commit(enc);
  manifest_.emplace(receipt.id, Entry{enc.manifest_crc, enc.manifest.size(),
                                      std::move(placements), enc.refs});
  if (observer != nullptr) {
    observer->trace().instant(
        "commit", "storage", obs::kStorageTrack,
        {obs::TraceArg::num("id", receipt.id),
         obs::TraceArg::num("replicas", receipt.committed_replicas),
         obs::TraceArg::num("bytes", enc.stored_bytes)});
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("store.committed");
    metrics.add("store.stage_retries", receipt.retries);
    metrics.add("store.bytes_committed", enc.stored_bytes);
    metrics.add("dedup.images");
    metrics.add("dedup.chunks_new", enc.fresh.size());
    metrics.add("dedup.chunks_reused", enc.reused_refs);
    metrics.add("dedup.delta_chunks", enc.delta_fresh);
    metrics.add("dedup.bytes_logical", enc.logical_bytes);
    metrics.add("dedup.bytes_stored", enc.stored_bytes);
    const std::uint64_t permille =
        enc.logical_bytes == 0 ? 1000 : enc.stored_bytes * 1000 / enc.logical_bytes;
    metrics.observe("dedup.stored_permille", permille,
                    obs::MetricsRegistry::permille_bounds());
    metrics.set_gauge("dedup.chunks_live", static_cast<std::int64_t>(table_->live_count()));
  }
  return receipt;
}

StoreReceipt ReplicatedStore::store_verbose(const CheckpointImage& image,
                                            const ChargeFn& charge) {
  if (table_ != nullptr) return store_verbose_dedup(image, charge);
  StoreReceipt receipt;
  obs::Observer* observer = options_.observer;
  obs::TraceRecorder* trace = obs::tracer(observer);

  if (trace != nullptr) {
    trace->begin("serialize", "storage", obs::kStorageTrack,
                 {obs::TraceArg::num("replicas", replicas_.size())});
  }
  const std::vector<std::byte> blob =
      pool_ != nullptr ? image.serialize(*pool_) : image.serialize();
  const std::uint64_t crc = util::crc64(blob);
  if (trace != nullptr) {
    trace->end("serialize", obs::kStorageTrack, {obs::TraceArg::num("bytes", blob.size())});
  }
  const std::uint64_t salt = ++op_counter_;

  // One replica-stage span per replica, rendered from the stage's trace
  // ledger with explicit timestamps (base + charge offset).  Both commit
  // paths call this only after the replica's charges have been (re)played
  // through the caller's ChargeFn, so events, timestamps and seq order are
  // byte-identical whether staging ran serially or on the pool.
  const auto emit_stage = [&](std::size_t r, SimTime base, const StageTraceLog& log,
                              ImageId id) {
    if (trace == nullptr) return;
    trace->begin_at(base, "replica-stage", "storage", obs::kStorageTrack,
                    {obs::TraceArg::num("replica", r)});
    std::uint64_t outages = 0;
    for (const auto& [offset, kind] : log.retry_marks) {
      if (kind == StoreErrorKind::kUnreachable) ++outages;
      trace->instant_at(base + offset, "stage-retry", "storage", obs::kStorageTrack,
                        {obs::TraceArg::num("replica", r),
                         obs::TraceArg::str("error", to_string(kind))});
    }
    std::vector<obs::TraceArg> end_args{
        obs::TraceArg::num("replica", r),
        obs::TraceArg::str("outcome", id != kBadImageId ? "verified" : "failed"),
        obs::TraceArg::num("retries", log.retry_marks.size())};
    if (id == kBadImageId && !log.retry_marks.empty()) {
      end_args.push_back(
          obs::TraceArg::str("error", to_string(log.retry_marks.back().second)));
    }
    trace->end_at(base + log.spent, "replica-stage", obs::kStorageTrack,
                  std::move(end_args));
    if (outages > 0) observer->metrics().add("store.replica_outages", outages);
  };

  // Phase 1: stage + verify on every replica.  With a pool the fan-out runs
  // one task per replica; each task ledgers its sim-time charges, and the
  // join replays them through the caller's ChargeFn in replica order — the
  // exact charge sequence of the sequential loop.  (Replica slots sharing a
  // backend object fall back to the sequential loop: their staging would
  // race on one blob map.)
  std::map<std::size_t, ImageId> placements;
  if (pool_ != nullptr && distinct_replicas_ && replicas_.size() >= 2 &&
      pool_->worker_count() >= 2) {
    struct StageOutcome {
      ImageId id = kBadImageId;
      std::uint64_t retries = 0;
      StoreErrorKind error = StoreErrorKind::kNone;
      std::vector<SimTime> charges;
      StageTraceLog log;
    };
    std::vector<StageOutcome> outcomes(replicas_.size());
    pool_->run(replicas_.size(), [&](std::size_t r) {
      StageOutcome& out = outcomes[r];
      const ChargeFn ledger = [&out](SimTime t) {
        out.log.spent += t;
        out.charges.push_back(t);
      };
      out.id = stage_on_replica(r, blob, crc, ledger, salt, out.retries, out.error,
                                &out.log);
    });
    for (std::size_t r = 0; r < outcomes.size(); ++r) {
      StageOutcome& out = outcomes[r];
      const SimTime base = trace != nullptr ? trace->now() : 0;
      if (charge) {
        for (SimTime t : out.charges) charge(t);
      }
      receipt.retries += out.retries;
      if (out.error != StoreErrorKind::kNone) receipt.last_error = out.error;
      if (out.id != kBadImageId) placements.emplace(r, out.id);
      emit_stage(r, base, out.log, out.id);
    }
  } else {
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      StageTraceLog log;
      const SimTime base = trace != nullptr ? trace->now() : 0;
      ChargeFn wrapped = charge;
      if (trace != nullptr) {
        // Mirror the worker ledger: spent accumulates even when the caller
        // passed no ChargeFn, so serial and parallel traces agree.
        wrapped = [&log, &charge](SimTime t) {
          log.spent += t;
          if (charge) charge(t);
        };
      }
      const ImageId id = stage_on_replica(r, blob, crc, wrapped, salt, receipt.retries,
                                          receipt.last_error,
                                          trace != nullptr ? &log : nullptr);
      if (id != kBadImageId) placements.emplace(r, id);
      emit_stage(r, base, log, id);
    }
  }

  // Phase 2: publish iff the write quorum verified; otherwise roll back so
  // a failed store leaves no trace.
  if (placements.size() < options_.write_quorum) {
    for (const auto& [r, id] : placements) replicas_[r]->erase(id);
    if (receipt.last_error == StoreErrorKind::kNone) {
      receipt.last_error = StoreErrorKind::kNoQuorum;
    }
    if (observer != nullptr) {
      observer->trace().instant(
          "commit-failed", "storage", obs::kStorageTrack,
          {obs::TraceArg::str("error", to_string(receipt.last_error)),
           obs::TraceArg::num("staged", placements.size()),
           obs::TraceArg::num("quorum", options_.write_quorum)});
      observer->metrics().add("store.commit_failed");
      observer->metrics().add("store.stage_retries", receipt.retries);
    }
    return receipt;
  }

  receipt.id = next_id_++;
  receipt.committed_replicas = static_cast<std::uint32_t>(placements.size());
  manifest_.emplace(receipt.id, Entry{crc, blob.size(), std::move(placements)});
  if (observer != nullptr) {
    observer->trace().instant(
        "commit", "storage", obs::kStorageTrack,
        {obs::TraceArg::num("id", receipt.id),
         obs::TraceArg::num("replicas", receipt.committed_replicas),
         obs::TraceArg::num("bytes", blob.size())});
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("store.committed");
    metrics.add("store.stage_retries", receipt.retries);
    metrics.add("store.bytes_committed", blob.size());
  }
  return receipt;
}

ImageId ReplicatedStore::store(const CheckpointImage& image, const ChargeFn& charge) {
  return store_verbose(image, charge).id;
}

StoreReceipt ReplicatedStore::store_streamed(const StreamSource& source,
                                             const ChargeFn& charge) {
  if (table_ != nullptr) {
    throw std::logic_error("ReplicatedStore: store_streamed requires flat (non-dedup) mode");
  }
  StoreReceipt receipt;
  obs::Observer* observer = options_.observer;
  obs::TraceRecorder* trace = obs::tracer(observer);
  const std::uint64_t salt = ++op_counter_;
  const std::size_t chunk_count = source.chunk_count;
  const std::size_t replica_count = replicas_.size();

  const SimTime stream_base = trace != nullptr ? trace->now() : 0;
  if (trace != nullptr) {
    trace->begin("stream", "storage", obs::kStorageTrack,
                 {obs::TraceArg::num("replicas", replica_count),
                  obs::TraceArg::num("chunks", chunk_count)});
  }

  // Phase 0: open one append stage per replica and land the image prelude,
  // in replica order on the caller.  The open pays the per-IO setup latency
  // once; every later append pays marginal bandwidth only.
  std::vector<BlobStoreBackend::StageId> stages(replica_count,
                                                BlobStoreBackend::kBadStageId);
  std::vector<char> failed(replica_count, 0);
  std::vector<StoreErrorKind> lane_error(replica_count, StoreErrorKind::kNone);
  std::vector<SimTime> lane_spent(replica_count, 0);
  for (std::size_t r = 0; r < replica_count; ++r) {
    const ChargeFn opened = [&lane_spent, &charge, r](SimTime t) {
      lane_spent[r] += t;
      if (charge) charge(t);
    };
    stages[r] = replicas_[r]->begin_staged(opened);
    if (stages[r] == BlobStoreBackend::kBadStageId) {
      failed[r] = 1;
      lane_error[r] = StoreErrorKind::kUnreachable;
    } else if (!replicas_[r]->append_staged(stages[r], source.prelude, opened)) {
      failed[r] = 1;
      lane_error[r] = replicas_[r]->reachable() ? StoreErrorKind::kRejected
                                                : StoreErrorKind::kUnreachable;
    }
  }

  // Phase 1: produce chunks (on pool workers when available) and append
  // each to every still-healthy stage.  Replica lanes are ticket-gated —
  // chunk i appends to replica r only after chunk i-1 did — so each stage
  // receives chunks in order while different chunks encode and different
  // replicas append concurrently.  The pool dispatches indices in ascending
  // order, so the holder of ticket i-1 is always already running and the
  // spin below cannot deadlock.  Every charge lands in a per-(chunk,
  // replica) ledger replayed after the join.
  struct Lane {
    std::vector<SimTime> charges;
    StoreErrorKind error = StoreErrorKind::kNone;
    char failed_here = 0;
  };
  struct ChunkOutcome {
    std::uint64_t crc = 0;
    std::uint64_t bytes = 0;
    SimTime capture_ns = 0;
    std::vector<Lane> lanes;
  };
  std::vector<ChunkOutcome> outcomes(chunk_count);
  for (ChunkOutcome& out : outcomes) out.lanes.resize(replica_count);
  std::vector<std::atomic<std::size_t>> cursor(replica_count);
  const auto stream_one = [&](std::size_t i) {
    ChunkOutcome& out = outcomes[i];
    const StreamChunk chunk = source.produce(i);
    out.crc = util::crc64(chunk.bytes);
    out.bytes = chunk.bytes.size();
    out.capture_ns = chunk.capture_ns;
    for (std::size_t r = 0; r < replica_count; ++r) {
      while (cursor[r].load(std::memory_order_acquire) != i) {
      }
      if (failed[r] == 0) {
        Lane& lane = out.lanes[r];
        const ChargeFn ledger = [&lane](SimTime t) { lane.charges.push_back(t); };
        if (!replicas_[r]->append_staged(stages[r], chunk.bytes, ledger)) {
          lane.error = replicas_[r]->reachable() ? StoreErrorKind::kRejected
                                                 : StoreErrorKind::kUnreachable;
          lane.failed_here = 1;
          failed[r] = 1;
        }
      }
      cursor[r].store(i + 1, std::memory_order_release);
    }
  };
  if (pool_ != nullptr && distinct_replicas_ && chunk_count >= 2 &&
      pool_->worker_count() >= 2) {
    pool_->run(chunk_count, stream_one);
  } else {
    for (std::size_t i = 0; i < chunk_count; ++i) stream_one(i);
  }

  // Replay the ledgers in chunk-then-replica order — the charge sequence of
  // a fully serial run, whatever the pool width.
  for (std::size_t i = 0; i < chunk_count; ++i) {
    const ChunkOutcome& out = outcomes[i];
    if (charge && out.capture_ns > 0) charge(out.capture_ns);
    for (std::size_t r = 0; r < replica_count; ++r) {
      for (SimTime t : out.lanes[r].charges) {
        lane_spent[r] += t;
        if (charge) charge(t);
      }
      if (out.lanes[r].failed_here != 0) {
        lane_error[r] = out.lanes[r].error;
        receipt.last_error = out.lanes[r].error;
      }
    }
  }

  // The trailer closes every still-healthy stage's body, again in replica
  // order on the caller.
  for (std::size_t r = 0; r < replica_count; ++r) {
    if (failed[r] != 0) continue;
    const ChargeFn lane_charge = [&lane_spent, &charge, r](SimTime t) {
      lane_spent[r] += t;
      if (charge) charge(t);
    };
    if (!replicas_[r]->append_staged(stages[r], source.trailer, lane_charge)) {
      failed[r] = 1;
      lane_error[r] = replicas_[r]->reachable() ? StoreErrorKind::kRejected
                                                : StoreErrorKind::kUnreachable;
      receipt.last_error = lane_error[r];
    }
  }

  // Body CRC from the per-chunk CRCs via crc64_combine — the full blob is
  // only materialized if some replica needs the whole-image fallback.
  std::uint64_t body_len = 0;
  std::uint64_t body_crc = util::crc64(source.prelude);
  body_len += source.prelude.size();
  for (const ChunkOutcome& out : outcomes) {
    body_crc = util::crc64_combine(body_crc, out.crc, out.bytes);
    body_len += out.bytes;
  }
  body_crc = util::crc64(source.trailer, body_crc);
  body_len += source.trailer.size();

  util::Serializer header_s;
  header_s.put(CheckpointImage::kFormatVersion);
  header_s.put(body_crc);
  const std::vector<std::byte> header = std::move(header_s).take();
  const std::uint64_t full_crc =
      util::crc64_combine(util::crc64(header), body_crc, body_len);
  const std::uint64_t full_bytes = header.size() + body_len;

  // Whole-image fallback blob, assembled lazily: re-producing the chunks
  // re-reads the (still frozen) capture source, so the re-read cost is
  // charged again — a faulted replica pays for its retry.
  std::vector<std::byte> full_blob;
  const auto assemble_full = [&]() -> const std::vector<std::byte>& {
    if (full_blob.empty()) {
      full_blob.reserve(full_bytes);
      full_blob.insert(full_blob.end(), header.begin(), header.end());
      full_blob.insert(full_blob.end(), source.prelude.begin(), source.prelude.end());
      SimTime reread = 0;
      for (std::size_t i = 0; i < chunk_count; ++i) {
        const StreamChunk chunk = source.produce(i);
        reread += chunk.capture_ns;
        full_blob.insert(full_blob.end(), chunk.bytes.begin(), chunk.bytes.end());
      }
      full_blob.insert(full_blob.end(), source.trailer.begin(), source.trailer.end());
      if (charge && reread > 0) charge(reread);
    }
    return full_blob;
  };

  // Phase 2: seal in replica order on the caller.  A healthy lane backfills
  // the envelope header and CRC-verifies the sealed blob (which is where a
  // silently torn mid-stream append finally surfaces); a failed lane
  // abandons its stage and retries the classic whole-blob path.
  std::map<std::size_t, ImageId> placements;
  for (std::size_t r = 0; r < replica_count; ++r) {
    const ChargeFn lane_charge = [&lane_spent, &charge, r](SimTime t) {
      lane_spent[r] += t;
      if (charge) charge(t);
    };
    ImageId id = kBadImageId;
    bool fell_back = false;
    if (failed[r] == 0 && stages[r] != BlobStoreBackend::kBadStageId) {
      id = replicas_[r]->finish_staged(stages[r], header, lane_charge);
      if (id == kBadImageId) {
        lane_error[r] = replicas_[r]->reachable() ? StoreErrorKind::kRejected
                                                  : StoreErrorKind::kUnreachable;
      } else if (options_.verify_writes) {
        const auto sealed_crc = replicas_[r]->blob_crc64(id, lane_charge);
        if (sealed_crc != full_crc) {
          replicas_[r]->erase(id);
          lane_error[r] = sealed_crc.has_value() ? StoreErrorKind::kTornWrite
                                                 : StoreErrorKind::kMissing;
          id = kBadImageId;
        }
      }
    } else if (stages[r] != BlobStoreBackend::kBadStageId) {
      replicas_[r]->abandon_staged(stages[r]);
    }
    if (id == kBadImageId) {
      fell_back = true;
      if (trace != nullptr) {
        trace->instant("stream-fallback", "storage", obs::kStorageTrack,
                       {obs::TraceArg::num("replica", r),
                        obs::TraceArg::str("error", to_string(lane_error[r]))});
      }
      id = stage_on_replica(r, assemble_full(), full_crc, lane_charge, salt,
                            receipt.retries, receipt.last_error, nullptr);
    }
    if (id != kBadImageId) {
      placements.emplace(r, id);
    } else if (receipt.last_error == StoreErrorKind::kNone) {
      receipt.last_error = lane_error[r];
    }
    if (observer != nullptr && fell_back) observer->metrics().add("store.stream_fallbacks");
  }

  // Per-replica stream spans, rendered from the replayed per-lane totals.
  if (trace != nullptr) {
    for (std::size_t r = 0; r < replica_count; ++r) {
      trace->begin_at(stream_base, "replica-stream", "storage", obs::kStorageTrack,
                      {obs::TraceArg::num("replica", r)});
      trace->end_at(
          stream_base + lane_spent[r], "replica-stream", obs::kStorageTrack,
          {obs::TraceArg::num("replica", r),
           obs::TraceArg::str("outcome", placements.contains(r) ? "verified" : "failed")});
    }
  }

  // Phase 3: publish iff the write quorum verified; a failed streamed store
  // leaves no trace — staged bytes died with their stages.
  if (placements.size() < options_.write_quorum) {
    for (const auto& [r, id] : placements) replicas_[r]->erase(id);
    if (receipt.last_error == StoreErrorKind::kNone) {
      receipt.last_error = StoreErrorKind::kNoQuorum;
    }
    if (trace != nullptr) {
      trace->end("stream", obs::kStorageTrack,
                 {obs::TraceArg::str("outcome", "failed"),
                  obs::TraceArg::str("error", to_string(receipt.last_error))});
    }
    if (observer != nullptr) {
      observer->metrics().add("store.commit_failed");
      observer->metrics().add("store.stage_retries", receipt.retries);
    }
    return receipt;
  }

  receipt.id = next_id_++;
  receipt.committed_replicas = static_cast<std::uint32_t>(placements.size());
  manifest_.emplace(receipt.id, Entry{full_crc, full_bytes, std::move(placements)});
  if (trace != nullptr) {
    trace->end("stream", obs::kStorageTrack,
               {obs::TraceArg::num("id", receipt.id),
                obs::TraceArg::num("bytes", full_bytes),
                obs::TraceArg::num("chunks", chunk_count)});
  }
  if (observer != nullptr) {
    observer->trace().instant(
        "commit", "storage", obs::kStorageTrack,
        {obs::TraceArg::num("id", receipt.id),
         obs::TraceArg::num("replicas", receipt.committed_replicas),
         obs::TraceArg::num("bytes", full_bytes)});
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("store.committed");
    metrics.add("store.streamed");
    metrics.add("store.stream_chunks", chunk_count);
    metrics.add("store.stage_retries", receipt.retries);
    metrics.add("store.bytes_committed", full_bytes);
  }
  return receipt;
}

std::optional<CheckpointImage> ReplicatedStore::load(ImageId id, const ChargeFn& charge) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return std::nullopt;
  const Entry& entry = it->second;

  Retrier retrier(options_.retry, id ^ 0xB10B);
  while (true) {
    for (const auto& [r, physical] : entry.placements) {
      const auto blob = replicas_[r]->read_blob(physical, charge);
      if (!blob.has_value()) continue;                    // unreachable or missing
      if (util::crc64(*blob) != entry.crc) continue;      // corrupt copy: fail over
      if (table_ != nullptr) {
        // Dedup: resolve each chunk with per-chunk cross-replica failover —
        // the manifest's own replica first (locality), then any other copy.
        // A chunk that is corrupt on one replica and healthy on another
        // still reconstructs the image.
        const auto fetch = [&, r = r](const ChunkKey& key, std::uint64_t expected)
            -> std::optional<std::vector<std::byte>> {
          const auto cp = chunk_placements_.find(key);
          if (cp == chunk_placements_.end()) return std::nullopt;
          const auto try_copy =
              [&](std::size_t rr, ImageId chunk_id) -> std::optional<std::vector<std::byte>> {
            auto copy = replicas_[rr]->read_blob(chunk_id, charge);
            if (copy.has_value() && util::crc64(*copy) == expected) return copy;
            return std::nullopt;
          };
          if (const auto own = cp->second.find(r); own != cp->second.end()) {
            if (auto copy = try_copy(r, own->second)) return copy;
          }
          for (const auto& [rr, chunk_id] : cp->second) {
            if (rr == r) continue;
            if (auto copy = try_copy(rr, chunk_id)) return copy;
          }
          return std::nullopt;
        };
        if (auto image = ChunkTable::decode(*blob, fetch)) return image;
        continue;
      }
      try {
        return CheckpointImage::deserialize(*blob);
      } catch (const ImageCorrupt&) {
      } catch (const util::SerializeError&) {
      }
    }
    const std::optional<SimTime> delay = retrier.next_delay();
    if (!delay.has_value()) return std::nullopt;
    if (charge) charge(*delay);
  }
}

std::optional<CheckpointImage> ReplicatedStore::load_from(std::size_t replica, ImageId id,
                                                          const ChargeFn& charge) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end() || replica >= replicas_.size()) return std::nullopt;
  const auto placement = it->second.placements.find(replica);
  if (placement == it->second.placements.end()) return std::nullopt;
  const auto blob = replicas_[replica]->read_blob(placement->second, charge);
  if (!blob.has_value() || util::crc64(*blob) != it->second.crc) return std::nullopt;
  if (table_ != nullptr) {
    // Strictly this replica — no chunk failover.  The degradation ladder
    // uses load_from to probe what *one* replica can restore by itself.
    const auto fetch = [&](const ChunkKey& key, std::uint64_t expected)
        -> std::optional<std::vector<std::byte>> {
      const auto cp = chunk_placements_.find(key);
      if (cp == chunk_placements_.end()) return std::nullopt;
      const auto own = cp->second.find(replica);
      if (own == cp->second.end()) return std::nullopt;
      auto copy = replicas_[replica]->read_blob(own->second, charge);
      if (copy.has_value() && util::crc64(*copy) == expected) return copy;
      return std::nullopt;
    };
    return ChunkTable::decode(*blob, fetch);
  }
  try {
    return CheckpointImage::deserialize(*blob);
  } catch (const ImageCorrupt&) {
    return std::nullopt;
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

bool ReplicatedStore::erase(ImageId id) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return false;
  for (const auto& [r, physical] : it->second.placements) replicas_[r]->erase(physical);
  // Dedup: the erased entry's closure references are released; the chunk
  // blobs themselves stay on the replicas until gc() finds them orphaned.
  if (table_ != nullptr) table_->release(it->second.chunks);
  manifest_.erase(it);
  return true;
}

std::vector<ImageId> ReplicatedStore::list() const {
  std::vector<ImageId> out;
  out.reserve(manifest_.size());
  for (const auto& [id, entry] : manifest_) out.push_back(id);
  return out;
}

StorageLocality ReplicatedStore::locality() const {
  StorageLocality best = StorageLocality::kNone;
  auto rank = [](StorageLocality l) {
    switch (l) {
      case StorageLocality::kRemote: return 3;
      case StorageLocality::kLocalDisk: return 2;
      case StorageLocality::kVolatileMemory: return 1;
      case StorageLocality::kNone: return 0;
    }
    return 0;
  };
  for (const BlobStoreBackend* replica : replicas_) {
    if (rank(replica->locality()) > rank(best)) best = replica->locality();
  }
  return best;
}

bool ReplicatedStore::reachable() const {
  return std::any_of(replicas_.begin(), replicas_.end(),
                     [](const BlobStoreBackend* r) { return r->reachable(); });
}

std::uint64_t ReplicatedStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const BlobStoreBackend* replica : replicas_) total += replica->stored_bytes();
  return total;
}

ScrubReport ReplicatedStore::scrub(const ChargeFn& charge) {
  ScrubReport report;
  obs::Observer* observer = options_.observer;
  obs::SpanGuard span(obs::tracer(observer), "scrub", "storage", obs::kStorageTrack,
                      {obs::TraceArg::num("replicas", replicas_.size())});
  enum class CopyState : std::uint8_t { kOk, kCorrupt, kMissing, kUnreachable };

  // Phase 1 — audit reads, sequential in (entry, replica) order so the
  // charge sequence matches the old one-entry-at-a-time audit exactly.
  // Copies are held so phase 3 can repair from the healthy one without
  // re-reading it, and so phase 2 can verify them off the hot thread.
  // The audit unit is a (crc, placements) pair — manifest entries and, in
  // dedup mode, every live content chunk go through the same three phases:
  // a chunk torn, corrupted or absent on one replica is repaired from a
  // healthy peer copy exactly like a whole image.  (Never from the host
  // ChunkTable cache: scrub certifies what the *media* holds, and repairing
  // from host memory would mask real durable-data loss.)
  struct Copy {
    std::optional<std::vector<std::byte>> blob;
    bool crc_ok = false;
  };
  struct BlobAudit {
    std::uint64_t crc = 0;
    std::map<std::size_t, ImageId>* placements = nullptr;
    std::vector<Copy> copies;
  };
  std::vector<BlobAudit> audits;
  audits.reserve(manifest_.size());
  for (auto& [id, entry] : manifest_) {
    ++report.entries;
    audits.push_back(BlobAudit{entry.crc, &entry.placements, {}});
  }
  if (table_ != nullptr) {
    for (const ChunkKey& key : table_->live_keys()) {
      ++report.chunks;
      audits.push_back(BlobAudit{table_->blob_crc(key), &chunk_placements_[key], {}});
    }
  }
  for (BlobAudit& audit : audits) {
    audit.copies.resize(replicas_.size());
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (!replicas_[r]->reachable()) continue;
      const auto placement = audit.placements->find(r);
      if (placement == audit.placements->end()) continue;
      audit.copies[r].blob = replicas_[r]->read_blob(placement->second, charge);
      ++report.copies_checked;
    }
  }

  // Phase 2 — CRC-verify every audited copy across all manifest entries in
  // one flat fan-out (pure computation: no charges, no backend access).
  std::vector<std::pair<std::size_t, std::size_t>> flat;  // (audit, replica)
  for (std::size_t a = 0; a < audits.size(); ++a) {
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (audits[a].copies[r].blob.has_value()) flat.emplace_back(a, r);
    }
  }
  util::parallel_for(pool_, flat.size(), [&](std::size_t i) {
    const auto [a, r] = flat[i];
    Copy& copy = audits[a].copies[r];
    copy.crc_ok = util::crc64(*copy.blob) == audits[a].crc;
  });

  // Phase 3 — classify and repair, sequential in audit order (manifest
  // entries, then live chunks).  The healthy source copy is the one already
  // read during the audit: loaded once per blob and reused for every repair
  // of that blob.
  for (BlobAudit& audit : audits) {
    std::vector<CopyState> states(replicas_.size(), CopyState::kMissing);
    std::optional<std::vector<std::byte>> healthy;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (!replicas_[r]->reachable()) {
        states[r] = CopyState::kUnreachable;
        continue;
      }
      Copy& copy = audit.copies[r];
      if (!copy.blob.has_value()) continue;  // no placement, or blob gone
      if (!copy.crc_ok) {
        states[r] = CopyState::kCorrupt;
        continue;
      }
      states[r] = CopyState::kOk;
      if (!healthy.has_value()) healthy = std::move(copy.blob);
    }

    // Repair every damaged or absent copy from the healthy peer.
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (states[r] == CopyState::kOk) continue;
      if (states[r] == CopyState::kUnreachable) {
        ++report.skipped_unreachable;
        continue;
      }
      if (states[r] == CopyState::kCorrupt) {
        ++report.corrupt_found;
      } else {
        ++report.missing_found;
      }
      if (!healthy.has_value()) {
        ++report.unrepairable;
        continue;
      }
      if (const auto placement = audit.placements->find(r);
          placement != audit.placements->end()) {
        replicas_[r]->erase(placement->second);
        audit.placements->erase(placement);
      }
      const ImageId fresh = replicas_[r]->put_raw(*healthy, charge);
      bool repaired = fresh != kBadImageId;
      if (repaired) {
        // Verify the repair in place (same media read, no host copy).
        const auto written_crc = replicas_[r]->blob_crc64(fresh, charge);
        if (written_crc != audit.crc) {
          replicas_[r]->erase(fresh);  // repair itself tore: stay honest
          repaired = false;
        }
      }
      if (repaired) {
        audit.placements->emplace(r, fresh);
        ++report.repaired;
      } else {
        ++report.unrepairable;
      }
    }
  }
  span.end({obs::TraceArg::num("entries", report.entries),
            obs::TraceArg::num("chunks", report.chunks),
            obs::TraceArg::num("copies", report.copies_checked),
            obs::TraceArg::num("corrupt", report.corrupt_found),
            obs::TraceArg::num("missing", report.missing_found),
            obs::TraceArg::num("repaired", report.repaired),
            obs::TraceArg::num("unrepairable", report.unrepairable)});
  if (observer != nullptr) {
    obs::MetricsRegistry& metrics = observer->metrics();
    metrics.add("scrub.runs");
    metrics.add("scrub.copies_checked", report.copies_checked);
    metrics.add("scrub.corrupt_found", report.corrupt_found);
    metrics.add("scrub.missing_found", report.missing_found);
    metrics.add("scrub.repaired", report.repaired);
    metrics.add("scrub.unrepairable", report.unrepairable);
  }
  return report;
}

void ReplicatedStore::retarget_replica(std::size_t index, BlobStoreBackend* backend) {
  if (index >= replicas_.size() || backend == nullptr) {
    throw std::invalid_argument("ReplicatedStore::retarget_replica: bad slot or backend");
  }
  // Placements recorded against the old backend are meaningless on the new
  // one: drop them so reads fail over and scrub() re-replicates — manifest
  // copies and content chunks alike.
  for (auto& [id, entry] : manifest_) entry.placements.erase(index);
  for (auto& [key, placements] : chunk_placements_) placements.erase(index);
  replicas_[index] = backend;
}

std::uint32_t ReplicatedStore::intact_replicas(ImageId id) const {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return 0;
  std::uint32_t intact = 0;
  for (const auto& [r, physical] : it->second.placements) {
    if (replicas_[r]->blob_crc64(physical, ChargeFn{}) != it->second.crc) continue;
    if (table_ != nullptr) {
      // A dedup image is only as durable as its closure: the replica counts
      // only when every referenced chunk also verifies on it.
      bool closure_intact = true;
      for (const ChunkKey& key : it->second.chunks) {
        const auto cp = chunk_placements_.find(key);
        if (cp == chunk_placements_.end()) {
          closure_intact = false;
          break;
        }
        const auto own = cp->second.find(r);
        if (own == cp->second.end() ||
            replicas_[r]->blob_crc64(own->second, ChargeFn{}) != table_->blob_crc(key)) {
          closure_intact = false;
          break;
        }
      }
      if (!closure_intact) continue;
    }
    ++intact;
  }
  return intact;
}

GcReport ReplicatedStore::gc(const ChargeFn&) {
  GcReport report;
  if (table_ == nullptr) return report;
  for (const ChunkTable::FreedChunk& freed : table_->collect_garbage()) {
    ++report.chunks_freed;
    report.bytes_freed += freed.blob_bytes;
    const auto cp = chunk_placements_.find(freed.key);
    if (cp != chunk_placements_.end()) {
      for (const auto& [r, physical] : cp->second) replicas_[r]->erase(physical);
      chunk_placements_.erase(cp);
    }
  }
  report.chunks_live = table_->live_count();
  if (options_.observer != nullptr) {
    options_.observer->metrics().set_gauge("dedup.chunks_live",
                                           static_cast<std::int64_t>(report.chunks_live));
  }
  return report;
}

const DedupStats& ReplicatedStore::dedup_stats() const {
  static const DedupStats kEmpty;
  return table_ != nullptr ? table_->stats() : kEmpty;
}

bool ReplicatedStore::any_intact_committed() const {
  for (auto it = manifest_.rbegin(); it != manifest_.rend(); ++it) {
    if (intact_replicas(it->first) > 0) return true;
  }
  return false;
}

ImageId ReplicatedStore::newest_committed() const {
  return manifest_.empty() ? kBadImageId : manifest_.rbegin()->first;
}

}  // namespace ckpt::storage
