#include "storage/replicated.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::storage {

const char* to_string(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::kNone: return "none";
    case StoreErrorKind::kUnreachable: return "unreachable";
    case StoreErrorKind::kRejected: return "rejected";
    case StoreErrorKind::kTornWrite: return "torn-write";
    case StoreErrorKind::kCorrupt: return "corrupt";
    case StoreErrorKind::kMissing: return "missing";
    case StoreErrorKind::kNoQuorum: return "no-quorum";
  }
  return "?";
}

std::string ScrubReport::summary() const {
  std::ostringstream out;
  out << entries << " entries / " << copies_checked << " copies audited: " << corrupt_found
      << " corrupt, " << missing_found << " missing, " << repaired << " repaired, "
      << unrepairable << " unrepairable, " << skipped_unreachable << " unreachable";
  return out.str();
}

ReplicatedStore::ReplicatedStore(std::vector<BlobStoreBackend*> replicas,
                                 ReplicatedOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicatedStore: at least one replica required");
  }
  for (BlobStoreBackend* replica : replicas_) {
    if (replica == nullptr) throw std::invalid_argument("ReplicatedStore: null replica");
  }
  if (options_.write_quorum == 0 || options_.write_quorum > replicas_.size()) {
    throw std::invalid_argument("ReplicatedStore: write_quorum out of range");
  }
}

ImageId ReplicatedStore::stage_on_replica(std::size_t r, const std::vector<std::byte>& blob,
                                          std::uint64_t crc, const ChargeFn& charge,
                                          std::uint64_t salt, std::uint64_t& retries,
                                          StoreErrorKind& error) {
  BlobStoreBackend& replica = *replicas_[r];
  Retrier retrier(options_.retry, salt ^ (r + 1));
  while (true) {
    StoreErrorKind attempt_error;
    if (!replica.reachable()) {
      attempt_error = StoreErrorKind::kUnreachable;
    } else {
      const ImageId id = replica.put_raw(blob, charge);
      if (id == kBadImageId) {
        // put_raw fails for exactly two reasons on a reachable replica: an
        // armed rejection fault, or an outage that began mid-call.
        attempt_error = replica.reachable() ? StoreErrorKind::kRejected
                                            : StoreErrorKind::kUnreachable;
      } else if (!options_.verify_writes) {
        return id;
      } else {
        const auto staged = replica.read_blob(id, charge);
        if (staged.has_value() && util::crc64(*staged) == crc) return id;
        // Torn or vanished: roll the stage back so nothing half-written
        // survives under a live id.
        replica.erase(id);
        attempt_error = staged.has_value() ? StoreErrorKind::kTornWrite
                                           : StoreErrorKind::kMissing;
      }
    }
    error = attempt_error;
    const std::optional<SimTime> delay = retrier.next_delay();
    if (!delay.has_value()) return kBadImageId;
    if (charge) charge(*delay);
    ++retries;
  }
}

StoreReceipt ReplicatedStore::store_verbose(const CheckpointImage& image,
                                            const ChargeFn& charge) {
  StoreReceipt receipt;
  const std::vector<std::byte> blob = image.serialize();
  const std::uint64_t crc = util::crc64(blob);
  const std::uint64_t salt = ++op_counter_;

  // Phase 1: stage + verify on every replica.
  std::map<std::size_t, ImageId> placements;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    const ImageId id =
        stage_on_replica(r, blob, crc, charge, salt, receipt.retries, receipt.last_error);
    if (id != kBadImageId) placements.emplace(r, id);
  }

  // Phase 2: publish iff the write quorum verified; otherwise roll back so
  // a failed store leaves no trace.
  if (placements.size() < options_.write_quorum) {
    for (const auto& [r, id] : placements) replicas_[r]->erase(id);
    if (receipt.last_error == StoreErrorKind::kNone) {
      receipt.last_error = StoreErrorKind::kNoQuorum;
    }
    return receipt;
  }

  receipt.id = next_id_++;
  receipt.committed_replicas = static_cast<std::uint32_t>(placements.size());
  manifest_.emplace(receipt.id, Entry{crc, blob.size(), std::move(placements)});
  return receipt;
}

ImageId ReplicatedStore::store(const CheckpointImage& image, const ChargeFn& charge) {
  return store_verbose(image, charge).id;
}

std::optional<CheckpointImage> ReplicatedStore::load(ImageId id, const ChargeFn& charge) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return std::nullopt;
  const Entry& entry = it->second;

  Retrier retrier(options_.retry, id ^ 0xB10B);
  while (true) {
    for (const auto& [r, physical] : entry.placements) {
      const auto blob = replicas_[r]->read_blob(physical, charge);
      if (!blob.has_value()) continue;                    // unreachable or missing
      if (util::crc64(*blob) != entry.crc) continue;      // corrupt copy: fail over
      try {
        return CheckpointImage::deserialize(*blob);
      } catch (const ImageCorrupt&) {
      } catch (const util::SerializeError&) {
      }
    }
    const std::optional<SimTime> delay = retrier.next_delay();
    if (!delay.has_value()) return std::nullopt;
    if (charge) charge(*delay);
  }
}

std::optional<CheckpointImage> ReplicatedStore::load_from(std::size_t replica, ImageId id,
                                                          const ChargeFn& charge) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end() || replica >= replicas_.size()) return std::nullopt;
  const auto placement = it->second.placements.find(replica);
  if (placement == it->second.placements.end()) return std::nullopt;
  const auto blob = replicas_[replica]->read_blob(placement->second, charge);
  if (!blob.has_value() || util::crc64(*blob) != it->second.crc) return std::nullopt;
  try {
    return CheckpointImage::deserialize(*blob);
  } catch (const ImageCorrupt&) {
    return std::nullopt;
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

bool ReplicatedStore::erase(ImageId id) {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return false;
  for (const auto& [r, physical] : it->second.placements) replicas_[r]->erase(physical);
  manifest_.erase(it);
  return true;
}

std::vector<ImageId> ReplicatedStore::list() const {
  std::vector<ImageId> out;
  out.reserve(manifest_.size());
  for (const auto& [id, entry] : manifest_) out.push_back(id);
  return out;
}

StorageLocality ReplicatedStore::locality() const {
  StorageLocality best = StorageLocality::kNone;
  auto rank = [](StorageLocality l) {
    switch (l) {
      case StorageLocality::kRemote: return 3;
      case StorageLocality::kLocalDisk: return 2;
      case StorageLocality::kVolatileMemory: return 1;
      case StorageLocality::kNone: return 0;
    }
    return 0;
  };
  for (const BlobStoreBackend* replica : replicas_) {
    if (rank(replica->locality()) > rank(best)) best = replica->locality();
  }
  return best;
}

bool ReplicatedStore::reachable() const {
  return std::any_of(replicas_.begin(), replicas_.end(),
                     [](const BlobStoreBackend* r) { return r->reachable(); });
}

std::uint64_t ReplicatedStore::stored_bytes() const {
  std::uint64_t total = 0;
  for (const BlobStoreBackend* replica : replicas_) total += replica->stored_bytes();
  return total;
}

ScrubReport ReplicatedStore::scrub(const ChargeFn& charge) {
  ScrubReport report;
  for (auto& [id, entry] : manifest_) {
    ++report.entries;

    // Classify every replica slot and find a healthy source copy.
    enum class CopyState : std::uint8_t { kOk, kCorrupt, kMissing, kUnreachable };
    std::vector<CopyState> states(replicas_.size(), CopyState::kMissing);
    std::optional<std::vector<std::byte>> healthy;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (!replicas_[r]->reachable()) {
        states[r] = CopyState::kUnreachable;
        continue;
      }
      const auto placement = entry.placements.find(r);
      if (placement == entry.placements.end()) continue;  // kMissing
      const auto blob = replicas_[r]->read_blob(placement->second, charge);
      ++report.copies_checked;
      if (!blob.has_value()) continue;  // placement recorded but blob gone
      if (util::crc64(*blob) != entry.crc) {
        states[r] = CopyState::kCorrupt;
        continue;
      }
      states[r] = CopyState::kOk;
      if (!healthy.has_value()) healthy = *blob;
    }

    // Repair every damaged or absent copy from the healthy peer.
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (states[r] == CopyState::kOk) continue;
      if (states[r] == CopyState::kUnreachable) {
        ++report.skipped_unreachable;
        continue;
      }
      if (states[r] == CopyState::kCorrupt) {
        ++report.corrupt_found;
      } else {
        ++report.missing_found;
      }
      if (!healthy.has_value()) {
        ++report.unrepairable;
        continue;
      }
      if (const auto placement = entry.placements.find(r);
          placement != entry.placements.end()) {
        replicas_[r]->erase(placement->second);
        entry.placements.erase(placement);
      }
      const ImageId fresh = replicas_[r]->put_raw(*healthy, charge);
      bool repaired = fresh != kBadImageId;
      if (repaired) {
        const auto written = replicas_[r]->read_blob(fresh, charge);
        if (!written.has_value() || util::crc64(*written) != entry.crc) {
          replicas_[r]->erase(fresh);  // repair itself tore: stay honest
          repaired = false;
        }
      }
      if (repaired) {
        entry.placements.emplace(r, fresh);
        ++report.repaired;
      } else {
        ++report.unrepairable;
      }
    }
  }
  return report;
}

void ReplicatedStore::retarget_replica(std::size_t index, BlobStoreBackend* backend) {
  if (index >= replicas_.size() || backend == nullptr) {
    throw std::invalid_argument("ReplicatedStore::retarget_replica: bad slot or backend");
  }
  // Placements recorded against the old backend are meaningless on the new
  // one: drop them so reads fail over and scrub() re-replicates.
  for (auto& [id, entry] : manifest_) entry.placements.erase(index);
  replicas_[index] = backend;
}

std::uint32_t ReplicatedStore::intact_replicas(ImageId id) const {
  const auto it = manifest_.find(id);
  if (it == manifest_.end()) return 0;
  std::uint32_t intact = 0;
  for (const auto& [r, physical] : it->second.placements) {
    const auto blob = replicas_[r]->read_blob(physical, ChargeFn{});
    if (blob.has_value() && util::crc64(*blob) == it->second.crc) ++intact;
  }
  return intact;
}

bool ReplicatedStore::any_intact_committed() const {
  for (auto it = manifest_.rbegin(); it != manifest_.rend(); ++it) {
    if (intact_replicas(it->first) > 0) return true;
  }
  return false;
}

ImageId ReplicatedStore::newest_committed() const {
  return manifest_.empty() ? kBadImageId : manifest_.rbegin()->first;
}

}  // namespace ckpt::storage
