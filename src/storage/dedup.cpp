#include "storage/dedup.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/observer.hpp"
#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::storage {

using util::Deserializer;
using util::SerializeError;
using util::Serializer;

namespace {

/// Manifest envelope version.  Deliberately distinct from
/// CheckpointImage::kFormatVersion so a manifest blob handed to the flat
/// deserializer fails the version check instead of garbage-parsing.
constexpr std::uint32_t kDedupManifestVersion = 0xD5;

/// A delta chain longer than this at *decode* time means the manifest or a
/// chunk blob lies about its base links (encode bounds depth far lower).
constexpr std::uint32_t kMaxDecodeDepth = 64;

/// Chunk blob header: encoding byte, raw-content CRC and size, and for
/// deltas the base chunk key.  Payload is the rest of the blob.
constexpr std::size_t kRawHeaderBytes = 1 + 8 + 4;
constexpr std::size_t kDeltaHeaderBytes = kRawHeaderBytes + 8 + 4 + 4;

/// A zero run shorter than this stays inside the literal record — a run
/// record costs 8 bytes of framing, so breaking the literal earlier loses.
constexpr std::size_t kMinZeroRun = 9;

/// Zero-run-length encode: alternating (zero_run, literal_len, literal
/// bytes) records covering the buffer exactly.  Deterministic function of
/// the input bytes.
std::vector<std::byte> rle_encode(std::span<const std::byte> xored) {
  Serializer s;
  std::size_t pos = 0;
  const std::size_t n = xored.size();
  while (pos < n) {
    const std::size_t zero_start = pos;
    while (pos < n && xored[pos] == std::byte{0}) ++pos;
    const std::size_t zero_run = pos - zero_start;
    const std::size_t lit_start = pos;
    while (pos < n) {
      if (xored[pos] != std::byte{0}) {
        ++pos;
        continue;
      }
      std::size_t z = pos;
      while (z < n && xored[z] == std::byte{0}) ++z;
      if (z - pos >= kMinZeroRun || z == n) break;  // long run: start a record
      pos = z;                                      // short run: keep literal
    }
    s.put<std::uint32_t>(static_cast<std::uint32_t>(zero_run));
    s.put<std::uint32_t>(static_cast<std::uint32_t>(pos - lit_start));
    s.put_raw(xored.subspan(lit_start, pos - lit_start));
  }
  return std::move(s).take();
}

/// Inverse of rle_encode; throws SerializeError on any malformed framing.
std::vector<std::byte> rle_decode(Deserializer& d, std::uint32_t raw_size) {
  std::vector<std::byte> out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const auto zero_run = d.get<std::uint32_t>();
    const auto literal = d.get<std::uint32_t>();
    if (zero_run == 0 && literal == 0) throw SerializeError("rle: empty record");
    if (out.size() + zero_run + static_cast<std::uint64_t>(literal) > raw_size) {
      throw SerializeError("rle: record overruns raw size");
    }
    out.resize(out.size() + zero_run, std::byte{0});
    const auto lit = d.get_raw(literal);
    out.insert(out.end(), lit.begin(), lit.end());
  }
  return out;
}

void put_key(Serializer& s, const ChunkKey& key) {
  s.put(key.crc);
  s.put(key.size);
  s.put(key.ordinal);
}

ChunkKey get_key(Deserializer& d) {
  ChunkKey key;
  key.crc = d.get<std::uint64_t>();
  key.size = d.get<std::uint32_t>();
  key.ordinal = d.get<std::uint32_t>();
  return key;
}

std::vector<std::byte> build_chunk_blob(ChunkEncoding encoding, const ChunkKey& key,
                                        const std::optional<ChunkKey>& base,
                                        std::span<const std::byte> payload) {
  Serializer s;
  s.reserve((base ? kDeltaHeaderBytes : kRawHeaderBytes) + payload.size());
  s.put(encoding);
  s.put(key.crc);
  s.put(key.size);
  if (base) put_key(s, *base);
  s.put_raw(payload);
  return std::move(s).take();
}

/// Per-manifest reference record: everything a fetcher needs to locate and
/// validate a chunk blob without decoding it.
struct RefRecord {
  std::uint64_t blob_crc = 0;
  std::uint64_t blob_bytes = 0;
};

/// Memoizing chunk resolver for ChunkTable::decode: fetches each unique
/// chunk once, validates blob CRC, header identity and raw-content CRC, and
/// reconstructs delta chunks recursively.  All failures throw
/// SerializeError; decode() converts that to nullopt.
class ChunkResolver {
 public:
  ChunkResolver(const std::map<ChunkKey, RefRecord>& refs,
                const ChunkTable::ChunkFetch& fetch)
      : refs_(refs), fetch_(fetch) {}

  const std::vector<std::byte>& resolve(const ChunkKey& key, std::uint32_t depth) {
    if (depth > kMaxDecodeDepth) throw SerializeError("chunk: delta chain too deep");
    if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

    const auto ref = refs_.find(key);
    if (ref == refs_.end()) throw SerializeError("chunk: key not in manifest refs");
    auto blob = fetch_(key, ref->second.blob_crc);
    if (!blob.has_value()) throw SerializeError("chunk: blob unavailable");
    if (util::crc64(*blob) != ref->second.blob_crc) {
      throw SerializeError("chunk: blob CRC mismatch");
    }

    Deserializer d(*blob);
    const auto encoding = d.get<ChunkEncoding>();
    const auto raw_crc = d.get<std::uint64_t>();
    const auto raw_size = d.get<std::uint32_t>();
    if (raw_crc != key.crc || raw_size != key.size) {
      throw SerializeError("chunk: header does not match key");
    }

    std::vector<std::byte> raw;
    if (encoding == ChunkEncoding::kRaw) {
      const auto payload = d.get_raw(d.remaining());
      if (payload.size() != raw_size) throw SerializeError("chunk: raw size mismatch");
      raw.assign(payload.begin(), payload.end());
    } else if (encoding == ChunkEncoding::kXorRle) {
      const ChunkKey base = get_key(d);
      const std::vector<std::byte>& base_raw = resolve(base, depth + 1);
      if (base_raw.size() != raw_size) throw SerializeError("chunk: base size mismatch");
      raw = rle_decode(d, raw_size);
      for (std::size_t i = 0; i < raw.size(); ++i) raw[i] ^= base_raw[i];
    } else {
      throw SerializeError("chunk: unknown encoding");
    }

    if (util::crc64(raw) != key.crc) throw SerializeError("chunk: content CRC mismatch");
    return cache_.emplace(key, std::move(raw)).first->second;
  }

 private:
  const std::map<ChunkKey, RefRecord>& refs_;
  const ChunkTable::ChunkFetch& fetch_;
  std::map<ChunkKey, std::vector<std::byte>> cache_;
};

}  // namespace

// --- ChunkTable --------------------------------------------------------------

ChunkTable::EncodedImage ChunkTable::encode(const CheckpointImage& image) {
  EncodedImage out;
  std::set<ChunkKey> in_closure;

  // Pin `key` and its transitive delta bases into the closure, first-touch
  // order — segment/page order drives this, so the refs list (and therefore
  // the manifest bytes) never depend on host scheduling.
  const auto pin = [&](const ChunkKey& key) {
    std::optional<ChunkKey> cursor = key;
    while (cursor.has_value() && in_closure.insert(*cursor).second) {
      out.refs.push_back(*cursor);
      cursor = chunks_.at(*cursor).base;
    }
  };

  for (const MemorySegmentImage& segment : image.segments) {
    for (const PageImage& page : segment.pages) {
      out.logical_bytes += page.data.size();

      const std::uint64_t crc = util::crc64(page.data);
      const auto size = static_cast<std::uint32_t>(page.data.size());
      Bucket& bucket = buckets_[{crc, size}];

      // Hash hit is only a candidate: byte-compare against every chunk in
      // the bucket (pending ones included, for intra-image reuse).
      ChunkKey key{crc, size, 0};
      bool reused = false;
      for (const ChunkKey& candidate : bucket.keys) {
        if (chunks_.at(candidate).raw == page.data) {
          key = candidate;
          reused = true;
          break;
        }
      }

      if (reused) {
        ++out.reused_refs;
      } else {
        key.ordinal = bucket.next_ordinal++;
        Chunk chunk;
        chunk.raw = page.data;
        chunk.pending = true;

        // Delta-encode against the predecessor version of this (pid, page)
        // when it is a committed, equally-sized chunk on a short enough
        // chain — and only when the delta actually wins.
        if (options_.delta_encode) {
          const auto prev = predecessor_.find({image.pid, page.page});
          if (prev != predecessor_.end()) {
            const auto base_it = chunks_.find(prev->second);
            if (base_it != chunks_.end() && !base_it->second.pending &&
                base_it->second.raw.size() == page.data.size() &&
                base_it->second.depth < options_.max_delta_depth) {
              std::vector<std::byte> xored(page.data.size());
              for (std::size_t i = 0; i < xored.size(); ++i) {
                xored[i] = page.data[i] ^ base_it->second.raw[i];
              }
              std::vector<std::byte> payload = rle_encode(xored);
              if (kDeltaHeaderBytes + payload.size() <
                  kRawHeaderBytes + page.data.size()) {
                chunk.base = prev->second;
                chunk.depth = base_it->second.depth + 1;
                chunk.blob =
                    build_chunk_blob(ChunkEncoding::kXorRle, key, chunk.base, payload);
                ++out.delta_fresh;
              }
            }
          }
        }
        if (chunk.blob.empty()) {
          chunk.blob = build_chunk_blob(ChunkEncoding::kRaw, key, std::nullopt, page.data);
        }
        chunk.blob_crc = util::crc64(chunk.blob);

        out.stored_bytes += chunk.blob.size();
        out.fresh.push_back({key, chunk.blob, chunk.blob_crc});
        bucket.keys.push_back(key);
        chunks_.emplace(key, std::move(chunk));
      }

      pin(key);
      out.successors.push_back({{image.pid, page.page}, key});
    }
  }

  // Manifest body: flat prelude/trailer (shared codec with image.cpp), the
  // reference table, then per-segment page→chunk mappings.
  Serializer body;
  encode_image_prelude(body, image);
  encode_image_trailer(body, image);
  body.put<std::uint64_t>(out.refs.size());
  for (const ChunkKey& key : out.refs) {
    const Chunk& chunk = chunks_.at(key);
    put_key(body, key);
    body.put(chunk.blob_crc);
    body.put<std::uint64_t>(chunk.blob.size());
  }
  {
    std::size_t next_page = 0;
    for (const MemorySegmentImage& segment : image.segments) {
      encode_image_vma(body, segment.vma);
      body.put<std::uint64_t>(segment.pages.size());
      for (const PageImage& page : segment.pages) {
        body.put(page.page);
        body.put(page.offset);
        put_key(body, out.successors[next_page++].second);
      }
    }
  }

  Serializer envelope;
  envelope.reserve(12 + body.size());
  envelope.put(kDedupManifestVersion);
  envelope.put(util::crc64(body.bytes()));
  envelope.put_raw(body.bytes());
  out.manifest = std::move(envelope).take();
  out.manifest_crc = util::crc64(out.manifest);
  out.stored_bytes += out.manifest.size();
  return out;
}

void ChunkTable::commit(const EncodedImage& enc) {
  for (const FreshChunk& fresh : enc.fresh) chunks_.at(fresh.key).pending = false;
  for (const ChunkKey& key : enc.refs) ++chunks_.at(key).refs;
  for (const auto& [page, key] : enc.successors) predecessor_[page] = key;

  ++stats_.images;
  stats_.chunks_created += enc.fresh.size();
  stats_.chunks_reused += enc.reused_refs;
  stats_.delta_chunks += enc.delta_fresh;
  stats_.bytes_logical += enc.logical_bytes;
  stats_.bytes_stored += enc.stored_bytes;
}

void ChunkTable::abort(const EncodedImage& enc) {
  // Reverse creation order so ordinal rollback unwinds cleanly when one
  // encode created several chunks in the same bucket.
  for (auto it = enc.fresh.rbegin(); it != enc.fresh.rend(); ++it) {
    const ChunkKey& key = it->key;
    const auto bucket_it = buckets_.find({key.crc, key.size});
    if (bucket_it == buckets_.end()) continue;
    Bucket& bucket = bucket_it->second;
    std::erase(bucket.keys, key);
    if (key.ordinal + 1 == bucket.next_ordinal) --bucket.next_ordinal;
    if (bucket.keys.empty() && bucket.next_ordinal == 0) buckets_.erase(bucket_it);
    chunks_.erase(key);
  }
}

void ChunkTable::release(const std::vector<ChunkKey>& refs) {
  for (const ChunkKey& key : refs) {
    const auto it = chunks_.find(key);
    if (it != chunks_.end() && it->second.refs > 0) --it->second.refs;
  }
}

std::vector<ChunkTable::FreedChunk> ChunkTable::collect_garbage() {
  std::vector<FreedChunk> freed;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (!it->second.pending && it->second.refs == 0) {
      freed.push_back({it->first, it->second.blob.size()});
      // The ordinal stays reserved (bucket.next_ordinal is not rolled
      // back): a key freed here must never be reissued for different
      // content, or a stale manifest could resolve to wrong bytes.
      const auto bucket_it = buckets_.find({it->first.crc, it->first.size});
      if (bucket_it != buckets_.end()) std::erase(bucket_it->second.keys, it->first);
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  // Predecessor entries naming freed chunks can no longer seed deltas.
  for (auto it = predecessor_.begin(); it != predecessor_.end();) {
    if (!chunks_.contains(it->second)) {
      it = predecessor_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.gc_chunks_freed += freed.size();
  for (const FreedChunk& f : freed) stats_.gc_bytes_freed += f.blob_bytes;
  return freed;
}

std::vector<std::byte> ChunkTable::blob_copy(const ChunkKey& key) const {
  return chunks_.at(key).blob;
}

std::uint64_t ChunkTable::blob_crc(const ChunkKey& key) const {
  return chunks_.at(key).blob_crc;
}

std::uint64_t ChunkTable::blob_bytes(const ChunkKey& key) const {
  return chunks_.at(key).blob.size();
}

bool ChunkTable::contains(const ChunkKey& key) const { return chunks_.contains(key); }

std::vector<ChunkKey> ChunkTable::live_keys() const {
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) keys.push_back(key);
  return keys;
}

std::optional<CheckpointImage> ChunkTable::decode(std::span<const std::byte> manifest,
                                                  const ChunkFetch& fetch) {
  try {
    Deserializer envelope(manifest);
    if (envelope.get<std::uint32_t>() != kDedupManifestVersion) return std::nullopt;
    const auto expected_crc = envelope.get<std::uint64_t>();
    const auto body_bytes = envelope.get_raw(envelope.remaining());
    if (util::crc64(body_bytes) != expected_crc) return std::nullopt;

    Deserializer d(body_bytes);
    CheckpointImage image;
    const std::uint64_t segment_count = decode_image_prelude(d, image);
    decode_image_trailer(d, image);

    std::map<ChunkKey, RefRecord> refs;
    const auto ref_count = d.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < ref_count; ++i) {
      const ChunkKey key = get_key(d);
      RefRecord record;
      record.blob_crc = d.get<std::uint64_t>();
      record.blob_bytes = d.get<std::uint64_t>();
      refs.emplace(key, record);
    }

    ChunkResolver resolver(refs, fetch);
    image.segments.reserve(segment_count);
    for (std::uint64_t i = 0; i < segment_count; ++i) {
      MemorySegmentImage segment;
      segment.vma = decode_image_vma(d);
      const auto page_count = d.get<std::uint64_t>();
      segment.pages.reserve(page_count);
      for (std::uint64_t j = 0; j < page_count; ++j) {
        PageImage page;
        page.page = d.get<sim::PageNum>();
        page.offset = d.get<std::uint32_t>();
        page.data = resolver.resolve(get_key(d), 0);
        segment.pages.push_back(std::move(page));
      }
      image.segments.push_back(std::move(segment));
    }
    if (!d.at_end()) return std::nullopt;
    return image;
  } catch (const SerializeError&) {
    return std::nullopt;
  }
}

// --- DedupStore --------------------------------------------------------------

DedupStore::DedupStore(BlobStoreBackend* media, DedupOptions options)
    : media_(media), table_(options), observer_(options.observer) {
  if (media_ == nullptr) {
    throw std::invalid_argument("DedupStore: media backend must not be null");
  }
}

ImageId DedupStore::store(const CheckpointImage& image, const ChargeFn& charge) {
  ChunkTable::EncodedImage enc = table_.encode(image);

  // Stage fresh chunks, then the manifest; on any failure erase staged
  // blobs in reverse and abort the encode — the media never holds a
  // half-visible image and the identity table never learns phantom chunks.
  std::vector<std::pair<ChunkKey, ImageId>> staged;
  staged.reserve(enc.fresh.size());
  bool failed = false;
  for (ChunkTable::FreshChunk& fresh : enc.fresh) {
    const ImageId blob_id = media_->put_raw(std::move(fresh.blob), charge);
    if (blob_id == kBadImageId) {
      failed = true;
      break;
    }
    staged.push_back({fresh.key, blob_id});
  }
  ImageId manifest_id = kBadImageId;
  if (!failed) {
    manifest_id = media_->put_raw(enc.manifest, charge);
    failed = manifest_id == kBadImageId;
  }
  if (failed) {
    for (auto it = staged.rbegin(); it != staged.rend(); ++it) media_->erase(it->second);
    table_.abort(enc);
    return kBadImageId;
  }

  for (const auto& [key, blob_id] : staged) placements_.emplace(key, blob_id);
  table_.commit(enc);
  const ImageId id = next_id_++;
  images_.emplace(id, Entry{manifest_id, enc.refs});

  if (observer_ != nullptr) {
    auto& m = observer_->metrics();
    m.add("dedup.images");
    m.add("dedup.chunks_new", enc.fresh.size());
    m.add("dedup.chunks_reused", enc.reused_refs);
    m.add("dedup.delta_chunks", enc.delta_fresh);
    m.add("dedup.bytes_logical", enc.logical_bytes);
    m.add("dedup.bytes_stored", enc.stored_bytes);
    const std::uint64_t permille =
        enc.logical_bytes == 0 ? 1000 : enc.stored_bytes * 1000 / enc.logical_bytes;
    m.observe("dedup.stored_permille", permille, obs::MetricsRegistry::permille_bounds());
    m.set_gauge("dedup.chunks_live", static_cast<std::int64_t>(table_.live_count()));
  }
  return id;
}

std::optional<CheckpointImage> DedupStore::load(ImageId id, const ChargeFn& charge) {
  const auto it = images_.find(id);
  if (it == images_.end()) return std::nullopt;
  const auto manifest = media_->read_blob(it->second.manifest, charge);
  if (!manifest.has_value()) return std::nullopt;
  // The resolver memoizes, so each unique chunk is read (and charged) once.
  const auto fetch = [&](const ChunkKey& key,
                         std::uint64_t) -> std::optional<std::vector<std::byte>> {
    const auto placement = placements_.find(key);
    if (placement == placements_.end()) return std::nullopt;
    return media_->read_blob(placement->second, charge);
  };
  return ChunkTable::decode(*manifest, fetch);
}

bool DedupStore::erase(ImageId id) {
  const auto it = images_.find(id);
  if (it == images_.end()) return false;
  media_->erase(it->second.manifest);
  table_.release(it->second.refs);
  images_.erase(it);
  return true;
}

std::vector<ImageId> DedupStore::list() const {
  std::vector<ImageId> ids;
  ids.reserve(images_.size());
  for (const auto& [id, entry] : images_) ids.push_back(id);
  return ids;
}

StorageLocality DedupStore::locality() const { return media_->locality(); }

bool DedupStore::reachable() const { return media_->reachable(); }

std::uint64_t DedupStore::stored_bytes() const { return media_->stored_bytes(); }

GcReport DedupStore::gc(const ChargeFn&) {
  GcReport report;
  for (const ChunkTable::FreedChunk& freed : table_.collect_garbage()) {
    ++report.chunks_freed;
    report.bytes_freed += freed.blob_bytes;
    const auto placement = placements_.find(freed.key);
    if (placement != placements_.end()) {
      media_->erase(placement->second);
      placements_.erase(placement);
    }
  }
  report.chunks_live = table_.live_count();
  if (observer_ != nullptr) {
    observer_->metrics().set_gauge("dedup.chunks_live",
                                   static_cast<std::int64_t>(report.chunks_live));
  }
  return report;
}

}  // namespace ckpt::storage
