// Checkpoint chains: a base full image plus incremental deltas.
//
// Incremental checkpointing [27] trades smaller writes for a longer restore
// path: reconstructing process state means replaying every delta since the
// last full image.  CheckpointChain owns that bookkeeping — sequence
// numbering, parent links, reconstruction (most-recent page wins), and the
// periodic-full-checkpoint policy that bounds chain length.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "storage/backend.hpp"
#include "storage/image.hpp"

namespace ckpt::storage {

class CheckpointChain {
 public:
  explicit CheckpointChain(StorageBackend* backend) : backend_(backend) {}

  /// Append an image (full restarts the chain; incremental extends it).
  /// Sequence and parent fields are assigned here.  Returns the image id,
  /// or kBadImageId if the backend rejected the store.
  ImageId append(CheckpointImage image, const ChargeFn& charge);

  /// Append through a caller-supplied store function — the streaming commit
  /// path stores via ReplicatedStore::store_streamed instead of
  /// StorageBackend::store.  Sequence and parent fields are assigned on
  /// `image` *before* `store_fn` runs (the streamed prelude encodes them);
  /// the chain entry is recorded only on success, so a failed streamed
  /// store leaves the chain (and the next sequence number) untouched.
  using StoreFn = std::function<ImageId(const CheckpointImage&)>;
  ImageId append_via(CheckpointImage& image, const StoreFn& store_fn);

  /// Reconstruct complete state as of the newest image: loads the most
  /// recent full image and applies deltas in order.  nullopt if any link
  /// is missing/corrupt or the backend is unreachable.
  [[nodiscard]] std::optional<CheckpointImage> reconstruct(const ChargeFn& charge) const;

  /// Reconstruct as of a given sequence number.
  [[nodiscard]] std::optional<CheckpointImage> reconstruct_at(std::uint64_t sequence,
                                                              const ChargeFn& charge) const;

  /// Reconstruct the newest *surviving* state: walk sequence points from
  /// newest to oldest and return the first that reconstructs — skipping
  /// states whose images are corrupt, torn or unreadable.  nullopt when no
  /// sequence point survives.  The restart fallback the torture harness
  /// exercises: a corrupt newest image must cost lost work, never a
  /// successful restart from garbage.
  [[nodiscard]] std::optional<CheckpointImage> reconstruct_newest_surviving(
      const ChargeFn& charge) const;

  /// Drop images no longer needed to reconstruct the newest state.
  ///
  /// "Needed" includes the fallback path: reconstruct_newest_surviving()
  /// may have to reach *past* the newest full image when that image is torn
  /// or corrupt, so pruning only discards entries older than the newest
  /// full image that provably still loads.  If no full image verifies,
  /// nothing is pruned — better to hold disk than to strand the restart.
  /// The verification loads charge through `charge` like any other read.
  void prune(const ChargeFn& charge = {});

  /// Backend ids of the entries the restart path may still need — the
  /// "fallback-keep set": everything from the newest verified-loadable full
  /// image onward, or every entry when no full image verifies.  prune()
  /// keeps exactly this set, and chunk GC (DedupStore::gc) can only reclaim
  /// content no id in this set references, because references are released
  /// strictly per erased image.  Sharing the walk keeps the two from ever
  /// disagreeing about what a fallback restart can reach.
  [[nodiscard]] std::vector<ImageId> live_set(const ChargeFn& charge = {}) const;

  [[nodiscard]] std::uint64_t next_sequence() const { return next_sequence_; }
  /// Backend id of the newest appended image (kBadImageId when empty).
  [[nodiscard]] ImageId newest_image_id() const;
  /// Sequence number of the newest appended image (0 when empty).
  [[nodiscard]] std::uint64_t newest_sequence() const;
  [[nodiscard]] std::size_t length() const { return entries_.size(); }
  /// Deltas since (and including) the last full image.
  [[nodiscard]] std::size_t links_from_last_full() const;

  [[nodiscard]] StorageBackend* backend() const { return backend_; }

  struct Entry {
    std::uint64_t sequence;
    ImageId id;
    ImageKind kind;
  };
  /// Every entry still tracked by the chain, oldest first.  Callers that
  /// share one backend between many chains (the fleet's per-shard journal)
  /// use this to audit intact replicas *per job* — a store-wide
  /// any_intact_committed() would conflate jobs.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:

  /// Index of the first entry in the fallback-keep set (see live_set()).
  [[nodiscard]] std::size_t live_from(const ChargeFn& charge) const;

  StorageBackend* backend_;
  std::vector<Entry> entries_;
  std::uint64_t next_sequence_ = 1;
};

/// Merge a delta into an accumulated full image: newer pages replace older
/// ones, VMA layout/regs/files/signals come from the delta (it is newer).
void apply_delta(CheckpointImage& base, const CheckpointImage& delta);

}  // namespace ckpt::storage
