// Log-structured checkpoint journal with a background migrator.
//
// The survey's closing argument (§4) is that commit *initiation* — not image
// encoding — limits checkpoint frequency: every commit through the two-phase
// replicated path pays stage → read-back verify → manifest publish per
// replica.  The CapROS/EROS direction decouples the two: a commit is a pure
// sequential append of CRC64-enveloped records into a circular log (one
// device sync per group commit), and a *migrator* later drains committed
// images into their home store (DedupStore / ReplicatedStore) off the
// critical path, reclaiming log segments once nothing resident needs them.
//
// Record format (all integers little-endian):
//
//   [magic u32][type u8][body_len u64][body ...][crc64 u64]
//
// where the trailing CRC64 covers every preceding byte of the record.  The
// log is a ring of fixed-size segments; every segment opens with a
// kSegmentOpen{epoch, id generation floor} record and a sealed segment ends
// with kSeal{next epoch}, so recovery can re-chain segments in append order
// without any out-of-band superblock.  Records never span segments.  The
// floor field makes the id-generation bump durable: recover() derives the
// next generation from max(stamped floor, surviving ids) and re-stamps the
// surviving open records, so ids discarded by one recovery are never
// reissued even when a later crash tears every commit of the new generation.
//
// Commit groups are self-contained: store() runs the image through a fresh
// dedup ChunkTable, appends each fresh chunk as a kChunk record and then one
// kCommit record carrying the manifest and the chunk closure.  Recovery is a
// strict prefix scan: parse records in append order, stop at the first
// envelope that fails to validate (torn tail, corruption, epoch gap), and
// discard everything at or after it — a commit survives iff its kCommit
// record lies wholly inside the valid prefix, which is exactly the
// "newest fully-committed prefix" claim the JournalCrashReplay harness
// proves at every record boundary and at fuzzed intra-record offsets.
//
// Determinism contract: appends, recovery and reclaim run on the caller's
// thread; the worker pool only pre-decodes images inside migrate() (a pure
// function of log bytes, no charges, no observer emission from workers), so
// log contents, home-store contents and every ChargeFn sequence are
// bit-identical for any CKPT_WORKERS.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sim/costs.hpp"
#include "storage/dedup.hpp"

namespace ckpt::util {
class ThreadPool;
}

namespace ckpt::storage {

struct JournalOptions {
  /// Capacity of one log segment; records never span segments, so this
  /// bounds the largest single record (chunk blobs are <= page-sized).
  std::uint64_t segment_bytes = 256 * 1024;
  /// Segments in the ring.  Log capacity = segment_bytes * segments.
  std::uint32_t segments = 8;
  /// When a store() does not fit in the remaining free segments, drain the
  /// migrator inline to reclaim space before failing the store.
  bool migrate_on_demand = true;
  /// Worker pool for the migrator's parallel image decode (null = the
  /// process-wide CKPT_WORKERS pool).  Decode is pure, so the pool never
  /// affects any observable output.
  util::ThreadPool* pool = nullptr;
  /// Observability sink (null = disabled): journal.* spans and counters.
  obs::Observer* observer = nullptr;
  /// Chunk-encoder knobs for the per-commit encoding (the observer field is
  /// ignored — per-store tables must not emit dedup.* noise).
  DedupOptions encoding;
  /// Device cost model for append/sync/scan charges.
  sim::CostModel costs;
};

/// Byte image of the log media: fixed-size zero-filled segment slots.  This
/// is the only state that survives simulate_crash() — everything else the
/// backend knows is rebuilt from these bytes by recover().
struct JournalMedia {
  std::uint64_t segment_bytes = 0;
  std::vector<std::vector<std::byte>> slots;

  friend bool operator==(const JournalMedia&, const JournalMedia&) = default;
};

enum class JournalRecordType : std::uint8_t {
  kSegmentOpen = 1,  ///< first record of every segment; body = epoch + id floor
  kChunk = 2,        ///< body = chunk key + blob crc + blob
  kCommit = 3,       ///< body = id, pid, sequence, manifest, chunk closure
  kMigrate = 4,      ///< body = id, home-store id, pid, sequence (publish)
  kErase = 5,        ///< body = id
  kSeal = 6,         ///< last record of a sealed segment; body = next epoch
  kFlightRecord = 7, ///< body = key + opaque flight-recorder payload
};

const char* to_string(JournalRecordType type);

/// Append-ledger entry: where one record landed.  `log_offset` is the
/// record's position in the logical append stream (the concatenation of live
/// segments in epoch order) — the coordinate system the crash-replay harness
/// truncates and fuzzes in.
struct JournalRecordInfo {
  JournalRecordType type = JournalRecordType::kSegmentOpen;
  ImageId id = kBadImageId;  ///< owning image for kChunk/kCommit/kMigrate/kErase
  std::uint32_t slot = 0;
  std::uint64_t slot_offset = 0;
  std::uint64_t log_offset = 0;
  std::uint64_t bytes = 0;  ///< full envelope size

  friend bool operator==(const JournalRecordInfo&, const JournalRecordInfo&) = default;
};

/// recover() result.
struct JournalRecoveryReport {
  std::uint64_t slots_scanned = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t resident_recovered = 0;   ///< commits still living in the log
  std::uint64_t migrated_recovered = 0;   ///< commits republished as kMigrate
  std::uint64_t bytes_discarded = 0;      ///< torn/corrupt/unreachable bytes zeroed
  std::uint64_t orphans_reclaimed = 0;    ///< home images erased by reconcile
  std::uint64_t flight_recovered = 0;     ///< flight-record keys replayed
  bool tail_torn = false;                 ///< scan stopped at a damaged record
  std::vector<ImageId> recovered_ids;     ///< surviving ids, ascending

  friend bool operator==(const JournalRecoveryReport&, const JournalRecoveryReport&) = default;
};

/// StorageBackend adapter implementing the append-commit path.  Owns the log
/// media; `home` is the durable store the migrator drains into (the journal
/// assumes exclusive ownership of `home`'s id space — recovery reconciles it
/// against the log's publish records).
class LogStructuredBackend final : public StorageBackend, public ChunkReclaimable {
 public:
  LogStructuredBackend(StorageBackend* home, JournalOptions options = {});
  /// Adopt a post-crash media image: the backend starts in the crashed
  /// state and refuses I/O until recover() rebuilt its bookkeeping.
  LogStructuredBackend(StorageBackend* home, JournalOptions options, JournalMedia media);

  // --- StorageBackend -------------------------------------------------------
  /// Append-commit: encode, append chunk + commit records, charge streaming
  /// bandwidth for the appended bytes plus one device sync (deferred to
  /// end_group() inside a group commit).  Returns kBadImageId when crashed
  /// or when the log is full and on-demand migration could not free space.
  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  /// Resident images decode straight from the log bytes (so silent media
  /// corruption surfaces here, as with any CRC-validated store); migrated
  /// images delegate to the home store.
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  bool erase(ImageId id) override;
  [[nodiscard]] std::vector<ImageId> list() const override;
  [[nodiscard]] StorageLocality locality() const override;
  [[nodiscard]] bool reachable() const override;
  [[nodiscard]] std::uint64_t stored_bytes() const override;

  /// Forwarded to the home store when it is ChunkReclaimable (the journal
  /// itself reclaims space in segment units, not chunk units).
  GcReport gc(const ChargeFn& charge) override;

  // --- Flight records -------------------------------------------------------
  /// Persist a node's flight-recorder snapshot under `key` (newest record
  /// per key wins — the record type the post-mortem path recovers).  The
  /// payload is opaque to the journal: it is CRC64-enveloped like any other
  /// record and charged as append bandwidth; inside a group commit the
  /// device sync is deferred with the group.  Returns false when crashed or
  /// when the log is full even after on-demand migration.
  bool append_flight_record(std::uint64_t key, std::span<const std::byte> payload,
                            const ChargeFn& charge);
  /// Keys with a live flight record, ascending.
  [[nodiscard]] std::vector<std::uint64_t> flight_keys() const;
  /// The newest surviving payload appended under `key`.
  [[nodiscard]] std::optional<std::vector<std::byte>> flight_record_of(
      std::uint64_t key) const;

  // --- Group commit ---------------------------------------------------------
  /// Begin a group commit: stores until end_group() append records but defer
  /// the device sync, so N concurrent engines share one sync charge.
  void begin_group();
  /// Charge the single deferred sync (0 when the group appended nothing).
  SimTime end_group(const ChargeFn& charge);

  // --- Migrator -------------------------------------------------------------
  struct MigrateReport {
    std::uint64_t images_drained = 0;
    std::uint64_t bytes_drained = 0;       ///< logical image bytes published
    std::uint64_t segments_reclaimed = 0;
    std::uint64_t compacted_records = 0;   ///< kMigrate records rewritten forward
    std::uint64_t decode_failures = 0;     ///< resident entries that no longer decode
    bool complete = false;                 ///< every resident entry drained
  };
  /// Drain resident commits (oldest first) into the home store, publish each
  /// with a kMigrate record, then reclaim every sealed segment no resident
  /// entry touches.  Safe to call at any time; stops early (complete=false)
  /// when the home store rejects a publish so the next run can retry.
  MigrateReport migrate(const ChargeFn& charge);

  // --- Crash / recovery -----------------------------------------------------
  /// Power-fail: forget every byte of host-side bookkeeping; only the media
  /// bytes survive.  All I/O fails until recover().
  void simulate_crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Scan the ring, re-chain segments by epoch, replay the longest valid
  /// record prefix, zero everything after it, and reconcile the home store
  /// against the surviving publish records (erasing drained-but-unpublished
  /// orphans so scrub and journal recovery agree).
  JournalRecoveryReport recover(const ChargeFn& charge);

  // --- Fault hooks (src/inject) ---------------------------------------------
  /// Arm a torn append: of the next store()'s record stream, persist only
  /// `at % planned_bytes` bytes, then crash mid-append.
  void tear_next_append(std::uint64_t at);
  /// Flip `count` bytes of the logical append stream starting at
  /// `log_offset % live bytes` (wraps).  Returns false when the log is empty.
  bool corrupt_log(std::uint64_t log_offset, std::uint64_t count,
                   std::byte mask = std::byte{0xFF});
  /// Arm the migrator-window crash: the next migrate() stores one image into
  /// the home store and crashes *before* appending its kMigrate record —
  /// the drained-but-unpublished state recovery must reconcile.
  void crash_between_drain_and_publish();

  // --- Introspection (tests / harness seams) --------------------------------
  [[nodiscard]] const std::vector<JournalRecordInfo>& appended_records() const {
    return ledger_;
  }
  [[nodiscard]] JournalMedia media_snapshot() const { return media_; }
  /// Live bytes of the logical append stream (epoch-ordered used regions).
  [[nodiscard]] std::uint64_t log_live_bytes() const;
  [[nodiscard]] std::uint64_t resident_images() const;
  [[nodiscard]] std::uint64_t migrated_images() const;
  /// Home-store id a migrated image was published under (nullopt while the
  /// image is still log-resident or unknown).
  [[nodiscard]] std::optional<ImageId> home_id_of(ImageId id) const;
  /// (pid, sequence) the journal recorded for an image — preserved across
  /// migration and recovery (kMigrate records republish both).
  [[nodiscard]] std::optional<std::pair<sim::Pid, std::uint64_t>> identity_of(
      ImageId id) const;
  [[nodiscard]] StorageBackend* home() const { return home_; }

 private:
  /// Where one record's bytes live on the media.
  struct RecordLoc {
    std::uint32_t slot = 0;
    std::uint64_t offset = 0;  ///< within the slot
    std::uint64_t bytes = 0;   ///< full envelope size
  };
  struct Entry {
    bool migrated = false;
    ImageId home_id = kBadImageId;
    sim::Pid pid = sim::kNoPid;
    std::uint64_t sequence = 0;
    RecordLoc commit;                                     ///< kCommit record
    std::vector<std::pair<ChunkKey, RecordLoc>> chunks;   ///< closure, ref order
    std::uint64_t group_bytes = 0;   ///< envelope bytes of the commit group
    std::uint64_t epoch_min = 0;     ///< segments the resident group touches
    std::uint64_t epoch_max = 0;
    std::uint64_t migrate_epoch = 0; ///< epoch of the newest kMigrate record
  };
  struct Slot {
    std::uint64_t epoch = 0;  ///< 0 = free
    std::uint64_t used = 0;
    bool sealed = false;
  };
  /// Newest flight record per key (payload cached host-side; the media
  /// bytes are the durable copy recovery replays).
  struct FlightSlot {
    std::vector<std::byte> payload;
    std::uint64_t epoch = 0;  ///< segment the newest record lives in
  };
  struct ParsedRecord {
    JournalRecordType type;
    RecordLoc loc;
    std::vector<std::byte> body;
  };

  [[nodiscard]] std::uint64_t envelope_bytes(std::uint64_t body) const;
  /// Decode a resident entry straight from the log bytes.  Pure function of
  /// the media (thread-safe), so the migrator may fan it across the pool.
  [[nodiscard]] std::optional<CheckpointImage> decode_resident(const Entry& entry) const;
  /// Append one record; returns its location or nullopt on log-full / torn
  /// crash.  Handles seal + segment-open rollover internally.
  std::optional<RecordLoc> append_record(JournalRecordType type, ImageId id,
                                         std::span<const std::byte> body,
                                         const ChargeFn& charge);
  /// Serialize a kSegmentOpen{epoch, generation_} envelope — shared by the
  /// fresh-slot path and the recovery re-stamp of the generation floor.
  [[nodiscard]] std::vector<std::byte> open_record_env(std::uint64_t epoch) const;
  bool open_fresh_slot(const ChargeFn& charge);
  void charge_sync(const ChargeFn& charge);
  /// Parse the record starting at `offset` in `slot`; nullopt when the bytes
  /// there do not validate (torn, corrupt, or clean zero-filled end).
  [[nodiscard]] std::optional<ParsedRecord> parse_record_at(std::uint32_t slot,
                                                            std::uint64_t offset) const;
  /// Slots holding live bytes, in epoch (append) order.
  [[nodiscard]] std::vector<std::uint32_t> slots_by_epoch() const;
  /// Map a logical append-stream offset to (slot, slot offset).
  [[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint64_t>> locate(
      std::uint64_t log_offset) const;
  void reclaim_segments(MigrateReport& report, const ChargeFn& charge);
  [[nodiscard]] std::uint64_t free_capacity() const;
  void note_counter(const char* name, std::uint64_t delta = 1) const;

  StorageBackend* home_;
  JournalOptions options_;
  JournalMedia media_;
  std::vector<Slot> slots_;
  std::map<ImageId, Entry> entries_;
  std::map<std::uint64_t, FlightSlot> flight_;
  std::vector<JournalRecordInfo> ledger_;
  std::uint64_t next_epoch_ = 1;
  std::int32_t active_slot_ = -1;
  ImageId next_id_ = 1;
  /// High id bits; bumped by every recover() and persisted as the floor
  /// field of every kSegmentOpen record so the bump survives later crashes.
  std::uint64_t generation_ = 0;
  bool crashed_ = false;
  std::uint32_t group_depth_ = 0;
  bool group_sync_pending_ = false;
  std::optional<std::uint64_t> tear_next_append_;
  bool drain_publish_crash_armed_ = false;
};

}  // namespace ckpt::storage
