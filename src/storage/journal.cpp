#include "storage/journal.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "util/crc64.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {
namespace {

/// 'J' 'R' 'N' 'L' read back as a little-endian u32.
constexpr std::uint32_t kRecordMagic = 0x4C4E524Au;
/// magic u32 + type u8 + body_len u64 + trailing crc64 u64.
constexpr std::uint64_t kEnvelopeOverhead = 4 + 1 + 8 + 8;
/// kSegmentOpen carries {epoch u64, id-generation floor u64}.
constexpr std::uint64_t kOpenRecordBytes = kEnvelopeOverhead + 16;
/// kSeal carries {next epoch u64}.
constexpr std::uint64_t kSealRecordBytes = kEnvelopeOverhead + 8;
/// Ids are (generation << kGenerationShift) | counter; every recover() bumps
/// the generation so ids discarded with a torn tail are never reissued to a
/// different image (a chain holding the old id must not load the new one).
/// The generation in force is stamped into every kSegmentOpen record (and
/// re-stamped by recover()), so the bump survives even a second crash that
/// tears every commit of the new generation — a survivors-only scan would
/// recompute the old generation and reissue its ids.
constexpr std::uint32_t kGenerationShift = 48;

bool record_type_known(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(JournalRecordType::kSegmentOpen) &&
         raw <= static_cast<std::uint8_t>(JournalRecordType::kFlightRecord);
}

}  // namespace

const char* to_string(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kSegmentOpen: return "segment-open";
    case JournalRecordType::kChunk: return "chunk";
    case JournalRecordType::kCommit: return "commit";
    case JournalRecordType::kMigrate: return "migrate";
    case JournalRecordType::kErase: return "erase";
    case JournalRecordType::kSeal: return "seal";
    case JournalRecordType::kFlightRecord: return "flight-record";
  }
  return "?";
}

LogStructuredBackend::LogStructuredBackend(StorageBackend* home, JournalOptions options)
    : home_(home), options_(options) {
  if (home_ == nullptr) throw std::invalid_argument("journal requires a home store");
  if (options_.segments < 2) throw std::invalid_argument("journal needs >= 2 segments");
  if (options_.segment_bytes < 2 * (kOpenRecordBytes + kSealRecordBytes)) {
    throw std::invalid_argument("journal segment_bytes too small");
  }
  options_.encoding.observer = nullptr;  // per-store tables stay silent
  media_.segment_bytes = options_.segment_bytes;
  media_.slots.assign(options_.segments,
                      std::vector<std::byte>(options_.segment_bytes, std::byte{0}));
  slots_.assign(options_.segments, Slot{});
}

LogStructuredBackend::LogStructuredBackend(StorageBackend* home, JournalOptions options,
                                           JournalMedia media)
    : LogStructuredBackend(home, options) {
  if (media.segment_bytes != options_.segment_bytes ||
      media.slots.size() != options_.segments) {
    throw std::invalid_argument("adopted journal media does not match the geometry");
  }
  media_ = std::move(media);
  crashed_ = true;  // adopted media is a post-crash image: recover() first
}

std::uint64_t LogStructuredBackend::envelope_bytes(std::uint64_t body) const {
  return kEnvelopeOverhead + body;
}

void LogStructuredBackend::note_counter(const char* name, std::uint64_t delta) const {
  if (options_.observer != nullptr && delta > 0) {
    options_.observer->metrics().add(name, delta);
  }
}

void LogStructuredBackend::charge_sync(const ChargeFn& charge) {
  if (charge) charge(options_.costs.disk_latency_ns);
  note_counter("journal.syncs");
}

std::vector<std::uint32_t> LogStructuredBackend::slots_by_epoch() const {
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].epoch != 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return slots_[a].epoch < slots_[b].epoch;
  });
  return order;
}

std::uint64_t LogStructuredBackend::log_live_bytes() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.used;
  return total;
}

std::optional<std::pair<std::uint32_t, std::uint64_t>> LogStructuredBackend::locate(
    std::uint64_t log_offset) const {
  for (std::uint32_t index : slots_by_epoch()) {
    if (log_offset < slots_[index].used) return std::make_pair(index, log_offset);
    log_offset -= slots_[index].used;
  }
  return std::nullopt;
}

std::vector<std::byte> LogStructuredBackend::open_record_env(std::uint64_t epoch) const {
  util::Serializer body;
  body.put<std::uint64_t>(epoch);
  body.put<std::uint64_t>(generation_);  // the durable id-generation floor
  util::Serializer env;
  env.put<std::uint32_t>(kRecordMagic);
  env.put<JournalRecordType>(JournalRecordType::kSegmentOpen);
  env.put<std::uint64_t>(body.size());
  env.put_raw(body.bytes());
  env.put<std::uint64_t>(util::crc64(env.bytes()));
  return std::move(env).take();
}

bool LogStructuredBackend::open_fresh_slot(const ChargeFn& charge) {
  std::int32_t fresh = -1;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].epoch == 0) {
      fresh = static_cast<std::int32_t>(i);
      break;
    }
  }
  if (fresh < 0) return false;
  const auto slot_index = static_cast<std::uint32_t>(fresh);
  const std::uint64_t epoch = next_epoch_++;
  // Write the open record directly: append_record would recurse into the
  // rollover logic this function is the bottom of.  It still goes through
  // the torn-append accounting — a crash inside a segment-open record must
  // be a reachable injection point like any other intra-record offset.
  const std::vector<std::byte> env = open_record_env(epoch);
  if (tear_next_append_) {
    if (*tear_next_append_ < env.size()) {
      std::memcpy(media_.slots[slot_index].data(), env.data(), *tear_next_append_);
      tear_next_append_.reset();
      simulate_crash();
      return false;
    }
    *tear_next_append_ -= env.size();
  }
  slots_[slot_index] = Slot{epoch, 0, false};
  active_slot_ = fresh;
  std::memcpy(media_.slots[slot_index].data(), env.data(), env.size());
  ledger_.push_back({JournalRecordType::kSegmentOpen, kBadImageId, slot_index, 0,
                     log_live_bytes(), env.size()});
  slots_[slot_index].used = env.size();
  if (charge) {
    charge(static_cast<SimTime>(static_cast<double>(env.size()) /
                                options_.costs.disk_bandwidth_bps * 1e9));
  }
  return true;
}

std::optional<LogStructuredBackend::RecordLoc> LogStructuredBackend::append_record(
    JournalRecordType type, ImageId id, std::span<const std::byte> body,
    const ChargeFn& charge) {
  if (crashed_) return std::nullopt;
  util::Serializer env;
  env.put<std::uint32_t>(kRecordMagic);
  env.put<JournalRecordType>(type);
  env.put<std::uint64_t>(body.size());
  env.put_raw(body);
  env.put<std::uint64_t>(util::crc64(env.bytes()));
  const std::uint64_t need = env.size();
  // Every slot must keep room for its seal record, or the chain pointer to
  // the successor segment could never be written.
  if (need + kOpenRecordBytes + kSealRecordBytes > options_.segment_bytes) {
    return std::nullopt;
  }
  if (active_slot_ < 0 && !open_fresh_slot(charge)) return std::nullopt;
  if (slots_[static_cast<std::uint32_t>(active_slot_)].used + need +
          kSealRecordBytes > options_.segment_bytes) {
    // Seal the active segment and continue in a fresh one — but only when a
    // fresh one exists, so a full log never strands a half-sealed chain.
    bool have_free = false;
    for (const Slot& slot : slots_) have_free = have_free || slot.epoch == 0;
    if (!have_free) return std::nullopt;
    util::Serializer seal_body;
    seal_body.put<std::uint64_t>(next_epoch_);  // epoch the successor will open with
    util::Serializer seal;
    seal.put<std::uint32_t>(kRecordMagic);
    seal.put<JournalRecordType>(JournalRecordType::kSeal);
    seal.put<std::uint64_t>(seal_body.size());
    seal.put_raw(seal_body.bytes());
    seal.put<std::uint64_t>(util::crc64(seal.bytes()));
    const auto active = static_cast<std::uint32_t>(active_slot_);
    if (tear_next_append_) {
      if (*tear_next_append_ < seal.size()) {
        std::memcpy(media_.slots[active].data() + slots_[active].used,
                    seal.bytes().data(), *tear_next_append_);
        tear_next_append_.reset();
        simulate_crash();
        return std::nullopt;
      }
      *tear_next_append_ -= seal.size();
    }
    ledger_.push_back({JournalRecordType::kSeal, kBadImageId, active,
                       slots_[active].used, log_live_bytes(), seal.size()});
    std::memcpy(media_.slots[active].data() + slots_[active].used, seal.bytes().data(),
                seal.size());
    slots_[active].used += seal.size();
    slots_[active].sealed = true;
    if (charge) {
      charge(static_cast<SimTime>(static_cast<double>(seal.size()) /
                                  options_.costs.disk_bandwidth_bps * 1e9));
    }
    if (!open_fresh_slot(charge)) return std::nullopt;
  }
  const auto active = static_cast<std::uint32_t>(active_slot_);
  if (tear_next_append_) {
    if (*tear_next_append_ < need) {
      std::memcpy(media_.slots[active].data() + slots_[active].used, env.bytes().data(),
                  *tear_next_append_);
      tear_next_append_.reset();
      simulate_crash();
      return std::nullopt;
    }
    *tear_next_append_ -= need;
  }
  const RecordLoc loc{active, slots_[active].used, need};
  ledger_.push_back({type, id, active, loc.offset, log_live_bytes(), need});
  std::memcpy(media_.slots[active].data() + loc.offset, env.bytes().data(), need);
  slots_[active].used += need;
  if (charge) {
    charge(static_cast<SimTime>(static_cast<double>(need) /
                                options_.costs.disk_bandwidth_bps * 1e9));
  }
  return loc;
}

std::optional<LogStructuredBackend::ParsedRecord> LogStructuredBackend::parse_record_at(
    std::uint32_t slot, std::uint64_t offset) const {
  const std::vector<std::byte>& bytes = media_.slots[slot];
  if (offset + kEnvelopeOverhead > bytes.size()) return std::nullopt;
  util::Deserializer header(std::span<const std::byte>(bytes).subspan(offset));
  std::uint32_t magic = 0;
  std::uint8_t raw_type = 0;
  std::uint64_t body_len = 0;
  try {
    magic = header.get<std::uint32_t>();
    raw_type = header.get<std::uint8_t>();
    body_len = header.get<std::uint64_t>();
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
  if (magic != kRecordMagic || !record_type_known(raw_type)) return std::nullopt;
  // A corrupted body_len near 2^64 would wrap `total` (and the subspan
  // arithmetic below); reject any length that cannot fit between here and
  // the end of the slot before doing arithmetic with it.  The subtraction
  // is underflow-safe: the envelope check above guarantees
  // offset + kEnvelopeOverhead <= bytes.size().
  if (body_len > bytes.size() - offset - kEnvelopeOverhead) return std::nullopt;
  const std::uint64_t total = kEnvelopeOverhead + body_len;
  const auto record = std::span<const std::byte>(bytes).subspan(offset, total);
  const std::uint64_t stored_crc =
      util::Deserializer(record.subspan(total - 8)).get<std::uint64_t>();
  if (util::crc64(record.first(total - 8)) != stored_crc) return std::nullopt;
  ParsedRecord parsed;
  parsed.type = static_cast<JournalRecordType>(raw_type);
  parsed.loc = RecordLoc{slot, offset, total};
  const auto body = record.subspan(kEnvelopeOverhead - 8, body_len);
  parsed.body.assign(body.begin(), body.end());
  return parsed;
}

std::uint64_t LogStructuredBackend::free_capacity() const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].epoch == 0) {
      total += options_.segment_bytes - (kOpenRecordBytes + kSealRecordBytes);
    } else if (static_cast<std::int32_t>(i) == active_slot_ && !slots_[i].sealed) {
      const std::uint64_t reserved = slots_[i].used + kSealRecordBytes;
      total += reserved < options_.segment_bytes ? options_.segment_bytes - reserved : 0;
    }
  }
  return total;
}

ImageId LogStructuredBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  if (crashed_) return kBadImageId;
  obs::TraceRecorder* trace = obs::tracer(options_.observer);
  obs::SpanGuard span(trace, "journal.append", "storage", obs::kStorageTrack,
                      {obs::TraceArg::num("pid", static_cast<std::uint64_t>(image.pid))});
  // A fresh table per commit keeps the group self-contained: every chunk the
  // manifest references is a kChunk record inside the same contiguous run,
  // so recovery never needs cross-group state.  Cross-image dedup happens at
  // the home store after migration.
  ChunkTable table(options_.encoding);
  const ChunkTable::EncodedImage enc = table.encode(image);
  util::Serializer commit_body;
  const ImageId id = next_id_;
  commit_body.put<ImageId>(id);
  commit_body.put<std::uint64_t>(static_cast<std::uint64_t>(image.pid));
  commit_body.put<std::uint64_t>(image.sequence);
  commit_body.put_bytes(enc.manifest);
  commit_body.put_vector(enc.refs, [](util::Serializer& s, const ChunkKey& key) {
    s.put<std::uint64_t>(key.crc);
    s.put<std::uint32_t>(key.size);
    s.put<std::uint32_t>(key.ordinal);
  });
  std::uint64_t planned = envelope_bytes(commit_body.size());
  for (const ChunkTable::FreshChunk& chunk : enc.fresh) {
    planned += envelope_bytes(8 + 4 + 4 + 8 + 8 + chunk.blob.size());
  }
  if (tear_next_append_ && planned > 0) *tear_next_append_ %= planned;
  if (planned + kSealRecordBytes > free_capacity()) {
    if (options_.migrate_on_demand) migrate(charge);
    if (planned + kSealRecordBytes > free_capacity()) {
      note_counter("journal.full_rejects");
      span.end({obs::TraceArg::str("outcome", "log-full")});
      return kBadImageId;
    }
  }
  Entry entry;
  entry.pid = image.pid;
  entry.sequence = image.sequence;
  bool failed = false;
  for (const ChunkTable::FreshChunk& chunk : enc.fresh) {
    util::Serializer body;
    body.put<std::uint64_t>(chunk.key.crc);
    body.put<std::uint32_t>(chunk.key.size);
    body.put<std::uint32_t>(chunk.key.ordinal);
    body.put<std::uint64_t>(chunk.blob_crc);
    body.put_bytes(chunk.blob);
    const auto loc = append_record(JournalRecordType::kChunk, id, body.bytes(), charge);
    if (!loc) {
      failed = true;
      break;
    }
    entry.chunks.emplace_back(chunk.key, *loc);
  }
  if (!failed) {
    const auto loc = append_record(JournalRecordType::kCommit, id, commit_body.bytes(), charge);
    if (loc) {
      entry.commit = *loc;
    } else {
      failed = true;
    }
  }
  if (failed) {
    // Torn append (or an unexpectedly full log): the half-written group has
    // no commit record, so recovery — and every reader — ignores it.
    span.end({obs::TraceArg::str("outcome", crashed_ ? "torn" : "log-full")});
    return kBadImageId;
  }
  entry.group_bytes = entry.commit.bytes;
  entry.epoch_min = slots_[entry.commit.slot].epoch;
  entry.epoch_max = entry.epoch_min;
  for (const auto& [key, loc] : entry.chunks) {
    entry.group_bytes += loc.bytes;
    entry.epoch_min = std::min(entry.epoch_min, slots_[loc.slot].epoch);
    entry.epoch_max = std::max(entry.epoch_max, slots_[loc.slot].epoch);
  }
  entries_.emplace(id, std::move(entry));
  next_id_ = id + 1;
  if (group_depth_ > 0) {
    group_sync_pending_ = true;
  } else {
    charge_sync(charge);
  }
  note_counter("journal.commits");
  note_counter("journal.append_bytes", planned);
  span.end({obs::TraceArg::num("id", id), obs::TraceArg::num("bytes", planned),
            obs::TraceArg::num("chunks", enc.fresh.size())});
  return id;
}

bool LogStructuredBackend::append_flight_record(std::uint64_t key,
                                                std::span<const std::byte> payload,
                                                const ChargeFn& charge) {
  if (crashed_) return false;
  obs::TraceRecorder* trace = obs::tracer(options_.observer);
  obs::SpanGuard span(trace, "journal.flight", "storage", obs::kStorageTrack,
                      {obs::TraceArg::num("key", key)});
  util::Serializer body;
  body.put<std::uint64_t>(key);
  body.put_bytes(payload);
  const std::uint64_t planned = envelope_bytes(body.size());
  if (tear_next_append_ && planned > 0) *tear_next_append_ %= planned;
  if (planned + kSealRecordBytes > free_capacity()) {
    if (options_.migrate_on_demand) migrate(charge);
    if (planned + kSealRecordBytes > free_capacity()) {
      note_counter("journal.full_rejects");
      span.end({obs::TraceArg::str("outcome", "log-full")});
      return false;
    }
  }
  const auto loc =
      append_record(JournalRecordType::kFlightRecord, kBadImageId, body.bytes(), charge);
  if (!loc) {
    // Torn append: the half-written record fails its CRC on recovery, so the
    // previously persisted flight record for this key stays authoritative.
    span.end({obs::TraceArg::str("outcome", crashed_ ? "torn" : "log-full")});
    return false;
  }
  FlightSlot& slot = flight_[key];
  slot.payload.assign(payload.begin(), payload.end());
  slot.epoch = slots_[loc->slot].epoch;
  if (group_depth_ > 0) {
    group_sync_pending_ = true;
  } else {
    charge_sync(charge);
  }
  note_counter("journal.flight_appends");
  note_counter("journal.append_bytes", planned);
  span.end({obs::TraceArg::num("bytes", planned)});
  return true;
}

std::vector<std::uint64_t> LogStructuredBackend::flight_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(flight_.size());
  for (const auto& [key, slot] : flight_) keys.push_back(key);
  return keys;
}

std::optional<std::vector<std::byte>> LogStructuredBackend::flight_record_of(
    std::uint64_t key) const {
  const auto it = flight_.find(key);
  if (it == flight_.end()) return std::nullopt;
  return it->second.payload;
}

std::optional<CheckpointImage> LogStructuredBackend::decode_resident(const Entry& entry) const {
  const auto commit = parse_record_at(entry.commit.slot, entry.commit.offset);
  if (!commit || commit->type != JournalRecordType::kCommit) return std::nullopt;
  std::vector<std::byte> manifest;
  try {
    util::Deserializer body(commit->body);
    body.get<ImageId>();
    body.get<std::uint64_t>();  // pid
    body.get<std::uint64_t>();  // sequence
    manifest = body.get_bytes();
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
  const ChunkTable::ChunkFetch fetch =
      [&](const ChunkKey& key, std::uint64_t expected_blob_crc)
      -> std::optional<std::vector<std::byte>> {
    for (const auto& [chunk_key, loc] : entry.chunks) {
      if (chunk_key != key) continue;
      const auto record = parse_record_at(loc.slot, loc.offset);
      if (!record || record->type != JournalRecordType::kChunk) return std::nullopt;
      try {
        util::Deserializer body(record->body);
        const ChunkKey stored{body.get<std::uint64_t>(), body.get<std::uint32_t>(),
                              body.get<std::uint32_t>()};
        const auto blob_crc = body.get<std::uint64_t>();
        auto blob = body.get_bytes();
        if (stored != key || blob_crc != expected_blob_crc) return std::nullopt;
        return blob;
      } catch (const util::SerializeError&) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  };
  return ChunkTable::decode(manifest, fetch);
}

std::optional<CheckpointImage> LogStructuredBackend::load(ImageId id, const ChargeFn& charge) {
  if (crashed_) return std::nullopt;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.migrated) return home_->load(it->second.home_id, charge);
  if (charge) charge(options_.costs.disk_cost(it->second.group_bytes));
  return decode_resident(it->second);
}

bool LogStructuredBackend::erase(ImageId id) {
  if (crashed_) return false;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  util::Serializer body;
  body.put<ImageId>(id);
  if (!append_record(JournalRecordType::kErase, id, body.bytes(), ChargeFn{})) {
    return false;
  }
  if (it->second.migrated) home_->erase(it->second.home_id);
  entries_.erase(it);
  return true;
}

std::vector<ImageId> LogStructuredBackend::list() const {
  std::vector<ImageId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

StorageLocality LogStructuredBackend::locality() const { return home_->locality(); }

bool LogStructuredBackend::reachable() const { return !crashed_; }

std::uint64_t LogStructuredBackend::stored_bytes() const {
  return log_live_bytes() + home_->stored_bytes();
}

GcReport LogStructuredBackend::gc(const ChargeFn& charge) {
  if (auto* reclaimable = dynamic_cast<ChunkReclaimable*>(home_)) {
    return reclaimable->gc(charge);
  }
  return {};
}

void LogStructuredBackend::begin_group() { ++group_depth_; }

SimTime LogStructuredBackend::end_group(const ChargeFn& charge) {
  if (group_depth_ > 0) --group_depth_;
  if (group_depth_ > 0 || !group_sync_pending_) return 0;
  group_sync_pending_ = false;
  charge_sync(charge);
  return options_.costs.disk_latency_ns;
}

std::uint64_t LogStructuredBackend::resident_images() const {
  std::uint64_t count = 0;
  for (const auto& [id, entry] : entries_) count += entry.migrated ? 0 : 1;
  return count;
}

std::uint64_t LogStructuredBackend::migrated_images() const {
  return entries_.size() - resident_images();
}

std::optional<ImageId> LogStructuredBackend::home_id_of(ImageId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.migrated) return std::nullopt;
  return it->second.home_id;
}

std::optional<std::pair<sim::Pid, std::uint64_t>> LogStructuredBackend::identity_of(
    ImageId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return std::make_pair(it->second.pid, it->second.sequence);
}

void LogStructuredBackend::reclaim_segments(MigrateReport& report, const ChargeFn& charge) {
  // Oldest-first: a segment is reclaimable once no resident commit group
  // touches it; migrated entries whose publish record lives there are first
  // compacted forward so the mapping survives the wipe.
  while (true) {
    const std::vector<std::uint32_t> order = slots_by_epoch();
    if (order.size() <= 1) return;  // never reclaim the only (active) segment
    const std::uint32_t victim = order.front();
    if (!slots_[victim].sealed) return;
    const std::uint64_t epoch = slots_[victim].epoch;
    for (const auto& [id, entry] : entries_) {
      if (!entry.migrated && entry.epoch_min <= epoch && epoch <= entry.epoch_max) {
        return;  // resident data still lives here
      }
    }
    bool compacted_all = true;
    for (auto& [id, entry] : entries_) {
      if (!entry.migrated || entry.migrate_epoch != epoch) continue;
      util::Serializer body;
      body.put<ImageId>(id);
      body.put<ImageId>(entry.home_id);
      body.put<std::uint64_t>(static_cast<std::uint64_t>(entry.pid));
      body.put<std::uint64_t>(entry.sequence);
      const auto loc = append_record(JournalRecordType::kMigrate, id, body.bytes(), charge);
      if (!loc) {
        compacted_all = false;  // log too full to compact; try again later
        break;
      }
      entry.migrate_epoch = slots_[loc->slot].epoch;
      ++report.compacted_records;
    }
    // Flight records ride the same compaction: the newest record per key is
    // the only live one, so it hops forward before its segment is wiped.
    for (auto& [key, slot] : flight_) {
      if (!compacted_all) break;
      if (slot.epoch != epoch) continue;
      util::Serializer body;
      body.put<std::uint64_t>(key);
      body.put_bytes(slot.payload);
      const auto loc =
          append_record(JournalRecordType::kFlightRecord, kBadImageId, body.bytes(), charge);
      if (!loc) {
        compacted_all = false;
        break;
      }
      slot.epoch = slots_[loc->slot].epoch;
      ++report.compacted_records;
    }
    if (!compacted_all || crashed_) return;
    std::fill(media_.slots[victim].begin(), media_.slots[victim].end(), std::byte{0});
    slots_[victim] = Slot{};
    ++report.segments_reclaimed;
    note_counter("journal.segments_reclaimed");
  }
}

LogStructuredBackend::MigrateReport LogStructuredBackend::migrate(const ChargeFn& charge) {
  MigrateReport report;
  if (crashed_) return report;
  obs::TraceRecorder* trace = obs::tracer(options_.observer);
  obs::SpanGuard span(trace, "journal.migrate", "storage", obs::kStorageTrack,
                      {obs::TraceArg::num("resident", resident_images())});
  std::vector<ImageId> ids;
  for (const auto& [id, entry] : entries_) {
    if (!entry.migrated) ids.push_back(id);
  }
  // Pre-decode on the pool: a pure function of log bytes (no charges, no
  // observer emission from workers), joined in index order — the worker
  // count can never reach any observable output.
  std::vector<std::optional<CheckpointImage>> images(ids.size());
  util::ThreadPool* pool = options_.pool != nullptr ? options_.pool : &util::ThreadPool::shared();
  util::parallel_for(pool, ids.size(), [&](std::size_t i) {
    images[i] = decode_resident(entries_.at(ids[i]));
  });
  report.complete = true;
  bool published = false;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Entry& entry = entries_.at(ids[i]);
    if (!images[i]) {
      ++report.decode_failures;
      report.complete = false;
      continue;
    }
    if (charge) charge(options_.costs.disk_cost(entry.group_bytes));
    const ImageId home_id = home_->store(*images[i], charge);
    if (home_id == kBadImageId) {
      report.complete = false;  // home store refused; retry on the next drain
      break;
    }
    if (drain_publish_crash_armed_) {
      // The injector window: the image is durable in the home store but its
      // kMigrate record never lands — recovery must reconcile the orphan.
      drain_publish_crash_armed_ = false;
      simulate_crash();
      report.complete = false;
      span.end({obs::TraceArg::str("outcome", "crashed-before-publish")});
      return report;
    }
    util::Serializer body;
    body.put<ImageId>(ids[i]);
    body.put<ImageId>(home_id);
    body.put<std::uint64_t>(static_cast<std::uint64_t>(entry.pid));
    body.put<std::uint64_t>(entry.sequence);
    const auto loc = append_record(JournalRecordType::kMigrate, ids[i], body.bytes(), charge);
    if (!loc) {
      // No room (or torn) for the publish record: undo the home copy so a
      // crash cannot leave a mapping that exists nowhere in the log.
      home_->erase(home_id);
      report.complete = false;
      break;
    }
    entry.migrated = true;
    entry.home_id = home_id;
    entry.chunks.clear();
    entry.chunks.shrink_to_fit();
    entry.migrate_epoch = slots_[loc->slot].epoch;
    ++report.images_drained;
    report.bytes_drained += images[i]->payload_bytes();
    published = true;
  }
  if (published) charge_sync(charge);
  if (!crashed_) reclaim_segments(report, charge);
  note_counter("journal.migrated_images", report.images_drained);
  note_counter("journal.migrated_bytes", report.bytes_drained);
  span.end({obs::TraceArg::num("drained", report.images_drained),
            obs::TraceArg::num("reclaimed", report.segments_reclaimed)});
  return report;
}

void LogStructuredBackend::simulate_crash() {
  entries_.clear();
  flight_.clear();
  ledger_.clear();
  slots_.assign(options_.segments, Slot{});
  active_slot_ = -1;
  next_epoch_ = 1;
  group_depth_ = 0;
  group_sync_pending_ = false;
  tear_next_append_.reset();
  drain_publish_crash_armed_ = false;
  crashed_ = true;
}

void LogStructuredBackend::tear_next_append(std::uint64_t at) { tear_next_append_ = at; }

bool LogStructuredBackend::corrupt_log(std::uint64_t log_offset, std::uint64_t count,
                                       std::byte mask) {
  const std::uint64_t total = log_live_bytes();
  if (total == 0 || count == 0) return false;
  log_offset %= total;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto where = locate((log_offset + i) % total);
    if (!where) return false;
    media_.slots[where->first][where->second] ^= mask;
  }
  return true;
}

void LogStructuredBackend::crash_between_drain_and_publish() {
  drain_publish_crash_armed_ = true;
}

JournalRecoveryReport LogStructuredBackend::recover(const ChargeFn& charge) {
  JournalRecoveryReport report;
  // Forget everything host-side and rebuild from the media bytes alone.
  simulate_crash();
  if (charge) {
    charge(options_.costs.disk_cost(options_.segment_bytes * options_.segments));
  }

  struct SlotScan {
    bool empty = true;
    bool head_valid = false;
    bool damaged = false;
    bool sealed = false;
    std::uint64_t epoch = 0;
    std::uint64_t id_floor = 0;  ///< generation floor stamped into the head
    std::uint64_t next_epoch = 0;
    std::uint64_t valid_bytes = 0;
    std::uint64_t extent = 0;  ///< 1 + index of the last nonzero byte
    std::vector<ParsedRecord> records;
  };
  std::vector<SlotScan> scans(slots_.size());
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    SlotScan& scan = scans[i];
    const std::vector<std::byte>& bytes = media_.slots[i];
    for (std::size_t b = bytes.size(); b > 0; --b) {
      if (bytes[b - 1] != std::byte{0}) {
        scan.extent = b;
        break;
      }
    }
    if (scan.extent == 0) continue;
    scan.empty = false;
    ++report.slots_scanned;
    std::uint64_t off = 0;
    while (true) {
      auto record = parse_record_at(i, off);
      if (!record) {
        scan.damaged = off < scan.extent;  // nonzero bytes past the valid prefix
        break;
      }
      if (off == 0) {
        if (record->type != JournalRecordType::kSegmentOpen || record->body.size() != 16) {
          scan.damaged = true;
          break;
        }
        util::Deserializer head(record->body);
        scan.epoch = head.get<std::uint64_t>();
        scan.id_floor = head.get<std::uint64_t>();
        scan.head_valid = scan.epoch != 0;
        if (!scan.head_valid) {
          scan.damaged = true;
          break;
        }
      } else if (record->type == JournalRecordType::kSegmentOpen) {
        scan.damaged = true;  // an open record anywhere but the head is garbage
        break;
      }
      off += record->loc.bytes;
      scan.valid_bytes = off;
      const bool is_seal = record->type == JournalRecordType::kSeal;
      if (is_seal) {
        if (record->body.size() != 8) {
          scan.sealed = false;
          scan.damaged = true;
          scan.records.push_back(std::move(*record));
          break;
        }
        scan.next_epoch = util::Deserializer(record->body).get<std::uint64_t>();
        scan.sealed = true;
      }
      scan.records.push_back(std::move(*record));
      if (is_seal) break;
    }
  }

  std::map<std::uint64_t, std::uint32_t> by_epoch;
  bool any_head_damaged = false;
  for (std::uint32_t i = 0; i < scans.size(); ++i) {
    if (scans[i].empty) continue;
    if (!scans[i].head_valid) {
      any_head_damaged = true;
    } else {
      by_epoch[scans[i].epoch] = i;
    }
  }

  // Walk the seal chain from the lowest epoch, replaying records until the
  // first anomaly.  A slot whose head is unreadable is position-ambiguous:
  // if the chain of valid slots ends at an *unsealed* (active) slot, the
  // damaged slot can only be the oldest segment — and a log whose head is
  // gone proves nothing about any later record, so nothing is recovered.
  std::vector<std::uint32_t> chain;
  bool stopped_torn = false;
  bool discard_all = by_epoch.empty();
  if (!by_epoch.empty()) {
    std::uint64_t epoch = by_epoch.begin()->first;
    while (true) {
      const SlotScan& scan = scans[by_epoch.at(epoch)];
      chain.push_back(by_epoch.at(epoch));
      if (scan.damaged) {
        stopped_torn = true;
        break;
      }
      if (!scan.sealed) {
        if (any_head_damaged) discard_all = true;
        break;
      }
      const auto next = by_epoch.find(scan.next_epoch);
      if (next == by_epoch.end() || scans[next->second].epoch <= epoch) {
        stopped_torn = true;  // successor segment lost
        break;
      }
      epoch = scan.next_epoch;
    }
  }
  if (discard_all) chain.clear();

  // Replay: chunk records are pending until the next commit record adopts
  // them; a commit-less group at the tail is exactly a torn commit.
  std::map<ChunkKey, std::pair<RecordLoc, std::uint64_t>> pending;
  for (const std::uint32_t index : chain) {
    const SlotScan& scan = scans[index];
    for (const ParsedRecord& record : scan.records) {
      ++report.records_replayed;
      try {
        util::Deserializer body(record.body);
        switch (record.type) {
          case JournalRecordType::kSegmentOpen:
          case JournalRecordType::kSeal:
            break;
          case JournalRecordType::kChunk: {
            const ChunkKey key{body.get<std::uint64_t>(), body.get<std::uint32_t>(),
                               body.get<std::uint32_t>()};
            const auto blob_crc = body.get<std::uint64_t>();
            pending[key] = {record.loc, blob_crc};
            break;
          }
          case JournalRecordType::kCommit: {
            Entry entry;
            const ImageId id = body.get<ImageId>();
            entry.pid = static_cast<sim::Pid>(body.get<std::uint64_t>());
            entry.sequence = body.get<std::uint64_t>();
            body.get_bytes();  // manifest stays on media; re-read at load
            const auto refs = body.get_vector<ChunkKey>([](util::Deserializer& d) {
              return ChunkKey{d.get<std::uint64_t>(), d.get<std::uint32_t>(),
                              d.get<std::uint32_t>()};
            });
            entry.commit = record.loc;
            entry.group_bytes = record.loc.bytes;
            entry.epoch_min = scans[record.loc.slot].epoch;
            entry.epoch_max = entry.epoch_min;
            bool complete = true;
            for (const ChunkKey& key : refs) {
              const auto found = pending.find(key);
              if (found == pending.end()) {
                complete = false;
                break;
              }
              entry.chunks.emplace_back(key, found->second.first);
              entry.group_bytes += found->second.first.bytes;
              const std::uint64_t chunk_epoch = scans[found->second.first.slot].epoch;
              entry.epoch_min = std::min(entry.epoch_min, chunk_epoch);
              entry.epoch_max = std::max(entry.epoch_max, chunk_epoch);
            }
            pending.clear();
            if (complete) entries_[id] = std::move(entry);
            break;
          }
          case JournalRecordType::kMigrate: {
            const ImageId id = body.get<ImageId>();
            const ImageId home_id = body.get<ImageId>();
            Entry entry;
            entry.migrated = true;
            entry.home_id = home_id;
            entry.pid = static_cast<sim::Pid>(body.get<std::uint64_t>());
            entry.sequence = body.get<std::uint64_t>();
            entry.migrate_epoch = scan.epoch;
            entries_[id] = std::move(entry);
            break;
          }
          case JournalRecordType::kErase:
            entries_.erase(body.get<ImageId>());
            break;
          case JournalRecordType::kFlightRecord: {
            // Newest record per key wins; flight records interleave freely
            // inside commit groups, so they must not disturb `pending`.
            const std::uint64_t key = body.get<std::uint64_t>();
            FlightSlot& slot = flight_[key];
            slot.payload = body.get_bytes();
            slot.epoch = scans[record.loc.slot].epoch;
            break;
          }
        }
      } catch (const util::SerializeError&) {
        // A record whose envelope validated but whose body does not parse is
        // still an anomaly: treat like any other damaged record (skip; the
        // envelope CRC makes this effectively unreachable).
        report.tail_torn = true;
      }
    }
  }

  // Adopt slot bookkeeping for the replayed prefix, zero everything else.
  std::set<std::uint32_t> kept(chain.begin(), chain.end());
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const SlotScan& scan = scans[i];
    if (kept.count(i) != 0) {
      slots_[i] = Slot{scan.epoch, scan.valid_bytes, scan.sealed};
      if (scan.valid_bytes < media_.slots[i].size()) {
        report.bytes_discarded += scan.extent > scan.valid_bytes
                                      ? scan.extent - scan.valid_bytes
                                      : 0;
        std::fill(media_.slots[i].begin() +
                      static_cast<std::ptrdiff_t>(scan.valid_bytes),
                  media_.slots[i].end(), std::byte{0});
      }
    } else {
      report.bytes_discarded += scan.extent;
      if (!scan.empty) {
        std::fill(media_.slots[i].begin(), media_.slots[i].end(), std::byte{0});
      }
    }
  }
  if (!chain.empty()) {
    const std::uint32_t last = chain.back();
    if (!slots_[last].sealed) {
      active_slot_ = static_cast<std::int32_t>(last);
      next_epoch_ = scans[last].epoch + 1;
    } else {
      // The chain ends at a seal whose successor was lost: honor the pointer
      // so the next opened segment carries the epoch the seal promised.
      active_slot_ = -1;
      next_epoch_ = scans[last].next_epoch;
    }
  } else {
    active_slot_ = -1;
    next_epoch_ = 1;
  }

  // Rebuild the append ledger for the surviving prefix.
  std::uint64_t log_offset = 0;
  for (const std::uint32_t index : chain) {
    for (const ParsedRecord& record : scans[index].records) {
      ledger_.push_back({record.type, kBadImageId, record.loc.slot, record.loc.offset,
                         log_offset, record.loc.bytes});
      log_offset += record.loc.bytes;
    }
  }

  // Ids are never reissued across a recovery: bump the generation past every
  // id that could ever have been handed out from this media image.  The
  // survivors alone are not enough — a generation whose every commit was
  // torn by a second crash leaves no surviving id, so the floor stamped
  // into the segment-open records is consulted too (any parsed head counts,
  // even from slots the prefix scan is about to discard).
  std::uint64_t floor = 0;
  for (const SlotScan& scan : scans) floor = std::max(floor, scan.id_floor);
  std::uint64_t max_id = 0;
  for (const auto& [id, entry] : entries_) max_id = std::max(max_id, id);
  generation_ = std::max(floor, max_id >> kGenerationShift) + 1;
  next_id_ = (generation_ << kGenerationShift) | 1;
  // Re-stamp the surviving open records with the bumped generation before
  // any new-generation id can be issued: the floor is only as durable as
  // the records that carry it, so recovery republishes it across the whole
  // surviving chain (losing it would take damage that discards the chain —
  // and with it every commit the retired generations could collide with).
  for (const std::uint32_t index : chain) {
    const std::vector<std::byte> env = open_record_env(scans[index].epoch);
    std::memcpy(media_.slots[index].data(), env.data(), env.size());
  }

  report.tail_torn = report.tail_torn || stopped_torn || any_head_damaged;
  report.flight_recovered = flight_.size();
  for (const auto& [id, entry] : entries_) {
    report.recovered_ids.push_back(id);
    ++(entry.migrated ? report.migrated_recovered : report.resident_recovered);
  }

  crashed_ = false;

  // Reconcile the home store: the journal owns its id space, so any home
  // image no surviving kMigrate record references is a drained-but-never-
  // published orphan (the crash-between-drain-and-publish window) — erase it
  // before scrub can count it as committed data the journal disowns.
  std::set<ImageId> published;
  for (const auto& [id, entry] : entries_) {
    if (entry.migrated) published.insert(entry.home_id);
  }
  for (const ImageId home_id : home_->list()) {
    if (published.count(home_id) == 0 && home_->erase(home_id)) {
      ++report.orphans_reclaimed;
    }
  }

  note_counter("journal.recoveries");
  note_counter("journal.recovered_images", report.recovered_ids.size());
  note_counter("journal.discarded_bytes", report.bytes_discarded);
  note_counter("journal.orphans_reclaimed", report.orphans_reclaimed);
  if (options_.observer != nullptr) {
    options_.observer->trace().instant(
        "journal.recover", "storage", obs::kStorageTrack,
        {obs::TraceArg::num("recovered", report.recovered_ids.size()),
         obs::TraceArg::num("discarded_bytes", report.bytes_discarded),
         obs::TraceArg::num("torn", report.tail_torn ? 1 : 0)});
  }
  return report;
}

}  // namespace ckpt::storage
