// Stable-storage backends.
//
// Table 1's "stable storage" column distinguishes mechanisms by *where*
// checkpoints go, and Section 4's fault-tolerance critique rests on the
// consequence: a checkpoint stored on the failed node's local disk cannot
// be retrieved, so local-only storage gives restart-after-reboot but not
// failover.  The backends model exactly this:
//
//   * LocalDiskBackend  — per-node disk; unreachable after node failure.
//   * RemoteBackend     — network-attached storage; survives node failure
//                         but pays network transfer cost.
//   * MemoryBackend     — suspend-to-RAM (Software Suspend standby); lost
//                         on power cycle.
//   * NullBackend       — no stable storage (BProc/ZAP migrate live state
//                         instead of saving it).
//
// All I/O charges simulated time through a charge callback so checkpoint
// latency includes the storage cost the caller's context actually pays.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/costs.hpp"
#include "storage/image.hpp"

namespace ckpt::storage {

using ImageId = std::uint64_t;
inline constexpr ImageId kBadImageId = 0;

/// Where a backend's data physically lives — drives survivability analysis.
enum class StorageLocality : std::uint8_t { kLocalDisk, kRemote, kVolatileMemory, kNone };

const char* to_string(StorageLocality locality);

/// Callback charging simulated time to whatever context performs the I/O.
using ChargeFn = std::function<void(SimTime)>;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Persist an image; returns its id, or kBadImageId on failure.
  virtual ImageId store(const CheckpointImage& image, const ChargeFn& charge) = 0;

  /// Load and integrity-check an image.  nullopt when missing, unreachable
  /// or corrupt.
  virtual std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) = 0;

  virtual bool erase(ImageId id) = 0;
  [[nodiscard]] virtual std::vector<ImageId> list() const = 0;
  [[nodiscard]] virtual StorageLocality locality() const = 0;
  [[nodiscard]] virtual bool reachable() const = 0;

  /// Total stored bytes (capacity accounting in benches).
  [[nodiscard]] virtual std::uint64_t stored_bytes() const = 0;
};

/// Injected failure mode for the next store() on a BlobStoreBackend.
/// Armed by the fault-injection subsystem (src/inject), consumed on use.
enum class StoreFault : std::uint8_t {
  kNone,
  kReject,     ///< store fails cleanly: kBadImageId returned, nothing persisted
  kTornWrite,  ///< store "succeeds" but persists a truncated blob (crash
               ///< mid-write); the damage only surfaces at load via CRC
};

const char* to_string(StoreFault fault);

/// Common base holding serialized blobs keyed by id.
class BlobStoreBackend : public StorageBackend {
 public:
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  bool erase(ImageId id) override;
  [[nodiscard]] std::vector<ImageId> list() const override;
  [[nodiscard]] std::uint64_t stored_bytes() const override;

  // --- Fault-injection hooks (src/inject) -----------------------------------
  /// Arm a one-shot fault on the next store(); consumed whether or not the
  /// store would otherwise have succeeded.
  void inject_store_fault(StoreFault fault) {
    store_fault_ = fault;
    fault_skip_ops_ = 0;
  }
  /// Arm a one-shot fault that lets the next `skip_ops` write operations
  /// through first — the mid-stream variant: a streamed commit issues one
  /// append per chunk per replica, so skip_ops picks which append dies.
  void inject_store_fault(StoreFault fault, std::uint64_t skip_ops) {
    store_fault_ = fault;
    fault_skip_ops_ = skip_ops;
  }
  [[nodiscard]] StoreFault pending_store_fault() const { return store_fault_; }

  /// XOR-flip `count` bytes starting at `offset` (wrapping within the blob)
  /// of a stored blob — silent media corruption.  Returns false when the id
  /// is unknown or the blob is empty.
  bool corrupt_blob(ImageId id, std::uint64_t offset, std::uint64_t count,
                    std::byte mask = std::byte{0xFF});

  /// Most recently stored id, kBadImageId when nothing is stored — the
  /// natural corruption target ("newest image").
  [[nodiscard]] ImageId newest_id() const;

  /// Transient outage: the backend is unreachable (stores rejected, loads
  /// fail) until cleared.  Orthogonal to permanent failure state such as
  /// LocalDiskBackend::fail_node(); data is untouched.
  void set_outage(bool outage) { outage_ = outage; }
  [[nodiscard]] bool in_outage() const { return outage_; }

  // --- Raw blob access (replication / scrub, src/storage/replicated) --------
  /// The serialized bytes of a stored blob, without deserializing: the
  /// replication layer verifies and copies images as opaque CRC-checked
  /// blobs.  nullopt when the id is unknown or the backend is unreachable.
  /// Charges io_cost through `charge`.
  [[nodiscard]] std::optional<std::vector<std::byte>> read_blob(ImageId id,
                                                                const ChargeFn& charge) const;

  /// CRC64 of a stored blob computed in place — a read-back verify without
  /// materializing a host-side copy.  Same reachability guards and the same
  /// io_cost charge as read_blob (the simulated media is still read in
  /// full); only the host copy is gone.  nullopt when the id is unknown or
  /// the backend is unreachable.
  [[nodiscard]] std::optional<std::uint64_t> blob_crc64(ImageId id,
                                                        const ChargeFn& charge) const;

  /// Persist pre-serialized bytes (replica staging and scrub repair).
  /// Honours outage state and any armed store fault exactly like store(),
  /// and charges io_cost.  Returns kBadImageId when unreachable or faulted.
  ImageId put_raw(std::vector<std::byte> blob, const ChargeFn& charge);

  // --- Staged append (streaming commit, src/storage/replicated) -------------
  // A stage is an open, append-only file: chunks land on the media as they
  // are produced, but the bytes are invisible to load/list/newest_id until
  // finish_staged() seals them under a fresh id.  A crash (abandon) before
  // the seal leaves no trace — the commit-record-last invariant.
  using StageId = std::uint64_t;
  static constexpr StageId kBadStageId = 0;

  /// Open a stage.  Charges io_cost(0) — the per-IO setup latency (seek /
  /// connection) paid once up front.  kBadStageId when unreachable.
  StageId begin_staged(const ChargeFn& charge);

  /// Append a chunk to an open stage, charging the marginal bandwidth cost
  /// io_cost(n) - io_cost(0).  Consumes an armed store fault (under its
  /// skip counter): kReject fails the append cleanly (false); kTornWrite
  /// silently persists a truncated prefix and reports success — only the
  /// seal-time CRC read-back can catch it.  False when the stage is
  /// unknown or the backend unreachable.
  bool append_staged(StageId stage, std::span<const std::byte> chunk, const ChargeFn& charge);

  /// Seal a stage: backfill `header` (the CRC envelope, a small pwrite at
  /// offset 0, charged io_cost(header.size())) and publish header+bytes
  /// under a fresh ImageId.  Consumes an armed store fault like put_raw.
  /// The stage is closed whatever the outcome.  kBadImageId on failure.
  ImageId finish_staged(StageId stage, std::span<const std::byte> header,
                        const ChargeFn& charge);

  /// Drop an open stage without publishing (failed or aborted commit).
  void abandon_staged(StageId stage) { staged_.erase(stage); }

  /// Open stages (leak check in tests; a quiesced store must report 0).
  [[nodiscard]] std::size_t open_stages() const { return staged_.size(); }

 protected:
  /// Persist `blob`, honouring any armed store fault and outage state.
  ImageId put_blob(std::vector<std::byte> blob);
  /// Consume the armed one-shot fault, honouring the skip counter: each
  /// call that finds a fault armed with skips remaining burns one skip and
  /// reports kNone; the call that finds no skips left takes the fault.
  [[nodiscard]] StoreFault consume_fault();
  /// Per-IO cost for `bytes`, implemented by subclasses.
  [[nodiscard]] virtual SimTime io_cost(std::uint64_t bytes) const = 0;

  std::map<ImageId, std::vector<std::byte>> blobs_;
  std::map<StageId, std::vector<std::byte>> staged_;
  ImageId next_id_ = 1;
  StageId next_stage_id_ = 1;
  StoreFault store_fault_ = StoreFault::kNone;
  std::uint64_t fault_skip_ops_ = 0;
  bool outage_ = false;
};

/// Node-local disk.  fail_node() models the machine dying: blobs become
/// unreachable (fail-stop — the data may exist but cannot be fetched).
class LocalDiskBackend final : public BlobStoreBackend {
 public:
  explicit LocalDiskBackend(sim::CostModel costs) : costs_(costs) {}

  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  [[nodiscard]] StorageLocality locality() const override {
    return StorageLocality::kLocalDisk;
  }
  [[nodiscard]] bool reachable() const override { return !failed_ && !outage_; }

  void fail_node() { failed_ = true; }
  void recover_node() { failed_ = false; }

 protected:
  [[nodiscard]] SimTime io_cost(std::uint64_t bytes) const override {
    return costs_.disk_cost(bytes);
  }

 private:
  sim::CostModel costs_;
  bool failed_ = false;
};

/// Network-attached stable storage: every transfer pays network plus remote
/// disk cost, but data survives any compute-node failure.
class RemoteBackend final : public BlobStoreBackend {
 public:
  explicit RemoteBackend(sim::CostModel costs) : costs_(costs) {}

  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  [[nodiscard]] StorageLocality locality() const override { return StorageLocality::kRemote; }
  [[nodiscard]] bool reachable() const override { return !outage_; }

 protected:
  [[nodiscard]] SimTime io_cost(std::uint64_t bytes) const override {
    return costs_.net_cost(bytes) + costs_.disk_cost(bytes);
  }

 private:
  sim::CostModel costs_;
};

/// Suspend-to-RAM: free to write, lost on power cycle.
class MemoryBackend final : public BlobStoreBackend {
 public:
  explicit MemoryBackend(sim::CostModel costs) : costs_(costs) {}

  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  [[nodiscard]] StorageLocality locality() const override {
    return StorageLocality::kVolatileMemory;
  }
  [[nodiscard]] bool reachable() const override { return !power_cycled_ && !outage_; }

  void power_cycle() {
    power_cycled_ = true;
    blobs_.clear();
  }

 protected:
  [[nodiscard]] SimTime io_cost(std::uint64_t bytes) const override {
    return costs_.mem_copy_cost(bytes);
  }

 private:
  sim::CostModel costs_;
  bool power_cycled_ = false;
};

/// No stable storage at all: store() succeeds (the image is handed to a
/// live migration path) but nothing can ever be loaded back.
class NullBackend final : public StorageBackend {
 public:
  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  bool erase(ImageId) override { return false; }
  [[nodiscard]] std::vector<ImageId> list() const override { return {}; }
  [[nodiscard]] StorageLocality locality() const override { return StorageLocality::kNone; }
  [[nodiscard]] bool reachable() const override { return false; }
  [[nodiscard]] std::uint64_t stored_bytes() const override { return 0; }

 private:
  ImageId next_id_ = 1;
};

}  // namespace ckpt::storage
