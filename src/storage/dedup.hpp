// Content-addressed deduplicating checkpoint store.
//
// The survey's incremental-checkpointing argument (§3.3, §4) stops at
// capture: the dirty trackers shrink what is *collected*, but the blob path
// still serializes and stores every image whole, so unchanged pages are
// re-written (and re-replicated) on every commit.  This module extends the
// saving to stable storage: a CheckpointImage is split into a small
// *manifest* (segment layout plus page→chunk references) and content
// *chunks* keyed by CRC64-of-content, so the durable byte volume tracks the
// dirty-page rate instead of the address-space size.
//
// Correctness of the content addressing does not rest on the hash:
//
//   * A chunk key is (crc64, size, ordinal).  A hash hit is only a
//     *candidate* — the store byte-compares the new content against the
//     cached content of every chunk in the (crc64, size) bucket and reuses a
//     chunk only on an exact match.  Genuine CRC collisions get distinct
//     ordinals, so colliding contents coexist under distinct keys.
//   * Chunk blobs are self-describing and self-validating: decoding a chunk
//     re-derives its raw content and checks it against the key's CRC64, so
//     silent media corruption surfaces as a missing chunk, never as wrong
//     page bytes.
//
// Cold chunks are delta-encoded: when a page's new content replaces a known
// predecessor version of the same (pid, page), the chunk is stored as an
// XOR + zero-run-length delta against the predecessor chunk (kept only when
// actually smaller, with bounded delta-chain depth so reconstruction cost
// stays O(depth)).
//
// Garbage collection is refcount-based and chain-aware: every committed
// manifest holds one reference on each chunk in its *closure* (the chunks
// its pages need, including transitive delta bases), erase() releases them,
// and gc() frees chunks whose refcount reached zero.  Because
// CheckpointChain::prune only erases entries outside its live_set() — the
// fallback set reconstruct_newest_surviving() may still need — GC can never
// free a chunk a surviving restart path can reach.
//
// Determinism contract: encoding walks the image in segment/page order and
// assigns ordinals and chunk identities in first-seen order, with no
// dependence on host scheduling, so the same image sequence produces
// byte-identical manifests, chunk blobs and media contents on every run and
// for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "storage/backend.hpp"

namespace ckpt::obs {
class Observer;
}

namespace ckpt::storage {

/// Content address of a chunk.  `crc` and `size` describe the raw content;
/// `ordinal` disambiguates genuine CRC64 collisions within a (crc, size)
/// bucket, assigned in first-seen order (deterministic).
struct ChunkKey {
  std::uint64_t crc = 0;
  std::uint32_t size = 0;
  std::uint32_t ordinal = 0;

  friend auto operator<=>(const ChunkKey&, const ChunkKey&) = default;
};

/// How a chunk blob encodes its raw content.
enum class ChunkEncoding : std::uint8_t {
  kRaw = 0,     ///< payload is the content itself
  kXorRle = 1,  ///< payload is zero-run-length(content XOR base-chunk content)
};

struct DedupOptions {
  /// Delta-encode a page's new content against its predecessor version.
  bool delta_encode = true;
  /// Longest delta chain (base hops) a chunk may sit on; deeper content is
  /// stored raw so reconstruction cost stays bounded.
  std::uint32_t max_delta_depth = 4;
  /// Observability sink (null = disabled): dedup.* counters, the
  /// dedup.stored_permille histogram and the dedup.chunks_live gauge.
  obs::Observer* observer = nullptr;
};

/// Cumulative accounting across the life of a ChunkTable.
struct DedupStats {
  std::uint64_t images = 0;          ///< images encoded and committed
  std::uint64_t chunks_created = 0;  ///< fresh chunks (new content)
  std::uint64_t chunks_reused = 0;   ///< page references satisfied by identity
  std::uint64_t delta_chunks = 0;    ///< fresh chunks stored as XOR+RLE deltas
  std::uint64_t bytes_logical = 0;   ///< raw page bytes referenced by images
  std::uint64_t bytes_stored = 0;    ///< manifest + fresh chunk-blob bytes
  std::uint64_t gc_chunks_freed = 0;
  std::uint64_t gc_bytes_freed = 0;

  /// Stored-over-logical in permille (1000 = no saving); 1000 when nothing
  /// was stored yet.
  [[nodiscard]] std::uint64_t stored_permille() const {
    return bytes_logical == 0 ? 1000 : bytes_stored * 1000 / bytes_logical;
  }
};

/// gc() result: chunks whose refcount reached zero and were reclaimed.
/// `bytes_freed` counts encoded chunk-blob bytes once per unique chunk
/// (replicated stores free that amount on each replica holding a copy).
struct GcReport {
  std::uint64_t chunks_freed = 0;
  std::uint64_t bytes_freed = 0;
  std::uint64_t chunks_live = 0;
};

/// Backends that stage refcounted content chunks and can reclaim dead ones.
/// CheckpointEngine (EngineOptions::prune_after_full) runs gc() after the
/// chain pruned, so dropping old sequence points actually frees media bytes.
class ChunkReclaimable {
 public:
  virtual ~ChunkReclaimable() = default;
  /// Free every chunk no committed image references.  Charges nothing by
  /// default (erase is free on the simulated media); deterministic order.
  virtual GcReport gc(const ChargeFn& charge) = 0;
};

/// The chunk identity engine shared by DedupStore and ReplicatedStore's
/// dedup mode: splits images into manifest + chunks, dedups by
/// hash-then-byte-compare, delta-encodes against predecessor page versions,
/// and tracks refcounts for GC.  Host-side bookkeeping only — it never
/// touches a backend; callers stage the returned blobs and commit/abort.
class ChunkTable {
 public:
  explicit ChunkTable(DedupOptions options) : options_(options) {}

  /// A chunk that must be written to media (content first seen by this
  /// encode).  `blob` is the canonical encoded form; `blob_crc` its CRC64
  /// (the read-back verification value).
  struct FreshChunk {
    ChunkKey key;
    std::vector<std::byte> blob;
    std::uint64_t blob_crc = 0;
  };

  /// encode() result: everything a backend needs to stage one image.
  /// `refs` is the image's chunk closure (unique, first-touch order,
  /// including transitive delta bases); `fresh` the subset not yet on any
  /// media.  Pending until commit() or abort().
  struct EncodedImage {
    std::vector<std::byte> manifest;
    std::uint64_t manifest_crc = 0;
    std::vector<ChunkKey> refs;
    std::vector<FreshChunk> fresh;
    std::uint64_t logical_bytes = 0;  ///< raw page bytes the image references
    std::uint64_t stored_bytes = 0;   ///< manifest + fresh chunk-blob bytes
    std::uint64_t reused_refs = 0;    ///< page references satisfied by identity
    std::uint64_t delta_fresh = 0;    ///< fresh chunks that delta-encoded
    /// (pid, page) → chunk now holding that page's newest content; applied
    /// to the predecessor map at commit() so the *next* image deltas against
    /// this one.
    std::vector<std::pair<std::pair<sim::Pid, sim::PageNum>, ChunkKey>> successors;
  };

  /// Deterministically split, dedup and delta-encode `image`.  Fresh chunks
  /// enter the identity table as *pending*: visible for intra-image reuse,
  /// removed again by abort().
  EncodedImage encode(const CheckpointImage& image);

  /// The staged image is durable: pin its references (one refcount per
  /// closure chunk), finalize pending chunks, advance the predecessor map.
  void commit(const EncodedImage& enc);

  /// The staged image was rolled back: forget its pending chunks (and their
  /// ordinals) as if encode() never ran.  Must be called with no commit()
  /// in between.
  void abort(const EncodedImage& enc);

  /// Release an erased image's references (the closure recorded at commit).
  void release(const std::vector<ChunkKey>& refs);

  /// A freed chunk: reclaimed key plus its encoded blob size.
  struct FreedChunk {
    ChunkKey key;
    std::uint64_t blob_bytes = 0;
  };

  /// Remove every chunk with refcount zero (deterministic key order) and
  /// return them so the caller can erase the media blobs.
  std::vector<FreedChunk> collect_garbage();

  /// Canonical encoded blob of a live chunk (for staging on a replica that
  /// lacks it, and for scrub repair verification).  Throws on unknown key.
  [[nodiscard]] std::vector<std::byte> blob_copy(const ChunkKey& key) const;
  [[nodiscard]] std::uint64_t blob_crc(const ChunkKey& key) const;
  [[nodiscard]] std::uint64_t blob_bytes(const ChunkKey& key) const;
  [[nodiscard]] bool contains(const ChunkKey& key) const;
  /// Live chunk keys in deterministic (key) order — the scrub audit set.
  [[nodiscard]] std::vector<ChunkKey> live_keys() const;
  [[nodiscard]] std::uint64_t live_count() const { return chunks_.size(); }
  [[nodiscard]] const DedupStats& stats() const { return stats_; }

  /// Fetch the *encoded* blob for a chunk key; `expected_blob_crc` is the
  /// value the manifest recorded at commit, so fetchers can validate (and
  /// fail over between replicas) without decoding.  nullopt = unavailable.
  using ChunkFetch = std::function<std::optional<std::vector<std::byte>>(
      const ChunkKey& key, std::uint64_t expected_blob_crc)>;

  /// Rebuild an image from its manifest blob and a chunk fetcher.  Pure
  /// function of media content: validates the manifest envelope CRC, each
  /// fetched blob's CRC and each decoded chunk's raw-content CRC, resolving
  /// delta bases recursively (each unique chunk fetched once).  nullopt on
  /// any missing or corrupt piece — a dedup image is only as durable as its
  /// closure, which is why ReplicatedStore is the intended durable substrate.
  static std::optional<CheckpointImage> decode(std::span<const std::byte> manifest,
                                               const ChunkFetch& fetch);

 private:
  struct Chunk {
    std::vector<std::byte> raw;   ///< content cache (byte-compare + delta base)
    std::vector<std::byte> blob;  ///< canonical encoded form
    std::uint64_t blob_crc = 0;
    std::uint32_t refs = 0;   ///< committed manifests holding this chunk
    std::uint32_t depth = 0;  ///< delta hops to a raw chunk
    std::optional<ChunkKey> base;  ///< delta base (closure walk), raw if absent
    bool pending = false;     ///< created by an uncommitted encode()
  };
  struct Bucket {
    std::vector<ChunkKey> keys;
    std::uint32_t next_ordinal = 0;  ///< never reused for committed chunks
  };

  DedupOptions options_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, Bucket> buckets_;
  std::map<ChunkKey, Chunk> chunks_;
  /// (pid, page) → chunk of that page's newest committed content.
  std::map<std::pair<sim::Pid, sim::PageNum>, ChunkKey> predecessor_;
  DedupStats stats_;
};

/// StorageBackend adapter: content-addressed store over one blob "media"
/// backend.  store() writes only the manifest and the chunks whose content
/// the media has not seen; load() reads the manifest plus each unique
/// referenced chunk (each charged once); erase() releases references and
/// gc() reclaims unreferenced chunk blobs.  A failed store rolls every
/// staged blob back — the media never holds a half-visible image.
class DedupStore final : public StorageBackend, public ChunkReclaimable {
 public:
  explicit DedupStore(BlobStoreBackend* media, DedupOptions options = {});

  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  bool erase(ImageId id) override;
  [[nodiscard]] std::vector<ImageId> list() const override;
  [[nodiscard]] StorageLocality locality() const override;
  [[nodiscard]] bool reachable() const override;
  /// Durable media bytes, including not-yet-collected garbage chunks.
  [[nodiscard]] std::uint64_t stored_bytes() const override;

  GcReport gc(const ChargeFn& charge) override;

  [[nodiscard]] const DedupStats& stats() const { return table_.stats(); }
  [[nodiscard]] std::uint64_t chunk_count() const { return table_.live_count(); }
  [[nodiscard]] BlobStoreBackend* media() const { return media_; }

 private:
  struct Entry {
    ImageId manifest = kBadImageId;     ///< media id of the manifest blob
    std::vector<ChunkKey> refs;         ///< closure pinned at commit
  };

  BlobStoreBackend* media_;
  ChunkTable table_;
  obs::Observer* observer_ = nullptr;
  std::map<ChunkKey, ImageId> placements_;  ///< chunk → media blob id
  std::map<ImageId, Entry> images_;
  ImageId next_id_ = 1;
};

}  // namespace ckpt::storage
