#include "storage/backend.hpp"

#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::storage {

const char* to_string(StorageLocality locality) {
  switch (locality) {
    case StorageLocality::kLocalDisk: return "local";
    case StorageLocality::kRemote: return "remote";
    case StorageLocality::kVolatileMemory: return "memory";
    case StorageLocality::kNone: return "none";
  }
  return "?";
}

const char* to_string(StoreFault fault) {
  switch (fault) {
    case StoreFault::kNone: return "none";
    case StoreFault::kReject: return "reject";
    case StoreFault::kTornWrite: return "torn-write";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// BlobStoreBackend
// ---------------------------------------------------------------------------

StoreFault BlobStoreBackend::consume_fault() {
  if (store_fault_ == StoreFault::kNone) return StoreFault::kNone;
  if (fault_skip_ops_ > 0) {
    --fault_skip_ops_;
    return StoreFault::kNone;
  }
  const StoreFault fault = store_fault_;
  store_fault_ = StoreFault::kNone;
  return fault;
}

ImageId BlobStoreBackend::put_blob(std::vector<std::byte> blob) {
  if (outage_) return kBadImageId;
  const StoreFault fault = consume_fault();
  if (fault == StoreFault::kReject) return kBadImageId;
  if (fault == StoreFault::kTornWrite) {
    // Crash mid-write: only a prefix of the blob reaches the media.  The
    // id is handed out as if the store succeeded — exactly the silent
    // failure the CRC at load time must catch.
    blob.resize(blob.size() > 1 ? blob.size() - blob.size() / 3 - 1 : 0);
  }
  const ImageId id = next_id_++;
  blobs_.emplace(id, std::move(blob));
  return id;
}

BlobStoreBackend::StageId BlobStoreBackend::begin_staged(const ChargeFn& charge) {
  if (!reachable()) return kBadStageId;
  if (charge) charge(io_cost(0));
  const StageId id = next_stage_id_++;
  staged_.emplace(id, std::vector<std::byte>{});
  return id;
}

bool BlobStoreBackend::append_staged(StageId stage, std::span<const std::byte> chunk,
                                     const ChargeFn& charge) {
  auto it = staged_.find(stage);
  if (it == staged_.end()) return false;
  if (!reachable()) return false;
  if (charge) charge(io_cost(chunk.size()) - io_cost(0));
  const StoreFault fault = consume_fault();
  if (fault == StoreFault::kReject) return false;
  std::size_t take = chunk.size();
  if (fault == StoreFault::kTornWrite) {
    // Crash mid-append: a prefix of this chunk reaches the media and the
    // append *reports success* — the damage stays invisible until the
    // seal-time CRC read-back.
    take = chunk.size() > 1 ? chunk.size() - chunk.size() / 3 - 1 : 0;
  }
  it->second.insert(it->second.end(), chunk.begin(), chunk.begin() + take);
  return true;
}

ImageId BlobStoreBackend::finish_staged(StageId stage, std::span<const std::byte> header,
                                        const ChargeFn& charge) {
  auto it = staged_.find(stage);
  if (it == staged_.end()) return kBadImageId;
  std::vector<std::byte> body = std::move(it->second);
  staged_.erase(it);
  if (!reachable()) return kBadImageId;
  if (charge) charge(io_cost(header.size()));
  std::vector<std::byte> blob;
  blob.reserve(header.size() + body.size());
  blob.insert(blob.end(), header.begin(), header.end());
  blob.insert(blob.end(), body.begin(), body.end());
  return put_blob(std::move(blob));
}

std::optional<std::vector<std::byte>> BlobStoreBackend::read_blob(
    ImageId id, const ChargeFn& charge) const {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  return it->second;
}

std::optional<std::uint64_t> BlobStoreBackend::blob_crc64(ImageId id,
                                                          const ChargeFn& charge) const {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  return util::crc64(it->second);
}

ImageId BlobStoreBackend::put_raw(std::vector<std::byte> blob, const ChargeFn& charge) {
  if (!reachable()) return kBadImageId;
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

bool BlobStoreBackend::corrupt_blob(ImageId id, std::uint64_t offset, std::uint64_t count,
                                    std::byte mask) {
  auto it = blobs_.find(id);
  if (it == blobs_.end() || it->second.empty() || mask == std::byte{0}) return false;
  auto& blob = it->second;
  for (std::uint64_t i = 0; i < count; ++i) {
    blob[(offset + i) % blob.size()] ^= mask;
  }
  return true;
}

ImageId BlobStoreBackend::newest_id() const {
  return blobs_.empty() ? kBadImageId : blobs_.rbegin()->first;
}

std::optional<CheckpointImage> BlobStoreBackend::load(ImageId id, const ChargeFn& charge) {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  try {
    return CheckpointImage::deserialize(it->second);
  } catch (const ImageCorrupt&) {
    return std::nullopt;
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

bool BlobStoreBackend::erase(ImageId id) { return blobs_.erase(id) != 0; }

std::vector<ImageId> BlobStoreBackend::list() const {
  std::vector<ImageId> out;
  out.reserve(blobs_.size());
  for (const auto& [id, blob] : blobs_) out.push_back(id);
  return out;
}

std::uint64_t BlobStoreBackend::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, blob] : blobs_) total += blob.size();
  return total;
}

// ---------------------------------------------------------------------------
// LocalDiskBackend
// ---------------------------------------------------------------------------

ImageId LocalDiskBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  if (failed_) return kBadImageId;
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

std::optional<CheckpointImage> LocalDiskBackend::load(ImageId id, const ChargeFn& charge) {
  if (failed_) return std::nullopt;  // node down: data unreachable
  return BlobStoreBackend::load(id, charge);
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

ImageId RemoteBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

ImageId MemoryBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  if (power_cycled_) return kBadImageId;
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

// ---------------------------------------------------------------------------
// NullBackend
// ---------------------------------------------------------------------------

ImageId NullBackend::store(const CheckpointImage& image, const ChargeFn&) {
  (void)image;
  return next_id_++;  // accepted, immediately forgotten
}

std::optional<CheckpointImage> NullBackend::load(ImageId, const ChargeFn&) {
  return std::nullopt;
}

}  // namespace ckpt::storage
