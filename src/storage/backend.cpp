#include "storage/backend.hpp"

#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::storage {

const char* to_string(StorageLocality locality) {
  switch (locality) {
    case StorageLocality::kLocalDisk: return "local";
    case StorageLocality::kRemote: return "remote";
    case StorageLocality::kVolatileMemory: return "memory";
    case StorageLocality::kNone: return "none";
  }
  return "?";
}

const char* to_string(StoreFault fault) {
  switch (fault) {
    case StoreFault::kNone: return "none";
    case StoreFault::kReject: return "reject";
    case StoreFault::kTornWrite: return "torn-write";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// BlobStoreBackend
// ---------------------------------------------------------------------------

ImageId BlobStoreBackend::put_blob(std::vector<std::byte> blob) {
  if (outage_) return kBadImageId;
  const StoreFault fault = store_fault_;
  store_fault_ = StoreFault::kNone;
  if (fault == StoreFault::kReject) return kBadImageId;
  if (fault == StoreFault::kTornWrite) {
    // Crash mid-write: only a prefix of the blob reaches the media.  The
    // id is handed out as if the store succeeded — exactly the silent
    // failure the CRC at load time must catch.
    blob.resize(blob.size() > 1 ? blob.size() - blob.size() / 3 - 1 : 0);
  }
  const ImageId id = next_id_++;
  blobs_.emplace(id, std::move(blob));
  return id;
}

std::optional<std::vector<std::byte>> BlobStoreBackend::read_blob(
    ImageId id, const ChargeFn& charge) const {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  return it->second;
}

std::optional<std::uint64_t> BlobStoreBackend::blob_crc64(ImageId id,
                                                          const ChargeFn& charge) const {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  return util::crc64(it->second);
}

ImageId BlobStoreBackend::put_raw(std::vector<std::byte> blob, const ChargeFn& charge) {
  if (!reachable()) return kBadImageId;
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

bool BlobStoreBackend::corrupt_blob(ImageId id, std::uint64_t offset, std::uint64_t count,
                                    std::byte mask) {
  auto it = blobs_.find(id);
  if (it == blobs_.end() || it->second.empty() || mask == std::byte{0}) return false;
  auto& blob = it->second;
  for (std::uint64_t i = 0; i < count; ++i) {
    blob[(offset + i) % blob.size()] ^= mask;
  }
  return true;
}

ImageId BlobStoreBackend::newest_id() const {
  return blobs_.empty() ? kBadImageId : blobs_.rbegin()->first;
}

std::optional<CheckpointImage> BlobStoreBackend::load(ImageId id, const ChargeFn& charge) {
  if (!reachable()) return std::nullopt;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  if (charge) charge(io_cost(it->second.size()));
  try {
    return CheckpointImage::deserialize(it->second);
  } catch (const ImageCorrupt&) {
    return std::nullopt;
  } catch (const util::SerializeError&) {
    return std::nullopt;
  }
}

bool BlobStoreBackend::erase(ImageId id) { return blobs_.erase(id) != 0; }

std::vector<ImageId> BlobStoreBackend::list() const {
  std::vector<ImageId> out;
  out.reserve(blobs_.size());
  for (const auto& [id, blob] : blobs_) out.push_back(id);
  return out;
}

std::uint64_t BlobStoreBackend::stored_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, blob] : blobs_) total += blob.size();
  return total;
}

// ---------------------------------------------------------------------------
// LocalDiskBackend
// ---------------------------------------------------------------------------

ImageId LocalDiskBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  if (failed_) return kBadImageId;
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

std::optional<CheckpointImage> LocalDiskBackend::load(ImageId id, const ChargeFn& charge) {
  if (failed_) return std::nullopt;  // node down: data unreachable
  return BlobStoreBackend::load(id, charge);
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

ImageId RemoteBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

// ---------------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------------

ImageId MemoryBackend::store(const CheckpointImage& image, const ChargeFn& charge) {
  if (power_cycled_) return kBadImageId;
  auto blob = image.serialize();
  if (charge) charge(io_cost(blob.size()));
  return put_blob(std::move(blob));
}

// ---------------------------------------------------------------------------
// NullBackend
// ---------------------------------------------------------------------------

ImageId NullBackend::store(const CheckpointImage& image, const ChargeFn&) {
  (void)image;
  return next_id_++;  // accepted, immediately forgotten
}

std::optional<CheckpointImage> NullBackend::load(ImageId, const ChargeFn&) {
  return std::nullopt;
}

}  // namespace ckpt::storage
