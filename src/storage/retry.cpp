#include "storage/retry.hpp"

#include <algorithm>

namespace ckpt::storage {

RetryPolicy RetryPolicy::bounded(std::uint64_t retries, SimTime deadline) {
  RetryPolicy policy;
  policy.max_attempts = retries + 1;
  policy.deadline = deadline;
  return policy;
}

Retrier::Retrier(const RetryPolicy& policy, std::uint64_t salt)
    : policy_(policy), rng_(policy.jitter_seed ^ (salt * 0x9E3779B97F4A7C15ULL)) {}

std::optional<SimTime> Retrier::next_delay() {
  if (retries_ + 1 >= policy_.max_attempts) return std::nullopt;
  if (policy_.deadline != 0 && delayed_ >= policy_.deadline) return std::nullopt;

  // backoff = initial * multiplier^retries, capped at max_backoff.
  double backoff = static_cast<double>(policy_.initial_backoff);
  for (std::uint64_t i = 0; i < retries_; ++i) {
    backoff *= policy_.multiplier;
    if (backoff >= static_cast<double>(policy_.max_backoff)) break;
  }
  SimTime delay = std::min<SimTime>(policy_.max_backoff, static_cast<SimTime>(backoff));

  if (policy_.jitter > 0.0 && delay > 0) {
    const double cut = policy_.jitter * rng_.next_double();
    delay -= static_cast<SimTime>(static_cast<double>(delay) * cut);
  }
  if (policy_.deadline != 0) {
    delay = std::min(delay, policy_.deadline - delayed_);
  }

  ++retries_;
  delayed_ += delay;
  return delay;
}

}  // namespace ckpt::storage
