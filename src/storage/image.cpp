#include "storage/image.hpp"

#include "util/crc64.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {

using util::Deserializer;
using util::Serializer;

const char* to_string(ImageKind kind) {
  return kind == ImageKind::kFull ? "full" : "incremental";
}

std::uint64_t CheckpointImage::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments) {
    for (const auto& page : segment.pages) total += page.data.size();
  }
  for (const auto& file : files) {
    if (file.contents.has_value()) total += file.contents->size();
  }
  return total;
}

std::uint64_t CheckpointImage::page_count() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments) total += segment.pages.size();
  return total;
}

namespace {

// Encoders are written against a generic sink so the same code drives the
// byte emitter (Serializer), the exact-size pass (SizeCounter) and the
// sharded parallel path — they cannot drift apart.

template <typename Sink>
void encode_vma(Sink& s, const sim::Vma& vma) {
  s.put(vma.first_page);
  s.put(vma.page_count);
  s.put(vma.prot);
  s.put(vma.kind);
  s.put_string(vma.name);
}

sim::Vma decode_vma(Deserializer& d) {
  sim::Vma vma;
  vma.first_page = d.get<sim::PageNum>();
  vma.page_count = d.get<std::uint64_t>();
  vma.prot = d.get<std::uint8_t>();
  vma.kind = d.get<sim::VmaKind>();
  vma.name = d.get_string();
  return vma;
}

template <typename Sink>
void encode_regs(Sink& s, const sim::Registers& regs) {
  s.put(regs.pc);
  s.put(regs.sp);
  for (std::uint64_t g : regs.gpr) s.put(g);
}

/// Everything preceding the segment payloads, including the segment-count
/// prefix — the body is prelude ++ segment* ++ trailer.
template <typename Sink>
void encode_prelude(Sink& s, const CheckpointImage& image) {
  s.put(image.kind);
  s.put(image.sequence);
  s.put(image.parent_sequence);
  s.put(image.pid);
  s.put_string(image.process_name);
  s.put_string(image.hostname);
  s.put(image.taken_at);
  s.put_string(image.guest.type_name);
  s.put_bytes(image.guest.config);

  s.put_vector(image.threads, [](auto& s2, const ThreadImage& t) {
    s2.put(t.tid);
    encode_regs(s2, t.regs);
  });

  s.template put<std::uint64_t>(image.segments.size());
}

template <typename Sink>
void encode_segment(Sink& s, const MemorySegmentImage& seg) {
  encode_vma(s, seg.vma);
  s.put_vector(seg.pages, [](auto& s2, const PageImage& page) {
    s2.put(page.page);
    s2.put(page.offset);
    s2.put_bytes(page.data);
  });
}

template <typename Sink>
void encode_trailer(Sink& s, const CheckpointImage& image) {
  s.put(image.brk);
  s.put(image.heap_base);
  s.put(image.mmap_next);
  s.put(image.sig_pending);
  s.put(image.sig_mask);
  s.put_vector(image.sig_dispositions, [](auto& s2, std::uint8_t d) { s2.put(d); });

  s.put_vector(image.files, [](auto& s2, const FileDescriptorImage& f) {
    s2.put(f.fd);
    s2.put(f.kind);
    s2.put_string(f.path);
    s2.put(f.offset);
    s2.put(f.flags);
    s2.template put<std::uint8_t>(f.was_deleted ? 1 : 0);
    s2.template put<std::uint8_t>(f.contents.has_value() ? 1 : 0);
    if (f.contents.has_value()) s2.put_bytes(*f.contents);
  });

  s.put_vector(image.bound_ports, [](auto& s2, std::uint16_t p) { s2.put(p); });
}

/// Exact body size (without the 12-byte version+CRC envelope).
std::uint64_t body_size(const CheckpointImage& image) {
  util::SizeCounter counter;
  encode_prelude(counter, image);
  for (const MemorySegmentImage& seg : image.segments) encode_segment(counter, seg);
  encode_trailer(counter, image);
  return counter.size();
}

constexpr std::size_t kEnvelopeBytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);

sim::Registers decode_regs(Deserializer& d) {
  sim::Registers regs;
  regs.pc = d.get<std::uint64_t>();
  regs.sp = d.get<std::uint64_t>();
  for (std::uint64_t& g : regs.gpr) g = d.get<std::uint64_t>();
  return regs;
}

}  // namespace

void encode_image_prelude(Serializer& s, const CheckpointImage& image) {
  encode_prelude(s, image);
}

void encode_image_trailer(Serializer& s, const CheckpointImage& image) {
  encode_trailer(s, image);
}

void encode_image_vma(Serializer& s, const sim::Vma& vma) { encode_vma(s, vma); }

sim::Vma decode_image_vma(Deserializer& d) { return decode_vma(d); }

std::uint64_t decode_image_prelude(Deserializer& d, CheckpointImage& image) {
  image.kind = d.get<ImageKind>();
  image.sequence = d.get<std::uint64_t>();
  image.parent_sequence = d.get<std::uint64_t>();
  image.pid = d.get<sim::Pid>();
  image.process_name = d.get_string();
  image.hostname = d.get_string();
  image.taken_at = d.get<SimTime>();
  image.guest.type_name = d.get_string();
  image.guest.config = d.get_bytes();

  image.threads = d.get_vector<ThreadImage>([](Deserializer& d2) {
    ThreadImage t;
    t.tid = d2.get<sim::Tid>();
    t.regs = decode_regs(d2);
    return t;
  });

  return d.get<std::uint64_t>();
}

void decode_image_trailer(Deserializer& d, CheckpointImage& image) {
  image.brk = d.get<sim::VAddr>();
  image.heap_base = d.get<sim::VAddr>();
  image.mmap_next = d.get<sim::VAddr>();
  image.sig_pending = d.get<std::uint64_t>();
  image.sig_mask = d.get<std::uint64_t>();
  image.sig_dispositions =
      d.get_vector<std::uint8_t>([](Deserializer& d2) { return d2.get<std::uint8_t>(); });

  image.files = d.get_vector<FileDescriptorImage>([](Deserializer& d2) {
    FileDescriptorImage f;
    f.fd = d2.get<sim::Fd>();
    f.kind = d2.get<sim::FileKind>();
    f.path = d2.get_string();
    f.offset = d2.get<std::uint64_t>();
    f.flags = d2.get<std::uint32_t>();
    f.was_deleted = d2.get<std::uint8_t>() != 0;
    if (d2.get<std::uint8_t>() != 0) f.contents = d2.get_bytes();
    return f;
  });

  image.bound_ports =
      d.get_vector<std::uint16_t>([](Deserializer& d2) { return d2.get<std::uint16_t>(); });
}

std::uint64_t CheckpointImage::serialized_size() const {
  return kEnvelopeBytes + body_size(*this);
}

std::vector<std::byte> CheckpointImage::serialize() const {
  const std::uint64_t body_bytes = body_size(*this);

  Serializer body(util::BufferPool::shared().acquire());
  body.reserve(body_bytes);
  encode_prelude(body, *this);
  for (const MemorySegmentImage& seg : segments) encode_segment(body, seg);
  encode_trailer(body, *this);

  // Envelope: version | crc(body) | body
  Serializer out;
  out.reserve(kEnvelopeBytes + body.size());
  out.put(kFormatVersion);
  out.put(util::crc64(body.bytes()));
  out.put_raw(body.bytes());
  util::BufferPool::shared().release(std::move(body).take());
  return std::move(out).take();
}

std::vector<std::byte> CheckpointImage::serialize(util::ThreadPool& pool) const {
  // Sharding only pays when there is more than one segment to fan out.
  if (segments.size() < 2 || pool.worker_count() < 2) return serialize();

  Serializer prelude(util::BufferPool::shared().acquire());
  encode_prelude(prelude, *this);
  Serializer trailer(util::BufferPool::shared().acquire());
  encode_trailer(trailer, *this);

  // Per-segment shards: encoded and CRC64'd concurrently, joined in segment
  // order below, so the result never depends on worker scheduling.
  struct Shard {
    std::vector<std::byte> bytes;
    std::uint64_t crc = 0;
  };
  std::vector<Shard> shards(segments.size());
  pool.run(segments.size(), [&](std::size_t i) {
    util::SizeCounter counter;
    encode_segment(counter, segments[i]);
    Serializer s(util::BufferPool::shared().acquire());
    s.reserve(counter.size());
    encode_segment(s, segments[i]);
    shards[i].bytes = std::move(s).take();
    shards[i].crc = util::crc64(shards[i].bytes);
  });

  std::uint64_t total = prelude.size() + trailer.size();
  std::uint64_t body_crc = util::crc64(prelude.bytes());
  for (const Shard& shard : shards) {
    total += shard.bytes.size();
    body_crc = util::crc64_combine(body_crc, shard.crc, shard.bytes.size());
  }
  body_crc = util::crc64(trailer.bytes(), body_crc);

  Serializer out;
  out.reserve(kEnvelopeBytes + total);
  out.put(kFormatVersion);
  out.put(body_crc);
  out.put_raw(prelude.bytes());
  util::BufferPool::shared().release(std::move(prelude).take());
  for (Shard& shard : shards) {
    out.put_raw(shard.bytes);
    util::BufferPool::shared().release(std::move(shard.bytes));
  }
  out.put_raw(trailer.bytes());
  util::BufferPool::shared().release(std::move(trailer).take());
  return std::move(out).take();
}

CheckpointImage CheckpointImage::deserialize(std::span<const std::byte> bytes) {
  Deserializer env(bytes);
  const auto version = env.get<std::uint32_t>();
  if (version != kFormatVersion) {
    throw ImageCorrupt("unsupported image version " + std::to_string(version));
  }
  const auto expected_crc = env.get<std::uint64_t>();
  const auto body_bytes = env.get_raw(env.remaining());
  if (util::crc64(body_bytes) != expected_crc) {
    throw ImageCorrupt("checkpoint image CRC mismatch");
  }

  Deserializer d(body_bytes);
  CheckpointImage image;
  const std::uint64_t segment_count = decode_image_prelude(d, image);

  image.segments.reserve(segment_count);
  for (std::uint64_t i = 0; i < segment_count; ++i) {
    MemorySegmentImage seg;
    seg.vma = decode_vma(d);
    seg.pages = d.get_vector<PageImage>([](Deserializer& d3) {
      PageImage page;
      page.page = d3.get<sim::PageNum>();
      page.offset = d3.get<std::uint32_t>();
      page.data = d3.get_bytes();
      return page;
    });
    image.segments.push_back(std::move(seg));
  }

  decode_image_trailer(d, image);
  return image;
}

}  // namespace ckpt::storage
