#include "storage/image.hpp"

#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace ckpt::storage {

using util::Deserializer;
using util::Serializer;

const char* to_string(ImageKind kind) {
  return kind == ImageKind::kFull ? "full" : "incremental";
}

std::uint64_t CheckpointImage::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments) {
    for (const auto& page : segment.pages) total += page.data.size();
  }
  for (const auto& file : files) {
    if (file.contents.has_value()) total += file.contents->size();
  }
  return total;
}

std::uint64_t CheckpointImage::page_count() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments) total += segment.pages.size();
  return total;
}

namespace {

void encode_vma(Serializer& s, const sim::Vma& vma) {
  s.put(vma.first_page);
  s.put(vma.page_count);
  s.put(vma.prot);
  s.put(vma.kind);
  s.put_string(vma.name);
}

sim::Vma decode_vma(Deserializer& d) {
  sim::Vma vma;
  vma.first_page = d.get<sim::PageNum>();
  vma.page_count = d.get<std::uint64_t>();
  vma.prot = d.get<std::uint8_t>();
  vma.kind = d.get<sim::VmaKind>();
  vma.name = d.get_string();
  return vma;
}

void encode_regs(Serializer& s, const sim::Registers& regs) {
  s.put(regs.pc);
  s.put(regs.sp);
  for (std::uint64_t g : regs.gpr) s.put(g);
}

sim::Registers decode_regs(Deserializer& d) {
  sim::Registers regs;
  regs.pc = d.get<std::uint64_t>();
  regs.sp = d.get<std::uint64_t>();
  for (std::uint64_t& g : regs.gpr) g = d.get<std::uint64_t>();
  return regs;
}

}  // namespace

std::vector<std::byte> CheckpointImage::serialize() const {
  Serializer body;
  body.put(kind);
  body.put(sequence);
  body.put(parent_sequence);
  body.put(pid);
  body.put_string(process_name);
  body.put_string(hostname);
  body.put(taken_at);
  body.put_string(guest.type_name);
  body.put_bytes(guest.config);

  body.put_vector(threads, [](Serializer& s, const ThreadImage& t) {
    s.put(t.tid);
    encode_regs(s, t.regs);
  });

  body.put_vector(segments, [](Serializer& s, const MemorySegmentImage& seg) {
    encode_vma(s, seg.vma);
    s.put_vector(seg.pages, [](Serializer& s2, const PageImage& page) {
      s2.put(page.page);
      s2.put(page.offset);
      s2.put_bytes(page.data);
    });
  });

  body.put(brk);
  body.put(heap_base);
  body.put(mmap_next);
  body.put(sig_pending);
  body.put(sig_mask);
  body.put_vector(sig_dispositions, [](Serializer& s, std::uint8_t d) { s.put(d); });

  body.put_vector(files, [](Serializer& s, const FileDescriptorImage& f) {
    s.put(f.fd);
    s.put(f.kind);
    s.put_string(f.path);
    s.put(f.offset);
    s.put(f.flags);
    s.put<std::uint8_t>(f.was_deleted ? 1 : 0);
    s.put<std::uint8_t>(f.contents.has_value() ? 1 : 0);
    if (f.contents.has_value()) s.put_bytes(*f.contents);
  });

  body.put_vector(bound_ports, [](Serializer& s, std::uint16_t p) { s.put(p); });

  // Envelope: version | crc(body) | body
  Serializer out;
  out.put(kFormatVersion);
  out.put(util::crc64(body.bytes()));
  out.put_raw(body.bytes());
  return std::move(out).take();
}

CheckpointImage CheckpointImage::deserialize(std::span<const std::byte> bytes) {
  Deserializer env(bytes);
  const auto version = env.get<std::uint32_t>();
  if (version != kFormatVersion) {
    throw ImageCorrupt("unsupported image version " + std::to_string(version));
  }
  const auto expected_crc = env.get<std::uint64_t>();
  const auto body_bytes = env.get_raw(env.remaining());
  if (util::crc64(body_bytes) != expected_crc) {
    throw ImageCorrupt("checkpoint image CRC mismatch");
  }

  Deserializer d(body_bytes);
  CheckpointImage image;
  image.kind = d.get<ImageKind>();
  image.sequence = d.get<std::uint64_t>();
  image.parent_sequence = d.get<std::uint64_t>();
  image.pid = d.get<sim::Pid>();
  image.process_name = d.get_string();
  image.hostname = d.get_string();
  image.taken_at = d.get<SimTime>();
  image.guest.type_name = d.get_string();
  image.guest.config = d.get_bytes();

  image.threads = d.get_vector<ThreadImage>([](Deserializer& d2) {
    ThreadImage t;
    t.tid = d2.get<sim::Tid>();
    t.regs = decode_regs(d2);
    return t;
  });

  image.segments = d.get_vector<MemorySegmentImage>([](Deserializer& d2) {
    MemorySegmentImage seg;
    seg.vma = decode_vma(d2);
    seg.pages = d2.get_vector<PageImage>([](Deserializer& d3) {
      PageImage page;
      page.page = d3.get<sim::PageNum>();
      page.offset = d3.get<std::uint32_t>();
      page.data = d3.get_bytes();
      return page;
    });
    return seg;
  });

  image.brk = d.get<sim::VAddr>();
  image.heap_base = d.get<sim::VAddr>();
  image.mmap_next = d.get<sim::VAddr>();
  image.sig_pending = d.get<std::uint64_t>();
  image.sig_mask = d.get<std::uint64_t>();
  image.sig_dispositions =
      d.get_vector<std::uint8_t>([](Deserializer& d2) { return d2.get<std::uint8_t>(); });

  image.files = d.get_vector<FileDescriptorImage>([](Deserializer& d2) {
    FileDescriptorImage f;
    f.fd = d2.get<sim::Fd>();
    f.kind = d2.get<sim::FileKind>();
    f.path = d2.get_string();
    f.offset = d2.get<std::uint64_t>();
    f.flags = d2.get<std::uint32_t>();
    f.was_deleted = d2.get<std::uint8_t>() != 0;
    if (d2.get<std::uint8_t>() != 0) f.contents = d2.get_bytes();
    return f;
  });

  image.bound_ports =
      d.get_vector<std::uint16_t>([](Deserializer& d2) { return d2.get<std::uint16_t>(); });

  return image;
}

}  // namespace ckpt::storage
