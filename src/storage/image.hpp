// Checkpoint image format.
//
// A CheckpointImage is the serializable record of everything needed to
// rebuild a process: VMA layout with page payloads, per-thread registers,
// the descriptor table (with optional saved file contents, per UCLiK),
// signal state, heap bounds and the guest's program identity.  Incremental
// images carry only the pages selected by a dirty tracker and name their
// parent; CheckpointChain (chain.hpp) reassembles full state.
//
// The serialized form is versioned and CRC64-protected; storage backends
// verify integrity at load and surface corruption as a distinct error.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/types.hpp"
#include "util/units.hpp"

namespace ckpt::util {
class ThreadPool;
class Serializer;
class Deserializer;
}

namespace ckpt::storage {

enum class ImageKind : std::uint8_t { kFull, kIncremental };

const char* to_string(ImageKind kind);

/// A (possibly partial) page payload.  Page-granularity trackers store full
/// pages (offset 0, kPageSize bytes); probabilistic block trackers [23] and
/// hardware cache-line trackers store sub-page ranges — the finer
/// granularity is the point of those techniques.
struct PageImage {
  sim::PageNum page = 0;
  std::uint32_t offset = 0;  ///< byte offset within the page
  std::vector<std::byte> data;
};

struct MemorySegmentImage {
  sim::Vma vma;
  std::vector<PageImage> pages;  ///< subset of the VMA's pages (all for full)
};

struct FileDescriptorImage {
  sim::Fd fd = sim::kBadFd;
  sim::FileKind kind = sim::FileKind::kRegular;
  std::string path;
  std::uint64_t offset = 0;
  std::uint32_t flags = 0;
  bool was_deleted = false;  ///< unlinked-while-open at checkpoint time
  /// Optional snapshot of the file's contents (UCLiK-style file-content
  /// preservation; PsncR/C's always-include-open-files policy).
  std::optional<std::vector<std::byte>> contents;
};

struct ThreadImage {
  sim::Tid tid = 0;
  sim::Registers regs;
};

struct CheckpointImage {
  static constexpr std::uint32_t kFormatVersion = 1;

  // --- Header ---------------------------------------------------------------
  ImageKind kind = ImageKind::kFull;
  std::uint64_t sequence = 0;         ///< position in the checkpoint chain
  std::uint64_t parent_sequence = 0;  ///< incremental: the image this delta extends
  sim::Pid pid = sim::kNoPid;
  std::string process_name;
  std::string hostname;
  SimTime taken_at = 0;

  // --- Program identity -------------------------------------------------------
  sim::GuestImage guest;

  // --- Captured state -----------------------------------------------------------
  std::vector<ThreadImage> threads;
  std::vector<MemorySegmentImage> segments;
  sim::VAddr brk = 0;
  sim::VAddr heap_base = 0;
  sim::VAddr mmap_next = 0;
  std::uint64_t sig_pending = 0;
  std::uint64_t sig_mask = 0;
  std::vector<std::uint8_t> sig_dispositions;
  std::vector<FileDescriptorImage> files;
  std::vector<std::uint16_t> bound_ports;

  // --- Metrics -------------------------------------------------------------------
  /// Bytes of page payload (the quantity incremental checkpointing shrinks).
  [[nodiscard]] std::uint64_t payload_bytes() const;
  /// Number of page payloads carried.
  [[nodiscard]] std::uint64_t page_count() const;

  // --- Wire format ------------------------------------------------------------------
  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Sharded encode: each memory segment is encoded and CRC64'd on a worker
  /// of `pool` into a pooled scratch buffer, shards are joined in segment
  /// order and the envelope CRC is assembled with crc64_combine — the
  /// output is bit-identical to serialize() for any worker count.
  [[nodiscard]] std::vector<std::byte> serialize(util::ThreadPool& pool) const;
  /// Exact size of the serialize() output in bytes (one counting pass, no
  /// encoding) — both serializers reserve this up front.
  [[nodiscard]] std::uint64_t serialized_size() const;
  static CheckpointImage deserialize(std::span<const std::byte> bytes);
};

/// Error raised when an image fails CRC or version checks.
class ImageCorrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- Wire-format building blocks ---------------------------------------------
// The flat body is prelude ++ segment payloads ++ trailer.  The dedup
// manifest codec (storage/dedup) reuses the prelude/trailer/VMA encoders for
// everything except the page payloads, so a new CheckpointImage field cannot
// silently drift between the flat and deduplicated wire formats —
// deserialize() itself decodes through the same functions.

/// Header, identity and thread state, ending with the segment count.
void encode_image_prelude(util::Serializer& s, const CheckpointImage& image);
/// Heap bounds, signals, files and ports (everything after the segments).
void encode_image_trailer(util::Serializer& s, const CheckpointImage& image);
/// Counterpart of encode_image_prelude; returns the segment count.
std::uint64_t decode_image_prelude(util::Deserializer& d, CheckpointImage& image);
void decode_image_trailer(util::Deserializer& d, CheckpointImage& image);
void encode_image_vma(util::Serializer& s, const sim::Vma& vma);
sim::Vma decode_image_vma(util::Deserializer& d);

}  // namespace ckpt::storage
