// Self-healing replicated stable storage.
//
// Table 1's "stable storage" column and §4's critique say the same thing
// from two sides: capture mechanics decide whether a checkpoint *exists*,
// storage placement decides whether it *survives*.  ReplicatedStore is the
// survivability half: one logical blob store fanned out over N replica
// backends (typically the node's local disk plus one or more remote
// stores), in the spirit of SCR-style multi-level checkpointing.
//
// Three mechanisms make it self-healing rather than merely redundant:
//
//  1. **Atomic two-phase publish.**  store() stages the serialized blob on
//     each replica, reads it back and CRC64-verifies it, and only then
//     publishes a manifest entry (the commit point).  A crash, torn write
//     or rejection mid-store can never yield a half-visible image: readers
//     enumerate and load *committed* entries only, and a failed store rolls
//     its staged blobs back.  The manifest entry records the canonical
//     CRC64, so every later read is verified against the value certified at
//     commit time — a quorum certificate, not a vote among replicas.
//
//  2. **Retry with backoff.**  Each per-replica stage and each load sweep
//     runs under a RetryPolicy (bounded exponential backoff + jitter +
//     deadline, charged through the sim clock), so transient StoreFaults —
//     one-shot rejections, torn writes, short outages — are absorbed
//     instead of surfacing as lost checkpoints.
//
//  3. **Scrub.**  scrub() audits every committed entry on every replica,
//     detects corrupt or missing copies by CRC64, and repairs them from a
//     healthy peer.  Combined with retarget_replica() this also
//     re-replicates history onto a replacement disk after failover.
//
// The commit path is a *parallel pipeline* (paper §4.1's concurrent
// kernel-thread direction, mapped onto host threads): the image is
// serialized in per-segment shards on a worker pool, the N replica
// stage+verify fan-out runs concurrently (one task per replica), and scrub
// CRC-verifies all audited copies across all manifest entries in one flat
// fan-out.  Determinism is preserved throughout — ordered joins, per-replica
// charge ledgers replayed in replica order, per-replica retry salt — so a
// 1-worker and an 8-worker run produce bit-identical replica contents,
// manifests and simulated-clock charges.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/backend.hpp"
#include "storage/dedup.hpp"
#include "storage/retry.hpp"

namespace ckpt::util {
class ThreadPool;
}

namespace ckpt::obs {
class Observer;
}

namespace ckpt::storage {

/// Why a store/load step failed — the "last underlying StoreFault" a caller
/// sees when retries are exhausted.  kRejected and kTornWrite correspond
/// one-to-one to the injectable StoreFaults; the rest are observed states.
enum class StoreErrorKind : std::uint8_t {
  kNone,
  kUnreachable,  ///< replica outage / failed node (StoreFault outage analogue)
  kRejected,     ///< replica refused the write (StoreFault::kReject)
  kTornWrite,    ///< staged bytes failed read-back CRC (StoreFault::kTornWrite)
  kCorrupt,      ///< committed bytes no longer match the manifest CRC
  kMissing,      ///< replica has no copy of a committed entry
  kNoQuorum,     ///< fewer than write_quorum replicas verified
};

const char* to_string(StoreErrorKind kind);

struct ReplicatedOptions {
  /// Replicas that must stage *and verify* before the entry commits.
  /// 1 favours availability (any surviving copy commits); N forces full
  /// replication at store time.
  std::uint32_t write_quorum = 1;
  /// Retry schedule for per-replica staging and for load sweeps.
  RetryPolicy retry;
  /// Read staged bytes back and CRC64-check them before commit.  Disabling
  /// this reverts to write-and-hope (the pre-PR behaviour, kept only for
  /// the bench that quantifies what verification buys).
  bool verify_writes = true;
  /// Worker pool for the commit pipeline: sharded serialize, concurrent
  /// replica staging, and scrub CRC verification.  nullptr selects the
  /// process-wide ThreadPool::shared() (sized by CKPT_WORKERS).  Parallelism
  /// is host wall-clock only — per-replica sim-time charges are ledgered on
  /// the workers and replayed through the caller's ChargeFn in replica
  /// order, so sim cost accounting, retry jitter and every stored byte are
  /// identical to a serial run for any worker count.
  util::ThreadPool* pool = nullptr;
  /// Force the fully serial pre-pipeline path (no pool at all); kept as the
  /// perf baseline bench_pipeline measures the pipeline against.
  bool serial_commit = false;
  /// Observability sink (null = disabled).  Store/scrub phases emit spans on
  /// the storage track; per-replica events are recorded with explicit
  /// timestamps derived from the replayed charge ledgers, so traces are
  /// byte-identical across worker counts.
  obs::Observer* observer = nullptr;
  /// Content-addressed dedup mode (storage/dedup): images are split by a
  /// shared ChunkTable into a manifest plus content chunks, and store()
  /// stages on each replica only the chunks *that replica* is missing —
  /// a replica that sat out an earlier store (outage, retarget) catches up
  /// via later stores and scrub().  All determinism guarantees of the flat
  /// path carry over: per-replica charge ledgers are replayed in replica
  /// order, so replica contents, traces and sim-time are byte-identical for
  /// any worker count.
  bool dedup = false;
  /// Chunking knobs for dedup mode.  The observer field inside is ignored —
  /// ReplicatedStore emits dedup.* metrics through `observer` above.
  DedupOptions dedup_options;
};

/// Outcome detail for one logical store (store() itself keeps the plain
/// StorageBackend signature; store_verbose() returns this).
struct StoreReceipt {
  ImageId id = kBadImageId;
  std::uint32_t committed_replicas = 0;
  std::uint64_t retries = 0;
  StoreErrorKind last_error = StoreErrorKind::kNone;

  [[nodiscard]] bool ok() const { return id != kBadImageId; }
};

/// scrub() audit/repair summary.
struct ScrubReport {
  std::uint64_t entries = 0;            ///< committed entries audited
  std::uint64_t chunks = 0;             ///< live content chunks audited (dedup)
  std::uint64_t copies_checked = 0;     ///< replica copies CRC-verified
  std::uint64_t corrupt_found = 0;      ///< copies failing the manifest CRC
  std::uint64_t missing_found = 0;      ///< replicas lacking a copy
  std::uint64_t repaired = 0;           ///< copies rewritten from a healthy peer
  std::uint64_t unrepairable = 0;       ///< damage with no healthy peer left
  std::uint64_t skipped_unreachable = 0;  ///< replica down: not auditable now

  [[nodiscard]] bool clean() const { return corrupt_found == 0 && missing_found == 0; }
  [[nodiscard]] std::string summary() const;
};

class ReplicatedStore final : public StorageBackend, public ChunkReclaimable {
 public:
  ReplicatedStore(std::vector<BlobStoreBackend*> replicas, ReplicatedOptions options = {});

  // --- StorageBackend ---------------------------------------------------------
  /// Two-phase replicated store; commits iff >= write_quorum replicas
  /// verified.  A failed store leaves no trace on any replica.
  ImageId store(const CheckpointImage& image, const ChargeFn& charge) override;
  /// Load a committed entry: replicas are tried in order, each copy CRC64-
  /// verified against the manifest before deserialization; a corrupt or
  /// unreachable replica silently fails over to the next.  The whole sweep
  /// retries under the RetryPolicy (transient outages).
  std::optional<CheckpointImage> load(ImageId id, const ChargeFn& charge) override;
  /// Drop the committed entry and its replica blobs (charge-free, like any
  /// backend erase).  Dedup mode releases the entry's chunk references;
  /// shared chunk blobs stay on media until gc().
  bool erase(ImageId id) override;
  /// Committed logical ids in ascending order (deterministic).
  [[nodiscard]] std::vector<ImageId> list() const override;
  /// Best survivability among replicas: remote beats local beats memory.
  [[nodiscard]] StorageLocality locality() const override;
  /// True while at least one replica is reachable.
  [[nodiscard]] bool reachable() const override;
  /// Durable bytes summed across replicas (dedup mode: manifests + chunk
  /// blobs, including not-yet-collected garbage).
  [[nodiscard]] std::uint64_t stored_bytes() const override;

  // --- Replication-aware paths ------------------------------------------------
  StoreReceipt store_verbose(const CheckpointImage& image, const ChargeFn& charge);

  /// One chunk of a streamed commit: pre-encoded body bytes plus the
  /// producer-side capture cost (the page copies out of the COW shadow that
  /// built the bytes), ledgered and replayed like every other charge.
  struct StreamChunk {
    std::vector<std::byte> bytes;
    SimTime capture_ns = 0;
  };
  /// A streamed image: fixed prelude/trailer plus `chunk_count` body chunks
  /// produced on demand.  `produce` must be thread-safe and pure — it runs
  /// on pool workers (and may run again on the caller when a faulted
  /// replica falls back to a whole-blob retry), and must return
  /// byte-identical chunks every call.  prelude ++ chunks ++ trailer must
  /// equal the serialize() body of the image being stored, so a streamed
  /// blob is bit-identical to a classic one.
  struct StreamSource {
    std::vector<std::byte> prelude;
    std::vector<std::byte> trailer;
    std::size_t chunk_count = 0;
    std::function<StreamChunk(std::size_t)> produce;
  };
  /// Streaming two-phase store (flat mode only; throws in dedup mode).
  /// Chunks are appended to a per-replica append stage *as they are
  /// produced* — capture, encode and replica fan-out overlap instead of
  /// running phase-sequential — and the manifest entry still commits last,
  /// so a crash or fault mid-stream leaves the previous image authoritative.
  /// Chunk production fans out on the pool with per-replica ticket gating
  /// (chunk i appends to a replica only after chunk i-1 did); all sim-time
  /// charges are ledgered per (chunk, replica) and replayed in chunk-then-
  /// replica order, so contents, charges, metrics and traces are
  /// byte-identical for any worker count.  A replica whose stage dies
  /// mid-stream falls back to the classic whole-blob stage+verify under the
  /// retry policy: a mid-stream fault costs that replica the streaming win,
  /// not the commit.
  StoreReceipt store_streamed(const StreamSource& source, const ChargeFn& charge);

  /// Load from one specific replica only (no failover, no retry) — the
  /// RecoveryManager's degradation ladder probes replicas individually.
  std::optional<CheckpointImage> load_from(std::size_t replica, ImageId id,
                                           const ChargeFn& charge);

  /// Audit every committed entry on every replica; repair corrupt/missing
  /// copies from a healthy peer.
  ScrubReport scrub(const ChargeFn& charge);

  /// Swap the backend behind one replica slot (failover to a replacement
  /// disk).  Committed history is *not* copied here — the next scrub()
  /// re-replicates it, which is the self-healing path under test.
  void retarget_replica(std::size_t index, BlobStoreBackend* backend);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  /// Direct access to one replica backend (tests and fault injectors aim
  /// per-replica damage through this).
  [[nodiscard]] BlobStoreBackend& replica(std::size_t index) { return *replicas_.at(index); }

  /// Dedup mode only: reclaim content chunks no committed entry references,
  /// erasing their blobs on every replica holding a copy.  No-op (empty
  /// report) in flat mode.
  GcReport gc(const ChargeFn& charge) override;

  /// Dedup accounting (zeroed stats in flat mode).
  [[nodiscard]] const DedupStats& dedup_stats() const;
  [[nodiscard]] bool dedup_enabled() const { return table_ != nullptr; }

  /// Copies of `id` that are reachable right now and pass the manifest CRC.
  /// In dedup mode a replica only counts as intact when the manifest *and*
  /// every chunk in the entry's closure verify on that replica — an image is
  /// only as durable as its closure.
  [[nodiscard]] std::uint32_t intact_replicas(ImageId id) const;
  /// True when any committed entry still has >= 1 intact copy — the bound
  /// the torture harness and the RecoveryReport data-loss gate check
  /// against.
  [[nodiscard]] bool any_intact_committed() const;
  [[nodiscard]] ImageId newest_committed() const;

  [[nodiscard]] const ReplicatedOptions& options() const { return options_; }

 private:
  struct Entry {
    std::uint64_t crc = 0;    ///< blob CRC (dedup mode: the manifest blob's)
    std::uint64_t bytes = 0;  ///< blob size (dedup mode: the manifest blob's)
    std::map<std::size_t, ImageId> placements;  ///< replica index -> physical id
    /// Dedup mode: the chunk closure pinned at commit (empty in flat mode).
    std::vector<ChunkKey> chunks;
  };

  /// Per-replica trace ledger: cumulative sim-time charged through the
  /// (wrapped) ChargeFn plus retry marks at their relative offsets.  The
  /// caller turns it into span events with explicit timestamps after the
  /// charges have been (re)played — identically on the serial and parallel
  /// paths, which is what keeps traces invariant under CKPT_WORKERS.
  struct StageTraceLog {
    SimTime spent = 0;
    std::vector<std::pair<SimTime, StoreErrorKind>> retry_marks;
  };

  /// Stage + verify `blob` on replica `r`, retrying per policy.  On success
  /// returns the physical id; on failure records the last error.  `log` (may
  /// be null) must be the same object the caller's charge wrapper feeds.
  ImageId stage_on_replica(std::size_t r, const std::vector<std::byte>& blob,
                           std::uint64_t crc, const ChargeFn& charge,
                           std::uint64_t salt, std::uint64_t& retries,
                           StoreErrorKind& error, StageTraceLog* log);

  /// Dedup-mode stage of one image on replica `r`: writes the chunks this
  /// replica is missing (in closure order), then the manifest, each under
  /// stage_on_replica's retry+verify.  Any failure rolls this replica's
  /// newly staged blobs back.
  struct DedupStage {
    ImageId manifest_id = kBadImageId;
    std::vector<std::pair<ChunkKey, ImageId>> chunks;  ///< newly staged
  };
  DedupStage stage_dedup_on_replica(std::size_t r,
                                    const ChunkTable::EncodedImage& enc,
                                    const std::vector<ChunkKey>& missing,
                                    const ChargeFn& charge, std::uint64_t salt,
                                    std::uint64_t& retries, StoreErrorKind& error,
                                    StageTraceLog* log);

  StoreReceipt store_verbose_dedup(const CheckpointImage& image, const ChargeFn& charge);

  std::vector<BlobStoreBackend*> replicas_;
  ReplicatedOptions options_;
  util::ThreadPool* pool_ = nullptr;  ///< null ⇒ serial commit path
  bool distinct_replicas_ = true;     ///< replica slots never share a backend
  std::map<ImageId, Entry> manifest_;
  std::unique_ptr<ChunkTable> table_;  ///< non-null iff options_.dedup
  /// chunk → (replica index → physical blob id); a replica missing from a
  /// chunk's map simply has no copy yet (stores and scrub top it up).
  std::map<ChunkKey, std::map<std::size_t, ImageId>> chunk_placements_;
  ImageId next_id_ = 1;
  std::uint64_t op_counter_ = 0;  ///< salt so every operation's jitter differs
};

}  // namespace ckpt::storage
