#include "storage/chain.hpp"

#include <algorithm>
#include <map>

namespace ckpt::storage {

ImageId CheckpointChain::append(CheckpointImage image, const ChargeFn& charge) {
  return append_via(image,
                    [&](const CheckpointImage& img) { return backend_->store(img, charge); });
}

ImageId CheckpointChain::append_via(CheckpointImage& image, const StoreFn& store_fn) {
  image.sequence = next_sequence_;
  image.parent_sequence = image.kind == ImageKind::kIncremental && next_sequence_ > 1
                              ? next_sequence_ - 1
                              : 0;
  const ImageId id = store_fn(image);
  if (id == kBadImageId) return kBadImageId;
  entries_.push_back(Entry{next_sequence_, id, image.kind});
  ++next_sequence_;
  return id;
}

std::optional<CheckpointImage> CheckpointChain::reconstruct(const ChargeFn& charge) const {
  if (entries_.empty()) return std::nullopt;
  return reconstruct_at(entries_.back().sequence, charge);
}

std::optional<CheckpointImage> CheckpointChain::reconstruct_at(std::uint64_t sequence,
                                                               const ChargeFn& charge) const {
  // Find the newest full image at or before `sequence`.
  std::ptrdiff_t full_idx = -1;
  std::ptrdiff_t target_idx = -1;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].sequence > sequence) break;
    target_idx = static_cast<std::ptrdiff_t>(i);
    if (entries_[i].kind == ImageKind::kFull) full_idx = static_cast<std::ptrdiff_t>(i);
  }
  if (full_idx < 0 || target_idx < 0) return std::nullopt;

  auto base = backend_->load(entries_[static_cast<std::size_t>(full_idx)].id, charge);
  if (!base.has_value()) return std::nullopt;
  for (std::ptrdiff_t i = full_idx + 1; i <= target_idx; ++i) {
    auto delta = backend_->load(entries_[static_cast<std::size_t>(i)].id, charge);
    if (!delta.has_value()) return std::nullopt;
    apply_delta(*base, *delta);
  }
  return base;
}

std::optional<CheckpointImage> CheckpointChain::reconstruct_newest_surviving(
    const ChargeFn& charge) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (auto image = reconstruct_at(it->sequence, charge)) return image;
  }
  return std::nullopt;
}

std::size_t CheckpointChain::live_from(const ChargeFn& charge) const {
  // Keep from the newest *verified-loadable* full image onward.  Keeping
  // only from the newest full image regardless would delete exactly the
  // older states reconstruct_newest_surviving() falls back to when that
  // image turns out torn or corrupt at restart time.  No verifying full
  // image means everything stays live.
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(entries_.size()) - 1; i >= 0; --i) {
    const Entry& entry = entries_[static_cast<std::size_t>(i)];
    if (entry.kind != ImageKind::kFull) continue;
    if (backend_->load(entry.id, charge).has_value()) {
      return static_cast<std::size_t>(i);
    }
  }
  return 0;
}

std::vector<ImageId> CheckpointChain::live_set(const ChargeFn& charge) const {
  std::vector<ImageId> ids;
  const std::size_t from = live_from(charge);
  ids.reserve(entries_.size() - from);
  for (std::size_t i = from; i < entries_.size(); ++i) ids.push_back(entries_[i].id);
  return ids;
}

void CheckpointChain::prune(const ChargeFn& charge) {
  const std::size_t keep_from = live_from(charge);
  if (keep_from == 0) return;
  for (std::size_t i = 0; i < keep_from; ++i) backend_->erase(entries_[i].id);
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(keep_from));
}

ImageId CheckpointChain::newest_image_id() const {
  return entries_.empty() ? kBadImageId : entries_.back().id;
}

std::uint64_t CheckpointChain::newest_sequence() const {
  return entries_.empty() ? 0 : entries_.back().sequence;
}

std::size_t CheckpointChain::links_from_last_full() const {
  std::size_t links = 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    ++links;
    if (it->kind == ImageKind::kFull) return links;
  }
  return links;
}

void apply_delta(CheckpointImage& base, const CheckpointImage& delta) {
  // Everything scalar comes from the delta (it is the newer observation).
  base.kind = ImageKind::kFull;  // result is a complete state
  base.sequence = delta.sequence;
  base.parent_sequence = 0;
  base.taken_at = delta.taken_at;
  base.threads = delta.threads;
  base.brk = delta.brk;
  base.heap_base = delta.heap_base;
  base.mmap_next = delta.mmap_next;
  base.sig_pending = delta.sig_pending;
  base.sig_mask = delta.sig_mask;
  base.sig_dispositions = delta.sig_dispositions;
  base.files = delta.files;
  base.bound_ports = delta.bound_ports;

  // Merge memory: index base pages, overlay delta payloads (which may be
  // partial-page block or cache-line ranges), and adopt the delta's VMA
  // layout (regions may have grown or been unmapped).
  std::map<sim::PageNum, std::vector<std::byte>> merged;
  auto page_buffer = [&](sim::PageNum p) -> std::vector<std::byte>& {
    auto [it, inserted] = merged.try_emplace(p);
    if (inserted) it->second.assign(sim::kPageSize, std::byte{0});
    return it->second;
  };
  auto overlay = [&](const PageImage& page) {
    auto& buf = page_buffer(page.page);
    const std::size_t end = std::min<std::size_t>(sim::kPageSize,
                                                  page.offset + page.data.size());
    if (page.offset >= end) return;
    std::copy(page.data.begin(),
              page.data.begin() + static_cast<std::ptrdiff_t>(end - page.offset),
              buf.begin() + page.offset);
  };
  for (const auto& segment : base.segments) {
    for (const auto& page : segment.pages) overlay(page);
  }
  for (const auto& segment : delta.segments) {
    for (const auto& page : segment.pages) overlay(page);
  }

  std::vector<MemorySegmentImage> out;
  out.reserve(delta.segments.size());
  for (const auto& segment : delta.segments) {
    MemorySegmentImage seg;
    seg.vma = segment.vma;
    for (sim::PageNum p = segment.vma.first_page;
         p < segment.vma.first_page + segment.vma.page_count; ++p) {
      auto it = merged.find(p);
      if (it != merged.end()) {
        seg.pages.push_back(PageImage{p, 0, it->second});
      }
    }
    out.push_back(std::move(seg));
  }
  base.segments = std::move(out);
}

}  // namespace ckpt::storage
