// Bounded retry with exponential backoff, jitter and a deadline.
//
// Transient storage faults (an ENOSPC-style rejection, a torn write caught
// by read-back verification, a network outage) are survivable if the caller
// simply tries again a moment later — the SCR/multi-level-checkpointing
// literature treats retry as the first rung of the recovery ladder, below
// replica failover.  RetryPolicy describes *how* to try again; Retrier
// walks one operation's attempts, producing the simulated-time delay to
// charge before each retry.  All jitter comes from a seeded Rng, so a retry
// schedule is a pure function of (policy, seed): the determinism contract
// the tests pin down.
//
// The default policy performs no retries at all (max_attempts == 1), which
// degrades every caller to the pre-retry behaviour.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace ckpt::storage {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries at all).
  std::uint64_t max_attempts = 1;
  /// Backoff charged before the first retry; doubles (see `multiplier`) on
  /// each subsequent one.
  SimTime initial_backoff = 1 * kMillisecond;
  double multiplier = 2.0;
  /// Ceiling on any single backoff.
  SimTime max_backoff = 200 * kMillisecond;
  /// Fraction of each backoff that is randomized away ("equal jitter"):
  /// delay is drawn uniformly from [backoff * (1 - jitter), backoff].
  /// 0 disables jitter entirely.
  double jitter = 0.5;
  /// Total simulated time the retries of one operation may consume;
  /// 0 = bounded only by max_attempts.  The final backoff is clamped so the
  /// budget is never exceeded.
  SimTime deadline = 0;
  /// Seed for the jitter stream.  Callers mix in per-operation salt so
  /// concurrent operations do not share a schedule yet replay exactly.
  std::uint64_t jitter_seed = 0x5eed;

  /// Convenience: a policy that retries `retries` times within `deadline`.
  static RetryPolicy bounded(std::uint64_t retries, SimTime deadline);
};

/// One operation's walk through a RetryPolicy.  Usage:
///
///   Retrier retrier(policy, salt);
///   while (!attempt()) {
///     auto delay = retrier.next_delay();
///     if (!delay) break;          // policy exhausted: give up
///     charge(*delay);             // pay the backoff in simulated time
///   }
class Retrier {
 public:
  explicit Retrier(const RetryPolicy& policy, std::uint64_t salt = 0);

  /// The backoff to charge before the next attempt, or nullopt when the
  /// policy is exhausted (attempt count or deadline).
  std::optional<SimTime> next_delay();

  /// Retries granted so far (0 after construction).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Total backoff handed out so far.
  [[nodiscard]] SimTime delayed() const { return delayed_; }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  std::uint64_t retries_ = 0;
  SimTime delayed_ = 0;
};

}  // namespace ckpt::storage
