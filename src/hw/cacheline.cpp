#include "hw/cacheline.hpp"

#include <cstring>
#include <stdexcept>

namespace ckpt::hw {

// ---------------------------------------------------------------------------
// CacheLineDirtySet
// ---------------------------------------------------------------------------

void CacheLineDirtySet::record(sim::VAddr addr, std::uint64_t bytes) {
  const std::uint64_t first = addr / kCacheLineBytes;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / kCacheLineBytes;
  for (std::uint64_t line = first; line <= last; ++line) lines_.insert(line);
}

std::uint64_t CacheLineDirtySet::covered_pages() const {
  std::set<std::uint64_t> pages;
  for (std::uint64_t line : lines_) {
    pages.insert(line * kCacheLineBytes / sim::kPageSize);
  }
  return pages.size();
}

// ---------------------------------------------------------------------------
// ReviveModel
// ---------------------------------------------------------------------------

void ReviveModel::attach(sim::Process& proc) {
  if (attached_ != nullptr) throw std::logic_error("ReviveModel: already attached");
  attached_ = &proc;
  proc.write_observer = [this, &proc](sim::VAddr addr, std::uint64_t bytes) {
    const std::uint64_t first = addr / kCacheLineBytes;
    const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / kCacheLineBytes;
    for (std::uint64_t line = first; line <= last; ++line) {
      if (dirty_.lines().count(line) != 0) continue;  // already logged this interval
      // First write to the line since the checkpoint: the directory
      // controller captures the old value before it is overwritten (the
      // snoop fires before the store commits).
      LogEntry entry;
      entry.line = line;
      const sim::VAddr line_addr = line * kCacheLineBytes;
      const sim::PageNum page = sim::page_of(line_addr);
      if (proc.aspace && proc.aspace->pte(page) != nullptr) {
        entry.old_data.resize(kCacheLineBytes);
        const auto data = proc.aspace->page_data(page);
        std::memcpy(entry.old_data.data(), data.data() + sim::page_offset(line_addr),
                    kCacheLineBytes);
      }
      undo_log_.push_back(std::move(entry));
      dirty_.record(line_addr, kCacheLineBytes);
    }
  };
}

void ReviveModel::detach(sim::Process& proc) {
  proc.write_observer = nullptr;
  attached_ = nullptr;
}

std::uint64_t ReviveModel::commit_checkpoint() {
  const std::uint64_t flushed = log_bytes();
  undo_log_.clear();
  dirty_.clear();
  return flushed;
}

std::uint64_t ReviveModel::rollback(sim::Process& proc) {
  std::uint64_t restored = 0;
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    if (it->old_data.empty()) continue;
    const sim::VAddr line_addr = it->line * kCacheLineBytes;
    const sim::PageNum page = sim::page_of(line_addr);
    if (proc.aspace == nullptr || proc.aspace->pte(page) == nullptr) continue;
    auto data = proc.aspace->page_data(page);
    std::memcpy(data.data() + sim::page_offset(line_addr), it->old_data.data(),
                kCacheLineBytes);
    ++restored;
  }
  undo_log_.clear();
  dirty_.clear();
  return restored;
}

std::uint64_t ReviveModel::log_bytes() const {
  // Each log record: line tag (8 B) + old data (one line).
  return undo_log_.size() * (8 + kCacheLineBytes);
}

// ---------------------------------------------------------------------------
// SafetyNetModel
// ---------------------------------------------------------------------------

void SafetyNetModel::attach(sim::Process& proc) {
  proc.write_observer = [this](sim::VAddr addr, std::uint64_t bytes) {
    const std::uint64_t before = dirty_.line_count();
    dirty_.record(addr, bytes);
    const std::uint64_t added = dirty_.line_count() - before;
    occupancy_ += added * kCacheLineBytes;
    if (occupancy_ > capacity_) {
      // Buffer full: the processor stalls until a checkpoint validates.
      ++overflow_stalls_;
      occupancy_ = capacity_;
    }
  };
}

void SafetyNetModel::detach(sim::Process& proc) { proc.write_observer = nullptr; }

std::uint64_t SafetyNetModel::validate_checkpoint() {
  const std::uint64_t lines = dirty_.line_count();
  dirty_.clear();
  occupancy_ = 0;
  return lines;
}

}  // namespace ckpt::hw
