// Hardware-assisted checkpointing models (survey §4.2).
//
// Purpose-designed hardware traces modifications at *cache-line*
// granularity — far finer than the page granularity available to the
// operating system.  Two published designs are modelled:
//
//   * ReVive  [Prvulovic et al., ISCA'02]: the directory controller logs
//     the old contents of a line on its first write after a checkpoint;
//     rollback replays the log.  Modest hardware: a memory-resident log.
//
//   * SafetyNet [Sorin et al., ISCA'02]: checkpoint-log buffers attached
//     to the processor caches record old values; requires cache
//     modifications *and* dedicated buffer storage — strictly more
//     hardware than ReVive, which the model's resource accounting shows.
//
// Both attach to a process through the write_observer snoop, which costs
// the CPU nothing — hardware tracking is transparent and free at run time,
// its price is the custom silicon (the survey's commodity-cluster
// objection).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/process.hpp"
#include "sim/types.hpp"

namespace ckpt::hw {

inline constexpr std::uint64_t kCacheLineBytes = 64;

/// Dirty-line set shared by both hardware models.
class CacheLineDirtySet {
 public:
  void record(sim::VAddr addr, std::uint64_t bytes);
  void clear() { lines_.clear(); }

  [[nodiscard]] std::uint64_t line_count() const { return lines_.size(); }
  [[nodiscard]] std::uint64_t dirty_bytes() const { return lines_.size() * kCacheLineBytes; }
  [[nodiscard]] const std::set<std::uint64_t>& lines() const { return lines_; }

  /// Pages covered by the dirty lines (for comparing against OS tracking).
  [[nodiscard]] std::uint64_t covered_pages() const;

 private:
  std::set<std::uint64_t> lines_;  ///< line index = addr / kCacheLineBytes
};

/// ReVive: directory-controller logging of old line values.
class ReviveModel {
 public:
  /// Attach to a process: snoop writes, keep an undo log.
  void attach(sim::Process& proc);
  void detach(sim::Process& proc);

  /// End-of-interval: returns bytes that must be flushed (log size), then
  /// begins a new interval.
  std::uint64_t commit_checkpoint();

  /// Roll back the attached process's memory to the last checkpoint by
  /// replaying the undo log in reverse.  Returns lines restored.
  std::uint64_t rollback(sim::Process& proc);

  [[nodiscard]] const CacheLineDirtySet& dirty() const { return dirty_; }
  [[nodiscard]] std::uint64_t log_bytes() const;

  /// Hardware resource estimate: ReVive needs directory-controller changes
  /// only; the log lives in ordinary memory.
  [[nodiscard]] static std::uint64_t dedicated_hardware_bytes() { return 0; }

 private:
  struct LogEntry {
    std::uint64_t line;
    std::vector<std::byte> old_data;
  };

  CacheLineDirtySet dirty_;
  std::vector<LogEntry> undo_log_;
  sim::Process* attached_ = nullptr;
};

/// SafetyNet: per-cache checkpoint-log buffers with bounded capacity.
class SafetyNetModel {
 public:
  explicit SafetyNetModel(std::uint64_t buffer_capacity_bytes = 512 * 1024)
      : capacity_(buffer_capacity_bytes) {}

  void attach(sim::Process& proc);
  void detach(sim::Process& proc);

  /// Advance the (pipelined) checkpoint: returns lines validated.
  std::uint64_t validate_checkpoint();

  [[nodiscard]] const CacheLineDirtySet& dirty() const { return dirty_; }
  [[nodiscard]] std::uint64_t buffer_occupancy() const { return occupancy_; }
  [[nodiscard]] std::uint64_t buffer_capacity() const { return capacity_; }
  /// Number of times the buffer filled and the processor had to stall.
  [[nodiscard]] std::uint64_t overflow_stalls() const { return overflow_stalls_; }

  /// Hardware resource estimate: cache modifications plus the dedicated
  /// checkpoint-log buffers — strictly more than ReVive.
  [[nodiscard]] std::uint64_t dedicated_hardware_bytes() const { return capacity_; }

 private:
  CacheLineDirtySet dirty_;
  std::uint64_t capacity_;
  std::uint64_t occupancy_ = 0;
  std::uint64_t overflow_stalls_ = 0;
};

}  // namespace ckpt::hw
