// Span-based structured tracing for the checkpoint lifecycle.
//
// CRAFT (arXiv:1708.02030) and the OpenCHK extensions (arXiv:2006.16616)
// both argue that a C/R framework needs first-class phase/cost
// introspection before adaptive policies (Young's interval, replica
// placement) can be trusted.  TraceRecorder is that layer: a flat log of
// begin/end/instant/counter events stamped with *simulated* time and a
// monotonic sequence number, exported as Chrome trace-event JSON
// (chrome://tracing / Perfetto).
//
// Determinism contract (the torture soak uses traces as a correctness
// oracle, diffing byte-for-byte across worker counts):
//
//   * Events carry sim-time and a seq number only — never host time, host
//     thread ids or pointer values.
//   * Instrumented parallel sections never emit from pool workers.  They
//     ledger per-task events with *relative* charge offsets and replay them
//     on the caller in task (replica/shard) order — the same discipline as
//     the PR 3 charge ledgers (see ReplicatedStore::store_verbose).
//   * Export renders integers and fixed-point microseconds only; no
//     floating-point formatting, no map iteration over unordered state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ckpt::obs {

/// Chrome trace-event phases we emit: duration begin/end, a thread-scoped
/// instant, and a counter sample.
enum class EventPhase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

[[nodiscard]] const char* phase_letter(EventPhase phase);

/// One key/value argument.  Values are unsigned integers or strings —
/// floats are deliberately absent so exports are bit-stable.
struct TraceArg {
  std::string key;
  std::string text;
  std::uint64_t number = 0;
  bool is_number = false;

  static TraceArg num(std::string key, std::uint64_t value) {
    return TraceArg{std::move(key), {}, value, true};
  }
  static TraceArg str(std::string key, std::string value) {
    return TraceArg{std::move(key), std::move(value), 0, false};
  }

  friend bool operator==(const TraceArg&, const TraceArg&) = default;
};

struct TraceEvent {
  std::uint64_t seq = 0;  ///< monotonic emission order
  SimTime ts = 0;         ///< simulated nanoseconds
  std::uint64_t track = 0;  ///< exported as the Chrome `tid` (a lane)
  EventPhase phase = EventPhase::kInstant;
  std::string name;
  std::string category;
  std::vector<TraceArg> args;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Well-known lanes.  Per-process lifecycle spans use the sim pid as the
/// track, which never collides with these (pids start at 2... but lanes are
/// cosmetic; only determinism matters).
inline constexpr std::uint64_t kControlTrack = 0;  ///< managers, harness cycles
inline constexpr std::uint64_t kStorageTrack = 1;  ///< scrub / storage maintenance

class TraceRecorder {
 public:
  using Clock = std::function<SimTime()>;
  /// Invoked once per event the ring evicts (the Observer bumps the
  /// `obs.trace_dropped` counter through this).
  using DropHook = std::function<void()>;

  /// Ring capacity: a long soak with tracing on keeps the newest
  /// kDefaultCapacity events instead of growing without bound.  Generous —
  /// a 550-cycle torture soak emits ~10k events — but finite.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  /// Timestamp source for the clock-less emit overloads; typically wired to
  /// the sim kernel's effective time (now() + step_charge()) on attach.
  void set_clock(Clock clock) { clock_ = std::move(clock); }
  [[nodiscard]] SimTime now() const { return clock_ ? clock_() : 0; }

  /// Resize the ring (>= 1).  Shrinking evicts oldest events immediately.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events evicted by the ring since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // --- Emission (clocked) ----------------------------------------------------
  void begin(std::string name, std::string category, std::uint64_t track,
             std::vector<TraceArg> args = {});
  void end(std::string name, std::uint64_t track, std::vector<TraceArg> args = {});
  void instant(std::string name, std::string category, std::uint64_t track,
               std::vector<TraceArg> args = {});
  void counter(std::string name, std::uint64_t track, std::uint64_t value);

  // --- Emission (explicit timestamp) ----------------------------------------
  void begin_at(SimTime ts, std::string name, std::string category, std::uint64_t track,
                std::vector<TraceArg> args = {});
  void end_at(SimTime ts, std::string name, std::uint64_t track,
              std::vector<TraceArg> args = {});
  void instant_at(SimTime ts, std::string name, std::string category, std::uint64_t track,
                  std::vector<TraceArg> args = {});

  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  void clear();

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Events appear in seq order; loads directly in Perfetto / about:tracing.
  [[nodiscard]] std::string export_chrome_json() const;

  /// Fold matched begin/end pairs into per-name inclusive totals (count +
  /// summed sim-time) — the ckpt-report phase-breakdown table.
  struct PhaseStat {
    std::uint64_t count = 0;
    SimTime total = 0;
  };
  [[nodiscard]] std::map<std::string, PhaseStat> phase_totals() const;

 private:
  void push(SimTime ts, EventPhase phase, std::string name, std::string category,
            std::uint64_t track, std::vector<TraceArg> args);
  void evict_to_capacity();

  Clock clock_;
  DropHook drop_hook_;
  std::deque<TraceEvent> events_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: begin on construction, end on destruction (or early via
/// end()).  A null recorder makes every operation a no-op, so call sites
/// stay branch-free.
class SpanGuard {
 public:
  SpanGuard(TraceRecorder* recorder, std::string name, std::string category,
            std::uint64_t track, std::vector<TraceArg> args = {});
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Close the span now, attaching result arguments to the end event.
  void end(std::vector<TraceArg> args = {});

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::uint64_t track_;
  bool open_;
};

}  // namespace ckpt::obs
