// Useful-work vs checkpoint-overhead vs rework accounting.
//
// The survey's headline comparison metric is runtime overhead: every C/R
// mechanism is ultimately judged by how much guest progress it taxes
// (checkpoint cost) and how much progress failures destroy anyway (rework
// — the work between the last durable checkpoint and the crash).  CRAFT's
// argument (PAPERS.md) is that an *automatic* fault-tolerance layer must
// carry this cost/benefit ledger itself, because the interval policy that
// minimizes total waste needs measured inputs, not configured ones.
//
// OverheadAccountant is that ledger: per-node and fleet-wide sim-time
// split into useful / checkpoint / rework, plus the observed inter-failure
// gaps that yield a measured MTBF.  It is pure bookkeeping — no clock, no
// kernel, no core:: dependency — so the fleet layer owns the wiring:
// FleetManager charges the ledger and feeds the measured MTBF and mean
// commit cost into core::IntervalEstimator, closing the autonomic loop.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/units.hpp"

namespace ckpt::obs {

/// One entity's time split.  All sim-time, all integers.
struct OverheadLedger {
  SimTime useful = 0;      ///< guest windows actually progressing
  SimTime checkpoint = 0;  ///< commit charges (the overhead the paper prices)
  SimTime rework = 0;      ///< progress destroyed by failures (last commit -> death)
  std::uint64_t commits = 0;
  std::uint64_t reworks = 0;  ///< failures that charged rework

  [[nodiscard]] SimTime total() const { return useful + checkpoint + rework; }
  /// (checkpoint + rework) / total, in permille; 0 when nothing is charged.
  [[nodiscard]] std::uint64_t overhead_permille() const {
    const SimTime t = total();
    return t == 0 ? 0 : ((checkpoint + rework) * 1000) / t;
  }

  friend bool operator==(const OverheadLedger&, const OverheadLedger&) = default;
};

class OverheadAccountant {
 public:
  void charge_useful(int node, SimTime t);
  void charge_checkpoint(int node, SimTime t);
  void charge_rework(int node, SimTime t);

  /// Record one failure at sim-time `now`; consecutive calls accumulate the
  /// inter-failure gap ledger the measured MTBF derives from.  Same-instant
  /// repeats (two confirmations in one scheduling window) collapse into one
  /// gap endpoint rather than a zero-length gap.
  void observe_failure(SimTime now);

  [[nodiscard]] const OverheadLedger& fleet() const { return fleet_; }
  [[nodiscard]] const OverheadLedger* node(int id) const;
  [[nodiscard]] const std::map<int, OverheadLedger>& nodes() const { return nodes_; }

  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  /// Measured MTBF: mean observed inter-failure gap (0 until two distinct
  /// failure instants have been seen).
  [[nodiscard]] SimTime measured_mtbf() const;
  /// Mean commit cost across the fleet ledger (0 until a commit charged).
  [[nodiscard]] SimTime mean_commit_cost() const;

  void clear();

  /// Deterministic fixed-point table: per-node rows (sorted by id) plus the
  /// fleet total — the EXPERIMENTS.md O2 artifact.
  [[nodiscard]] std::string table() const;

  friend bool operator==(const OverheadAccountant&, const OverheadAccountant&) = default;

 private:
  std::map<int, OverheadLedger> nodes_;
  OverheadLedger fleet_;
  std::uint64_t failures_ = 0;
  SimTime first_failure_at_ = 0;
  SimTime last_failure_at_ = 0;
  std::uint64_t gap_count_ = 0;
};

}  // namespace ckpt::obs
