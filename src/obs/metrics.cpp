#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "obs/json.hpp"

namespace ckpt::obs {

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value,
                              std::span<const std::uint64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramData fresh;
    fresh.bounds.assign(bounds.begin(), bounds.end());
    if (!std::is_sorted(fresh.bounds.begin(), fresh.bounds.end())) {
      throw std::invalid_argument("MetricsRegistry: histogram bounds must be sorted");
    }
    fresh.counts.assign(fresh.bounds.size() + 1, 0);
    it = histograms_.emplace(std::string(name), std::move(fresh)).first;
  } else if (it->second.bounds.size() != bounds.size() ||
             !std::equal(bounds.begin(), bounds.end(), it->second.bounds.begin())) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + std::string(name) +
                                "' re-registered with different bounds");
  }
  HistogramData& h = it->second;
  const auto slot = std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  ++h.counts[static_cast<std::size_t>(slot - h.bounds.begin())];
  if (h.count == 0 || value < h.min) h.min = value;
  if (value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
}

std::uint64_t HistogramData::percentile(std::uint64_t permille) const {
  if (count == 0) return 0;
  // Rank of the requested observation, 1-based: ceil(count * permille / 1000)
  // clamped into [1, count] so percentile(0) reads the first observation and
  // permille > 1000 cannot run past the end.
  std::uint64_t rank = (count * permille + 999) / 1000;
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

void HistogramData::merge(const HistogramData& other) {
  if (bounds != other.bounds) {
    throw std::invalid_argument("HistogramData::merge: incompatible bucket bounds");
  }
  if (other.count == 0) return;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

void MetricsRegistry::merge(const MetricsRegistry& other, std::string_view prefix) {
  for (const auto& [name, value] : other.counters_) {
    add(std::string(prefix) + name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    set_gauge(std::string(prefix) + name, value);
  }
  for (const auto& [name, h] : other.histograms_) {
    std::string qualified = std::string(prefix) + name;
    auto it = histograms_.find(qualified);
    if (it == histograms_.end()) {
      histograms_.emplace(std::move(qualified), h);
    } else {
      it->second.merge(h);
    }
  }
}

const HistogramData* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::span<const std::uint64_t> MetricsRegistry::latency_bounds() {
  // 10us .. 10s in decades, simulated nanoseconds.
  static constexpr std::array<std::uint64_t, 7> kBounds{
      10 * kMicrosecond, 100 * kMicrosecond, 1 * kMillisecond, 10 * kMillisecond,
      100 * kMillisecond, 1 * kSecond, 10 * kSecond};
  return kBounds;
}

std::span<const std::uint64_t> MetricsRegistry::size_bounds() {
  // 4 KiB .. 64 MiB in powers of four.
  static constexpr std::array<std::uint64_t, 7> kBounds{
      4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB, 64 * kMiB};
  return kBounds;
}

std::span<const std::uint64_t> MetricsRegistry::percent_bounds() {
  static constexpr std::array<std::uint64_t, 6> kBounds{1, 5, 10, 25, 50, 75};
  return kBounds;
}

std::span<const std::uint64_t> MetricsRegistry::permille_bounds() {
  // Dense below 300‰ (the dedup gate region), coarse above.
  static constexpr std::array<std::uint64_t, 10> kBounds{1,   5,   10,  25,  50,
                                                         100, 200, 300, 500, 1000};
  return kBounds;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": " +
           std::to_string(h.sum) + ", \"min\": " + std::to_string(h.count > 0 ? h.min : 0) +
           ", \"max\": " + std::to_string(h.max) + ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace ckpt::obs
