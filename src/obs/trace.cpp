#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

#include "obs/json.hpp"

namespace ckpt::obs {

const char* phase_letter(EventPhase phase) {
  switch (phase) {
    case EventPhase::kBegin: return "B";
    case EventPhase::kEnd: return "E";
    case EventPhase::kInstant: return "i";
    case EventPhase::kCounter: return "C";
  }
  return "?";
}

void TraceRecorder::push(SimTime ts, EventPhase phase, std::string name,
                         std::string category, std::uint64_t track,
                         std::vector<TraceArg> args) {
  TraceEvent event;
  event.seq = next_seq_++;
  event.ts = ts;
  event.track = track;
  event.phase = phase;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  events_.push_back(std::move(event));
  evict_to_capacity();
}

void TraceRecorder::evict_to_capacity() {
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
    if (drop_hook_) drop_hook_();
  }
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  capacity_ = std::max<std::size_t>(1, capacity);
  evict_to_capacity();
}

void TraceRecorder::begin(std::string name, std::string category, std::uint64_t track,
                          std::vector<TraceArg> args) {
  push(now(), EventPhase::kBegin, std::move(name), std::move(category), track,
       std::move(args));
}

void TraceRecorder::end(std::string name, std::uint64_t track, std::vector<TraceArg> args) {
  push(now(), EventPhase::kEnd, std::move(name), {}, track, std::move(args));
}

void TraceRecorder::instant(std::string name, std::string category, std::uint64_t track,
                            std::vector<TraceArg> args) {
  push(now(), EventPhase::kInstant, std::move(name), std::move(category), track,
       std::move(args));
}

void TraceRecorder::counter(std::string name, std::uint64_t track, std::uint64_t value) {
  push(now(), EventPhase::kCounter, std::move(name), {}, track,
       {TraceArg::num("value", value)});
}

void TraceRecorder::begin_at(SimTime ts, std::string name, std::string category,
                             std::uint64_t track, std::vector<TraceArg> args) {
  push(ts, EventPhase::kBegin, std::move(name), std::move(category), track,
       std::move(args));
}

void TraceRecorder::end_at(SimTime ts, std::string name, std::uint64_t track,
                           std::vector<TraceArg> args) {
  push(ts, EventPhase::kEnd, std::move(name), {}, track, std::move(args));
}

void TraceRecorder::instant_at(SimTime ts, std::string name, std::string category,
                               std::uint64_t track, std::vector<TraceArg> args) {
  push(ts, EventPhase::kInstant, std::move(name), std::move(category), track,
       std::move(args));
}

void TraceRecorder::clear() {
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::string TraceRecorder::export_chrome_json() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Lane-naming metadata so Perfetto labels the well-known tracks.
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"ckpt-sim\"}},\n";
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"control\"}},\n";
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"storage\"}}";
  for (const TraceEvent& event : events_) {
    out += ",\n{\"name\":";
    json_append_quoted(out, event.name);
    if (!event.category.empty()) {
      out += ",\"cat\":";
      json_append_quoted(out, event.category);
    }
    out += ",\"ph\":\"";
    out += phase_letter(event.phase);
    out += "\",\"ts\":";
    json_append_micros(out, event.ts);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.track);
    if (event.phase == EventPhase::kInstant) out += ",\"s\":\"t\"";
    out += ",\"seq\":";
    out += std::to_string(event.seq);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first = true;
      for (const TraceArg& arg : event.args) {
        if (!first) out.push_back(',');
        first = false;
        json_append_quoted(out, arg.key);
        out.push_back(':');
        if (arg.is_number) {
          out += std::to_string(arg.number);
        } else {
          json_append_quoted(out, arg.text);
        }
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "\n]}\n";
  return out;
}

std::map<std::string, TraceRecorder::PhaseStat> TraceRecorder::phase_totals() const {
  std::map<std::string, PhaseStat> totals;
  // Per-track stacks of open begins; unmatched events are simply skipped so
  // a truncated trace still renders a sensible table.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> open;
  for (const TraceEvent& event : events_) {
    if (event.phase == EventPhase::kBegin) {
      open[event.track].push_back(&event);
    } else if (event.phase == EventPhase::kEnd) {
      auto& stack = open[event.track];
      if (stack.empty()) continue;
      const TraceEvent* begin = stack.back();
      stack.pop_back();
      PhaseStat& stat = totals[begin->name];
      ++stat.count;
      if (event.ts > begin->ts) stat.total += event.ts - begin->ts;
    }
  }
  return totals;
}

SpanGuard::SpanGuard(TraceRecorder* recorder, std::string name, std::string category,
                     std::uint64_t track, std::vector<TraceArg> args)
    : recorder_(recorder), name_(std::move(name)), track_(track),
      open_(recorder != nullptr) {
  if (recorder_ != nullptr) {
    recorder_->begin(name_, std::move(category), track_, std::move(args));
  }
}

void SpanGuard::end(std::vector<TraceArg> args) {
  if (!open_) return;
  open_ = false;
  recorder_->end(name_, track_, std::move(args));
}

SpanGuard::~SpanGuard() { end(); }

}  // namespace ckpt::obs
