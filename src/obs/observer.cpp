#include "obs/observer.hpp"

// Header-only today; this TU pins the library's vtable-free symbols and
// gives the build a stable home for future out-of-line additions.
namespace ckpt::obs {}
