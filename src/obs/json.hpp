// Minimal deterministic JSON helpers for the observability exporters.
//
// The trace and metrics exporters must produce byte-identical output for a
// fixed seed and any worker count, so everything here is exact: strings are
// escaped with a fixed table, integers print in decimal, and simulated
// nanoseconds render as fixed-point microseconds (three decimals) rather
// than going through double formatting.  json_lint() is a strict syntax
// checker used by the tests, the ckpt_report example and the CI gate to
// prove exported documents are well-formed without an external tool.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ckpt::obs {

/// Append `text` to `out` as a quoted JSON string (RFC 8259 escaping).
void json_append_quoted(std::string& out, std::string_view text);

/// `text` as a quoted JSON string.
[[nodiscard]] std::string json_quoted(std::string_view text);

/// Append integer nanoseconds as fixed-point microseconds ("12.345") — the
/// Chrome trace-event `ts` unit — without any floating-point formatting.
void json_append_micros(std::string& out, std::uint64_t nanoseconds);

/// Strict JSON well-formedness check (full recursive-descent parse, no
/// semantic interpretation).  On failure, `error` (when non-null) receives
/// a byte offset + reason.
[[nodiscard]] bool json_lint(std::string_view text, std::string* error = nullptr);

}  // namespace ckpt::obs
