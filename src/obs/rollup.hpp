// Fleet telemetry rollups: deterministic aggregation of per-node metrics.
//
// The thread-based-MPI-runtime paper's scaling lesson (PAPERS.md) is that
// per-rank telemetry is only actionable once rolled up: at 512+ nodes
// nobody reads 512 snapshots, they read the fleet p50/p95/p99 and the list
// of nodes drifting away from it.  FleetTelemetry ingests per-node
// MetricsRegistry snapshots, merges them (MetricsRegistry::merge) into a
// fleet-wide registry, estimates quantiles from the shared fixed bucket
// ladders, and flags outliers whose per-node median drifts past a
// configurable factor of the fleet median.
//
// Determinism contract: ingestion keys on the node id (std::map order),
// quantiles are integer bucket-bound estimates (HistogramData::percentile),
// and rollup_json() renders sorted names and integers only — byte-identical
// for any ingestion order or CKPT_WORKERS.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ckpt::obs {

struct RollupOptions {
  /// A node is an outlier when node_median * 1000 > fleet_median *
  /// outlier_factor_permille (2000 = 2x the fleet median).
  std::uint64_t outlier_factor_permille = 2000;
  /// Histograms with fewer per-node samples than this never flag (a single
  /// slow commit is noise, a drifting median is a signal).
  std::uint64_t min_samples = 8;
};

class FleetTelemetry {
 public:
  explicit FleetTelemetry(RollupOptions options = {}) : options_(options) {}

  /// Adopt (replace) `node`'s latest metrics snapshot.
  void ingest(int node, const MetricsRegistry& metrics);
  void clear();

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const MetricsRegistry* node(int id) const;

  /// Fleet-wide aggregate: every ingested registry merged unprefixed.
  [[nodiscard]] MetricsRegistry fleet() const;

  struct Quantiles {
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;

    friend bool operator==(const Quantiles&, const Quantiles&) = default;
  };
  /// Fleet-wide quantiles of one histogram (nullopt when no node has it).
  [[nodiscard]] std::optional<Quantiles> quantiles(std::string_view histogram) const;

  struct Outlier {
    int node = -1;
    std::uint64_t node_p50 = 0;
    std::uint64_t fleet_p50 = 0;

    friend bool operator==(const Outlier&, const Outlier&) = default;
  };
  /// Nodes whose median of `histogram` drifts past the configured factor of
  /// the fleet median, ascending node id.
  [[nodiscard]] std::vector<Outlier> outliers(std::string_view histogram) const;

  /// Deterministic rollup document: node count, per-histogram fleet
  /// quantiles, and — when `outlier_histogram` is non-empty — the outlier
  /// list for that histogram.  Integer-only, sorted, json_lint-clean.
  [[nodiscard]] std::string rollup_json(std::string_view outlier_histogram = {}) const;

 private:
  RollupOptions options_;
  std::map<int, MetricsRegistry> nodes_;
};

}  // namespace ckpt::obs
