#include "obs/json.hpp"

#include <cctype>

namespace ckpt::obs {

void json_append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  json_append_quoted(out, text);
  return out;
}

void json_append_micros(std::string& out, std::uint64_t nanoseconds) {
  out += std::to_string(nanoseconds / 1000);
  const std::uint64_t frac = nanoseconds % 1000;
  out.push_back('.');
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + (frac / 10) % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

namespace {

/// Recursive-descent JSON syntax checker.
class Lint {
 public:
  explicit Lint(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing bytes after document";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "malformed JSON" : reason_);
    }
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "bad literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') {
      reason_ = "expected string";
      return false;
    }
    ++pos_;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        reason_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        if (eof()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
              reason_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          reason_ = "bad escape";
          return false;
        }
      }
    }
    reason_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      reason_ = "expected digit";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (!eof() && peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth_ > 128) {
      reason_ = "nesting too deep";
      return false;
    }
    skip_ws();
    if (eof()) {
      reason_ = "unexpected end of document";
      return false;
    }
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        reason_ = "expected ':'";
        return false;
      }
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']'";
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_;
};

}  // namespace

bool json_lint(std::string_view text, std::string* error) {
  return Lint(text).run(error);
}

}  // namespace ckpt::obs
