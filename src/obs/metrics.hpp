// Named counters, gauges and fixed-bucket histograms.
//
// The autonomic policies (Young's interval, replica placement, retry
// budgets) consume aggregate signals: checkpoint latency, bytes written,
// incremental dirty ratio, retry counts, scrub repairs, replica outages.
// MetricsRegistry collects them under stable dotted names and snapshots
// them as deterministically ordered JSON (names sorted lexicographically,
// integer-only values), so two runs of the same seed produce byte-identical
// snapshots regardless of registration order or worker count.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ckpt::obs {

/// Fixed-bucket histogram: counts[i] covers value <= bounds[i]; the last
/// slot is the overflow bucket.  Bounds are fixed by the first observation
/// under a name; later observations must agree (enforced).
struct HistogramData {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 slots
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  /// Upper-bound percentile estimate at `permille` (500 = p50, 990 = p99):
  /// the bucket bound covering the rank-ceil(count * permille / 1000)
  /// observation.  Values observed exactly at a bucket bound land in that
  /// bucket (observe() uses lower_bound), so boundary estimates are exact;
  /// ranks falling in the overflow bucket return the observed max.  0 when
  /// the histogram is empty.
  [[nodiscard]] std::uint64_t percentile(std::uint64_t permille) const;

  /// Fold another histogram with identical bounds into this one.  Throws
  /// std::invalid_argument on a bucket-layout mismatch.
  void merge(const HistogramData& other);

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

class MetricsRegistry {
 public:
  // --- Counters (monotonic) --------------------------------------------------
  void add(std::string_view name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  // --- Gauges (last value wins) ---------------------------------------------
  void set_gauge(std::string_view name, std::int64_t value);
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;

  // --- Histograms ------------------------------------------------------------
  void observe(std::string_view name, std::uint64_t value,
               std::span<const std::uint64_t> bounds);
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;
  /// Registered histogram names, sorted (the rollup's discovery seam).
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Canonical bucket ladders (simulated nanoseconds / bytes / percent).
  [[nodiscard]] static std::span<const std::uint64_t> latency_bounds();
  [[nodiscard]] static std::span<const std::uint64_t> size_bounds();
  [[nodiscard]] static std::span<const std::uint64_t> percent_bounds();
  /// Ratio ladder in permille (0–1000‰) for stored/logical-style ratios —
  /// the dedup store observes its per-commit durable-byte ratio here.
  [[nodiscard]] static std::span<const std::uint64_t> permille_bounds();

  /// Fold another registry into this one, optionally namespacing every
  /// incoming name with `prefix` (e.g. "node3." — fleet rollups ingest
  /// per-node registries both ways: prefixed for per-node drill-down,
  /// unprefixed for the fleet-wide aggregate).  Counters add, gauges take
  /// the incoming value, histograms merge bucket-wise; a histogram that
  /// lands on an existing name with different bounds throws
  /// std::invalid_argument (bucket layouts are part of a metric's name).
  void merge(const MetricsRegistry& other, std::string_view prefix = {});

  /// Deterministic JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with every section sorted by name.
  [[nodiscard]] std::string snapshot_json() const;

  void clear();

  friend bool operator==(const MetricsRegistry&, const MetricsRegistry&) = default;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
};

}  // namespace ckpt::obs
