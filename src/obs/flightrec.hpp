// Crash-surviving flight recorder: a bounded ring of recent events.
//
// The TraceRecorder answers "what happened?" while the process is alive; it
// dies with the node.  The FlightRecorder is the black box: a small,
// deterministic ring of the most recent spans/instants/counter samples
// whose serialized form is persisted through the log-structured journal
// (JournalRecordType::kFlightRecord) on every commit/heartbeat, so a
// confirmed-dead node's last moments — the in-flight phase stack, the most
// recent N events, the last value of every counter (pending faults,
// commit sequence) — can be recovered from the journal media alone and
// rendered as a post-mortem report.
//
// Determinism contract (the post-mortem is part of the fleet's 1-vs-8-worker
// byte-identity gate): events carry sim-time and a monotonic seq only; the
// ring drops strictly oldest-first; serialize() is a pure little-endian
// function of the recorder state; post_mortem() renders integers and
// fixed-point microseconds, never floats, never host state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace ckpt::obs {

enum class FlightEventKind : std::uint8_t {
  kSpanBegin = 1,
  kSpanEnd = 2,
  kInstant = 3,
  kCounter = 4,
};

[[nodiscard]] const char* to_string(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;  ///< monotonic emission order (survives ring drops)
  SimTime ts = 0;         ///< simulated nanoseconds
  FlightEventKind kind = FlightEventKind::kInstant;
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

class FlightRecorder {
 public:
  /// Small by design: the black box keeps the *recent* story, the full
  /// story lives in the TraceRecorder while the node is up.
  static constexpr std::size_t kDefaultCapacity = 32;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  // --- Emission (explicit sim timestamps; the recorder has no clock) --------
  void span_begin(SimTime ts, std::string_view name, std::uint64_t value = 0);
  void span_end(SimTime ts, std::string_view name, std::uint64_t value = 0);
  void instant(SimTime ts, std::string_view name, std::uint64_t value = 0);
  void counter(SimTime ts, std::string_view name, std::uint64_t value);

  // --- Introspection --------------------------------------------------------
  [[nodiscard]] const std::deque<FlightEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// One open (begun, not yet ended) span — the in-flight phase.
  struct OpenSpan {
    SimTime since = 0;
    std::string name;
    std::uint64_t value = 0;

    friend bool operator==(const OpenSpan&, const OpenSpan&) = default;
  };
  /// Outermost-first stack of in-flight phases.  Tracked independently of
  /// the ring, so a begin dropped from the ring still reports as in-flight.
  [[nodiscard]] const std::vector<OpenSpan>& open_spans() const { return open_; }

  /// Last sample per counter name (sorted — pending faults, sequence etc).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& last_counters() const {
    return counters_;
  }

  void clear();

  // --- Persistence ----------------------------------------------------------
  /// Byte-exact little-endian encoding of the full recorder state; this is
  /// the payload the journal envelopes as a kFlightRecord record.
  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Rebuild a recorder from serialize() output.  Throws
  /// util::SerializeError on malformed bytes (the journal's CRC64 envelope
  /// makes that effectively unreachable in practice).
  [[nodiscard]] static FlightRecorder deserialize(std::span<const std::byte> bytes);

  friend bool operator==(const FlightRecorder&, const FlightRecorder&) = default;

  /// Deterministic human-readable post-mortem: in-flight phase stack, the
  /// last N events (newest last), and the final counter samples.
  [[nodiscard]] std::string post_mortem() const;

 private:
  void push(SimTime ts, FlightEventKind kind, std::string_view name, std::uint64_t value);

  std::size_t capacity_;
  std::deque<FlightEvent> events_;
  std::vector<OpenSpan> open_;
  std::map<std::string, std::uint64_t> counters_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ckpt::obs
