// The Observer sink: one attachable bundle of TraceRecorder + MetricsRegistry.
//
// Every instrumented layer (SimKernel, CheckpointEngine, ReplicatedStore,
// RecoveryManager, the fault injectors, TortureHarness) takes an
// `Observer*` that defaults to null.  The disabled path is therefore a
// single pointer test per hook — no virtual dispatch, no allocation, no
// formatting — so observability costs nothing unless a sink is attached.
//
// Wiring: attach the Observer to a SimKernel first
// (`kernel.set_observer(&obs)`), which binds the trace clock to the
// kernel's *effective* time (now() + step_charge(), so events emitted while
// the scheduler clock is frozen inside a step still advance).  Layers
// without a kernel (ReplicatedStore) reuse the same Observer and inherit
// that clock.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ckpt::obs {

class Observer {
 public:
  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  void set_clock(TraceRecorder::Clock clock) { trace_.set_clock(std::move(clock)); }
  [[nodiscard]] SimTime now() const { return trace_.now(); }

  /// Drop recorded events and metric values (the clock binding stays).
  void reset() {
    trace_.clear();
    metrics_.clear();
  }

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

/// Null-tolerant tracer accessor for call sites holding an Observer*.
[[nodiscard]] inline TraceRecorder* tracer(Observer* observer) {
  return observer == nullptr ? nullptr : &observer->trace();
}

}  // namespace ckpt::obs
