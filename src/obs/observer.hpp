// The Observer sink: one attachable bundle of TraceRecorder + MetricsRegistry.
//
// Every instrumented layer (SimKernel, CheckpointEngine, ReplicatedStore,
// RecoveryManager, the fault injectors, TortureHarness) takes an
// `Observer*` that defaults to null.  The disabled path is therefore a
// single pointer test per hook — no virtual dispatch, no allocation, no
// formatting — so observability costs nothing unless a sink is attached.
//
// Wiring: attach the Observer to a SimKernel first
// (`kernel.set_observer(&obs)`), which binds the trace clock to the
// kernel's *effective* time (now() + step_charge(), so events emitted while
// the scheduler clock is frozen inside a step still advance).  Layers
// without a kernel (ReplicatedStore) reuse the same Observer and inherit
// that clock.
//
// Determinism contract: everything an Observer records derives from
// simulated time and deterministic sequence numbers — never host time,
// host thread ids or pointers — and instrumented parallel sections must
// not emit from pool workers (they ledger sim-time charges and render
// events after the ordered join).  Exports are therefore byte-identical
// across runs and for any CKPT_WORKERS value, and attaching an Observer
// never perturbs the simulation it observes: hooks record, they never
// charge sim time themselves.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ckpt::obs {

class Observer {
 public:
  /// The trace ring reports every eviction as the explicit
  /// `obs.trace_dropped` counter, so a capped soak trace is visibly capped
  /// rather than silently truncated.  The hook captures `this`, so the
  /// bundle is pinned (non-copyable, non-movable) — every consumer already
  /// holds it by pointer.
  Observer() {
    trace_.set_drop_hook([this] { metrics_.add("obs.trace_dropped"); });
  }
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Span/instant/counter event log, stamped with sim-time + monotonic
  /// seq; exports deterministic Chrome trace-event JSON.
  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  /// Counters/gauges/histograms; snapshots are sorted and integer-only, so
  /// two identical runs serialize byte-identically.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Bind the trace clock (normally done by kernel.set_observer, which
  /// also unbinds it on kernel destruction).  The clock must read
  /// *simulated* time; binding a host clock would break replay identity.
  void set_clock(TraceRecorder::Clock clock) { trace_.set_clock(std::move(clock)); }
  /// Current trace-clock reading (0 when no clock is bound).
  [[nodiscard]] SimTime now() const { return trace_.now(); }

  /// Drop recorded events and metric values (the clock binding stays).
  void reset() {
    trace_.clear();
    metrics_.clear();
  }

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

/// Null-tolerant tracer accessor for call sites holding an Observer*.
[[nodiscard]] inline TraceRecorder* tracer(Observer* observer) {
  return observer == nullptr ? nullptr : &observer->trace();
}

}  // namespace ckpt::obs
