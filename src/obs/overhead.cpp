#include "obs/overhead.hpp"

#include "obs/json.hpp"

namespace ckpt::obs {
namespace {

void append_time(std::string& out, SimTime t) {
  json_append_micros(out, t);
  out += "us";
}

void append_row(std::string& out, const std::string& label, const OverheadLedger& l) {
  out += label + " useful=";
  append_time(out, l.useful);
  out += " checkpoint=";
  append_time(out, l.checkpoint);
  out += " rework=";
  append_time(out, l.rework);
  out += " commits=" + std::to_string(l.commits);
  out += " overhead=" + std::to_string(l.overhead_permille()) + "permille\n";
}

}  // namespace

void OverheadAccountant::charge_useful(int node, SimTime t) {
  if (t == 0) return;
  nodes_[node].useful += t;
  fleet_.useful += t;
}

void OverheadAccountant::charge_checkpoint(int node, SimTime t) {
  OverheadLedger& ledger = nodes_[node];
  ledger.checkpoint += t;
  ++ledger.commits;
  fleet_.checkpoint += t;
  ++fleet_.commits;
}

void OverheadAccountant::charge_rework(int node, SimTime t) {
  OverheadLedger& ledger = nodes_[node];
  ledger.rework += t;
  ++ledger.reworks;
  fleet_.rework += t;
  ++fleet_.reworks;
}

void OverheadAccountant::observe_failure(SimTime now) {
  if (failures_++ == 0) {
    first_failure_at_ = now;
    last_failure_at_ = now;
    return;
  }
  if (now > last_failure_at_) {
    ++gap_count_;
    last_failure_at_ = now;
  }
}

const OverheadLedger* OverheadAccountant::node(int id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

SimTime OverheadAccountant::measured_mtbf() const {
  if (gap_count_ == 0) return 0;
  return (last_failure_at_ - first_failure_at_) / gap_count_;
}

SimTime OverheadAccountant::mean_commit_cost() const {
  if (fleet_.commits == 0) return 0;
  return fleet_.checkpoint / fleet_.commits;
}

void OverheadAccountant::clear() {
  nodes_.clear();
  fleet_ = OverheadLedger{};
  failures_ = 0;
  first_failure_at_ = 0;
  last_failure_at_ = 0;
  gap_count_ = 0;
}

std::string OverheadAccountant::table() const {
  std::string out = "overhead ledger (" + std::to_string(nodes_.size()) + " nodes, " +
                    std::to_string(failures_) + " failures, measured mtbf=";
  append_time(out, measured_mtbf());
  out += ")\n";
  for (const auto& [id, ledger] : nodes_) {
    append_row(out, "  node" + std::to_string(id), ledger);
  }
  append_row(out, "  fleet", fleet_);
  return out;
}

}  // namespace ckpt::obs
