#include "obs/rollup.hpp"

#include "obs/json.hpp"

namespace ckpt::obs {

void FleetTelemetry::ingest(int node, const MetricsRegistry& metrics) {
  nodes_.insert_or_assign(node, metrics);
}

void FleetTelemetry::clear() { nodes_.clear(); }

const MetricsRegistry* FleetTelemetry::node(int id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

MetricsRegistry FleetTelemetry::fleet() const {
  MetricsRegistry merged;
  for (const auto& [id, registry] : nodes_) merged.merge(registry);
  return merged;
}

std::optional<FleetTelemetry::Quantiles> FleetTelemetry::quantiles(
    std::string_view histogram) const {
  std::optional<HistogramData> merged;
  for (const auto& [id, registry] : nodes_) {
    const HistogramData* h = registry.histogram(histogram);
    if (h == nullptr) continue;
    if (!merged.has_value()) {
      merged = *h;
    } else {
      merged->merge(*h);
    }
  }
  if (!merged.has_value()) return std::nullopt;
  Quantiles q;
  q.count = merged->count;
  q.p50 = merged->percentile(500);
  q.p95 = merged->percentile(950);
  q.p99 = merged->percentile(990);
  return q;
}

std::vector<FleetTelemetry::Outlier> FleetTelemetry::outliers(
    std::string_view histogram) const {
  std::vector<Outlier> out;
  const auto fleet_q = quantiles(histogram);
  if (!fleet_q.has_value() || fleet_q->p50 == 0) return out;
  for (const auto& [id, registry] : nodes_) {
    const HistogramData* h = registry.histogram(histogram);
    if (h == nullptr || h->count < options_.min_samples) continue;
    const std::uint64_t node_p50 = h->percentile(500);
    if (node_p50 * 1000 > fleet_q->p50 * options_.outlier_factor_permille) {
      out.push_back(Outlier{id, node_p50, fleet_q->p50});
    }
  }
  return out;
}

std::string FleetTelemetry::rollup_json(std::string_view outlier_histogram) const {
  std::string out = "{\n  \"nodes\": " + std::to_string(nodes_.size()) + ",\n";
  out += "  \"histograms\": {";
  bool first = true;
  // Every histogram name any node carries, sorted and deduplicated.
  std::map<std::string, std::uint8_t, std::less<>> hist_names;
  for (const auto& [id, registry] : nodes_) {
    for (const auto& name : registry.histogram_names()) hist_names.emplace(name, 0);
  }
  for (const auto& [name, unused] : hist_names) {
    const auto q = quantiles(name);
    if (!q.has_value()) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": {\"count\": " + std::to_string(q->count) +
           ", \"p50\": " + std::to_string(q->p50) +
           ", \"p95\": " + std::to_string(q->p95) +
           ", \"p99\": " + std::to_string(q->p99) + "}";
  }
  out += first ? "}" : "\n  }";
  if (!outlier_histogram.empty()) {
    out += ",\n  \"outliers\": {";
    out += "\n    \"histogram\": ";
    json_append_quoted(out, outlier_histogram);
    out += ",\n    \"factor_permille\": " +
           std::to_string(options_.outlier_factor_permille);
    out += ",\n    \"nodes\": [";
    bool first_outlier = true;
    for (const Outlier& outlier : outliers(outlier_histogram)) {
      out += first_outlier ? "" : ", ";
      first_outlier = false;
      out += "{\"node\": " + std::to_string(outlier.node) +
             ", \"p50\": " + std::to_string(outlier.node_p50) +
             ", \"fleet_p50\": " + std::to_string(outlier.fleet_p50) + "}";
    }
    out += "]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace ckpt::obs
