#include "obs/flightrec.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/serialize.hpp"

namespace ckpt::obs {
namespace {

/// Bumped if the encoding ever changes shape; recovery rejects unknown
/// versions instead of misparsing them.
constexpr std::uint32_t kFlightFormatVersion = 1;

void append_time(std::string& out, SimTime ts) {
  json_append_micros(out, ts);
  out += "us";
}

}  // namespace

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpanBegin: return "begin";
    case FlightEventKind::kSpanEnd: return "end";
    case FlightEventKind::kInstant: return "instant";
    case FlightEventKind::kCounter: return "counter";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::push(SimTime ts, FlightEventKind kind, std::string_view name,
                          std::uint64_t value) {
  FlightEvent event;
  event.seq = next_seq_++;
  event.ts = ts;
  event.kind = kind;
  event.name.assign(name);
  event.value = value;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void FlightRecorder::span_begin(SimTime ts, std::string_view name, std::uint64_t value) {
  push(ts, FlightEventKind::kSpanBegin, name, value);
  open_.push_back(OpenSpan{ts, std::string(name), value});
}

void FlightRecorder::span_end(SimTime ts, std::string_view name, std::uint64_t value) {
  push(ts, FlightEventKind::kSpanEnd, name, value);
  // Close the innermost matching open span; an unmatched end is recorded in
  // the ring but cannot corrupt the phase stack.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name == name) {
      open_.erase(std::next(it).base());
      break;
    }
  }
}

void FlightRecorder::instant(SimTime ts, std::string_view name, std::uint64_t value) {
  push(ts, FlightEventKind::kInstant, name, value);
}

void FlightRecorder::counter(SimTime ts, std::string_view name, std::uint64_t value) {
  push(ts, FlightEventKind::kCounter, name, value);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void FlightRecorder::clear() {
  events_.clear();
  open_.clear();
  counters_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::vector<std::byte> FlightRecorder::serialize() const {
  util::Serializer out;
  out.put<std::uint32_t>(kFlightFormatVersion);
  out.put<std::uint64_t>(capacity_);
  out.put<std::uint64_t>(next_seq_);
  out.put<std::uint64_t>(dropped_);
  out.put<std::uint64_t>(events_.size());
  for (const FlightEvent& event : events_) {
    out.put<std::uint64_t>(event.seq);
    out.put<SimTime>(event.ts);
    out.put<FlightEventKind>(event.kind);
    out.put_string(event.name);
    out.put<std::uint64_t>(event.value);
  }
  out.put<std::uint64_t>(open_.size());
  for (const OpenSpan& span : open_) {
    out.put<SimTime>(span.since);
    out.put_string(span.name);
    out.put<std::uint64_t>(span.value);
  }
  out.put<std::uint64_t>(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.put_string(name);
    out.put<std::uint64_t>(value);
  }
  return std::move(out).take();
}

FlightRecorder FlightRecorder::deserialize(std::span<const std::byte> bytes) {
  util::Deserializer in(bytes);
  const auto version = in.get<std::uint32_t>();
  if (version != kFlightFormatVersion) {
    throw util::SerializeError("flight record: unknown format version");
  }
  FlightRecorder out(static_cast<std::size_t>(in.get<std::uint64_t>()));
  out.next_seq_ = in.get<std::uint64_t>();
  out.dropped_ = in.get<std::uint64_t>();
  const auto events = in.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < events; ++i) {
    FlightEvent event;
    event.seq = in.get<std::uint64_t>();
    event.ts = in.get<SimTime>();
    event.kind = in.get<FlightEventKind>();
    event.name = in.get_string();
    event.value = in.get<std::uint64_t>();
    out.events_.push_back(std::move(event));
  }
  const auto open = in.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < open; ++i) {
    OpenSpan span;
    span.since = in.get<SimTime>();
    span.name = in.get_string();
    span.value = in.get<std::uint64_t>();
    out.open_.push_back(std::move(span));
  }
  const auto counters = in.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < counters; ++i) {
    std::string name = in.get_string();
    const auto value = in.get<std::uint64_t>();
    out.counters_.emplace(std::move(name), value);
  }
  if (!in.at_end()) throw util::SerializeError("flight record: trailing bytes");
  return out;
}

std::string FlightRecorder::post_mortem() const {
  std::string out = "flight: " + std::to_string(events_.size()) + " events";
  if (!events_.empty()) {
    out += " (seq " + std::to_string(events_.front().seq) + ".." +
           std::to_string(events_.back().seq) + ")";
  }
  out += ", " + std::to_string(dropped_) + " dropped\n";
  out += "in-flight:";
  if (open_.empty()) {
    out += " (idle)\n";
  } else {
    for (const OpenSpan& span : open_) {
      out += " " + span.name + "@";
      append_time(out, span.since);
    }
    out += "\n";
  }
  for (const FlightEvent& event : events_) {
    out += "  [" + std::to_string(event.seq) + "] ";
    append_time(out, event.ts);
    out += " ";
    out += to_string(event.kind);
    out += " " + event.name + "=" + std::to_string(event.value) + "\n";
  }
  out += "counters:";
  if (counters_.empty()) {
    out += " (none)";
  } else {
    for (const auto& [name, value] : counters_) {
      out += " " + name + "=" + std::to_string(value);
    }
  }
  out += "\n";
  return out;
}

}  // namespace ckpt::obs
