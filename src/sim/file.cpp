#include "sim/file.hpp"

#include <algorithm>

namespace ckpt::sim {

const char* to_string(FileKind kind) {
  switch (kind) {
    case FileKind::kRegular: return "regular";
    case FileKind::kDevice: return "device";
    case FileKind::kProcEntry: return "proc";
    case FileKind::kPipe: return "pipe";
    case FileKind::kSocket: return "socket";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FdTable
// ---------------------------------------------------------------------------

Fd FdTable::install(std::shared_ptr<OpenFileDescription> ofd) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]) {
      slots_[i] = std::move(ofd);
      return static_cast<Fd>(i);
    }
  }
  slots_.push_back(std::move(ofd));
  return static_cast<Fd>(slots_.size() - 1);
}

bool FdTable::install_at(Fd fd, std::shared_ptr<OpenFileDescription> ofd) {
  if (fd < 0) return false;
  if (static_cast<std::size_t>(fd) >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(fd) + 1);
  }
  if (slots_[static_cast<std::size_t>(fd)]) return false;
  slots_[static_cast<std::size_t>(fd)] = std::move(ofd);
  return true;
}

std::shared_ptr<OpenFileDescription> FdTable::get(Fd fd) const {
  if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size()) return nullptr;
  return slots_[static_cast<std::size_t>(fd)];
}

bool FdTable::close(Fd fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= slots_.size() ||
      !slots_[static_cast<std::size_t>(fd)]) {
    return false;
  }
  auto& ofd = slots_[static_cast<std::size_t>(fd)];
  if (ofd->pipe) {
    // Closing the last descriptor on an end marks that end closed.
    if (ofd.use_count() == 1) {
      if (ofd->pipe_write_end) ofd->pipe->write_end_open = false;
      else ofd->pipe->read_end_open = false;
    }
  }
  ofd.reset();
  return true;
}

Fd FdTable::dup(Fd fd) {
  auto ofd = get(fd);
  if (!ofd) return kBadFd;
  return install(std::move(ofd));  // shares offset, as POSIX dup does
}

std::size_t FdTable::open_count() const {
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(), [](const auto& p) { return p != nullptr; }));
}

// ---------------------------------------------------------------------------
// SimFileSystem
// ---------------------------------------------------------------------------

std::shared_ptr<SimFile> SimFileSystem::create(const std::string& path,
                                               std::vector<std::byte> contents) {
  auto file = std::make_shared<SimFile>();
  file->path = path;
  file->data = std::move(contents);
  files_[path] = file;
  return file;
}

std::shared_ptr<SimFile> SimFileSystem::lookup(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

bool SimFileSystem::unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  it->second->deleted = true;
  files_.erase(it);
  return true;
}

bool SimFileSystem::exists(const std::string& path) const {
  return files_.count(path) != 0;
}

void SimFileSystem::register_device(const std::string& path, DeviceHooks hooks) {
  devices_[path] = std::make_unique<DeviceHooks>(std::move(hooks));
}

void SimFileSystem::unregister_device(const std::string& path) { devices_.erase(path); }

DeviceHooks* SimFileSystem::device(const std::string& path) {
  auto it = devices_.find(path);
  return it == devices_.end() ? nullptr : it->second.get();
}

void SimFileSystem::register_proc_entry(const std::string& path, ProcEntryHooks hooks) {
  proc_entries_[path] = std::make_unique<ProcEntryHooks>(std::move(hooks));
}

void SimFileSystem::unregister_proc_entry(const std::string& path) {
  proc_entries_.erase(path);
}

ProcEntryHooks* SimFileSystem::proc_entry(const std::string& path) {
  auto it = proc_entries_.find(path);
  return it == proc_entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SimFileSystem::list_proc_entries() const {
  std::vector<std::string> out;
  out.reserve(proc_entries_.size());
  for (const auto& [path, hooks] : proc_entries_) out.push_back(path);
  return out;
}

std::vector<std::string> SimFileSystem::list_devices() const {
  std::vector<std::string> out;
  out.reserve(devices_.size());
  for (const auto& [path, hooks] : devices_) out.push_back(path);
  return out;
}

}  // namespace ckpt::sim
