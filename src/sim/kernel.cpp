#include "sim/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/observer.hpp"
#include "sim/userapi.hpp"
#include "util/log.hpp"

namespace ckpt::sim {
namespace {

/// Thrown when the currently executing task is terminated mid-step so the
/// guest's C++ frame unwinds back to the scheduler.
struct TaskTerminated {};

}  // namespace

SimKernel::SimKernel(int ncpus, CostModel costs, std::uint64_t seed)
    : ncpus_(ncpus),
      costs_(costs),
      rng_(seed),
      cpu_active_aspace_(ncpus, kNoPid),
      cpu_last_task_(ncpus, kNoPid) {
  if (ncpus < 1) throw std::invalid_argument("SimKernel: ncpus must be >= 1");
}

SimKernel::~SimKernel() {
  // The attached observer's trace clock captures `this` (see set_observer);
  // unbind it so an observer outliving the kernel — a failed cluster node,
  // a per-soak kernel — never calls into freed memory.
  if (observer_ != nullptr) observer_->set_clock({});
}

void SimKernel::set_observer(obs::Observer* observer) {
  observer_ = observer;
  if (observer_ != nullptr) {
    observer_->set_clock([this] { return effective_now(); });
  }
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

Process& SimKernel::allocate_process(std::string name, bool kernel_thread,
                                     std::optional<Pid> desired) {
  Pid pid;
  if (desired.has_value()) {
    if (pid_in_use(*desired)) {
      throw std::runtime_error("pid " + std::to_string(*desired) + " already in use");
    }
    pid = *desired;
  } else {
    while (pid_in_use(next_pid_)) ++next_pid_;
    pid = next_pid_++;
  }
  auto aspace = kernel_thread ? nullptr : std::make_unique<AddressSpace>(&physmem_);
  auto proc = std::make_unique<Process>(pid, std::move(name), std::move(aspace));
  proc->is_kernel_thread = kernel_thread;
  // CFS-style placement: a new task joins at the queue's minimum fairness
  // clock so it neither starves existing tasks nor is starved by them.
  proc->sched.vruntime = min_timeshare_vruntime();
  Process& ref = *proc;
  tasks_.emplace(pid, std::move(proc));
  return ref;
}

SimTime SimKernel::min_timeshare_vruntime() const {
  // Minimum over *runnable* timeshare tasks: a sleeper being re-placed must
  // not count its own stale clock (or other sleepers') as the queue minimum.
  SimTime minimum = 0;
  bool found = false;
  for (const auto& [pid, proc] : tasks_) {
    if (!proc->runnable() || proc->sched.cls != SchedClass::kTimeshare) continue;
    if (!found || proc->sched.vruntime < minimum) {
      minimum = proc->sched.vruntime;
      found = true;
    }
  }
  return minimum;
}

void SimKernel::build_standard_layout(Process& proc, const SpawnOptions& options) {
  AddressSpace& as = *proc.aspace;
  as.map_region(kCodeBase, options.code_pages, kProtRX, VmaKind::kCode, "text");
  as.map_region(kDataBase, options.data_pages, kProtRW, VmaKind::kData, "data");
  as.map_region(kHeapBase, options.heap_pages, kProtRW, VmaKind::kHeap, "heap");
  const VAddr stack_base = kStackTop - options.stack_pages * kPageSize;
  as.map_region(stack_base, options.stack_pages, kProtRW, VmaKind::kStack, "stack");
  proc.heap_base = kHeapBase;
  proc.brk = kHeapBase + options.heap_pages * kPageSize;
  proc.threads.clear();
  for (int t = 0; t < options.thread_count; ++t) {
    Thread thread;
    thread.tid = t + 1;
    thread.regs.pc = kCodeBase;
    thread.regs.sp = kStackTop - static_cast<std::uint64_t>(t) * 2 * kPageSize;
    proc.threads.push_back(thread);
  }
  // Adopt the requested scheduling parameters but keep the CFS placement
  // assigned at allocation — a task spawned late must not start with a
  // stale-zero fairness clock and starve everything else.
  const SimTime placed = proc.sched.vruntime;
  proc.sched = options.sched;
  proc.sched.vruntime = std::max(options.sched.vruntime, placed);
}

Pid SimKernel::spawn(const std::string& guest_type, std::vector<std::byte> guest_config,
                     const SpawnOptions& options) {
  Process& proc = allocate_process(guest_type, /*kernel_thread=*/false, std::nullopt);
  build_standard_layout(proc, options);
  proc.guest_image = GuestImage{guest_type, std::move(guest_config)};
  proc.guest = GuestRegistry::instance().create(proc.guest_image);
  proc.state = TaskState::kReady;
  return proc.pid;
}

Pid SimKernel::create_restored_process(const std::string& name, const GuestImage& image,
                                       std::optional<Pid> desired_pid) {
  Process& proc = allocate_process(name, /*kernel_thread=*/false, desired_pid);
  proc.guest_image = image;
  if (!image.type_name.empty()) {
    proc.guest = GuestRegistry::instance().create(image);
  }
  proc.started = true;  // restored processes resume, they do not re-run on_start
  proc.state = TaskState::kStopped;
  return proc.pid;
}

Pid SimKernel::fork_process(Process& parent, bool freeze_child) {
  Process& child = allocate_process(parent.name + "-fork", false, std::nullopt);
  child.ppid = parent.pid;
  // The COW clone write-protects and refcounts every present page in both
  // address spaces; that page-table walk is the entire cost of the
  // snapshot — page contents are copied lazily on first store.
  charge_time(costs_.fork_cost(parent.aspace->present_page_count()), ChargeKind::kSyscall);
  child.aspace = parent.aspace->clone_cow();
  child.threads = parent.threads;
  child.brk = parent.brk;
  child.heap_base = parent.heap_base;
  child.mmap_next = parent.mmap_next;
  child.signals.disposition = parent.signals.disposition;
  child.signals.mask = parent.signals.mask;
  child.sched = parent.sched;
  child.guest_image = parent.guest_image;
  // Descriptors are shared (same open file descriptions), as in fork(2).
  child.fds = parent.fds;
  child.library_handlers = parent.library_handlers;
  ++kstats_.forks;
  if (freeze_child) {
    child.is_checkpoint_shadow = true;
    child.state = TaskState::kStopped;
  } else {
    child.state = TaskState::kReady;
  }
  return child.pid;
}

Pid SimKernel::sys_fork(Process& parent) {
  const Pid child_pid = fork_process(parent, /*freeze_child=*/false);
  Process& child = process(child_pid);
  child.name = parent.name + "-child";
  child.guest = GuestRegistry::instance().create(parent.guest_image);
  child.started = true;
  for (Thread& t : child.threads) t.regs.gpr[7] = 1;  // ABI: "I am the child"
  return child_pid;
}

void SimKernel::terminate(Process& proc, int exit_code) {
  if (!proc.alive()) return;
  proc.exit_code = exit_code;
  proc.state = TaskState::kZombie;
  for (std::uint16_t port : proc.bound_ports) release_port(port);
  proc.bound_ports.clear();
  proc.fds.clear();
  if (proc.ppid != kNoPid) {
    if (Process* parent = find_process(proc.ppid); parent != nullptr && parent->alive()) {
      parent->signals.raise(kSigChld);
    }
  }
  util::logf(util::LogLevel::kDebug, "kernel", "pid %d (%s) terminated, code %d", proc.pid,
             proc.name.c_str(), exit_code);
  if (current_ == &proc) throw TaskTerminated{};
}

void SimKernel::reap(Pid pid) {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) return;
  if (it->second->state != TaskState::kZombie) {
    throw std::runtime_error("reap: process not a zombie");
  }
  tasks_.erase(it);
}

Process* SimKernel::find_process(Pid pid) {
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

const Process* SimKernel::find_process(Pid pid) const {
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

Process& SimKernel::process(Pid pid) {
  Process* proc = find_process(pid);
  if (proc == nullptr) throw std::runtime_error("no such pid " + std::to_string(pid));
  return *proc;
}

std::vector<Pid> SimKernel::live_pids() const {
  std::vector<Pid> out;
  for (const auto& [pid, proc] : tasks_) {
    if (proc->alive()) out.push_back(pid);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scheduling control
// ---------------------------------------------------------------------------

void SimKernel::stop_process(Process& proc) {
  if (proc.alive()) proc.state = TaskState::kStopped;
}

void SimKernel::resume_process(Process& proc) {
  if (proc.state != TaskState::kStopped) return;
  // Re-place on the fairness clock (computed before this task rejoins the
  // queue): a long-stopped task must not monopolise the CPU to "catch up".
  if (proc.sched.cls == SchedClass::kTimeshare) {
    proc.sched.vruntime = std::max(proc.sched.vruntime, min_timeshare_vruntime());
  }
  proc.state = TaskState::kReady;
}

void SimKernel::block_process(Process& proc, SimTime wake_at) {
  if (!proc.alive()) return;
  proc.state = TaskState::kBlocked;
  proc.wake_deadline = wake_at;
}

void SimKernel::wake_process(Process& proc) {
  if (proc.state == TaskState::kBlocked) {
    // Sleeper re-placement (before rejoining the queue): a task that slept
    // a long time resumes at the queue's fairness clock instead of
    // monopolising the CPU to catch up.
    if (proc.sched.cls == SchedClass::kTimeshare) {
      proc.sched.vruntime = std::max(proc.sched.vruntime, min_timeshare_vruntime());
    }
    proc.state = TaskState::kReady;
    proc.wake_deadline = 0;
  }
}

void SimKernel::wake(Pid pid) {
  if (Process* proc = find_process(pid)) wake_process(*proc);
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

bool SimKernel::send_signal(Pid pid, Signal sig) {
  Process* proc = find_process(pid);
  if (proc == nullptr || !proc->alive()) return false;
  ++kstats_.signals_sent;
  if (sig == kSigKill) {
    // SIGKILL is handled at send time; it cannot be caught or deferred.
    terminate(*proc, 128 + kSigKill);
    return true;
  }
  if (sig == kSigCont) {
    resume_process(*proc);
    return true;
  }
  proc->signals.raise(sig);
  // Delivery happens at the target's next kernel->user transition — i.e.
  // the next time the scheduler runs it.  This deferral is the initiation
  // latency the survey discusses.
  if (proc->state == TaskState::kBlocked && sig != kSigNone) {
    wake_process(*proc);  // signals interrupt sleeps
  }
  return true;
}

void SimKernel::register_kernel_signal(Signal sig, KernelSignalAction action,
                                       KernelModule* module) {
  if (kernel_signals_.count(sig) != 0) {
    throw std::runtime_error(std::string("kernel signal already registered: ") +
                             signal_name(sig));
  }
  kernel_signals_[sig] = std::move(action);
  if (module != nullptr) {
    module->add_cleanup([sig](SimKernel& k) { k.unregister_kernel_signal(sig); });
  }
}

void SimKernel::unregister_kernel_signal(Signal sig) { kernel_signals_.erase(sig); }

bool SimKernel::has_kernel_signal(Signal sig) const {
  return kernel_signals_.count(sig) != 0;
}

void SimKernel::deliver_pending_signals(Process& proc) {
  int guard = 0;
  while (proc.alive() && proc.state != TaskState::kStopped) {
    const Signal sig = proc.signals.next_deliverable();
    if (sig == kSigNone) break;
    if (++guard > 64) break;  // runaway handler re-raising
    proc.signals.clear(sig);

    // Kernel-extension signals act in kernel mode, before user dispatch.
    if (auto it = kernel_signals_.find(sig); it != kernel_signals_.end()) {
      it->second(*this, proc);
      continue;
    }

    const SignalDisposition disp = proc.signals.disposition[sig];
    if (disp == SignalDisposition::kIgnore) continue;
    if (disp == SignalDisposition::kHandler) {
      ++proc.stats.signals_taken;
      charge_time(costs_.signal_delivery_ns, ChargeKind::kSignal);
      if (auto lh = proc.library_handlers.find(sig); lh != proc.library_handlers.end()) {
        lh->second(*this, proc, sig);
      } else if (proc.guest) {
        UserApi api(*this, proc);
        proc.guest->on_signal(api, sig);
      }
      continue;
    }
    switch (default_action(sig)) {
      case DefaultAction::kTerminate:
        terminate(proc, 128 + sig);
        return;
      case DefaultAction::kIgnore:
        break;
      case DefaultAction::kStop:
        proc.state = TaskState::kStopped;
        return;
      case DefaultAction::kContinue:
        resume_process(proc);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Syscall extension
// ---------------------------------------------------------------------------

void SimKernel::register_syscall(const std::string& name, SyscallHandler handler,
                                 KernelModule* module) {
  if (syscalls_.count(name) != 0) {
    throw std::runtime_error("syscall already registered: " + name);
  }
  syscalls_[name] = std::move(handler);
  if (module != nullptr) {
    module->add_cleanup([name](SimKernel& k) { k.unregister_syscall(name); });
  }
}

void SimKernel::unregister_syscall(const std::string& name) { syscalls_.erase(name); }

bool SimKernel::has_syscall(const std::string& name) const {
  return syscalls_.count(name) != 0;
}

std::int64_t SimKernel::invoke_syscall(const std::string& name, Process& caller,
                                       std::uint64_t a0, std::uint64_t a1, std::uint64_t a2) {
  auto it = syscalls_.find(name);
  if (it == syscalls_.end()) return -38;  // ENOSYS
  return it->second(*this, caller, a0, a1, a2);
}

// ---------------------------------------------------------------------------
// Kernel threads
// ---------------------------------------------------------------------------

Pid SimKernel::spawn_kernel_thread(const std::string& name, KThreadBody body,
                                   SchedParams sched) {
  Process& proc = allocate_process(name, /*kernel_thread=*/true, std::nullopt);
  proc.sched = sched;
  proc.state = TaskState::kBlocked;  // kernel threads sleep until woken
  kthread_bodies_[proc.pid] = std::move(body);
  return proc.pid;
}

// ---------------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------------

KernelModule& SimKernel::load_module(const std::string& name) {
  if (modules_.count(name) != 0) throw std::runtime_error("module already loaded: " + name);
  auto module = std::make_unique<KernelModule>(name);
  KernelModule& ref = *module;
  modules_.emplace(name, std::move(module));
  return ref;
}

void SimKernel::unload_module(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw std::runtime_error("module not loaded: " + name);
  // Run cleanups in reverse registration order.
  auto& cleanups = it->second->cleanup_;
  for (auto rit = cleanups.rbegin(); rit != cleanups.rend(); ++rit) (*rit)(*this);
  modules_.erase(it);
}

bool SimKernel::module_loaded(const std::string& name) const {
  return modules_.count(name) != 0;
}

std::vector<std::string> SimKernel::loaded_modules() const {
  std::vector<std::string> out;
  for (const auto& [name, module] : modules_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Ports
// ---------------------------------------------------------------------------

bool SimKernel::bind_port(std::uint16_t port, Pid owner) {
  auto [it, inserted] = ports_.emplace(port, owner);
  return inserted;
}

void SimKernel::release_port(std::uint16_t port) { ports_.erase(port); }

Pid SimKernel::port_owner(std::uint16_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? kNoPid : it->second;
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void SimKernel::add_timer(SimTime when, std::function<void(SimKernel&)> fn) {
  timers_.push_back(PendingTimer{when, timer_seq_++, std::move(fn)});
  std::sort(timers_.begin(), timers_.end());
}

void SimKernel::kill_process_at(SimTime when, Pid pid) {
  add_timer(when, [pid](SimKernel& kernel) {
    Process* proc = kernel.find_process(pid);
    if (proc == nullptr || !proc->alive()) return;
    kernel.terminate(*proc, 128 + kSigKill);
    kernel.reap(pid);
  });
}

void SimKernel::stop_process_at(SimTime when, Pid pid) {
  add_timer(when, [pid](SimKernel& kernel) {
    Process* proc = kernel.find_process(pid);
    if (proc == nullptr || !proc->alive()) return;
    kernel.stop_process(*proc);
  });
}

bool SimKernel::drop_pending_signal(Pid pid, Signal sig) {
  Process* proc = find_process(pid);
  if (proc == nullptr || !proc->signals.is_pending(sig)) return false;
  proc->signals.clear(sig);
  return true;
}

void SimKernel::fire_timers() {
  while (!timers_.empty() && timers_.front().when <= clock_) {
    auto timer = std::move(timers_.front());
    timers_.erase(timers_.begin());
    timer.fn(*this);
  }
  for (auto& [pid, proc] : tasks_) {
    if (proc->alive()) handle_process_timers(*proc);
  }
}

void SimKernel::handle_process_timers(Process& proc) {
  if (proc.alarm_deadline != 0 && clock_ >= proc.alarm_deadline) {
    if (proc.itimer_interval != 0) {
      proc.alarm_deadline = clock_ + proc.itimer_interval;
    } else {
      proc.alarm_deadline = 0;
    }
    send_signal(proc.pid, kSigAlrm);
  }
  if (proc.state == TaskState::kBlocked && proc.wake_deadline != 0 &&
      clock_ >= proc.wake_deadline) {
    wake_process(proc);
  }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Process* SimKernel::pick_next(std::set<Pid>& already_running) {
  Process* best_fifo = nullptr;
  Process* best_ts = nullptr;
  for (auto& [pid, proc] : tasks_) {
    if (!proc->alive() || !proc->runnable()) continue;
    if (already_running.count(pid) != 0) continue;
    if (proc->sched.cls == SchedClass::kFifo) {
      if (best_fifo == nullptr || proc->sched.rt_priority > best_fifo->sched.rt_priority) {
        best_fifo = proc.get();
      }
    } else {
      if (best_ts == nullptr || proc->sched.vruntime < best_ts->sched.vruntime) {
        best_ts = proc.get();
      }
    }
  }
  // SCHED_FIFO strictly preempts the timeshare class — the property the
  // survey relies on for prompt kernel-thread checkpointing.
  return best_fifo != nullptr ? best_fifo : best_ts;
}

bool SimKernel::run_round() {
  fire_timers();
  ++kstats_.rounds;

  std::set<Pid> chosen;
  std::vector<Pid> to_run;
  for (int cpu = 0; cpu < ncpus_; ++cpu) {
    Process* next = pick_next(chosen);
    if (next == nullptr) break;
    chosen.insert(next->pid);
    to_run.push_back(next->pid);
  }

  if (to_run.empty()) {
    // Idle: skip to the next timer event (or one quantum if none).
    SimTime next_event = clock_ + quantum_;
    if (!timers_.empty()) next_event = std::min(next_event, timers_.front().when);
    for (auto& [pid, proc] : tasks_) {
      if (proc->alive() && proc->state == TaskState::kBlocked && proc->wake_deadline != 0) {
        next_event = std::min(next_event, proc->wake_deadline);
      }
      if (proc->alive() && proc->alarm_deadline != 0) {
        next_event = std::min(next_event, proc->alarm_deadline);
      }
    }
    clock_ = std::max(next_event, clock_ + 1);
    return false;
  }

  SimTime longest = 0;
  for (std::size_t i = 0; i < to_run.size(); ++i) {
    Process* proc = find_process(to_run[i]);
    if (proc == nullptr || !proc->alive() || !proc->runnable()) continue;
    longest = std::max(longest, step_task(*proc, static_cast<int>(i)));
  }
  clock_ += std::max(quantum_, longest);
  return true;
}

SimTime SimKernel::step_task(Process& proc, int cpu) {
  current_ = &proc;
  current_cpu_ = cpu;
  step_consumed_ = 0;

  if (cpu_last_task_[cpu] != proc.pid) {
    cpu_last_task_[cpu] = proc.pid;
    ++kstats_.context_switches;
    charge_time(costs_.context_switch_ns, ChargeKind::kCompute);
  }
  if (!proc.is_kernel_thread) {
    // Running a user task installs its page tables on this CPU.
    if (cpu_active_aspace_[cpu] != proc.pid) {
      cpu_active_aspace_[cpu] = proc.pid;
      ++kstats_.aspace_switches;
    }
  }

  try {
    // Kernel->user transition: pending signals are acted on now.
    deliver_pending_signals(proc);
    if (proc.alive() && proc.runnable()) {
      proc.state = TaskState::kRunning;
      if (proc.is_kernel_thread) {
        auto it = kthread_bodies_.find(proc.pid);
        if (it == kthread_bodies_.end()) {
          terminate(proc, 0);
        } else {
          switch (it->second(*this)) {
            case KStepResult::kContinue:
              break;
            case KStepResult::kSleep:
              proc.state = TaskState::kBlocked;
              break;
            case KStepResult::kExit:
              terminate(proc, 0);
              break;
          }
        }
      } else {
        UserApi api(*this, proc);
        if (!proc.started) {
          proc.guest->on_start(api);
          proc.started = true;
        } else {
          switch (proc.guest->on_step(api)) {
            case GuestStatus::kRunning:
              break;
            case GuestStatus::kBlocked:
              if (proc.state == TaskState::kRunning) proc.state = TaskState::kBlocked;
              break;
            case GuestStatus::kExited:
              terminate(proc, 0);
              break;
          }
        }
      }
    }
  } catch (const TaskTerminated&) {
    // Task died mid-step; fall through to bookkeeping.
  }

  if (proc.state == TaskState::kRunning) proc.state = TaskState::kReady;
  if (proc.sched.cls == SchedClass::kTimeshare) {
    proc.sched.vruntime += std::max<SimTime>(step_consumed_, quantum_);
  }
  const SimTime consumed = step_consumed_;
  current_ = nullptr;
  step_consumed_ = 0;
  return consumed;
}

void SimKernel::run_until(SimTime deadline) {
  while (clock_ < deadline) {
    bool any_alive = false;
    for (auto& [pid, proc] : tasks_) {
      if (proc->alive()) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive && timers_.empty()) break;
    run_round();
  }
}

bool SimKernel::run_while(const std::function<bool()>& keep_going, SimTime deadline) {
  while (keep_going()) {
    if (deadline != 0 && clock_ >= deadline) return false;
    bool any_alive = false;
    for (auto& [pid, proc] : tasks_) {
      if (proc->alive()) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive && timers_.empty()) return false;
    run_round();
  }
  return true;
}

void SimKernel::idle_until(SimTime t) {
  if (t > clock_) clock_ = t;
  fire_timers();
}

// ---------------------------------------------------------------------------
// Kernel-mode memory access & charging
// ---------------------------------------------------------------------------

void SimKernel::charge_time(SimTime t, ChargeKind kind) {
  if (current_ == nullptr) {
    clock_ += t;
    return;
  }
  step_consumed_ += t;
  current_->stats.cpu_time += t;
  switch (kind) {
    case ChargeKind::kCompute:
      break;
    case ChargeKind::kSyscall:
      current_->stats.syscall_time += t;
      break;
    case ChargeKind::kFault:
      current_->stats.fault_time += t;
      break;
    case ChargeKind::kSignal:
      current_->stats.signal_time += t;
      break;
  }
}

void SimKernel::charge_kernel_field_reads(std::uint64_t fields) {
  charge_time(fields * costs_.kernel_field_access_ns, ChargeKind::kCompute);
}

void SimKernel::kernel_copy_from_user(Process& target, PageNum page,
                                      std::span<std::byte> out) {
  // Address-space accounting: kernel code uses the page tables of whatever
  // task it interrupted.  Touching a different user address space requires
  // a switch (TLB invalidation) — unless the executing context *is* the
  // target (syscall / kernel-signal engines) or the right tables happen to
  // be live on this CPU.
  const Pid needed = target.pid;
  if (current_ != nullptr && !current_->is_kernel_thread && current_->pid == needed) {
    // Executing behind the checkpointed process itself: no switch.
  } else if (cpu_active_aspace_[current_cpu_] != needed) {
    cpu_active_aspace_[current_cpu_] = needed;
    ++kstats_.aspace_switches;
    ++kstats_.kernel_access_switches;
    charge_time(costs_.addr_space_switch_ns, ChargeKind::kCompute);
  }
  auto data = target.aspace->page_data(page);
  const std::size_t n = std::min(out.size(), data.size());
  std::memcpy(out.data(), data.data(), n);
  charge_time(costs_.mem_copy_cost(n), ChargeKind::kCompute);
}

void SimKernel::kernel_copy_to_user(Process& target, PageNum page,
                                    std::span<const std::byte> in) {
  const Pid needed = target.pid;
  if (current_ != nullptr && !current_->is_kernel_thread && current_->pid == needed) {
  } else if (cpu_active_aspace_[current_cpu_] != needed) {
    cpu_active_aspace_[current_cpu_] = needed;
    ++kstats_.aspace_switches;
    ++kstats_.kernel_access_switches;
    charge_time(costs_.addr_space_switch_ns, ChargeKind::kCompute);
  }
  PageTableEntry* entry = target.aspace->pte(page);
  if (entry == nullptr || !entry->present) {
    throw std::runtime_error("kernel_copy_to_user: page not mapped");
  }
  if (entry->cow) target.aspace->break_cow(page);
  auto data = target.aspace->page_data(page);
  const std::size_t n = std::min(in.size(), data.size());
  std::memcpy(data.data(), in.data(), n);
  charge_time(costs_.mem_copy_cost(n), ChargeKind::kCompute);
}

void SimKernel::kernel_read_user_range(Process& target, VAddr addr,
                                       std::span<std::byte> out) {
  const PageNum page = page_of(addr);
  if (page_offset(addr) + out.size() > kPageSize) {
    throw std::invalid_argument("kernel_read_user_range: crosses page boundary");
  }
  const Pid needed = target.pid;
  if (current_ != nullptr && !current_->is_kernel_thread && current_->pid == needed) {
  } else if (cpu_active_aspace_[current_cpu_] != needed) {
    cpu_active_aspace_[current_cpu_] = needed;
    ++kstats_.aspace_switches;
    ++kstats_.kernel_access_switches;
    charge_time(costs_.addr_space_switch_ns, ChargeKind::kCompute);
  }
  auto data = target.aspace->page_data(page);
  std::memcpy(out.data(), data.data() + page_offset(addr), out.size());
  charge_time(costs_.mem_copy_cost(out.size()), ChargeKind::kCompute);
}

void SimKernel::kernel_write_user_range(Process& target, VAddr addr,
                                        std::span<const std::byte> in) {
  const PageNum page = page_of(addr);
  if (page_offset(addr) + in.size() > kPageSize) {
    throw std::invalid_argument("kernel_write_user_range: crosses page boundary");
  }
  const Pid needed = target.pid;
  if (current_ != nullptr && !current_->is_kernel_thread && current_->pid == needed) {
  } else if (cpu_active_aspace_[current_cpu_] != needed) {
    cpu_active_aspace_[current_cpu_] = needed;
    ++kstats_.aspace_switches;
    ++kstats_.kernel_access_switches;
    charge_time(costs_.addr_space_switch_ns, ChargeKind::kCompute);
  }
  PageTableEntry* entry = target.aspace->pte(page);
  if (entry == nullptr || !entry->present) {
    throw std::runtime_error("kernel_write_user_range: page not mapped");
  }
  if (entry->cow) target.aspace->break_cow(page);
  auto data = target.aspace->page_data(page);
  std::memcpy(data.data() + page_offset(addr), in.data(), in.size());
  charge_time(costs_.mem_copy_cost(in.size()), ChargeKind::kCompute);
}

// ---------------------------------------------------------------------------
// User-mode memory access with fault semantics
// ---------------------------------------------------------------------------

bool SimKernel::handle_store_fault(Process& proc, PageNum page, AccessResult result) {
  ++proc.stats.page_faults;
  if (result == AccessResult::kNotMapped) {
    proc.fault_addr = page_base(page);
    // Genuine segmentation violation.
    if (proc.signals.disposition[kSigSegv] == SignalDisposition::kHandler) {
      charge_time(costs_.signal_delivery_ns, ChargeKind::kSignal);
      ++proc.stats.signals_taken;
      if (auto lh = proc.library_handlers.find(kSigSegv); lh != proc.library_handlers.end()) {
        lh->second(*this, proc, kSigSegv);
      } else if (proc.guest) {
        UserApi api(*this, proc);
        proc.guest->on_signal(api, kSigSegv);
      }
      // Handler must have mapped the page for the retry to succeed.
      return proc.aspace->check_access(page, kProtWrite) == AccessResult::kOk;
    }
    terminate(proc, 128 + kSigSegv);
    return false;
  }

  // Protection fault.
  PageTableEntry* entry = proc.aspace->pte(page);
  assert(entry != nullptr);
  if (entry->cow) {
    // Copy-on-write: duplicate the frame in kernel mode and retry.
    ++proc.stats.cow_faults;
    charge_time(costs_.cow_fault_extra_ns + costs_.mem_copy_cost(kPageSize),
                ChargeKind::kFault);
    proc.aspace->break_cow(page);
    return true;
  }
  if (proc.wp_hook) {
    // Kernel-level dirty tracking: the page-fault handler records the page
    // and restores write access without ever leaving kernel mode.
    charge_time(costs_.page_fault_kernel_ns, ChargeKind::kFault);
    if (proc.wp_hook(*this, proc, page)) return true;
  }
  if (proc.signals.disposition[kSigSegv] == SignalDisposition::kHandler) {
    // User-level dirty tracking: deliver SIGSEGV to the (library) handler,
    // which will mprotect() the page writable and let the store retry.
    proc.fault_addr = page_base(page);
    charge_time(costs_.signal_delivery_ns, ChargeKind::kSignal);
    ++proc.stats.signals_taken;
    if (auto lh = proc.library_handlers.find(kSigSegv); lh != proc.library_handlers.end()) {
      lh->second(*this, proc, kSigSegv);
    } else if (proc.guest) {
      UserApi api(*this, proc);
      proc.guest->on_signal(api, kSigSegv);
    }
    return proc.aspace->check_access(page, kProtWrite) == AccessResult::kOk;
  }
  terminate(proc, 128 + kSigSegv);
  return false;
}

bool SimKernel::user_store(Process& proc, VAddr addr, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const VAddr cur = addr + done;
    const PageNum page = page_of(cur);
    const std::size_t in_page =
        std::min<std::size_t>(data.size() - done, kPageSize - page_offset(cur));

    int attempts = 0;
    while (proc.aspace->check_access(page, kProtWrite) != AccessResult::kOk) {
      if (++attempts > 3) return false;
      if (!handle_store_fault(proc, page, proc.aspace->check_access(page, kProtWrite))) {
        return false;
      }
      if (!proc.alive()) return false;
    }
    // Hardware snoop fires before the store commits so undo-logging models
    // (ReVive) capture the genuine pre-image.
    if (proc.write_observer) proc.write_observer(cur, in_page);
    PageTableEntry* entry = proc.aspace->pte(page);
    auto dest = proc.aspace->page_data(page);
    std::memcpy(dest.data() + page_offset(cur), data.data() + done, in_page);
    entry->dirty = true;
    entry->accessed = true;
    charge_time(costs_.mem_copy_cost(in_page), ChargeKind::kCompute);
    done += in_page;
  }
  return true;
}

bool SimKernel::user_load(Process& proc, VAddr addr, std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const VAddr cur = addr + done;
    const PageNum page = page_of(cur);
    const std::size_t in_page =
        std::min<std::size_t>(out.size() - done, kPageSize - page_offset(cur));
    if (proc.aspace->check_access(page, kProtRead) == AccessResult::kNotMapped) {
      proc.fault_addr = cur;
      ++proc.stats.page_faults;
      terminate(proc, 128 + kSigSegv);
      return false;
    }
    PageTableEntry* entry = proc.aspace->pte(page);
    auto src = proc.aspace->page_data(page);
    std::memcpy(out.data() + done, src.data() + page_offset(cur), in_page);
    entry->accessed = true;
    charge_time(costs_.mem_copy_cost(in_page), ChargeKind::kCompute);
    done += in_page;
  }
  return true;
}

}  // namespace ckpt::sim
