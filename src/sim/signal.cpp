#include "sim/signal.hpp"

namespace ckpt::sim {

const char* signal_name(Signal sig) {
  switch (sig) {
    case kSigNone: return "SIG0";
    case kSigHup: return "SIGHUP";
    case kSigInt: return "SIGINT";
    case kSigKill: return "SIGKILL";
    case kSigUsr1: return "SIGUSR1";
    case kSigSegv: return "SIGSEGV";
    case kSigUsr2: return "SIGUSR2";
    case kSigAlrm: return "SIGALRM";
    case kSigTerm: return "SIGTERM";
    case kSigChld: return "SIGCHLD";
    case kSigCont: return "SIGCONT";
    case kSigStop: return "SIGSTOP";
    case kSigSys: return "SIGSYS";
    case kSigUnused: return "SIGUNUSED";
    case kSigCkpt: return "SIGCKPT";
    case kSigFreeze: return "SIGFREEZE";
    default: return "SIG?";
  }
}

DefaultAction default_action(Signal sig) {
  switch (sig) {
    case kSigChld:
    case kSigUnused:
      return DefaultAction::kIgnore;
    case kSigStop:
      return DefaultAction::kStop;
    case kSigCont:
      return DefaultAction::kContinue;
    default:
      return DefaultAction::kTerminate;
  }
}

}  // namespace ckpt::sim
