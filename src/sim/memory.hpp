// Simulated physical memory and per-process address spaces.
//
// Pages are backed by real heap bytes so that checkpoints, deltas and
// restores operate on genuine data: the test suite validates restart by
// byte-comparing restored memory, and incremental checkpoint sizes emerge
// from the guest programs' actual write patterns.
//
// Page-table entries carry protection, dirty and accessed bits plus a
// copy-on-write marker.  Both dirty-tracking flavours the paper discusses
// are built on these primitives:
//   * user-level:  mprotect() read-only + SIGSEGV to a user handler,
//   * kernel-level: a write-protect hook invoked from the page-fault path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ckpt::sim {

/// Page protection bits.
enum PageProt : std::uint8_t {
  kProtNone = 0,
  kProtRead = 1,
  kProtWrite = 2,
  kProtExec = 4,
  kProtRW = kProtRead | kProtWrite,
  kProtRX = kProtRead | kProtExec,
};

/// Role of a mapped region; checkpoint images record it so that restart can
/// rebuild an equivalent layout, and so mechanisms that skip the text
/// segment (most) versus those that always dump everything (PsncR/C) differ
/// measurably.
enum class VmaKind : std::uint8_t { kCode, kData, kHeap, kStack, kAnon, kShared };

const char* to_string(VmaKind kind);

/// A contiguous virtual memory area.
struct Vma {
  PageNum first_page = 0;
  std::uint64_t page_count = 0;
  std::uint8_t prot = kProtRW;  ///< VMA-level protection (restored by munprotect).
  VmaKind kind = VmaKind::kAnon;
  std::string name;

  [[nodiscard]] VAddr start() const { return page_base(first_page); }
  [[nodiscard]] VAddr end() const { return page_base(first_page + page_count); }
  [[nodiscard]] std::uint64_t bytes() const { return page_count * kPageSize; }
  [[nodiscard]] bool contains_page(PageNum page) const {
    return page >= first_page && page < first_page + page_count;
  }
};

/// Pool of reference-counted physical frames.  Copy-on-write after fork()
/// shares frames until the first store.
class PhysicalMemory {
 public:
  /// Allocate a zeroed frame with refcount 1.
  FrameId allocate();

  /// Allocate a frame containing a copy of `src` (refcount 1).
  FrameId allocate_copy(FrameId src);

  void add_ref(FrameId frame);
  void release(FrameId frame);

  [[nodiscard]] std::span<std::byte> frame_data(FrameId frame);
  [[nodiscard]] std::span<const std::byte> frame_data(FrameId frame) const;
  [[nodiscard]] std::uint32_t ref_count(FrameId frame) const;

  [[nodiscard]] std::uint64_t frames_in_use() const { return live_frames_; }

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    std::uint32_t refs = 0;
  };

  std::vector<Frame> frames_;
  std::vector<FrameId> free_list_;
  std::uint64_t live_frames_ = 0;
};

struct PageTableEntry {
  FrameId frame = 0;
  std::uint8_t prot = kProtNone;  ///< Effective protection (may be tightened by mprotect).
  bool present = false;
  bool dirty = false;
  bool accessed = false;
  bool cow = false;  ///< Shared frame; duplicate on first store.
};

/// Outcome of an attempted page access, consumed by the kernel's fault path.
enum class AccessResult : std::uint8_t {
  kOk,
  kNotMapped,        ///< No PTE: genuine segmentation fault.
  kProtectionFault,  ///< PTE present but protection forbids the access.
};

/// A process's virtual address space: ordered VMA list plus page table.
///
/// AddressSpace offers *mechanism*; policy (what a protection fault means)
/// lives in the kernel, which owns the COW and dirty-tracking logic.
class AddressSpace {
 public:
  explicit AddressSpace(PhysicalMemory* phys) : phys_(phys) {}
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  AddressSpace(AddressSpace&&) noexcept = default;
  AddressSpace& operator=(AddressSpace&&) noexcept = default;

  /// Map `page_count` zeroed pages at `start` (must be page-aligned and not
  /// overlap an existing VMA).  Returns the created VMA's index.
  std::size_t map_region(VAddr start, std::uint64_t page_count, std::uint8_t prot,
                         VmaKind kind, std::string name);

  /// Unmap an entire VMA identified by any address inside it.
  void unmap_region(VAddr addr);

  /// Grow the VMA containing `addr` by `extra_pages` zeroed pages at its end
  /// (sbrk support).  The grown pages take the VMA-level protection.
  void extend_region(VAddr addr, std::uint64_t extra_pages);

  /// Tighten/restore protection on [start, start + pages) page range.
  /// Affects PTE protection only; VMA-level protection is unchanged, which
  /// is how mprotect-based dirty tracking later restores write access.
  void protect_pages(PageNum first, std::uint64_t count, std::uint8_t prot);

  /// Restore each page's protection to its VMA-level protection.
  void unprotect_page(PageNum page);

  [[nodiscard]] const std::vector<Vma>& vmas() const { return vmas_; }
  [[nodiscard]] const Vma* find_vma(VAddr addr) const;

  [[nodiscard]] PageTableEntry* pte(PageNum page);
  [[nodiscard]] const PageTableEntry* pte(PageNum page) const;

  /// Check whether an access of `kind` (read => kProtRead, write =>
  /// kProtWrite) to the page would succeed.
  [[nodiscard]] AccessResult check_access(PageNum page, std::uint8_t kind) const;

  /// Raw page data access (no protection checks — kernel-mode view).
  [[nodiscard]] std::span<std::byte> page_data(PageNum page);
  [[nodiscard]] std::span<const std::byte> page_data(PageNum page) const;

  /// Duplicate the frame backing a COW page so it is privately owned, then
  /// clear the COW bit.  Precondition: pte(page)->cow.
  void break_cow(PageNum page);

  /// Clone this address space for fork(): VMAs are copied, every present
  /// page becomes a shared read-only COW mapping in both parent and child.
  [[nodiscard]] std::unique_ptr<AddressSpace> clone_cow();

  /// Deep copy (used by restart when materialising an image).
  [[nodiscard]] std::unique_ptr<AddressSpace> clone_deep() const;

  /// Clear all dirty bits (typically after a checkpoint completes).
  void clear_dirty_bits();

  /// Total bytes currently mapped.
  [[nodiscard]] std::uint64_t mapped_bytes() const;
  /// Number of pages whose dirty bit is set.
  [[nodiscard]] std::uint64_t dirty_page_count() const;
  /// Number of present pages — the PTEs a COW fork must walk.
  [[nodiscard]] std::uint64_t present_page_count() const;

  /// Iterate pages in ascending order: fn(page_num, pte&).
  template <typename Fn>
  void for_each_page(Fn&& fn) {
    for (auto& [page, entry] : pages_) fn(page, entry);
  }
  template <typename Fn>
  void for_each_page(Fn&& fn) const {
    for (const auto& [page, entry] : pages_) fn(page, entry);
  }

  [[nodiscard]] PhysicalMemory& physical() { return *phys_; }

 private:
  PhysicalMemory* phys_;
  std::vector<Vma> vmas_;
  std::map<PageNum, PageTableEntry> pages_;
};

}  // namespace ckpt::sim
