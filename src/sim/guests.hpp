// Standard guest workloads used by tests, benchmarks and examples.
//
// Each guest keeps all mutable state in simulated memory (see guest.hpp's
// von-Neumann contract) and encodes its immutable configuration in a small
// blob, so any of them can be checkpointed and restarted by any mechanism.
//
// The write-pattern spectrum matters for the incremental-checkpointing
// experiments (claim C3): DenseWriterGuest dirties nearly all of its memory
// every interval (incremental gains nothing), SparseWriterGuest dirties a
// small working set (incremental wins), and SweepWriterGuest moves a write
// front across memory (delta tracks the front size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/guest.hpp"
#include "sim/types.hpp"
#include "sim/userapi.hpp"
#include "util/serialize.hpp"

namespace ckpt::sim {

/// Increment a counter at the base of the data segment each step.  The
/// simplest restartable program; its progress is directly observable.
class CounterGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "counter";
  static constexpr VAddr kCounterAddr = kDataBase;

  GuestStatus on_step(UserApi& api) override;

  /// Read the counter from outside (test assertions).
  static std::uint64_t read_counter(SimKernel& kernel, Process& proc);
};

/// Configuration shared by the array-writer guests.
struct WriterConfig {
  std::uint64_t array_bytes = 64 * 1024;
  std::uint64_t writes_per_step = 16;
  std::uint64_t seed = 1;
  /// Sparse mode: fraction of the array forming the hot working set.
  double working_set_fraction = 0.1;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static WriterConfig decode(const std::vector<std::byte>& blob);
};

/// Writes `writes_per_step` 64-byte records at uniformly random offsets
/// across the whole array: dirties pages quickly and widely.
class DenseWriterGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "dense_writer";
  explicit DenseWriterGuest(WriterConfig config) : config_(config) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

 protected:
  [[nodiscard]] const WriterConfig& config() const { return config_; }

 private:
  WriterConfig config_;
};

/// Writes only within a small hot working set: the favourable case for
/// incremental checkpointing.
class SparseWriterGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "sparse_writer";
  explicit SparseWriterGuest(WriterConfig config) : config_(config) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

 private:
  WriterConfig config_;
};

/// Moves a sequential write front across the array, wrapping around — the
/// scientific-computing sweep pattern from the feasibility study [31].
class SweepWriterGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "sweep_writer";
  explicit SweepWriterGuest(WriterConfig config) : config_(config) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

 private:
  WriterConfig config_;
};

/// Maintains a cross-page invariant: every page of its array stores the
/// same version number, bumped by a multi-page (non-atomic) update each
/// step.  A checkpoint taken mid-update captures a *torn* state, which
/// verify_image_consistency() detects — the data-consistency hazard of
/// concurrent kernel-thread checkpointing.
class InvariantGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "invariant";
  explicit InvariantGuest(WriterConfig config) : config_(config) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

  /// Check the invariant over a process's live memory.
  static bool verify_consistency(SimKernel& kernel, Process& proc, std::uint64_t array_bytes);

 private:
  WriterConfig config_;
};

/// Syscall-heavy workload: opens/appends/seeks a log file and churns the
/// heap with sbrk.  Exercises descriptor and heap state capture.
class FileLoggerGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "file_logger";
  struct Config {
    std::string log_path = "/data/app.log";
    std::uint64_t record_bytes = 256;

    [[nodiscard]] std::vector<std::byte> encode() const;
    static Config decode(const std::vector<std::byte>& blob);
  };
  explicit FileLoggerGuest(Config config) : config_(std::move(config)) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

 private:
  Config config_;
};

/// A guest that checkpoints *itself* by invoking a registered checkpoint
/// system call every `interval_steps` steps — the VMADump usage model.
/// The checkpoint call is programmed into the application source: this is
/// precisely the transparency failure Table 1 records.
class SelfCheckpointGuest : public GuestProgram {
 public:
  static constexpr const char* kTypeName = "self_checkpoint";
  struct Config {
    std::string syscall_name = "vmadump_dump";
    std::uint64_t interval_steps = 10;
    std::uint64_t arg0 = 0;
    /// false: invoke as a system call (VMADump).  true: invoke as a
    /// user-level checkpoint-library function (libckpt source-code mode).
    bool use_library = false;

    [[nodiscard]] std::vector<std::byte> encode() const;
    static Config decode(const std::vector<std::byte>& blob);
  };
  explicit SelfCheckpointGuest(Config config) : config_(std::move(config)) {}

  void on_start(UserApi& api) override;
  GuestStatus on_step(UserApi& api) override;

 private:
  Config config_;
};

/// Register every guest type above with the global registry.  Safe to call
/// repeatedly; tests and binaries call it in main()/SetUp().
void register_standard_guests();

/// Helper: spawn options sized so `array_bytes` fits in the heap.
SpawnOptions spawn_options_for_array(std::uint64_t array_bytes);

}  // namespace ckpt::sim
