#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace ckpt::sim {

const char* to_string(VmaKind kind) {
  switch (kind) {
    case VmaKind::kCode: return "code";
    case VmaKind::kData: return "data";
    case VmaKind::kHeap: return "heap";
    case VmaKind::kStack: return "stack";
    case VmaKind::kAnon: return "anon";
    case VmaKind::kShared: return "shared";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PhysicalMemory
// ---------------------------------------------------------------------------

FrameId PhysicalMemory::allocate() {
  FrameId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = frames_.size();
    frames_.emplace_back();
  }
  Frame& f = frames_[id];
  f.data = std::make_unique<std::byte[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.refs = 1;
  ++live_frames_;
  return id;
}

FrameId PhysicalMemory::allocate_copy(FrameId src) {
  const FrameId id = allocate();
  std::memcpy(frames_[id].data.get(), frames_[src].data.get(), kPageSize);
  return id;
}

void PhysicalMemory::add_ref(FrameId frame) {
  assert(frames_[frame].refs > 0);
  ++frames_[frame].refs;
}

void PhysicalMemory::release(FrameId frame) {
  Frame& f = frames_[frame];
  assert(f.refs > 0);
  if (--f.refs == 0) {
    f.data.reset();
    free_list_.push_back(frame);
    --live_frames_;
  }
}

std::span<std::byte> PhysicalMemory::frame_data(FrameId frame) {
  return {frames_[frame].data.get(), kPageSize};
}

std::span<const std::byte> PhysicalMemory::frame_data(FrameId frame) const {
  return {frames_[frame].data.get(), kPageSize};
}

std::uint32_t PhysicalMemory::ref_count(FrameId frame) const {
  return frames_[frame].refs;
}

// ---------------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------------

AddressSpace::~AddressSpace() {
  if (phys_ == nullptr) return;  // moved-from
  for (auto& [page, entry] : pages_) {
    if (entry.present) phys_->release(entry.frame);
  }
}

std::size_t AddressSpace::map_region(VAddr start, std::uint64_t page_count,
                                     std::uint8_t prot, VmaKind kind, std::string name) {
  if (page_offset(start) != 0) {
    throw std::invalid_argument("map_region: start not page aligned");
  }
  const PageNum first = page_of(start);
  for (const Vma& vma : vmas_) {
    const bool overlap =
        first < vma.first_page + vma.page_count && vma.first_page < first + page_count;
    if (overlap) throw std::invalid_argument("map_region: overlapping VMA: " + name);
  }
  Vma vma{first, page_count, prot, kind, std::move(name)};
  for (PageNum p = first; p < first + page_count; ++p) {
    PageTableEntry entry;
    entry.frame = phys_->allocate();
    entry.prot = prot;
    entry.present = true;
    pages_.emplace(p, entry);
  }
  vmas_.push_back(std::move(vma));
  std::sort(vmas_.begin(), vmas_.end(),
            [](const Vma& a, const Vma& b) { return a.first_page < b.first_page; });
  for (std::size_t i = 0; i < vmas_.size(); ++i) {
    if (vmas_[i].contains_page(first)) return i;
  }
  return vmas_.size() - 1;  // unreachable
}

void AddressSpace::unmap_region(VAddr addr) {
  const PageNum page = page_of(addr);
  auto it = std::find_if(vmas_.begin(), vmas_.end(),
                         [&](const Vma& v) { return v.contains_page(page); });
  if (it == vmas_.end()) throw std::invalid_argument("unmap_region: no VMA at address");
  for (PageNum p = it->first_page; p < it->first_page + it->page_count; ++p) {
    auto pit = pages_.find(p);
    if (pit != pages_.end()) {
      if (pit->second.present) phys_->release(pit->second.frame);
      pages_.erase(pit);
    }
  }
  vmas_.erase(it);
}

void AddressSpace::extend_region(VAddr addr, std::uint64_t extra_pages) {
  const PageNum page = page_of(addr);
  auto it = std::find_if(vmas_.begin(), vmas_.end(),
                         [&](const Vma& v) { return v.contains_page(page); });
  if (it == vmas_.end()) throw std::invalid_argument("extend_region: no VMA at address");
  const PageNum first_new = it->first_page + it->page_count;
  // Refuse to grow into a neighbouring VMA.
  for (const Vma& vma : vmas_) {
    if (&vma == &*it) continue;
    if (vma.first_page >= first_new && vma.first_page < first_new + extra_pages) {
      throw std::invalid_argument("extend_region: would collide with VMA " + vma.name);
    }
  }
  for (PageNum p = first_new; p < first_new + extra_pages; ++p) {
    PageTableEntry entry;
    entry.frame = phys_->allocate();
    entry.prot = it->prot;
    entry.present = true;
    pages_.emplace(p, entry);
  }
  it->page_count += extra_pages;
}

void AddressSpace::protect_pages(PageNum first, std::uint64_t count, std::uint8_t prot) {
  for (PageNum p = first; p < first + count; ++p) {
    if (auto* entry = pte(p)) entry->prot = prot;
  }
}

void AddressSpace::unprotect_page(PageNum page) {
  auto* entry = pte(page);
  if (entry == nullptr) return;
  if (const Vma* vma = find_vma(page_base(page))) entry->prot = vma->prot;
}

const Vma* AddressSpace::find_vma(VAddr addr) const {
  const PageNum page = page_of(addr);
  for (const Vma& vma : vmas_) {
    if (vma.contains_page(page)) return &vma;
  }
  return nullptr;
}

PageTableEntry* AddressSpace::pte(PageNum page) {
  auto it = pages_.find(page);
  return it == pages_.end() ? nullptr : &it->second;
}

const PageTableEntry* AddressSpace::pte(PageNum page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? nullptr : &it->second;
}

AccessResult AddressSpace::check_access(PageNum page, std::uint8_t kind) const {
  const PageTableEntry* entry = pte(page);
  if (entry == nullptr || !entry->present) return AccessResult::kNotMapped;
  if ((entry->prot & kind) != kind) return AccessResult::kProtectionFault;
  return AccessResult::kOk;
}

std::span<std::byte> AddressSpace::page_data(PageNum page) {
  PageTableEntry* entry = pte(page);
  if (entry == nullptr || !entry->present) {
    throw std::out_of_range("page_data: page not mapped");
  }
  return phys_->frame_data(entry->frame);
}

std::span<const std::byte> AddressSpace::page_data(PageNum page) const {
  const PageTableEntry* entry = pte(page);
  if (entry == nullptr || !entry->present) {
    throw std::out_of_range("page_data: page not mapped");
  }
  return static_cast<const PhysicalMemory*>(phys_)->frame_data(entry->frame);
}

void AddressSpace::break_cow(PageNum page) {
  PageTableEntry* entry = pte(page);
  assert(entry != nullptr && entry->cow);
  if (phys_->ref_count(entry->frame) > 1) {
    const FrameId copy = phys_->allocate_copy(entry->frame);
    phys_->release(entry->frame);
    entry->frame = copy;
  }
  entry->cow = false;
  // Restore write permission up to the VMA-level protection.
  if (const Vma* vma = find_vma(page_base(page))) entry->prot = vma->prot;
}

std::unique_ptr<AddressSpace> AddressSpace::clone_cow() {
  auto child = std::make_unique<AddressSpace>(phys_);
  child->vmas_ = vmas_;
  for (auto& [page, entry] : pages_) {
    PageTableEntry child_entry = entry;
    if (entry.present) {
      phys_->add_ref(entry.frame);
      // Both sides lose write permission and gain the COW marker; a store on
      // either side takes a COW fault and duplicates the frame.
      entry.cow = true;
      entry.prot &= static_cast<std::uint8_t>(~kProtWrite);
      child_entry.cow = true;
      child_entry.prot &= static_cast<std::uint8_t>(~kProtWrite);
      child_entry.dirty = false;
    }
    child->pages_.emplace(page, child_entry);
  }
  return child;
}

std::unique_ptr<AddressSpace> AddressSpace::clone_deep() const {
  auto copy = std::make_unique<AddressSpace>(phys_);
  copy->vmas_ = vmas_;
  for (const auto& [page, entry] : pages_) {
    PageTableEntry new_entry = entry;
    if (entry.present) {
      new_entry.frame = phys_->allocate_copy(entry.frame);
      new_entry.cow = false;
    }
    copy->pages_.emplace(page, new_entry);
  }
  return copy;
}

void AddressSpace::clear_dirty_bits() {
  for (auto& [page, entry] : pages_) entry.dirty = false;
}

std::uint64_t AddressSpace::mapped_bytes() const {
  return pages_.size() * kPageSize;
}

std::uint64_t AddressSpace::dirty_page_count() const {
  std::uint64_t n = 0;
  for (const auto& [page, entry] : pages_) n += entry.dirty ? 1 : 0;
  return n;
}

std::uint64_t AddressSpace::present_page_count() const {
  std::uint64_t n = 0;
  for (const auto& [page, entry] : pages_) n += entry.present ? 1 : 0;
  return n;
}

}  // namespace ckpt::sim
