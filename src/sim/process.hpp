// Task (process / kernel-thread) representation.
//
// Everything a checkpoint must capture hangs off Process: the address
// space, per-thread register sets, the descriptor table, signal state, the
// program break and scheduling parameters.  Kernel-level checkpointers read
// these fields directly ("every data structure relevant to a process's
// state is readily accessible"); user-level ones must reconstruct them
// through syscalls — the asymmetry the survey's efficiency argument rests
// on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/file.hpp"
#include "sim/guest.hpp"
#include "sim/memory.hpp"
#include "sim/signal.hpp"
#include "sim/types.hpp"
#include "util/units.hpp"

namespace ckpt::sim {

class SimKernel;

/// Simulated CPU register file (per thread).
struct Registers {
  std::uint64_t pc = 0;
  std::uint64_t sp = 0;
  std::array<std::uint64_t, 8> gpr{};

  friend bool operator==(const Registers&, const Registers&) = default;
};

enum class TaskState : std::uint8_t {
  kReady,
  kRunning,
  kBlocked,
  kStopped,  ///< SIGSTOP / checkpoint freeze: not schedulable until continued.
  kZombie,
  kDead,
};

const char* to_string(TaskState state);

struct Thread {
  Tid tid = 0;
  Registers regs;
};

enum class SchedClass : std::uint8_t {
  kTimeshare,  ///< dynamic-priority time sharing (the default class)
  kFifo,       ///< SCHED_FIFO real time: runs until it blocks or exits
};

struct SchedParams {
  SchedClass cls = SchedClass::kTimeshare;
  int rt_priority = 0;  ///< higher wins within SCHED_FIFO
  int nice = 0;
  SimTime vruntime = 0;  ///< fairness clock for the timeshare class
};

/// Cumulative per-task accounting, used by the overhead benchmarks.
struct TaskStats {
  SimTime cpu_time = 0;           ///< total simulated time consumed
  SimTime syscall_time = 0;       ///< of which: syscall crossings + service
  SimTime fault_time = 0;         ///< of which: page-fault handling
  SimTime signal_time = 0;        ///< of which: user signal-handler dispatch
  std::uint64_t syscalls = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t cow_faults = 0;
  std::uint64_t signals_taken = 0;
  std::uint64_t guest_iterations = 0;  ///< guest-reported useful work
};

/// Interposition hook (LD_PRELOAD model): invoked on every syscall the
/// process makes, *before* the kernel services it.  Returning adds the
/// per-call interposition cost; the hook may also record shadow state.
using SyscallInterposer =
    std::function<void(SimKernel&, Process&, const char* name, std::uint64_t a0,
                       std::uint64_t a1)>;

class Process {
 public:
  Process(Pid pid, std::string name, std::unique_ptr<AddressSpace> aspace);

  // Identity -----------------------------------------------------------------
  Pid pid = kNoPid;
  Pid ppid = kNoPid;
  std::string name;
  bool is_kernel_thread = false;
  /// Set while a mechanism-created frozen fork copy exists (Checkpoint [5]).
  bool is_checkpoint_shadow = false;

  // State --------------------------------------------------------------------
  TaskState state = TaskState::kReady;
  int exit_code = 0;
  std::vector<Thread> threads;  ///< >= 1 for user processes; empty for kthreads
  VAddr brk = 0;                ///< program break (heap top)
  VAddr heap_base = 0;

  std::unique_ptr<AddressSpace> aspace;  ///< null for kernel threads
  FdTable fds;
  SignalState signals;
  SchedParams sched;
  TaskStats stats;

  // Guest program (user processes) --------------------------------------------
  std::unique_ptr<GuestProgram> guest;
  GuestImage guest_image;  ///< how to rebuild `guest` at restart
  bool started = false;    ///< on_start() has run

  // Extension hooks -----------------------------------------------------------
  std::optional<SyscallInterposer> interposer;
  /// User-level library signal handlers (the checkpoint library's handlers,
  /// installed by relinking or LD_PRELOAD).  Dispatched in user mode before
  /// the guest's own on_signal when the disposition is kHandler.
  std::map<int, std::function<void(SimKernel&, Process&, Signal)>> library_handlers;
  /// Faulting address for the most recent SIGSEGV (siginfo.si_addr).
  VAddr fault_addr = 0;
  /// True while the guest is inside a non-reentrant C-library call
  /// (malloc/free).  A user-level checkpoint handler that fires in this
  /// window deadlocks — the signal-context hazard of survey §3.  Guests
  /// set/clear it; user-level engines check it.
  bool in_nonreentrant_call = false;
  /// Descriptor-lifecycle hook for user-level shadow tracking (the wrapped
  /// open/dup/socket/close of an interposing checkpoint library).
  enum class FdOp : std::uint8_t { kOpen, kClose, kDup, kSocket };
  std::function<void(Process&, FdOp, Fd, const std::string& path, std::uint32_t flags)>
      fd_hook;
  /// User-level library functions callable by guests (ckpt_now() etc.),
  /// registered by user-level engines at link time.
  std::map<std::string, std::function<std::int64_t(SimKernel&, Process&, std::uint64_t)>>
      library_calls;
  /// Next free address for anonymous mmap.
  VAddr mmap_next = 0x7f00'0000'0000ULL;
  /// Extra per-syscall cost while the process runs inside a virtualization
  /// pod (ZAP): every call is intercepted and its resource identifiers
  /// translated.  Zero when not in a pod.
  SimTime syscall_extra_ns = 0;
  /// Pod membership (0 = none); maintained by core::PodManager.
  std::uint64_t pod_id = 0;
  /// Kernel-level write-protect hook: called from the page-fault path when a
  /// store hits a write-protected page.  Returning true means "handled:
  /// restore write access and retry" (the kernel dirty-tracking path).
  std::function<bool(SimKernel&, Process&, PageNum)> wp_hook;
  /// Hardware write snoop (directory controller / cache model): observes
  /// every successful user store with byte granularity.  Unlike wp_hook it
  /// costs nothing on the CPU — that is the point of hardware support.
  std::function<void(VAddr, std::uint64_t)> write_observer;

  // Timers ---------------------------------------------------------------------
  SimTime alarm_deadline = 0;   ///< 0 = none
  SimTime itimer_interval = 0;  ///< 0 = none; else periodic SIGALRM
  SimTime wake_deadline = 0;    ///< sleeping until this time (kBlocked)

  /// Resource tags held in the kernel namespace (bound ports etc.), used by
  /// restart conflict detection and pod virtualization.
  std::vector<std::uint16_t> bound_ports;

  [[nodiscard]] bool runnable() const {
    return state == TaskState::kReady || state == TaskState::kRunning;
  }
  [[nodiscard]] bool alive() const {
    return state != TaskState::kZombie && state != TaskState::kDead;
  }
};

}  // namespace ckpt::sim
