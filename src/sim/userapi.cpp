#include "sim/userapi.hpp"

#include <cstring>
#include <stdexcept>

namespace ckpt::sim {

void UserApi::syscall_entry(const char* name, std::uint64_t a0, std::uint64_t a1) {
  ++proc_.stats.syscalls;
  kernel_.charge_time(kernel_.costs().syscall_crossing_ns, ChargeKind::kSyscall);
  if (proc_.syscall_extra_ns != 0) {
    // Pod virtualization tax: identifier translation on every call.
    kernel_.charge_time(proc_.syscall_extra_ns, ChargeKind::kSyscall);
  }
  if (proc_.interposer.has_value()) {
    kernel_.charge_time(kernel_.costs().interposition_ns, ChargeKind::kSyscall);
    (*proc_.interposer)(kernel_, proc_, name, a0, a1);
  }
}

// --- Plain memory access -----------------------------------------------------

bool UserApi::store(VAddr addr, std::span<const std::byte> data) {
  return kernel_.user_store(proc_, addr, data);
}

bool UserApi::load(VAddr addr, std::span<std::byte> out) {
  return kernel_.user_load(proc_, addr, out);
}

bool UserApi::store_u64(VAddr addr, std::uint64_t value) {
  return store(addr, std::span(reinterpret_cast<const std::byte*>(&value), sizeof(value)));
}

std::uint64_t UserApi::load_u64(VAddr addr) {
  std::uint64_t value = 0;
  load(addr, std::span(reinterpret_cast<std::byte*>(&value), sizeof(value)));
  return value;
}

void UserApi::compute(SimTime amount) { kernel_.charge_time(amount, ChargeKind::kCompute); }

void UserApi::work_done(std::uint64_t iterations) {
  proc_.stats.guest_iterations += iterations;
}

Registers& UserApi::regs() {
  if (proc_.threads.empty()) throw std::runtime_error("regs(): no threads");
  return proc_.threads.front().regs;
}

// --- Memory management ----------------------------------------------------

VAddr UserApi::sys_sbrk(std::int64_t delta) {
  syscall_entry("sbrk", static_cast<std::uint64_t>(delta));
  const VAddr old_brk = proc_.brk;
  if (delta > 0) {
    const Vma* heap = proc_.aspace->find_vma(proc_.heap_base);
    if (heap == nullptr) return 0;
    const VAddr new_brk = proc_.brk + static_cast<std::uint64_t>(delta);
    if (new_brk > heap->end()) {
      const std::uint64_t extra = pages_for(new_brk - heap->end());
      proc_.aspace->extend_region(proc_.heap_base, extra);
    }
    proc_.brk = new_brk;
  } else if (delta < 0) {
    const std::uint64_t shrink = static_cast<std::uint64_t>(-delta);
    proc_.brk = shrink > proc_.brk - proc_.heap_base ? proc_.heap_base : proc_.brk - shrink;
  }
  return old_brk;
}

VAddr UserApi::sys_mmap(std::uint64_t bytes, std::uint8_t prot, const std::string& name) {
  syscall_entry("mmap", bytes);
  const std::uint64_t pages = pages_for(bytes);
  const VAddr addr = proc_.mmap_next;
  proc_.mmap_next += (pages + 4) * kPageSize;  // guard gap
  proc_.aspace->map_region(addr, pages, prot, VmaKind::kAnon, name);
  return addr;
}

void UserApi::sys_munmap(VAddr addr) {
  syscall_entry("munmap", addr);
  proc_.aspace->unmap_region(addr);
}

bool UserApi::sys_mprotect(VAddr start, std::uint64_t bytes, std::uint8_t prot) {
  syscall_entry("mprotect", start, bytes);
  if (page_offset(start) != 0) return false;
  proc_.aspace->protect_pages(page_of(start), pages_for(bytes), prot);
  return true;
}

// --- Files ---------------------------------------------------------------------

Fd UserApi::sys_open(const std::string& path, std::uint32_t flags) {
  syscall_entry("open", flags);
  auto& vfs = kernel_.vfs();
  auto ofd = std::make_shared<OpenFileDescription>();
  ofd->flags = flags;
  ofd->object_path = path;
  if (DeviceHooks* dev = vfs.device(path)) {
    ofd->kind = FileKind::kDevice;
    ofd->device = dev;
  } else if (ProcEntryHooks* proc_hooks = vfs.proc_entry(path)) {
    ofd->kind = FileKind::kProcEntry;
    ofd->proc = proc_hooks;
  } else {
    auto file = vfs.lookup(path);
    if (file == nullptr) {
      if ((flags & kOpenCreate) == 0) return kBadFd;
      file = vfs.create(path);
    }
    if ((flags & kOpenTrunc) != 0) file->data.clear();
    ofd->kind = FileKind::kRegular;
    ofd->file = std::move(file);
  }
  const Fd fd = proc_.fds.install(std::move(ofd));
  if (proc_.fd_hook) proc_.fd_hook(proc_, Process::FdOp::kOpen, fd, path, flags);
  return fd;
}

bool UserApi::sys_close(Fd fd) {
  syscall_entry("close", static_cast<std::uint64_t>(fd));
  const bool ok = proc_.fds.close(fd);
  if (ok && proc_.fd_hook) proc_.fd_hook(proc_, Process::FdOp::kClose, fd, "", 0);
  return ok;
}

std::int64_t UserApi::sys_read(Fd fd, std::span<std::byte> out) {
  syscall_entry("read", static_cast<std::uint64_t>(fd), out.size());
  auto ofd = proc_.fds.get(fd);
  if (!ofd) return -9;  // EBADF
  switch (ofd->kind) {
    case FileKind::kRegular: {
      const auto& data = ofd->file->data;
      if (ofd->offset >= data.size()) return 0;
      const std::size_t n = std::min<std::size_t>(out.size(), data.size() - ofd->offset);
      std::memcpy(out.data(), data.data() + ofd->offset, n);
      ofd->offset += n;
      kernel_.charge_time(kernel_.costs().mem_copy_cost(n), ChargeKind::kSyscall);
      return static_cast<std::int64_t>(n);
    }
    case FileKind::kDevice:
      return ofd->device->read ? ofd->device->read(kernel_, proc_, out) : -22;
    case FileKind::kProcEntry: {
      if (!ofd->proc->read) return -22;
      const std::string text = ofd->proc->read(kernel_);
      if (ofd->offset >= text.size()) return 0;
      const std::size_t n = std::min<std::size_t>(out.size(), text.size() - ofd->offset);
      std::memcpy(out.data(), text.data() + ofd->offset, n);
      ofd->offset += n;
      return static_cast<std::int64_t>(n);
    }
    case FileKind::kPipe: {
      auto& buf = ofd->pipe->buffer;
      if (buf.empty()) return ofd->pipe->write_end_open ? -11 /*EAGAIN*/ : 0;
      const std::size_t n = std::min(out.size(), buf.size());
      std::memcpy(out.data(), buf.data(), n);
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
      return static_cast<std::int64_t>(n);
    }
    case FileKind::kSocket: {
      auto& buf = ofd->socket->rx_buffer;
      if (buf.empty()) return -11;  // EAGAIN
      const std::size_t n = std::min(out.size(), buf.size());
      std::memcpy(out.data(), buf.data(), n);
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n));
      return static_cast<std::int64_t>(n);
    }
  }
  return -22;
}

std::int64_t UserApi::sys_write(Fd fd, std::span<const std::byte> in) {
  syscall_entry("write", static_cast<std::uint64_t>(fd), in.size());
  auto ofd = proc_.fds.get(fd);
  if (!ofd) return -9;
  switch (ofd->kind) {
    case FileKind::kRegular: {
      auto& data = ofd->file->data;
      if (ofd->offset + in.size() > data.size()) data.resize(ofd->offset + in.size());
      std::memcpy(data.data() + ofd->offset, in.data(), in.size());
      ofd->offset += in.size();
      kernel_.charge_time(kernel_.costs().mem_copy_cost(in.size()), ChargeKind::kSyscall);
      return static_cast<std::int64_t>(in.size());
    }
    case FileKind::kDevice:
      return ofd->device->write ? ofd->device->write(kernel_, proc_, in) : -22;
    case FileKind::kProcEntry: {
      if (!ofd->proc->write) return -22;
      const std::string_view text(reinterpret_cast<const char*>(in.data()), in.size());
      return ofd->proc->write(kernel_, proc_, text);
    }
    case FileKind::kPipe: {
      if (!ofd->pipe->read_end_open) {
        kernel_.send_signal(proc_.pid, kSigHup);
        return -32;  // EPIPE
      }
      ofd->pipe->buffer.insert(ofd->pipe->buffer.end(), in.begin(), in.end());
      return static_cast<std::int64_t>(in.size());
    }
    case FileKind::kSocket:
      // Loopback model: data sent appears on the peer's rx buffer; the
      // cluster layer replaces this with its network when ranks span nodes.
      return static_cast<std::int64_t>(in.size());
  }
  return -22;
}

std::int64_t UserApi::sys_write(Fd fd, std::string_view text) {
  return sys_write(fd, std::span(reinterpret_cast<const std::byte*>(text.data()), text.size()));
}

std::int64_t UserApi::sys_lseek(Fd fd, std::int64_t offset, SeekWhence whence) {
  syscall_entry("lseek", static_cast<std::uint64_t>(fd));
  auto ofd = proc_.fds.get(fd);
  if (!ofd) return -9;
  std::int64_t base = 0;
  switch (whence) {
    case SeekWhence::kSet: base = 0; break;
    case SeekWhence::kCur: base = static_cast<std::int64_t>(ofd->offset); break;
    case SeekWhence::kEnd:
      base = ofd->kind == FileKind::kRegular
                 ? static_cast<std::int64_t>(ofd->file->data.size())
                 : 0;
      break;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return -22;
  ofd->offset = static_cast<std::uint64_t>(target);
  return target;
}

Fd UserApi::sys_dup(Fd fd) {
  syscall_entry("dup", static_cast<std::uint64_t>(fd));
  const Fd copy = proc_.fds.dup(fd);
  if (copy != kBadFd && proc_.fd_hook) {
    const auto ofd = proc_.fds.get(copy);
    proc_.fd_hook(proc_, Process::FdOp::kDup, copy, ofd ? ofd->object_path : "",
                  ofd ? ofd->flags : 0);
  }
  return copy;
}

std::int64_t UserApi::sys_ioctl(Fd fd, std::uint64_t cmd, std::uint64_t arg) {
  syscall_entry("ioctl", cmd, arg);
  auto ofd = proc_.fds.get(fd);
  if (!ofd) return -9;
  if (ofd->kind != FileKind::kDevice || !ofd->device->ioctl) return -25;  // ENOTTY
  return ofd->device->ioctl(kernel_, proc_, cmd, arg);
}

bool UserApi::sys_unlink(const std::string& path) {
  syscall_entry("unlink");
  return kernel_.vfs().unlink(path);
}

// --- Sockets -------------------------------------------------------------------

Fd UserApi::sys_socket() {
  syscall_entry("socket");
  auto ofd = std::make_shared<OpenFileDescription>();
  ofd->kind = FileKind::kSocket;
  ofd->socket = std::make_shared<SimSocket>();
  const Fd fd = proc_.fds.install(std::move(ofd));
  if (proc_.fd_hook) proc_.fd_hook(proc_, Process::FdOp::kSocket, fd, "", 0);
  return fd;
}

bool UserApi::sys_bind(Fd fd, std::uint16_t port) {
  syscall_entry("bind", static_cast<std::uint64_t>(fd), port);
  auto ofd = proc_.fds.get(fd);
  if (!ofd || ofd->kind != FileKind::kSocket) return false;
  if (!kernel_.bind_port(port, proc_.pid)) return false;
  ofd->socket->local_port = port;
  proc_.bound_ports.push_back(port);
  return true;
}

bool UserApi::sys_connect(Fd fd, const std::string& host, std::uint16_t port) {
  syscall_entry("connect", static_cast<std::uint64_t>(fd), port);
  auto ofd = proc_.fds.get(fd);
  if (!ofd || ofd->kind != FileKind::kSocket) return false;
  ofd->socket->peer_host = host;
  ofd->socket->peer_port = port;
  ofd->socket->connected = true;
  return true;
}

// --- Process / signals ------------------------------------------------------------

Pid UserApi::sys_getpid() {
  syscall_entry("getpid");
  return proc_.pid;
}

Pid UserApi::sys_fork() {
  syscall_entry("fork");
  return kernel_.sys_fork(proc_);
}

bool UserApi::sys_kill(Pid pid, Signal sig) {
  syscall_entry("kill", static_cast<std::uint64_t>(pid), static_cast<std::uint64_t>(sig));
  return kernel_.send_signal(pid, sig);
}

void UserApi::sys_sigaction(Signal sig, SignalDisposition disposition) {
  syscall_entry("sigaction", static_cast<std::uint64_t>(sig));
  proc_.signals.disposition[sig] = disposition;
}

std::uint64_t UserApi::sys_sigpending() {
  syscall_entry("sigpending");
  return proc_.signals.pending;
}

void UserApi::sys_sigprocmask(std::uint64_t mask) {
  syscall_entry("sigprocmask", mask);
  proc_.signals.mask = mask;
}

void UserApi::sys_alarm(SimTime delay) {
  syscall_entry("alarm", delay);
  proc_.itimer_interval = 0;
  proc_.alarm_deadline = delay == 0 ? 0 : kernel_.now() + delay;
}

void UserApi::sys_setitimer(SimTime interval) {
  syscall_entry("setitimer", interval);
  proc_.itimer_interval = interval;
  proc_.alarm_deadline = interval == 0 ? 0 : kernel_.now() + interval;
}

void UserApi::sys_sleep(SimTime duration) {
  syscall_entry("sleep", duration);
  kernel_.block_process(proc_, kernel_.now() + duration);
}

void UserApi::sys_exit(int code) {
  syscall_entry("exit", static_cast<std::uint64_t>(code));
  kernel_.terminate(proc_, code);
}

std::vector<Vma> UserApi::sys_proc_maps() {
  // Reading /proc/self/maps costs a crossing per VMA (open + buffered
  // reads + parsing) — cheap in absolute terms, but emblematic of the
  // extraction overhead the survey describes.
  std::vector<Vma> result = proc_.aspace->vmas();
  for (std::size_t i = 0; i < result.size(); ++i) syscall_entry("read_maps");
  return result;
}

std::int64_t UserApi::sys_custom(const std::string& name, std::uint64_t a0, std::uint64_t a1,
                                 std::uint64_t a2) {
  syscall_entry(name.c_str(), a0, a1);
  return kernel_.invoke_syscall(name, proc_, a0, a1, a2);
}

std::int64_t UserApi::call_library(const std::string& name, std::uint64_t arg) {
  auto it = proc_.library_calls.find(name);
  if (it == proc_.library_calls.end()) return -38;  // "symbol not found"
  kernel_.charge_time(50 * kNanosecond, ChargeKind::kCompute);  // call overhead
  return it->second(kernel_, proc_, arg);
}

}  // namespace ckpt::sim
