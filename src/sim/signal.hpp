// Signal model of the simulated kernel.
//
// The paper's initiation-latency discussion hinges on real Unix semantics:
// a signal is only *acted on* when the target task next transitions from
// kernel mode to user mode (i.e. when the scheduler next runs it), so
// delivery latency grows with system load.  The simulator reproduces this:
// signals are queued as pending and dispatched immediately before the
// target's next quantum.
//
// Mechanisms in the survey extend the kernel with *new* signals whose
// default action runs in kernel mode (EPCKPT's checkpoint signal, CHPOX's
// SIGSYS reuse, Software Suspend's freeze signal); SimKernel supports
// registering such kernel-mode default actions.
#pragma once

#include <array>
#include <cstdint>

namespace ckpt::sim {

enum Signal : int {
  kSigNone = 0,
  kSigHup = 1,
  kSigInt = 2,
  kSigKill = 9,
  kSigUsr1 = 10,
  kSigSegv = 11,
  kSigUsr2 = 12,
  kSigAlrm = 14,
  kSigTerm = 15,
  kSigChld = 17,
  kSigCont = 18,
  kSigStop = 19,
  kSigSys = 31,
  kSigUnused = 32,
  // Signal numbers above kSigUnused are available for kernel extensions
  // (checkpoint signals, the hibernation freeze signal, ...).
  kSigCkpt = 33,    ///< EPCKPT-style dedicated checkpoint signal.
  kSigFreeze = 34,  ///< Software-Suspend-style freeze signal.
  kMaxSignal = 40,
};

const char* signal_name(Signal sig);

/// What a process does with a delivered signal.
enum class SignalDisposition : std::uint8_t {
  kDefault,  ///< Kernel default action (terminate / ignore / stop / kernel hook).
  kIgnore,
  kHandler,  ///< User-level handler: the guest's on_signal() runs in user mode.
};

/// Kernel default action for a signal with kDefault disposition.
enum class DefaultAction : std::uint8_t { kTerminate, kIgnore, kStop, kContinue };

DefaultAction default_action(Signal sig);

/// Per-process signal state.  Pending signals are a set (standard signals do
/// not queue); the mask blocks delivery without discarding.
struct SignalState {
  std::uint64_t pending = 0;
  std::uint64_t mask = 0;
  std::array<SignalDisposition, kMaxSignal + 1> disposition{};

  static constexpr std::uint64_t bit(Signal sig) { return 1ULL << sig; }

  void raise(Signal sig) { pending |= bit(sig); }
  void clear(Signal sig) { pending &= ~bit(sig); }
  [[nodiscard]] bool is_pending(Signal sig) const { return (pending & bit(sig)) != 0; }
  [[nodiscard]] bool is_blocked(Signal sig) const {
    // SIGKILL and SIGSTOP cannot be blocked.
    if (sig == kSigKill || sig == kSigStop) return false;
    return (mask & bit(sig)) != 0;
  }

  /// Lowest-numbered deliverable signal, or kSigNone.
  [[nodiscard]] Signal next_deliverable() const {
    for (int s = 1; s <= kMaxSignal; ++s) {
      const auto sig = static_cast<Signal>(s);
      if (is_pending(sig) && !is_blocked(sig)) return sig;
    }
    return kSigNone;
  }
};

}  // namespace ckpt::sim
