// Fundamental identifier types for the simulated kernel.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace ckpt::sim {

using Pid = std::int32_t;
using Tid = std::int32_t;
using Fd = std::int32_t;
using VAddr = std::uint64_t;
using PageNum = std::uint64_t;
using FrameId = std::uint64_t;

inline constexpr Pid kNoPid = -1;
inline constexpr Fd kBadFd = -1;

/// Page size of the simulated MMU.  Matches the x86/Linux value the paper's
/// page-granularity dirty-tracking discussion assumes.
inline constexpr std::uint64_t kPageSize = 4096;

/// Canonical user address-space layout (build_standard_layout).
inline constexpr VAddr kCodeBase = 0x0000'0000'0040'0000ULL;
inline constexpr VAddr kDataBase = 0x0000'0000'0060'0000ULL;
inline constexpr VAddr kHeapBase = 0x0000'0000'0100'0000ULL;
inline constexpr VAddr kStackTop = 0x0000'7fff'f000'0000ULL;

constexpr PageNum page_of(VAddr addr) { return addr / kPageSize; }
constexpr VAddr page_base(PageNum page) { return page * kPageSize; }
constexpr std::uint64_t page_offset(VAddr addr) { return addr % kPageSize; }
constexpr std::uint64_t pages_for(std::uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

}  // namespace ckpt::sim
