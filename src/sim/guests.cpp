#include "sim/guests.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace ckpt::sim {
namespace {

/// Guests keep their RNG *state* in guest memory (two u64 words after the
/// user data), so random sequences survive checkpoint/restart exactly.
std::uint64_t splitmix_step(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Layout inside the data segment used by the writer guests:
//   [0]  iteration count
//   [8]  rng state
//   [16] write cursor (sweep guest)
constexpr VAddr kIterAddr = kDataBase;
constexpr VAddr kRngAddr = kDataBase + 8;
constexpr VAddr kCursorAddr = kDataBase + 16;
constexpr VAddr kFdAddr = kDataBase + 24;

constexpr std::uint64_t kRecordBytes = 64;

void write_record(UserApi& api, VAddr addr, std::uint64_t tag) {
  std::byte record[kRecordBytes];
  for (std::size_t i = 0; i < kRecordBytes; i += 8) {
    const std::uint64_t word = tag ^ (addr + i);
    std::memcpy(record + i, &word, 8);
  }
  api.store(addr, record);
}

}  // namespace

// ---------------------------------------------------------------------------
// CounterGuest
// ---------------------------------------------------------------------------

GuestStatus CounterGuest::on_step(UserApi& api) {
  const std::uint64_t value = api.load_u64(kCounterAddr);
  api.store_u64(kCounterAddr, value + 1);
  api.compute(10 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

std::uint64_t CounterGuest::read_counter(SimKernel&, Process& proc) {
  const auto data = proc.aspace->page_data(page_of(kCounterAddr));
  std::uint64_t value = 0;
  std::memcpy(&value, data.data() + page_offset(kCounterAddr), sizeof(value));
  return value;
}

// ---------------------------------------------------------------------------
// WriterConfig
// ---------------------------------------------------------------------------

std::vector<std::byte> WriterConfig::encode() const {
  util::Serializer s;
  s.put(array_bytes);
  s.put(writes_per_step);
  s.put(seed);
  s.put_double(working_set_fraction);
  return std::move(s).take();
}

WriterConfig WriterConfig::decode(const std::vector<std::byte>& blob) {
  WriterConfig config;
  if (blob.empty()) return config;
  util::Deserializer d(blob);
  config.array_bytes = d.get<std::uint64_t>();
  config.writes_per_step = d.get<std::uint64_t>();
  config.seed = d.get<std::uint64_t>();
  config.working_set_fraction = d.get_double();
  return config;
}

// ---------------------------------------------------------------------------
// DenseWriterGuest
// ---------------------------------------------------------------------------

void DenseWriterGuest::on_start(UserApi& api) {
  api.store_u64(kRngAddr, config_.seed);
  // Touch the whole array once so every page exists and has content.
  const VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += kPageSize) {
    write_record(api, base + off, 0xA5A5A5A5ULL);
  }
}

GuestStatus DenseWriterGuest::on_step(UserApi& api) {
  const VAddr base = api.process().heap_base;
  std::uint64_t rng = api.load_u64(kRngAddr);
  const std::uint64_t iter = api.load_u64(kIterAddr);
  for (std::uint64_t w = 0; w < config_.writes_per_step; ++w) {
    const std::uint64_t slots = config_.array_bytes / kRecordBytes;
    const std::uint64_t slot = splitmix_step(rng) % slots;
    write_record(api, base + slot * kRecordBytes, iter);
  }
  api.store_u64(kRngAddr, rng);
  api.store_u64(kIterAddr, iter + 1);
  api.compute(20 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

// ---------------------------------------------------------------------------
// SparseWriterGuest
// ---------------------------------------------------------------------------

void SparseWriterGuest::on_start(UserApi& api) {
  api.store_u64(kRngAddr, config_.seed);
  const VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += kPageSize) {
    write_record(api, base + off, 0x5A5A5A5AULL);
  }
}

GuestStatus SparseWriterGuest::on_step(UserApi& api) {
  const VAddr base = api.process().heap_base;
  std::uint64_t rng = api.load_u64(kRngAddr);
  const std::uint64_t iter = api.load_u64(kIterAddr);
  const std::uint64_t hot_bytes = std::max<std::uint64_t>(
      kRecordBytes,
      static_cast<std::uint64_t>(static_cast<double>(config_.array_bytes) *
                                 config_.working_set_fraction));
  const std::uint64_t hot_slots = hot_bytes / kRecordBytes;
  for (std::uint64_t w = 0; w < config_.writes_per_step; ++w) {
    const std::uint64_t slot = splitmix_step(rng) % hot_slots;
    write_record(api, base + slot * kRecordBytes, iter);
  }
  api.store_u64(kRngAddr, rng);
  api.store_u64(kIterAddr, iter + 1);
  api.compute(20 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

// ---------------------------------------------------------------------------
// SweepWriterGuest
// ---------------------------------------------------------------------------

void SweepWriterGuest::on_start(UserApi& api) {
  const VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += kPageSize) {
    write_record(api, base + off, 0x33CC33CCULL);
  }
}

GuestStatus SweepWriterGuest::on_step(UserApi& api) {
  const VAddr base = api.process().heap_base;
  std::uint64_t cursor = api.load_u64(kCursorAddr);
  const std::uint64_t iter = api.load_u64(kIterAddr);
  for (std::uint64_t w = 0; w < config_.writes_per_step; ++w) {
    write_record(api, base + cursor, iter);
    cursor += kRecordBytes;
    if (cursor + kRecordBytes > config_.array_bytes) cursor = 0;
  }
  api.store_u64(kCursorAddr, cursor);
  api.store_u64(kIterAddr, iter + 1);
  api.compute(20 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

// ---------------------------------------------------------------------------
// InvariantGuest
// ---------------------------------------------------------------------------

void InvariantGuest::on_start(UserApi& api) {
  const VAddr base = api.process().heap_base;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += kPageSize) {
    api.store_u64(base + off, 0);
  }
}

GuestStatus InvariantGuest::on_step(UserApi& api) {
  // Bump the version stamp on every page of the array.  The update spans
  // many pages and is interleaved with other tasks' execution, so a
  // concurrent (non-stopping, non-forking) checkpointer can capture a mix
  // of old and new stamps.
  const VAddr base = api.process().heap_base;
  const std::uint64_t version = api.load_u64(base) + 1;
  for (std::uint64_t off = 0; off < config_.array_bytes; off += kPageSize) {
    api.store_u64(base + off, version);
  }
  api.compute(10 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

bool InvariantGuest::verify_consistency(SimKernel&, Process& proc,
                                        std::uint64_t array_bytes) {
  const VAddr base = proc.heap_base;
  std::uint64_t expected = 0;
  bool first = true;
  for (std::uint64_t off = 0; off < array_bytes; off += kPageSize) {
    const auto data = proc.aspace->page_data(page_of(base + off));
    std::uint64_t stamp = 0;
    std::memcpy(&stamp, data.data() + page_offset(base + off), sizeof(stamp));
    if (first) {
      expected = stamp;
      first = false;
    } else if (stamp != expected) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// FileLoggerGuest
// ---------------------------------------------------------------------------

std::vector<std::byte> FileLoggerGuest::Config::encode() const {
  util::Serializer s;
  s.put_string(log_path);
  s.put(record_bytes);
  return std::move(s).take();
}

FileLoggerGuest::Config FileLoggerGuest::Config::decode(const std::vector<std::byte>& blob) {
  Config config;
  if (blob.empty()) return config;
  util::Deserializer d(blob);
  config.log_path = d.get_string();
  config.record_bytes = d.get<std::uint64_t>();
  return config;
}

void FileLoggerGuest::on_start(UserApi& api) {
  const Fd fd = api.sys_open(config_.log_path, kOpenWrite | kOpenCreate);
  // Store the descriptor number in guest memory so it survives restart.
  api.store_u64(kFdAddr, static_cast<std::uint64_t>(fd));
}

GuestStatus FileLoggerGuest::on_step(UserApi& api) {
  const Fd fd = static_cast<Fd>(api.load_u64(kFdAddr));
  const std::uint64_t iter = api.load_u64(kIterAddr);
  std::vector<std::byte> record(config_.record_bytes);
  for (std::size_t i = 0; i < record.size(); ++i) {
    record[i] = static_cast<std::byte>((iter + i) & 0xFF);
  }
  api.sys_write(fd, record);
  // Exercise heap churn: grow, then query the break the user-level way.
  api.sys_sbrk(64);
  api.sys_sbrk(0);
  api.store_u64(kIterAddr, iter + 1);
  api.compute(5 * kMicrosecond);
  api.work_done();
  return GuestStatus::kRunning;
}

// ---------------------------------------------------------------------------
// SelfCheckpointGuest
// ---------------------------------------------------------------------------

std::vector<std::byte> SelfCheckpointGuest::Config::encode() const {
  util::Serializer s;
  s.put_string(syscall_name);
  s.put(interval_steps);
  s.put(arg0);
  s.put<std::uint8_t>(use_library ? 1 : 0);
  return std::move(s).take();
}

SelfCheckpointGuest::Config SelfCheckpointGuest::Config::decode(
    const std::vector<std::byte>& blob) {
  Config config;
  if (blob.empty()) return config;
  util::Deserializer d(blob);
  config.syscall_name = d.get_string();
  config.interval_steps = d.get<std::uint64_t>();
  config.arg0 = d.get<std::uint64_t>();
  config.use_library = d.get<std::uint8_t>() != 0;
  return config;
}

void SelfCheckpointGuest::on_start(UserApi& api) { api.store_u64(kIterAddr, 0); }

GuestStatus SelfCheckpointGuest::on_step(UserApi& api) {
  const std::uint64_t iter = api.load_u64(kIterAddr);
  // Some useful work...
  api.store_u64(kDataBase + 64 + (iter % 512) * 8, iter);
  api.store_u64(kIterAddr, iter + 1);
  api.compute(10 * kMicrosecond);
  api.work_done();
  // ...and the hand-inserted checkpoint call, as VMADump/libckpt require.
  if (config_.interval_steps != 0 && (iter + 1) % config_.interval_steps == 0) {
    if (config_.use_library) {
      api.call_library(config_.syscall_name, config_.arg0);
    } else {
      api.sys_custom(config_.syscall_name, config_.arg0);
    }
  }
  return GuestStatus::kRunning;
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void register_standard_guests() {
  auto& registry = GuestRegistry::instance();
  if (registry.has_type(CounterGuest::kTypeName)) return;
  registry.register_type(CounterGuest::kTypeName, [](const std::vector<std::byte>&) {
    return std::make_unique<CounterGuest>();
  });
  registry.register_type(DenseWriterGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<DenseWriterGuest>(WriterConfig::decode(b));
  });
  registry.register_type(SparseWriterGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<SparseWriterGuest>(WriterConfig::decode(b));
  });
  registry.register_type(SweepWriterGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<SweepWriterGuest>(WriterConfig::decode(b));
  });
  registry.register_type(InvariantGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<InvariantGuest>(WriterConfig::decode(b));
  });
  registry.register_type(FileLoggerGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<FileLoggerGuest>(FileLoggerGuest::Config::decode(b));
  });
  registry.register_type(SelfCheckpointGuest::kTypeName, [](const std::vector<std::byte>& b) {
    return std::make_unique<SelfCheckpointGuest>(SelfCheckpointGuest::Config::decode(b));
  });
}

SpawnOptions spawn_options_for_array(std::uint64_t array_bytes) {
  SpawnOptions options;
  options.heap_pages = pages_for(array_bytes) + 4;
  return options;
}

}  // namespace ckpt::sim
