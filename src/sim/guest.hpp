// Guest programs: the applications that run on the simulated kernel.
//
// Guests follow a strict von-Neumann contract that makes checkpoint/restart
// *real* rather than cosmetic:
//
//   * The C++ subclass is the program's immutable TEXT: it may hold
//     configuration fixed at construction, but NO mutable execution state.
//   * All mutable state lives in the simulated address space (and simulated
//     registers), accessed through UserApi.
//
// Restart therefore re-instantiates the guest type from its registered
// factory (the analogue of re-loading the executable) and restores memory
// and registers from the image; execution continues correctly if and only
// if the checkpoint captured the process state completely — which is
// exactly what the test suite verifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/signal.hpp"
#include "sim/types.hpp"

namespace ckpt::sim {

class UserApi;

enum class GuestStatus : std::uint8_t {
  kRunning,  ///< made progress; schedule again
  kBlocked,  ///< waiting (sleep / IO); kernel will wake it
  kExited,   ///< terminated voluntarily
};

class GuestProgram {
 public:
  virtual ~GuestProgram() = default;

  /// One-time setup in user mode: map memory, open files, install handlers.
  virtual void on_start(UserApi& api) { (void)api; }

  /// Execute one scheduling quantum of work.
  virtual GuestStatus on_step(UserApi& api) = 0;

  /// User-mode signal handler entry (only for signals whose disposition the
  /// guest set to SignalDisposition::kHandler).
  virtual void on_signal(UserApi& api, Signal sig) {
    (void)api;
    (void)sig;
  }
};

/// Factory blob: how to rebuild the guest's text segment at restart.
struct GuestImage {
  std::string type_name;
  std::vector<std::byte> config;
};

using GuestFactory =
    std::function<std::unique_ptr<GuestProgram>(const std::vector<std::byte>& config)>;

/// Global registry mapping guest type names to factories — the simulated
/// equivalent of the file system holding executables.
class GuestRegistry {
 public:
  static GuestRegistry& instance();

  void register_type(const std::string& name, GuestFactory factory);
  [[nodiscard]] bool has_type(const std::string& name) const;
  [[nodiscard]] std::unique_ptr<GuestProgram> create(const GuestImage& image) const;

 private:
  std::map<std::string, GuestFactory> factories_;
};

/// Helper for registering a guest type at static-init time.
struct GuestTypeRegistrar {
  GuestTypeRegistrar(const std::string& name, GuestFactory factory) {
    GuestRegistry::instance().register_type(name, std::move(factory));
  }
};

}  // namespace ckpt::sim
