#include "sim/process.hpp"

namespace ckpt::sim {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kBlocked: return "blocked";
    case TaskState::kStopped: return "stopped";
    case TaskState::kZombie: return "zombie";
    case TaskState::kDead: return "dead";
  }
  return "?";
}

Process::Process(Pid pid_in, std::string name_in, std::unique_ptr<AddressSpace> aspace_in)
    : pid(pid_in), name(std::move(name_in)), aspace(std::move(aspace_in)) {}

}  // namespace ckpt::sim
