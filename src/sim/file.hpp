// Simulated file system, devices, /proc entries and sockets.
//
// Checkpointing open files is a classic hard case the survey calls out:
// offsets must be extracted (lseek at user level, direct struct access at
// kernel level), deleted files must be detected at restart (UCLiK), and
// file *contents* may need to be saved with the image (UCLiK, PsncR/C).
// Kernel-thread mechanisms communicate through device files (CRAK/BLCR
// ioctl) or /proc entries (CHPOX, PsncR/C), so those object types are first
// class here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ckpt::sim {

class SimKernel;
class Process;

/// A regular file's backing store.
struct SimFile {
  std::string path;
  std::vector<std::byte> data;
  bool deleted = false;  ///< unlinked while still open (UCLiK restart case).
};

enum class FileKind : std::uint8_t { kRegular, kDevice, kProcEntry, kPipe, kSocket };

const char* to_string(FileKind kind);

/// Hooks implementing a character device (e.g. /dev/crak).  The ioctl hook
/// is how user-space talks to kernel-thread checkpointers in CRAK and BLCR.
struct DeviceHooks {
  std::function<std::int64_t(SimKernel&, Process& caller, std::uint64_t cmd, std::uint64_t arg)>
      ioctl;
  std::function<std::int64_t(SimKernel&, Process& caller, std::span<std::byte> out)> read;
  std::function<std::int64_t(SimKernel&, Process& caller, std::span<const std::byte> in)> write;
};

/// Hooks implementing a /proc pseudo-file (e.g. /proc/chpox).
struct ProcEntryHooks {
  std::function<std::string(SimKernel&)> read;
  std::function<std::int64_t(SimKernel&, Process& caller, std::string_view in)> write;
};

/// An in-flight unidirectional pipe.
struct SimPipe {
  std::vector<std::byte> buffer;
  bool write_end_open = true;
  bool read_end_open = true;
};

/// A (very small) connected socket model: enough state that migrating a
/// process with a live socket fails without virtualization and succeeds
/// with a ZAP-style pod that re-homes the endpoint.
struct SimSocket {
  std::uint16_t local_port = 0;
  std::string peer_host;
  std::uint16_t peer_port = 0;
  bool connected = false;
  std::vector<std::byte> rx_buffer;
};

/// An open file description — shared between dup()ed descriptors, holding
/// the offset the survey's lseek() discussion is about.
struct OpenFileDescription {
  FileKind kind = FileKind::kRegular;
  std::shared_ptr<SimFile> file;  ///< kRegular
  std::uint64_t offset = 0;
  std::uint32_t flags = 0;
  std::string object_path;  ///< device / proc path for reattachment
  DeviceHooks* device = nullptr;
  ProcEntryHooks* proc = nullptr;
  std::shared_ptr<SimPipe> pipe;
  bool pipe_write_end = false;
  std::shared_ptr<SimSocket> socket;
};

/// Per-process descriptor table.
class FdTable {
 public:
  Fd install(std::shared_ptr<OpenFileDescription> ofd);
  /// Install at a specific descriptor number (restart path).  Fails (false)
  /// if the slot is occupied.
  bool install_at(Fd fd, std::shared_ptr<OpenFileDescription> ofd);
  [[nodiscard]] std::shared_ptr<OpenFileDescription> get(Fd fd) const;
  bool close(Fd fd);
  Fd dup(Fd fd);

  /// Enumerate live descriptors in ascending order: fn(fd, ofd).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i]) fn(static_cast<Fd>(i), *slots_[i]);
    }
  }

  [[nodiscard]] std::size_t open_count() const;
  void clear() { slots_.clear(); }

 private:
  std::vector<std::shared_ptr<OpenFileDescription>> slots_;
};

/// The machine-wide file system namespace.
class SimFileSystem {
 public:
  /// Create (or truncate) a regular file.
  std::shared_ptr<SimFile> create(const std::string& path,
                                  std::vector<std::byte> contents = {});
  [[nodiscard]] std::shared_ptr<SimFile> lookup(const std::string& path) const;
  /// Unlink: removes from the namespace; open descriptions keep the node
  /// alive and see deleted == true.
  bool unlink(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;

  void register_device(const std::string& path, DeviceHooks hooks);
  void unregister_device(const std::string& path);
  [[nodiscard]] DeviceHooks* device(const std::string& path);

  void register_proc_entry(const std::string& path, ProcEntryHooks hooks);
  void unregister_proc_entry(const std::string& path);
  [[nodiscard]] ProcEntryHooks* proc_entry(const std::string& path);

  [[nodiscard]] std::vector<std::string> list_proc_entries() const;
  [[nodiscard]] std::vector<std::string> list_devices() const;

 private:
  std::map<std::string, std::shared_ptr<SimFile>> files_;
  std::map<std::string, std::unique_ptr<DeviceHooks>> devices_;
  std::map<std::string, std::unique_ptr<ProcEntryHooks>> proc_entries_;
};

}  // namespace ckpt::sim
