// SimKernel: the simulated operating system.
//
// A deterministic, discrete-quantum model of a small SMP Unix machine:
// processes with real page-backed address spaces, fork with copy-on-write,
// Unix signal semantics with kernel->user delivery points, a two-class
// scheduler (dynamic-priority timesharing + SCHED_FIFO), kernel threads,
// timers, a VFS with devices and /proc entries, and an extension interface
// (new syscalls, new kernel signals, loadable modules) sufficient to host
// every checkpoint/restart mechanism in the survey's taxonomy.
//
// Time model: SimKernel::run_round() picks up to `ncpus` runnable tasks and
// steps each for one quantum; the global clock advances by the longest time
// any of them consumed (they execute "in parallel").  All costs (syscall
// crossings, page faults, memory copies, storage I/O) are charged through
// the CostModel, so efficiency comparisons between checkpointing strategies
// are structural and exactly reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/costs.hpp"
#include "sim/file.hpp"
#include "sim/guest.hpp"
#include "sim/memory.hpp"
#include "sim/process.hpp"
#include "sim/signal.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ckpt::obs {
class Observer;
}

namespace ckpt::sim {

class UserApi;

/// Result of one kernel-thread body invocation.
enum class KStepResult : std::uint8_t { kContinue, kSleep, kExit };

using KThreadBody = std::function<KStepResult(SimKernel&)>;

/// A mechanism-registered system call: (kernel, calling process, args).
using SyscallHandler =
    std::function<std::int64_t(SimKernel&, Process&, std::uint64_t, std::uint64_t, std::uint64_t)>;

/// A mechanism-registered kernel-mode signal action, executed at the
/// target's next kernel->user transition, *in kernel mode*, before any
/// user-level handler dispatch.
using KernelSignalAction = std::function<void(SimKernel&, Process&)>;

/// What kind of stat bucket a charge belongs to.
enum class ChargeKind : std::uint8_t { kCompute, kSyscall, kFault, kSignal };

/// A loadable kernel module: registrations it made are undone at unload —
/// the portability/modularity property Table 1's last column records.
class KernelModule {
 public:
  explicit KernelModule(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }
  void add_cleanup(std::function<void(SimKernel&)> fn) { cleanup_.push_back(std::move(fn)); }

 private:
  friend class SimKernel;
  std::string name_;
  std::vector<std::function<void(SimKernel&)>> cleanup_;
};

/// Options controlling process creation.
struct SpawnOptions {
  std::uint64_t code_pages = 4;
  std::uint64_t data_pages = 8;
  std::uint64_t heap_pages = 16;
  std::uint64_t stack_pages = 4;
  int thread_count = 1;
  SchedParams sched{};
};

struct KernelStats {
  std::uint64_t context_switches = 0;
  std::uint64_t aspace_switches = 0;
  /// Of which: switches forced by kernel code touching a user address space
  /// other than the live one (the kernel-thread TLB cost of §4.1) — as
  /// opposed to ordinary scheduler-driven switches.
  std::uint64_t kernel_access_switches = 0;
  std::uint64_t rounds = 0;
  std::uint64_t signals_sent = 0;
  std::uint64_t forks = 0;
};

class SimKernel {
 public:
  explicit SimKernel(int ncpus = 1, CostModel costs = {}, std::uint64_t seed = 42);
  ~SimKernel();

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  // --- Time & execution ----------------------------------------------------
  [[nodiscard]] SimTime now() const { return clock_; }
  [[nodiscard]] int ncpus() const { return ncpus_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Scheduling quantum (time-slice) length.
  [[nodiscard]] SimTime quantum() const { return quantum_; }
  void set_quantum(SimTime q) { quantum_ = q; }

  /// Run one scheduling round (up to ncpus tasks step once).  Returns false
  /// if nothing was runnable (clock still advances to the next timer).
  bool run_round();

  /// Run rounds until `deadline` or until no task is alive.
  void run_until(SimTime deadline);

  /// Run rounds until predicate() is true, up to `deadline` (0 = no limit).
  /// Returns true if the predicate fired.
  bool run_while(const std::function<bool()>& keep_going, SimTime deadline = 0);

  /// Advance the clock without running tasks (idle wait).
  void idle_until(SimTime t);

  // --- Processes -------------------------------------------------------------
  /// Create a user process running a registered guest program.
  Pid spawn(const std::string& guest_type, std::vector<std::byte> guest_config = {},
            const SpawnOptions& options = {});

  /// Create a process shell with no guest (restart engines fill it in).
  /// The process starts Stopped; callers resume it when state is restored.
  Pid create_restored_process(const std::string& name, const GuestImage& image,
                              std::optional<Pid> desired_pid);

  /// Kernel-initiated fork (used by the forked-checkpoint technique).  The
  /// child shares all pages copy-on-write and starts Stopped when
  /// `freeze_child`; it never runs guest code in that mode.
  Pid fork_process(Process& parent, bool freeze_child);

  /// fork(2) as invoked by a guest: child is runnable, gets a fresh guest
  /// instance of the same type, and gpr[7] == 1 marks "I am the child".
  Pid sys_fork(Process& parent);

  void terminate(Process& proc, int exit_code);
  /// Reap a zombie (kernel-side waitpid); frees the task slot.
  void reap(Pid pid);

  [[nodiscard]] Process* find_process(Pid pid);
  [[nodiscard]] const Process* find_process(Pid pid) const;
  /// Throwing variant of find_process.
  Process& process(Pid pid);

  [[nodiscard]] std::vector<Pid> live_pids() const;
  [[nodiscard]] bool pid_in_use(Pid pid) const { return find_process(pid) != nullptr; }

  // --- Scheduling control ----------------------------------------------------
  /// Remove from the runqueue (the consistency mechanism the survey
  /// describes: "like removing the application from its runqueue list").
  void stop_process(Process& proc);
  void resume_process(Process& proc);
  void block_process(Process& proc, SimTime wake_at = 0);
  void wake_process(Process& proc);

  // --- Signals ----------------------------------------------------------------
  /// Send a signal (kill(2) path when called from a syscall; kernel paths
  /// may call it directly, which models "directly updating the data
  /// structure of the process").
  bool send_signal(Pid pid, Signal sig);

  /// Register a new kernel-mode default action for `sig` (EPCKPT / CHPOX /
  /// Software Suspend pattern).  Module may be null for static extensions.
  void register_kernel_signal(Signal sig, KernelSignalAction action, KernelModule* module);
  void unregister_kernel_signal(Signal sig);
  [[nodiscard]] bool has_kernel_signal(Signal sig) const;

  // --- Syscall extension ---------------------------------------------------
  void register_syscall(const std::string& name, SyscallHandler handler,
                        KernelModule* module);
  void unregister_syscall(const std::string& name);
  [[nodiscard]] bool has_syscall(const std::string& name) const;
  /// Dispatch from UserApi::sys_custom.
  std::int64_t invoke_syscall(const std::string& name, Process& caller, std::uint64_t a0,
                              std::uint64_t a1, std::uint64_t a2);

  // --- Kernel threads ---------------------------------------------------------
  Pid spawn_kernel_thread(const std::string& name, KThreadBody body,
                          SchedParams sched = {SchedClass::kFifo, 50, 0, 0});
  /// Wake a sleeping kernel thread (or blocked process).
  void wake(Pid pid);

  // --- Modules -----------------------------------------------------------------
  KernelModule& load_module(const std::string& name);
  void unload_module(const std::string& name);
  [[nodiscard]] bool module_loaded(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> loaded_modules() const;

  // --- VFS ---------------------------------------------------------------------
  [[nodiscard]] SimFileSystem& vfs() { return vfs_; }
  [[nodiscard]] PhysicalMemory& physical_memory() { return physmem_; }

  // --- Sockets / ports -----------------------------------------------------------
  /// Bind a port in the machine namespace; fails if taken (restart conflict).
  bool bind_port(std::uint16_t port, Pid owner);
  void release_port(std::uint16_t port);
  [[nodiscard]] Pid port_owner(std::uint16_t port) const;

  // --- Timers -----------------------------------------------------------------
  /// One-shot kernel timer; fires between rounds.
  void add_timer(SimTime when, std::function<void(SimKernel&)> fn);

  // --- Fault-injection hooks (src/inject) --------------------------------------
  /// Fail-stop a process at simulated time `when`: it is terminated with
  /// SIGKILL semantics and reaped between rounds.  No-op if the pid is gone
  /// (or already dead) by then — the crash raced with a natural exit.
  void kill_process_at(SimTime when, Pid pid);

  /// Stop (freeze) a process at simulated time `when`; no-op if gone.
  void stop_process_at(SimTime when, Pid pid);

  /// Drop a pending, not-yet-delivered signal — a lost checkpoint request.
  /// Returns true if the signal was actually pending (and is now gone).
  bool drop_pending_signal(Pid pid, Signal sig);

  // --- Kernel-mode state access (system-level checkpointing) ------------------
  /// Charge the cost of directly reading N fields from a task structure.
  void charge_kernel_field_reads(std::uint64_t fields);

  /// Copy user pages from kernel context, charging memory-copy cost and —
  /// when the executing context's active address space differs from the
  /// target's — an address-space switch (TLB invalidation).  This is the
  /// mechanism behind the survey's kernel-thread TLB discussion.
  void kernel_copy_from_user(Process& target, PageNum page, std::span<std::byte> out);
  void kernel_copy_to_user(Process& target, PageNum page, std::span<const std::byte> in);

  /// Arbitrary-range variants (block / cache-line granularity payloads).
  /// The range must lie within one mapped page.
  void kernel_read_user_range(Process& target, VAddr addr, std::span<std::byte> out);
  void kernel_write_user_range(Process& target, VAddr addr, std::span<const std::byte> in);

  /// Charge storage/network time to the currently executing context.
  void charge_time(SimTime t, ChargeKind kind = ChargeKind::kCompute);

  /// Time charged so far within the current step (0 outside steps).  The
  /// clock is frozen during a step, so in-step durations are measured as
  /// deltas of this counter.
  [[nodiscard]] SimTime step_charge() const { return step_consumed_; }

  /// Effective time as a trace timestamp: the frozen round clock plus time
  /// charged so far inside the current step.  Equals now() between steps.
  [[nodiscard]] SimTime effective_now() const { return clock_ + step_consumed_; }

  // --- Observability (src/obs) ------------------------------------------------
  /// Attach (or detach with nullptr) an observability sink.  Attaching wires
  /// the sink's trace clock to this kernel's effective time; all layers
  /// running on this kernel pick the observer up from here.
  void set_observer(obs::Observer* observer);
  [[nodiscard]] obs::Observer* observer() const { return observer_; }

  /// The task currently executing (the `current` macro).  Null between
  /// steps; syscall handlers see the caller.
  [[nodiscard]] Process* current() { return current_; }

  /// User-mode store/load with full fault semantics (COW, write-protect
  /// hooks, SIGSEGV).  Returns false if the access ultimately faulted
  /// fatally (signal delivered / process killed).
  bool user_store(Process& proc, VAddr addr, std::span<const std::byte> data);
  bool user_load(Process& proc, VAddr addr, std::span<std::byte> out);

  [[nodiscard]] const KernelStats& stats() const { return kstats_; }

  /// Machine identity (set by the cluster layer).
  std::string hostname = "node0";

  /// Deliver all pending deliverable signals for `proc` right now (the
  /// kernel->user transition point).  Exposed for the scheduler and tests.
  void deliver_pending_signals(Process& proc);

 private:
  friend class UserApi;

  struct PendingTimer {
    SimTime when;
    std::uint64_t seq;
    std::function<void(SimKernel&)> fn;
    bool operator<(const PendingTimer& other) const {
      return when != other.when ? when < other.when : seq < other.seq;
    }
  };

  Process& allocate_process(std::string name, bool kernel_thread, std::optional<Pid> desired);
  /// Minimum fairness clock across live timeshare tasks (0 if none).
  [[nodiscard]] SimTime min_timeshare_vruntime() const;
  void build_standard_layout(Process& proc, const SpawnOptions& options);
  Process* pick_next(std::set<Pid>& already_running);
  SimTime step_task(Process& proc, int cpu);
  void fire_timers();
  void handle_process_timers(Process& proc);
  /// Page-fault entry for a store to `page`.  Returns true if the access
  /// should be retried (fault handled), false if fatal.
  bool handle_store_fault(Process& proc, PageNum page, AccessResult result);

  int ncpus_;
  CostModel costs_;
  util::Rng rng_;
  SimTime clock_ = 0;
  SimTime quantum_ = 100 * kMicrosecond;

  PhysicalMemory physmem_;
  SimFileSystem vfs_;

  std::map<Pid, std::unique_ptr<Process>> tasks_;
  Pid next_pid_ = 2;  // pid 1 is the notional init

  std::map<std::string, SyscallHandler> syscalls_;
  std::map<int, KernelSignalAction> kernel_signals_;
  std::map<std::string, std::unique_ptr<KernelModule>> modules_;
  std::map<Pid, KThreadBody> kthread_bodies_;
  std::map<std::uint16_t, Pid> ports_;

  std::vector<PendingTimer> timers_;
  std::uint64_t timer_seq_ = 0;

  obs::Observer* observer_ = nullptr;

  // Execution context while stepping.
  Process* current_ = nullptr;
  int current_cpu_ = 0;
  SimTime step_consumed_ = 0;
  std::vector<Pid> cpu_active_aspace_;  ///< per-CPU: whose page tables are live
  std::vector<Pid> cpu_last_task_;      ///< per-CPU: last task that ran (ctx switches)

  KernelStats kstats_;
};

}  // namespace ckpt::sim
