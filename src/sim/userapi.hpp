// UserApi: the user-mode view of the simulated kernel.
//
// Every method prefixed sys_ is a system call: it charges one user<->kernel
// crossing (plus interposition cost when an LD_PRELOAD-style interposer is
// installed) before doing its work.  Plain load/store are ordinary memory
// accesses that go through the MMU model — they are cheap unless they fault.
//
// This asymmetry is the heart of the survey's user-level-efficiency
// argument: extracting process state from user space costs one crossing per
// item (sbrk(0) for the heap bound, lseek() per descriptor, sigpending()
// for signals, a /proc/self/maps walk for the VMA list), whereas a
// system-level checkpointer reads the same fields directly from the task
// structure at kernel_field_access_ns each.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace ckpt::sim {

/// Open flags (subset of POSIX).
enum OpenFlags : std::uint32_t {
  kOpenRead = 0x1,
  kOpenWrite = 0x2,
  kOpenCreate = 0x40,
  kOpenTrunc = 0x200,
};

enum class SeekWhence : int { kSet = 0, kCur = 1, kEnd = 2 };

class UserApi {
 public:
  UserApi(SimKernel& kernel, Process& proc) : kernel_(kernel), proc_(proc) {}

  [[nodiscard]] SimKernel& kernel() { return kernel_; }
  [[nodiscard]] Process& process() { return proc_; }
  [[nodiscard]] SimTime now() const { return kernel_.now(); }

  // --- Plain memory access (user mode, MMU-mediated) ----------------------
  /// Store bytes; may take COW / write-protect / SIGSEGV faults.
  bool store(VAddr addr, std::span<const std::byte> data);
  bool load(VAddr addr, std::span<std::byte> out);
  bool store_u64(VAddr addr, std::uint64_t value);
  [[nodiscard]] std::uint64_t load_u64(VAddr addr);

  /// Model `amount` of pure computation (no memory traffic).
  void compute(SimTime amount);
  /// Bump the guest's useful-work counter (application progress metric).
  void work_done(std::uint64_t iterations = 1);

  /// Registers of the first thread (the simulated CPU context).
  [[nodiscard]] Registers& regs();

  /// Faulting address of the most recent SIGSEGV (siginfo.si_addr).
  [[nodiscard]] VAddr fault_addr() const { return proc_.fault_addr; }

  // --- Memory management syscalls ------------------------------------------
  /// sbrk(delta); sbrk(0) is the classic user-level heap-bound query.
  VAddr sys_sbrk(std::int64_t delta);
  VAddr sys_mmap(std::uint64_t bytes, std::uint8_t prot, const std::string& name);
  void sys_munmap(VAddr addr);
  bool sys_mprotect(VAddr start, std::uint64_t bytes, std::uint8_t prot);

  // --- Files -----------------------------------------------------------------
  Fd sys_open(const std::string& path, std::uint32_t flags);
  bool sys_close(Fd fd);
  std::int64_t sys_read(Fd fd, std::span<std::byte> out);
  std::int64_t sys_write(Fd fd, std::span<const std::byte> in);
  std::int64_t sys_write(Fd fd, std::string_view text);
  std::int64_t sys_lseek(Fd fd, std::int64_t offset, SeekWhence whence);
  Fd sys_dup(Fd fd);
  std::int64_t sys_ioctl(Fd fd, std::uint64_t cmd, std::uint64_t arg);
  bool sys_unlink(const std::string& path);

  // --- Sockets ----------------------------------------------------------------
  Fd sys_socket();
  bool sys_bind(Fd fd, std::uint16_t port);
  bool sys_connect(Fd fd, const std::string& host, std::uint16_t port);

  // --- Process / signals -------------------------------------------------------
  [[nodiscard]] Pid sys_getpid();
  Pid sys_fork();
  bool sys_kill(Pid pid, Signal sig);
  void sys_sigaction(Signal sig, SignalDisposition disposition);
  /// sigpending(): the user-level way to learn what signals are queued.
  std::uint64_t sys_sigpending();
  void sys_sigprocmask(std::uint64_t mask);
  void sys_alarm(SimTime delay);
  void sys_setitimer(SimTime interval);
  void sys_sleep(SimTime duration);
  /// Terminate the calling process.  Inside a scheduled step this unwinds
  /// back to the scheduler; from test harness contexts it simply marks the
  /// process a zombie and returns.
  void sys_exit(int code);

  /// Walk /proc/self/maps: one crossing per VMA, as reading and parsing the
  /// pseudo-file costs repeated reads.
  std::vector<Vma> sys_proc_maps();

  /// Invoke a mechanism-registered system call by name (ENOSYS => -38).
  std::int64_t sys_custom(const std::string& name, std::uint64_t a0 = 0,
                          std::uint64_t a1 = 0, std::uint64_t a2 = 0);

  /// Call a user-level library function linked into the process (e.g. a
  /// checkpoint library's ckpt_now()).  An ordinary function call: no
  /// kernel crossing.  Returns -38 when no such library is linked.
  std::int64_t call_library(const std::string& name, std::uint64_t arg = 0);

 private:
  /// Common syscall entry: accounting, crossing cost, interposition.
  void syscall_entry(const char* name, std::uint64_t a0 = 0, std::uint64_t a1 = 0);

  SimKernel& kernel_;
  Process& proc_;
};

}  // namespace ckpt::sim
