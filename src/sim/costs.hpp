// Deterministic cost model of the simulated machine.
//
// The survey's efficiency arguments are *relative*: user-level checkpointing
// pays syscall crossings to extract state the kernel reads directly;
// kernel threads pay address-space switches (TLB invalidation) when they do
// not interrupt the checkpointed task; storage and network bandwidths bound
// checkpoint latency.  The defaults below are calibrated to the relative
// magnitudes of 2004-era hardware cited by the paper ([20] for syscall and
// context-switch costs; [31] for I/O-bus/disk/interconnect bottlenecks).
// Absolute values do not matter for the reproduced claims; ratios do.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace ckpt::sim {

struct CostModel {
  // --- CPU-side costs -----------------------------------------------------
  /// One user->kernel->user crossing (trap, register save/restore).
  SimTime syscall_crossing_ns = 1 * kMicrosecond;
  /// Full process context switch performed by the scheduler.
  SimTime context_switch_ns = 5 * kMicrosecond;
  /// Address-space switch incurred by a kernel thread touching a user
  /// address space other than the one it interrupted (TLB invalidation).
  SimTime addr_space_switch_ns = 3 * kMicrosecond;
  /// Kernel-mode page-fault handling (the cheap, in-kernel dirty-bit path).
  SimTime page_fault_kernel_ns = 2 * kMicrosecond;
  /// Delivering a SIGSEGV to a user-level handler and returning: crossing,
  /// signal frame setup, handler dispatch (the expensive user-level
  /// dirty-tracking path).
  SimTime signal_delivery_ns = 3 * kMicrosecond;
  /// Extra per-intercepted-syscall cost of LD_PRELOAD-style interposition
  /// (wrapper dispatch plus shadow bookkeeping).
  SimTime interposition_ns = 300 * kNanosecond;
  /// Kernel reading one field of a task structure directly (the system-level
  /// alternative to a state-extraction syscall).
  SimTime kernel_field_access_ns = 20 * kNanosecond;

  // --- Memory -------------------------------------------------------------
  /// Memory copy throughput, ns per byte (default 2 GB/s).
  double mem_copy_ns_per_byte = 0.5;
  /// Hashing throughput for probabilistic checkpointing, ns per byte.
  double hash_ns_per_byte = 1.0;
  /// Copy-on-write fault: fault entry plus one page copy.
  SimTime cow_fault_extra_ns = 1 * kMicrosecond;
  /// Copying one page-table entry during a COW fork (write-protect both
  /// sides, bump the frame refcount).  The whole guest-visible pause of a
  /// fork-snapshot commit is this walk: O(present pages), no page copies.
  SimTime pte_copy_ns = 150 * kNanosecond;

  // --- Stable storage -----------------------------------------------------
  /// Local disk: seek/setup latency and streaming bandwidth (bytes/s).
  SimTime disk_latency_ns = 5 * kMillisecond;
  double disk_bandwidth_bps = 50.0 * 1024 * 1024;
  /// Interconnection network (to remote stable storage / migration target).
  SimTime net_latency_ns = 50 * kMicrosecond;
  double net_bandwidth_bps = 100.0 * 1024 * 1024;

  // --- Derived helpers ----------------------------------------------------
  [[nodiscard]] SimTime mem_copy_cost(std::uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) * mem_copy_ns_per_byte);
  }
  [[nodiscard]] SimTime hash_cost(std::uint64_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) * hash_ns_per_byte);
  }
  [[nodiscard]] SimTime disk_cost(std::uint64_t bytes) const {
    return disk_latency_ns +
           static_cast<SimTime>(static_cast<double>(bytes) / disk_bandwidth_bps * 1e9);
  }
  [[nodiscard]] SimTime net_cost(std::uint64_t bytes) const {
    return net_latency_ns +
           static_cast<SimTime>(static_cast<double>(bytes) / net_bandwidth_bps * 1e9);
  }
  /// COW fork: one syscall crossing plus a page-table walk over the present
  /// pages.  Deliberately *not* a function of mapped bytes — that is the
  /// point the streaming commit path measures.
  [[nodiscard]] SimTime fork_cost(std::uint64_t present_pages) const {
    return syscall_crossing_ns + static_cast<SimTime>(present_pages) * pte_copy_ns;
  }
};

}  // namespace ckpt::sim
