#include "sim/guest.hpp"

#include <stdexcept>

namespace ckpt::sim {

GuestRegistry& GuestRegistry::instance() {
  static GuestRegistry registry;
  return registry;
}

void GuestRegistry::register_type(const std::string& name, GuestFactory factory) {
  factories_[name] = std::move(factory);
}

bool GuestRegistry::has_type(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<GuestProgram> GuestRegistry::create(const GuestImage& image) const {
  auto it = factories_.find(image.type_name);
  if (it == factories_.end()) {
    throw std::runtime_error("GuestRegistry: unknown guest type '" + image.type_name + "'");
  }
  return it->second(image.config);
}

}  // namespace ckpt::sim
