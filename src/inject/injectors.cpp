#include "inject/injectors.hpp"

#include "obs/observer.hpp"

namespace ckpt::inject {
namespace {

/// Instant on the control track + a fault.* counter under the same name.
void note_injection(obs::Observer* observer, const char* name,
                    std::vector<obs::TraceArg> args = {}) {
  if (observer == nullptr) return;
  observer->trace().instant(name, "fault", obs::kControlTrack, std::move(args));
  observer->metrics().add(std::string("fault.") + name);
}

}  // namespace

void StorageInjector::fail_next_store() {
  note_injection(observer_, "inject.store_reject");
  backend_->inject_store_fault(storage::StoreFault::kReject);
}

void StorageInjector::tear_next_store() {
  note_injection(observer_, "inject.torn_store");
  backend_->inject_store_fault(storage::StoreFault::kTornWrite);
}

void StorageInjector::fail_store_after(std::uint64_t skip_ops) {
  note_injection(observer_, "inject.store_reject",
                 {obs::TraceArg::num("skip_ops", skip_ops)});
  backend_->inject_store_fault(storage::StoreFault::kReject, skip_ops);
}

void StorageInjector::tear_store_after(std::uint64_t skip_ops) {
  note_injection(observer_, "inject.torn_store",
                 {obs::TraceArg::num("skip_ops", skip_ops)});
  backend_->inject_store_fault(storage::StoreFault::kTornWrite, skip_ops);
}

bool StorageInjector::corrupt_newest(util::Rng& rng, std::uint64_t count) {
  const storage::ImageId id = backend_->newest_id();
  if (id == storage::kBadImageId) return false;
  // Offset anywhere in the blob; corrupt_blob wraps, so any offset is valid.
  const std::uint64_t offset = rng.next_u64() >> 32;
  const bool hit = backend_->corrupt_blob(id, offset, count == 0 ? 1 : count);
  if (hit) {
    note_injection(observer_, "inject.corrupt_image",
                   {obs::TraceArg::num("image_id", id),
                    obs::TraceArg::num("bytes", count == 0 ? 1 : count)});
  }
  return hit;
}

void StorageInjector::begin_outage() {
  note_injection(observer_, "inject.outage_begin");
  backend_->set_outage(true);
}

void StorageInjector::end_outage() {
  note_injection(observer_, "inject.outage_end");
  backend_->set_outage(false);
}

void JournalInjector::tear_next_append(util::Rng& rng) {
  note_injection(observer_, "inject.journal_torn_append");
  journal_->tear_next_append(rng.next_u64());
}

bool JournalInjector::corrupt_log(util::Rng& rng, std::uint64_t count) {
  const std::uint64_t offset = rng.next_u64() >> 32;
  const bool hit = journal_->corrupt_log(offset, count == 0 ? 1 : count);
  if (hit) {
    note_injection(observer_, "inject.journal_corrupt",
                   {obs::TraceArg::num("bytes", count == 0 ? 1 : count)});
  }
  return hit;
}

void JournalInjector::crash() {
  note_injection(observer_, "inject.journal_crash");
  journal_->simulate_crash();
}

void JournalInjector::crash_between_drain_and_publish() {
  note_injection(observer_, "inject.journal_drain_crash");
  journal_->crash_between_drain_and_publish();
}

storage::JournalRecoveryReport JournalInjector::recover() {
  return journal_->recover(storage::ChargeFn{});
}

void ProcessInjector::kill_at(sim::Pid pid, SimTime when) {
  note_injection(observer_, "inject.kill_process",
                 {obs::TraceArg::num("pid", static_cast<std::uint64_t>(pid)),
                  obs::TraceArg::num("at_ns", when)});
  kernel_->kill_process_at(when, pid);
}

void ProcessInjector::stop_at(sim::Pid pid, SimTime when) {
  note_injection(observer_, "inject.stop_process",
                 {obs::TraceArg::num("pid", static_cast<std::uint64_t>(pid)),
                  obs::TraceArg::num("at_ns", when)});
  kernel_->stop_process_at(when, pid);
}

bool ProcessInjector::drop_signal(sim::Pid pid, sim::Signal sig) {
  const bool dropped = kernel_->drop_pending_signal(pid, sig);
  if (dropped) {
    note_injection(observer_, "inject.drop_signal",
                   {obs::TraceArg::num("pid", static_cast<std::uint64_t>(pid))});
  }
  return dropped;
}

void HeartbeatInjector::suppress(int node_id, std::uint32_t beats) {
  if (beats == 0) return;
  pending_[node_id] += beats;
  note_injection(observer_, "inject.heartbeat_suppress",
                 {obs::TraceArg::num("node", static_cast<std::uint64_t>(node_id)),
                  obs::TraceArg::num("beats", beats)});
}

bool HeartbeatInjector::consume(int node_id) {
  auto it = pending_.find(node_id);
  if (it == pending_.end()) return false;
  if (--it->second == 0) pending_.erase(it);
  ++dropped_;
  return true;
}

void NodeInjector::fail_stop_now(int node_id) {
  note_injection(observer_, "inject.fail_node",
                 {obs::TraceArg::num("node", static_cast<std::uint64_t>(node_id))});
  cluster_->fail_node(node_id);
}

void NodeInjector::fail_stop_at(int node_id, SimTime when) {
  obs::Observer* observer = observer_;
  cluster_->add_event(when, [node_id, observer](cluster::Cluster& c) {
    if (c.node(node_id).up()) {
      note_injection(observer, "inject.fail_node",
                     {obs::TraceArg::num("node", static_cast<std::uint64_t>(node_id))});
      c.fail_node(node_id);
    }
  });
}

void NodeInjector::repair_at(int node_id, SimTime when) {
  obs::Observer* observer = observer_;
  cluster_->add_event(when, [node_id, observer](cluster::Cluster& c) {
    if (!c.node(node_id).up()) {
      note_injection(observer, "inject.repair_node",
                     {obs::TraceArg::num("node", static_cast<std::uint64_t>(node_id))});
      c.repair_node(node_id);
    }
  });
}

}  // namespace ckpt::inject
