#include "inject/injectors.hpp"

namespace ckpt::inject {

bool StorageInjector::corrupt_newest(util::Rng& rng, std::uint64_t count) {
  const storage::ImageId id = backend_->newest_id();
  if (id == storage::kBadImageId) return false;
  // Offset anywhere in the blob; corrupt_blob wraps, so any offset is valid.
  const std::uint64_t offset = rng.next_u64() >> 32;
  return backend_->corrupt_blob(id, offset, count == 0 ? 1 : count);
}

void NodeInjector::fail_stop_at(int node_id, SimTime when) {
  cluster_->add_event(when, [node_id](cluster::Cluster& c) {
    if (c.node(node_id).up()) c.fail_node(node_id);
  });
}

void NodeInjector::repair_at(int node_id, SimTime when) {
  cluster_->add_event(when, [node_id](cluster::Cluster& c) {
    if (!c.node(node_id).up()) c.repair_node(node_id);
  });
}

}  // namespace ckpt::inject
