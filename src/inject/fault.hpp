// Deterministic fault planning.
//
// The paper's fault-tolerance critique (Table 1 "stable storage", §4) is
// about what survives a failure — so the repository must be able to *cause*
// failures at controlled points and check what survived.  A FaultPlan is a
// seed-deterministic schedule of faults drawn from a weighted vocabulary:
// same seed, same weights ⇒ bit-identical fault sequence, which makes every
// torture run replayable from a single integer.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace ckpt::inject {

/// The fault vocabulary, spanning the three layers a checkpoint crosses:
/// storage (where images live), kernel (the process being saved) and
/// cluster (the machine doing the saving).
enum class FaultKind : std::uint8_t {
  kNone,           ///< fault-free cycle (baseline the others are judged against)
  kStoreReject,    ///< storage: next store fails cleanly (ENOSPC-style)
  kTornStore,      ///< storage: crash mid-write; a truncated blob is persisted
  kCorruptImage,   ///< storage: silent media corruption of the newest image
  kStorageOutage,  ///< storage: backend transiently unreachable
  kKillProcess,    ///< kernel: fail-stop the target process at a SimTime
  kDropSignal,     ///< kernel: a pending checkpoint signal is lost
  kNodeFailStop,   ///< cluster: fail-stop a node between capture and store
  kJournalTornAppend,  ///< journal: power-fail mid-append; a torn record is persisted
  kJournalCorrupt,     ///< journal: silent log corruption followed by crash + recovery
};

const char* to_string(FaultKind kind);

/// One planned fault.  `param` is kind-specific: bytes to corrupt
/// (kCorruptImage), guest steps before the kill (kKillProcess), outage
/// duration bucket (kStorageOutage); zero otherwise.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t param = 0;

  friend bool operator==(const Fault&, const Fault&) = default;
};

class FaultPlan {
 public:
  struct Weighted {
    FaultKind kind = FaultKind::kNone;
    std::uint32_t weight = 1;
  };

  /// The default mix: mostly clean cycles with every storage/kernel fault
  /// kind represented.
  static std::vector<Weighted> default_mix();

  FaultPlan(std::uint64_t seed, std::vector<Weighted> vocabulary);

  /// Draw the next fault in the schedule.
  Fault next();

  [[nodiscard]] std::uint64_t drawn() const { return drawn_; }

  /// Shared randomness for fault parameters beyond the plan itself (fault
  /// placement, corruption offsets) so a whole run replays from one seed.
  [[nodiscard]] util::Rng& rng() { return rng_; }

 private:
  util::Rng rng_;
  std::vector<Weighted> vocabulary_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t drawn_ = 0;
};

}  // namespace ckpt::inject
