#include "inject/fault.hpp"

#include <stdexcept>

namespace ckpt::inject {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStoreReject: return "store-reject";
    case FaultKind::kTornStore: return "torn-store";
    case FaultKind::kCorruptImage: return "corrupt-image";
    case FaultKind::kStorageOutage: return "storage-outage";
    case FaultKind::kKillProcess: return "kill-process";
    case FaultKind::kDropSignal: return "drop-signal";
    case FaultKind::kNodeFailStop: return "node-fail-stop";
    case FaultKind::kJournalTornAppend: return "journal-torn-append";
    case FaultKind::kJournalCorrupt: return "journal-corrupt";
  }
  return "?";
}

std::vector<FaultPlan::Weighted> FaultPlan::default_mix() {
  return {
      {FaultKind::kNone, 6},          {FaultKind::kStoreReject, 2},
      {FaultKind::kTornStore, 2},     {FaultKind::kCorruptImage, 2},
      {FaultKind::kStorageOutage, 2}, {FaultKind::kKillProcess, 2},
  };
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<Weighted> vocabulary)
    : rng_(seed), vocabulary_(std::move(vocabulary)) {
  if (vocabulary_.empty()) throw std::invalid_argument("FaultPlan: empty vocabulary");
  for (const Weighted& entry : vocabulary_) total_weight_ += entry.weight;
  if (total_weight_ == 0) throw std::invalid_argument("FaultPlan: zero total weight");
}

Fault FaultPlan::next() {
  std::uint64_t pick = rng_.next_below(total_weight_);
  FaultKind kind = vocabulary_.back().kind;
  for (const Weighted& entry : vocabulary_) {
    if (pick < entry.weight) {
      kind = entry.kind;
      break;
    }
    pick -= entry.weight;
  }

  Fault fault;
  fault.kind = kind;
  switch (kind) {
    case FaultKind::kCorruptImage:
      fault.param = 1 + rng_.next_below(64);  // bytes to flip
      break;
    case FaultKind::kKillProcess:
      fault.param = rng_.next_below(16);  // guest steps into the run window
      break;
    case FaultKind::kStorageOutage:
      fault.param = 1 + rng_.next_below(4);  // outage length bucket
      break;
    case FaultKind::kJournalCorrupt:
      fault.param = 1 + rng_.next_below(64);  // log bytes to flip
      break;
    default:
      break;
  }
  ++drawn_;
  return fault;
}

}  // namespace ckpt::inject
