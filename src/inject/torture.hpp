// Crash/restart torture harness.
//
// Drives any catalog CheckpointEngine through randomized
// checkpoint–crash–restart soak cycles under a seed-deterministic FaultPlan:
// advance the guest a random number of steps, inject the planned fault
// (store rejection, torn write, silent corruption, storage outage,
// fail-stop), crash the process, restart from the newest *surviving* image
// and byte-compare the restored state against an independent reconstruction
// from the raw stored blobs.  The harness maintains its own model of which
// images must still be loadable, so three failure classes are detected and
// counted separately:
//
//   * divergences         — restored state differs from the stored image,
//   * corrupt_restarts    — a restart "succeeded" although no intact image
//                           existed (restarting from garbage),
//   * unexpected_failures — a restart failed although an intact image
//                           survived (lost more work than the faults cost).
//
// In replicated-storage mode (TortureOptions::replicated_storage) the
// engine writes through a ReplicatedStore fanned over N replicas, storage
// faults target one rng-chosen replica per cycle, and a fourth violation
// class is tracked:
//
//   * scrub_failures      — the end-of-cycle scrub left injected damage
//                           unrepaired although a healthy peer existed.
//
// Because commit requires read-back verification on at least one replica,
// the invariant under test sharpens to: a restart may NEVER fail while any
// committed image exists — zero unrecoverable restarts whenever >= 1 intact
// replica survives.
//
// All violation counters must be zero for TortureReport::ok().  Every run
// is bit-reproducible from TortureOptions::seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "inject/fault.hpp"
#include "mechanisms/mechanism.hpp"
#include "sim/kernel.hpp"
#include "storage/retry.hpp"

namespace ckpt::inject {

struct TortureOptions {
  std::uint64_t seed = 1;
  /// Soak cycles per engine (each cycle = run, fault, crash, restart).
  std::uint64_t cycles = 100;
  /// Guest steps per run window, drawn uniformly from [min, max].
  std::uint64_t min_steps = 4;
  std::uint64_t max_steps = 24;
  /// Fault vocabulary; empty selects FaultPlan::default_mix().
  std::vector<FaultPlan::Weighted> fault_mix;
  /// Guest working-set size (bytes) — keeps image sizes bounded.
  std::uint64_t array_bytes = 16 * 1024;
  /// Replicated stable-storage mode: the engine's backend becomes a
  /// ReplicatedStore over `replicas` blob stores (node-local disk plus
  /// remotes) with atomic two-phase publish and `retry`.  Storage faults
  /// then hit one rng-chosen replica per cycle, every cycle ends with a
  /// scrub, and injected single-replica damage must be repaired.
  bool replicated_storage = false;
  /// Replica fan-out in replicated mode; must be >= 2 (one replica is just
  /// the unreplicated harness).
  std::uint32_t replicas = 2;
  /// Retry schedule the ReplicatedStore applies per staged write and per
  /// load sweep in replicated mode.
  storage::RetryPolicy retry = storage::RetryPolicy::bounded(3, 50 * kMillisecond);
  /// Commit-pipeline worker count in replicated mode: 0 uses the shared
  /// pool (the CKPT_WORKERS knob); N pins a private N-worker pool.  The
  /// soak must be bit-identical for every value — the pipeline determinism
  /// tests run the battery at 1 and 8 workers and diff the reports.
  std::uint32_t workers = 0;
  /// Content-addressed dedup on the torture store (storage/dedup).  Only
  /// valid together with replicated_storage: with a single media copy, one
  /// corrupt *shared* chunk can invalidate several committed images at
  /// once, which breaks the harness's corruption model (a silent-corruption
  /// fault damages at most the newest image) — and is exactly the
  /// amplification replication exists to absorb.  The harness throws
  /// std::invalid_argument on dedup without replication.  The soak
  /// invariants (and the 1-vs-8-worker identity) must hold unchanged.
  bool dedup = false;
  /// Log-structured append-commit mode (storage/journal): the engines write
  /// through a LogStructuredBackend whose home store is the ReplicatedStore,
  /// and every checkpoint step ends with a migrator drain while the cycle's
  /// replica fault is still armed — so the two-phase publish absorbs it.
  /// Adds two fault kinds to the schedule when present in the mix:
  /// kJournalTornAppend (power-fail mid-append; the commit must fail and
  /// recovery must keep the previous prefix) and kJournalCorrupt (silent log
  /// corruption + crash; recovery discards the damaged suffix and the model
  /// is re-derived from what survived).  Requires replicated_storage — the
  /// migrator needs a durable home store to drain into; the harness throws
  /// std::invalid_argument otherwise.
  bool journal = false;
  /// Streaming-COW commit mode: checkpoints and restarts run through a
  /// harness-owned SyscallEngine (by-pid, fork-and-copy, streaming) writing
  /// chunk-by-chunk into the replicated store, instead of the catalog
  /// mechanism's engine.  Storage faults are armed with an rng-drawn
  /// skip-op count so they land *mid-stream* — between chunk appends, not
  /// at the whole-blob write.  Requires replicated_storage without dedup or
  /// journal (the streamed path needs a flat ReplicatedStore); the harness
  /// throws std::invalid_argument otherwise.  All soak invariants — and the
  /// 1-vs-8-worker report identity — must hold unchanged.
  bool streaming = false;
  /// Observability sink (null = disabled).  Attached to the per-engine
  /// kernel and the replicated store, so a soak produces a per-cycle
  /// lifecycle timeline plus fault/ckpt/store/scrub metrics.  The exported
  /// trace is part of the determinism contract: byte-identical for any
  /// `workers` value.
  obs::Observer* observer = nullptr;
};

/// Everything one soak produced.  Pure function of TortureOptions (seed
/// included): equality of two reports is the determinism check the
/// reproducibility and worker-count tests rely on.
struct TortureReport {
  std::string engine;
  std::uint64_t cycles = 0;
  std::uint64_t checkpoints_ok = 0;
  std::uint64_t checkpoints_failed = 0;
  std::uint64_t restarts_ok = 0;
  std::uint64_t restarts_refused = 0;  ///< correctly refused (nothing intact)
  std::uint64_t scrub_repairs = 0;     ///< replica copies healed by scrub
  std::map<FaultKind, std::uint64_t> faults;

  // --- Violations (all must be zero) ---------------------------------------
  std::uint64_t divergences = 0;
  std::uint64_t corrupt_restarts = 0;
  std::uint64_t unexpected_failures = 0;
  std::uint64_t scrub_failures = 0;  ///< scrub left injected damage in place
  std::vector<std::string> diagnostics;

  /// True iff every violation counter is zero — the soak verdict.
  [[nodiscard]] bool ok() const {
    return divergences == 0 && corrupt_restarts == 0 && unexpected_failures == 0 &&
           scrub_failures == 0;
  }
  /// One-line human rendering (engine, cycles, counters) for SCOPED_TRACE
  /// and the standalone soak binary.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const TortureReport&, const TortureReport&) = default;
};

/// One engine under torture.  `reattach` re-runs the mechanism's required
/// registration on a restarted pid (CHPOX /proc registration, BLCR
/// initialization phase); null when the mechanism needs none.
struct TortureTarget {
  std::string catalog_name;
  std::function<bool(mechanisms::Mechanism&, sim::SimKernel&, sim::Pid)> reattach;
};

/// The default battery: every catalog mechanism that can externally
/// checkpoint an arbitrary (possibly restarted) pid to real stable storage —
/// CRAK, UCLik, CHPOX, BLCR, PsncR/C.  (EPCKPT only checkpoints processes
/// started through its launcher tool and LAM/MPI only mpirun ranks, so
/// neither can re-adopt a restarted process; the migration-only and
/// self-checkpointing mechanisms have no external restartable path at all.)
std::vector<TortureTarget> default_targets();

class TortureHarness {
 public:
  explicit TortureHarness(TortureOptions options) : options_(options) {}

  /// Torture one engine; fresh kernel + storage per call.  All simulated
  /// time (guest steps, storage I/O, retry backoff) is charged through the
  /// per-run kernel, and every random draw derives from options.seed, so
  /// the same options replay the identical soak bit-for-bit — including
  /// under any `workers` value and with any observer attached.  Throws
  /// std::invalid_argument on inconsistent options (replicas < 2 in
  /// replicated mode, dedup without replicated_storage).
  TortureReport run(const TortureTarget& target);

  /// run() for each target in order, each from the same seed (targets are
  /// independent soaks, not a shared schedule).
  std::vector<TortureReport> run_all(const std::vector<TortureTarget>& targets);

 private:
  TortureOptions options_;
};

}  // namespace ckpt::inject
