#include "inject/torture.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/capture.hpp"
#include "core/systemlevel.hpp"
#include "inject/injectors.hpp"
#include "mechanisms/catalog.hpp"
#include "obs/observer.hpp"
#include "sim/guests.hpp"
#include "storage/replicated.hpp"
#include "util/threadpool.hpp"

namespace ckpt::inject {

namespace {

template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

/// Per-engine seed: FNV-1a over the catalog name mixed with the run seed,
/// so every engine gets an independent but fully reproducible schedule.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

const mechanisms::CatalogEntry* find_entry(const std::string& name) {
  for (const mechanisms::CatalogEntry& entry : mechanisms::mechanism_catalog()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

/// Run the guest for `steps` useful iterations (or until it dies).
void run_guest_steps(sim::SimKernel& kernel, sim::Pid pid, std::uint64_t steps) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || steps == 0) return;
  const std::uint64_t goal = proc->stats.guest_iterations + steps;
  kernel.run_while(
      [&kernel, pid, goal] {
        sim::Process* p = kernel.find_process(pid);
        return p != nullptr && p->alive() && p->stats.guest_iterations < goal;
      },
      kernel.now() + 60 * kSecond);
}

/// Independent ground truth: the newest blob in the backend that still
/// deserializes, belongs to `pid` and is a full image — exactly what a
/// fallback restart must restore.  Goes straight to the raw blobs, not
/// through the engine's chain, so engine bookkeeping bugs cannot hide.
std::optional<storage::CheckpointImage> newest_loadable(storage::StorageBackend& backend,
                                                        sim::Pid pid) {
  const std::vector<storage::ImageId> ids = backend.list();
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    std::optional<storage::CheckpointImage> image = backend.load(*it, storage::ChargeFn{});
    if (!image || image->pid != pid) continue;
    // The torture battery's engines are all non-incremental; a delta here
    // would itself be a bug surfaced by the pid/kind mismatch below.
    if (image->kind != storage::ImageKind::kFull) continue;
    return image;
  }
  return std::nullopt;
}

/// Byte-compare the state that matters for "the same process came back":
/// memory payloads, heap bounds and every thread's register file.
bool states_match(const storage::CheckpointImage& a, const storage::CheckpointImage& b) {
  if (!core::images_equal_memory(a, b)) return false;
  if (a.brk != b.brk || a.heap_base != b.heap_base) return false;
  if (a.threads.size() != b.threads.size()) return false;
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    if (!(a.threads[i].regs == b.threads[i].regs)) return false;
  }
  return true;
}

}  // namespace

std::string TortureReport::summary() const {
  std::ostringstream out;
  out << engine << ": " << cycles << " cycles, " << checkpoints_ok << " checkpoints ok / "
      << checkpoints_failed << " refused, " << restarts_ok << " restarts ok / "
      << restarts_refused << " correctly refused, " << scrub_repairs
      << " scrub repairs; violations: " << divergences << " divergence, "
      << corrupt_restarts << " corrupt-restart, " << unexpected_failures
      << " unexpected-failure, " << scrub_failures << " scrub-failure";
  return out.str();
}

std::vector<TortureTarget> default_targets() {
  auto chpox_reattach = [](mechanisms::Mechanism& m, sim::SimKernel& kernel, sim::Pid pid) {
    auto* chpox = dynamic_cast<mechanisms::ChpoxMechanism*>(&m);
    return chpox != nullptr && chpox->register_pid(kernel, pid);
  };
  auto blcr_reattach = [](mechanisms::Mechanism& m, sim::SimKernel& kernel, sim::Pid pid) {
    auto* blcr = dynamic_cast<mechanisms::BlcrMechanism*>(&m);
    return blcr != nullptr && blcr->initialize_process(kernel, pid);
  };
  return {
      {"CRAK", nullptr},
      {"UCLik", nullptr},
      {"CHPOX", chpox_reattach},
      {"BLCR", blcr_reattach},
      {"PsncR/C", nullptr},
  };
}

TortureReport TortureHarness::run(const TortureTarget& target) {
  TortureReport report;
  report.engine = target.catalog_name;

  const mechanisms::CatalogEntry* entry = find_entry(target.catalog_name);
  if (entry == nullptr) {
    throw std::invalid_argument("TortureHarness: unknown mechanism " + target.catalog_name);
  }

  const std::uint64_t seed = mix_seed(options_.seed, target.catalog_name);
  sim::SimKernel kernel(2, sim::CostModel{}, seed);
  obs::Observer* observer = options_.observer;
  obs::TraceRecorder* trace = obs::tracer(observer);
  // Wire the trace clock to this engine's kernel for the duration of the
  // soak; detached again before the kernel dies (see the end of run()).
  if (observer != nullptr) kernel.set_observer(observer);
  obs::SpanGuard soak_span(trace, "soak", "torture", obs::kControlTrack,
                           {obs::TraceArg::str("engine", target.catalog_name)});
  sim::register_standard_guests();
  storage::LocalDiskBackend local{kernel.costs()};
  storage::RemoteBackend remote{kernel.costs()};
  std::vector<std::unique_ptr<storage::RemoteBackend>> extra_remotes;
  std::vector<storage::BlobStoreBackend*> replicas;
  // Pinned-width commit pool (declared before the store so it outlives it);
  // workers == 0 leaves the store on the shared CKPT_WORKERS pool.
  std::unique_ptr<util::ThreadPool> pinned_pool;
  std::unique_ptr<storage::ReplicatedStore> replicated;
  std::unique_ptr<storage::LogStructuredBackend> journal_store;
  mechanisms::MechanismContext context{&kernel, &local, &remote};
  if (options_.dedup && !options_.replicated_storage) {
    throw std::invalid_argument(
        "TortureHarness: dedup requires replicated_storage (a shared chunk on a "
        "single media copy amplifies one corruption across the whole chain)");
  }
  if (options_.journal && !options_.replicated_storage) {
    throw std::invalid_argument(
        "TortureHarness: journal requires replicated_storage (the migrator needs "
        "a durable home store to drain into)");
  }
  if (options_.streaming &&
      (!options_.replicated_storage || options_.dedup || options_.journal)) {
    throw std::invalid_argument(
        "TortureHarness: streaming requires replicated_storage without dedup or "
        "journal (the streamed commit path needs a flat ReplicatedStore)");
  }
  if (options_.replicated_storage) {
    if (options_.replicas < 2) {
      throw std::invalid_argument(
          "TortureHarness: replicated_storage needs >= 2 replicas");
    }
    replicas.push_back(&local);
    replicas.push_back(&remote);
    for (std::uint32_t i = 2; i < options_.replicas; ++i) {
      extra_remotes.push_back(std::make_unique<storage::RemoteBackend>(kernel.costs()));
      replicas.push_back(extra_remotes.back().get());
    }
    storage::ReplicatedOptions repl_options;
    repl_options.retry = options_.retry;
    repl_options.retry.jitter_seed = seed;
    repl_options.observer = observer;
    repl_options.dedup = options_.dedup;
    if (options_.workers > 0) {
      pinned_pool = std::make_unique<util::ThreadPool>(options_.workers);
      repl_options.pool = pinned_pool.get();
    }
    replicated = std::make_unique<storage::ReplicatedStore>(replicas, repl_options);
    // Both context slots are the replicated store, so local-disk designs
    // (CRAK, BLCR, ...) and remote-storage designs write through it alike.
    context.local = replicated.get();
    context.remote = replicated.get();
    if (options_.journal) {
      storage::JournalOptions journal_options;
      journal_options.observer = observer;
      if (options_.workers > 0) journal_options.pool = pinned_pool.get();
      journal_store = std::make_unique<storage::LogStructuredBackend>(replicated.get(),
                                                                      journal_options);
      // Engines commit by appending to the journal; the migrator drains into
      // the replicated store at the end of each checkpoint step.
      context.local = journal_store.get();
      context.remote = journal_store.get();
    }
  }
  std::unique_ptr<mechanisms::Mechanism> mech = entry->factory(context);
  std::unique_ptr<JournalInjector> journal_inj;
  if (journal_store != nullptr) {
    journal_inj = std::make_unique<JournalInjector>(*journal_store, observer);
  }

  // Streaming mode: the catalog mechanism still launches the guest, but
  // every checkpoint and restart goes through this streaming-COW engine
  // writing chunk-by-chunk into the replicated store.
  std::unique_ptr<core::SyscallEngine> stream_engine;
  core::CheckpointEngine* ckpt_engine = mech->engine();
  if (options_.streaming) {
    core::EngineOptions stream_options;
    stream_options.consistency = core::ConsistencyMode::kForkAndCopy;
    stream_options.streaming = true;
    stream_engine = std::make_unique<core::SyscallEngine>(
        "torture_stream", context.local, std::move(stream_options), kernel,
        core::SyscallEngine::TargetMode::kByPid, nullptr);
    ckpt_engine = stream_engine.get();
  }

  storage::StorageBackend& store = *ckpt_engine->backend();
  storage::BlobStoreBackend* blob = nullptr;
  if (!options_.replicated_storage) {
    blob = dynamic_cast<storage::BlobStoreBackend*>(&store);
    if (blob == nullptr) {
      throw std::invalid_argument("TortureHarness: " + target.catalog_name +
                                  " has no blob-store backend to torture");
    }
  }

  ProcessInjector process_inj(kernel, observer);
  FaultPlan plan(seed, options_.fault_mix.empty() ? FaultPlan::default_mix()
                                                  : options_.fault_mix);
  util::Rng& rng = plan.rng();

  sim::WriterConfig guest_config;
  guest_config.array_bytes = options_.array_bytes;
  guest_config.writes_per_step = 8;
  guest_config.seed = seed;
  const std::vector<std::byte> config_blob = guest_config.encode();
  const sim::SpawnOptions spawn_options = sim::spawn_options_for_array(options_.array_bytes);
  const std::string guest_type = sim::DenseWriterGuest::kTypeName;

  sim::Pid pid = mech->launch(kernel, guest_type, config_blob, spawn_options);

  // The harness's own model of stable storage for the current chain: how
  // many of its images must still reconstruct, and whether the newest one
  // is intact.  Restart outcomes are judged against this, never against the
  // engine's bookkeeping.
  std::uint64_t chain_len = 0;
  std::uint64_t good_count = 0;
  bool newest_good = false;

  core::RestartOptions restart_options;
  restart_options.fall_back_to_older_images = true;

  auto note = [&report](std::string text) { report.diagnostics.push_back(std::move(text)); };

  // Storage is "down" for a restart only when NO copy is reachable: the
  // single backend in outage, or (replicated) every replica unreachable.
  // One replica in outage does not excuse a failed restart — that is
  // exactly the survivability the replication must provide.
  auto storage_down = [&]() -> bool {
    if (!options_.replicated_storage) return blob->in_outage();
    return std::none_of(replicas.begin(), replicas.end(),
                        [](const storage::BlobStoreBackend* r) { return r->reachable(); });
  };

  // Attempt a restart of the (dead) current pid; adopt the restored process
  // on success.  Returns whether the soak has a live process again.
  auto attempt_restart = [&](std::uint64_t cycle, FaultKind fk) -> bool {
    const bool expected_ok = good_count > 0 && !storage_down();
    core::RestartResult rr = stream_engine != nullptr
                                 ? stream_engine->restart(kernel, pid, restart_options)
                                 : mech->restart(kernel, pid, restart_options);
    if (!rr.ok) {
      if (expected_ok) {
        ++report.unexpected_failures;
        note(cat("cycle ", cycle, ": restart failed although ", good_count,
                 " intact image(s) survived [", to_string(fk), "]: ", rr.error));
      } else {
        ++report.restarts_refused;
      }
      return false;
    }
    if (!expected_ok) {
      ++report.corrupt_restarts;
      note(cat("cycle ", cycle, ": restart claimed success although no intact image",
               " survived [", to_string(fk), "]"));
    } else {
      ++report.restarts_ok;
      std::optional<storage::CheckpointImage> truth = newest_loadable(store, pid);
      if (!truth) {
        ++report.divergences;
        note(cat("cycle ", cycle, ": verifier found no intact image for pid ", pid,
                 " although the model expected ", good_count));
      } else {
        sim::Process& restored = kernel.process(rr.pid);
        const storage::CheckpointImage now_image =
            core::capture_kernel_level(kernel, restored, ckpt_engine->options().capture);
        if (!states_match(now_image, *truth)) {
          ++report.divergences;
          note(cat("cycle ", cycle, ": restored pid ", rr.pid,
                   " diverges from stored image seq ", truth->sequence, " [", to_string(fk),
                   "]"));
        }
      }
    }
    const bool same_pid = rr.pid == pid;
    pid = rr.pid;
    if (stream_engine == nullptr && target.reattach &&
        !target.reattach(*mech, kernel, pid)) {
      note(cat("cycle ", cycle, ": reattach failed for restarted pid ", pid));
      return false;
    }
    if (!same_pid) {
      // A fresh pid starts a fresh chain in the engine.
      chain_len = 0;
      good_count = 0;
      newest_good = false;
    }
    return true;
  };

  auto respawn = [&] {
    pid = mech->launch(kernel, guest_type, config_blob, spawn_options);
    chain_len = 0;
    good_count = 0;
    newest_good = false;
  };

  for (std::uint64_t cycle = 0; cycle < options_.cycles; ++cycle) {
    ++report.cycles;
    const Fault fault = plan.next();
    ++report.faults[fault.kind];

    const std::uint64_t span = options_.max_steps - options_.min_steps + 1;
    const std::uint64_t steps = options_.min_steps + rng.next_below(span);

    // In replicated mode every storage fault lands on one rng-chosen
    // replica; the others stay healthy, which is what the self-healing
    // invariants lean on.
    storage::BlobStoreBackend* victim = blob;
    std::uint64_t victim_index = 0;
    if (options_.replicated_storage) {
      victim_index = rng.next_below(replicas.size());
      victim = replicas[victim_index];
    }
    StorageInjector storage_inj(*victim, observer);

    obs::SpanGuard cycle_span(trace, "cycle", "torture", obs::kControlTrack,
                              {obs::TraceArg::num("cycle", cycle),
                               obs::TraceArg::str("fault", to_string(fault.kind)),
                               obs::TraceArg::num("param", fault.param),
                               obs::TraceArg::num("victim", victim_index),
                               obs::TraceArg::num("steps", steps)});
    if (observer != nullptr) {
      observer->metrics().add("torture.cycles");
      observer->metrics().add(std::string("torture.fault.") + to_string(fault.kind));
    }

    if (fault.kind == FaultKind::kStorageOutage) storage_inj.begin_outage();

    // 1. Run window — with kKillProcess the process fail-stops partway in,
    //    through the kernel's timer-driven crash hook.
    if (fault.kind == FaultKind::kKillProcess) {
      run_guest_steps(kernel, pid, fault.param % steps);
      process_inj.kill_at(pid, kernel.now() + 1);
      kernel.run_until(kernel.now() + kernel.quantum());
    } else {
      run_guest_steps(kernel, pid, steps);
    }

    // 2. Checkpoint attempt, possibly against a faulted store.  Streaming
    // mode arms the fault with an rng-drawn skip-op count so it detonates
    // mid-stream, between chunk appends.
    if (fault.kind == FaultKind::kStoreReject) {
      if (options_.streaming) {
        storage_inj.fail_store_after(rng.next_below(16));
      } else {
        storage_inj.fail_next_store();
      }
    }
    if (fault.kind == FaultKind::kTornStore) {
      if (options_.streaming) {
        storage_inj.tear_store_after(rng.next_below(16));
      } else {
        storage_inj.tear_next_store();
      }
    }
    if (fault.kind == FaultKind::kJournalTornAppend && journal_inj != nullptr) {
      journal_inj->tear_next_append(rng);
    }
    const core::CheckpointResult cr = stream_engine != nullptr
                                          ? stream_engine->request_checkpoint(kernel, pid)
                                          : mech->checkpoint(kernel, pid);
    if (journal_inj != nullptr) {
      // Append-commit: the checkpoint only reached the log.  Drain the
      // migrator now, while this cycle's replica fault is still armed — the
      // two-phase publish into the replicated store is what must absorb it.
      // A torn append (during the checkpoint or mid-drain) leaves the
      // journal crashed; recovery keeps the previous fully-committed prefix.
      if (!journal_store->crashed()) journal_store->migrate(storage::ChargeFn{});
      if (journal_store->crashed()) journal_inj->recover();
    }
    victim->inject_store_fault(storage::StoreFault::kNone);  // disarm if unconsumed
    if (cr.ok) {
      ++report.checkpoints_ok;
      ++chain_len;
      if (!options_.replicated_storage && fault.kind == FaultKind::kTornStore) {
        newest_good = false;  // "succeeded", but the blob on disk is torn
      } else {
        // Replicated commit means read-back verification passed on at least
        // one replica — a torn stage was caught and retried or outvoted, so
        // a committed image is intact by construction.
        ++good_count;
        newest_good = true;
      }
    } else {
      ++report.checkpoints_failed;
    }

    // 3. Silent media corruption of the newest image of the current chain.
    // Replicated: only the victim's copy is damaged; the image stays intact
    // on its peers and the end-of-cycle scrub must repair the copy.
    bool corrupted_this_cycle = false;
    if (fault.kind == FaultKind::kCorruptImage && chain_len > 0) {
      const bool hit = storage_inj.corrupt_newest(rng, fault.param);
      if (options_.replicated_storage) {
        corrupted_this_cycle = hit;
      } else if (hit && newest_good) {
        --good_count;
        newest_good = false;
      }
    }
    if (fault.kind == FaultKind::kJournalCorrupt && journal_inj != nullptr &&
        journal_inj->corrupt_log(rng, fault.param)) {
      // Silent log corruption only becomes observable through a crash:
      // power-fail, recover the longest valid prefix, then re-derive the
      // storage model from what actually survived — the prefix discard may
      // take committed images (and their drained-but-now-disowned home
      // copies) with it.
      journal_inj->crash();
      journal_inj->recover();
      good_count = 0;
      for (const storage::ImageId id : store.list()) {
        const std::optional<storage::CheckpointImage> image =
            store.load(id, storage::ChargeFn{});
        if (image && image->pid == pid && image->kind == storage::ImageKind::kFull) {
          ++good_count;
        }
      }
      chain_len = good_count;
      newest_good = good_count > 0;
    }

    // 4. Crash: every cycle ends with the process dead.
    if (sim::Process* proc = kernel.find_process(pid)) {
      if (proc->alive()) kernel.terminate(*proc, 128 + 9);
      kernel.reap(pid);
    }

    // 5. Restart from the newest surviving image; judge the outcome.
    bool live = attempt_restart(cycle, fault.kind);

    if (fault.kind == FaultKind::kStorageOutage) {
      storage_inj.end_outage();
      // Transient outage: once storage is back, a retry must succeed iff
      // intact images survived.
      if (!live) live = attempt_restart(cycle, fault.kind);
    }

    // 6. Self-healing closed loop: scrub after every cycle.  Any copy this
    // cycle's fault corrupted or kept from being written (outage, rejection)
    // must be restored from a healthy peer — with >= 2 replicas and a
    // single-replica fault, "unrepairable" is always a harness violation.
    if (options_.replicated_storage) {
      const storage::ScrubReport sr = replicated->scrub(storage::ChargeFn{});
      report.scrub_repairs += sr.repaired;
      if (sr.unrepairable > 0 || (corrupted_this_cycle && sr.repaired == 0)) {
        ++report.scrub_failures;
        note(cat("cycle ", cycle, ": scrub failed to heal [", to_string(fault.kind),
                 "]: ", sr.summary()));
      }
    }

    cycle_span.end({obs::TraceArg::str("outcome", live ? "live" : "respawned")});
    if (!live) respawn();
  }

  soak_span.end({obs::TraceArg::num("checkpoints_ok", report.checkpoints_ok),
                 obs::TraceArg::num("restarts_ok", report.restarts_ok),
                 obs::TraceArg::num("scrub_repairs", report.scrub_repairs)});
  // The per-engine kernel dies with this frame; unbind the trace clock so
  // the observer never calls into a destroyed kernel.
  if (observer != nullptr) {
    kernel.set_observer(nullptr);
    observer->set_clock({});
  }
  return report;
}

std::vector<TortureReport> TortureHarness::run_all(const std::vector<TortureTarget>& targets) {
  std::vector<TortureReport> reports;
  reports.reserve(targets.size());
  for (const TortureTarget& target : targets) reports.push_back(run(target));
  return reports;
}

}  // namespace ckpt::inject
