// Layer-specific fault injectors.
//
// Each injector drives the hooks one existing layer already exposes —
// storage (BlobStoreBackend store faults / corruption / outage), kernel
// (kill or freeze a process at an arbitrary SimTime, drop a pending
// checkpoint signal) and cluster (fail-stop a node at a scheduled cluster
// time, e.g. between a capture and the store that would persist it).  All
// randomness comes from the caller's Rng, so injections replay exactly.
//
// Every injector takes an optional obs::Observer; when attached, each
// injection emits an instant trace event on the control track plus a
// fault.* counter, so torture timelines show *when* damage was planted,
// not just what failed later.
#pragma once

#include <cstdint>
#include <map>

#include "cluster/node.hpp"
#include "sim/kernel.hpp"
#include "storage/backend.hpp"
#include "storage/journal.hpp"
#include "util/rng.hpp"

namespace ckpt::obs {
class Observer;
}

namespace ckpt::inject {

/// Storage layer: fault the blob store a checkpoint chain writes through.
class StorageInjector {
 public:
  explicit StorageInjector(storage::BlobStoreBackend& backend,
                           obs::Observer* observer = nullptr)
      : backend_(&backend), observer_(observer) {}

  /// Next store fails cleanly (nothing persisted).
  void fail_next_store();

  /// Next store persists a torn (truncated) blob under a valid id.
  void tear_next_store();

  /// Same faults, armed to fire after `skip_ops` further storage operations
  /// succeed first — for a streamed commit this lands the fault mid-stream,
  /// between chunk appends rather than at the whole-blob write.
  void fail_store_after(std::uint64_t skip_ops);
  void tear_store_after(std::uint64_t skip_ops);

  /// Flip `count` bytes of the newest stored blob at an rng-chosen offset.
  /// Returns false when the backend is empty.
  bool corrupt_newest(util::Rng& rng, std::uint64_t count);

  void begin_outage();
  void end_outage();

  [[nodiscard]] storage::BlobStoreBackend& backend() { return *backend_; }

 private:
  storage::BlobStoreBackend* backend_;
  obs::Observer* observer_;
};

/// Journal layer: fault the log-structured backend's append stream and the
/// migrator's drain→publish window.
class JournalInjector {
 public:
  explicit JournalInjector(storage::LogStructuredBackend& journal,
                           obs::Observer* observer = nullptr)
      : journal_(&journal), observer_(observer) {}

  /// Power-fail mid-append: the next store() persists a torn record prefix
  /// at an rng-chosen byte of its record stream, then the journal crashes.
  void tear_next_append(util::Rng& rng);

  /// Flip `count` bytes of the live log at an rng-chosen offset.  Returns
  /// false when the log is empty.
  bool corrupt_log(util::Rng& rng, std::uint64_t count);

  /// Power-fail now: host state is lost, only the media bytes survive.
  void crash();

  /// Arm the migrator-window crash (drained to home, publish record lost).
  void crash_between_drain_and_publish();

  /// Replay recovery after any of the crashes above.
  storage::JournalRecoveryReport recover();

  [[nodiscard]] storage::LogStructuredBackend& journal() { return *journal_; }

 private:
  storage::LogStructuredBackend* journal_;
  obs::Observer* observer_;
};

/// Kernel layer: fault the process being checkpointed.
class ProcessInjector {
 public:
  explicit ProcessInjector(sim::SimKernel& kernel, obs::Observer* observer = nullptr)
      : kernel_(&kernel), observer_(observer) {}

  /// Fail-stop `pid` at simulated time `when` (terminated + reaped).
  void kill_at(sim::Pid pid, SimTime when);

  /// Freeze `pid` at simulated time `when` (checkpoint-signal starvation:
  /// a stopped target never reaches a kernel->user transition).
  void stop_at(sim::Pid pid, SimTime when);

  /// Drop a pending checkpoint signal before it is delivered.
  bool drop_signal(sim::Pid pid, sim::Signal sig);

 private:
  sim::SimKernel* kernel_;
  obs::Observer* observer_;
};

/// Detector layer: suppress a live node's heartbeats so a heartbeat-based
/// failure detector (cluster::FailureDetector) wrongly suspects — and, past
/// its confirmation threshold, wrongly *confirms* — a perfectly healthy
/// node.  The CRAFT-style replacement protocol must fence such a node
/// (fail-stop it before seeding its replacement), trading lost work for the
/// guarantee that two incarnations of one slot never commit concurrently.
/// Purely a drop-list: the detector's caller consults consume() before
/// delivering each beat, so all randomness stays with the caller's Rng.
class HeartbeatInjector {
 public:
  explicit HeartbeatInjector(obs::Observer* observer = nullptr) : observer_(observer) {}

  /// Drop the next `beats` heartbeats from `node_id`.
  void suppress(int node_id, std::uint32_t beats);

  /// Consume one heartbeat attempt from `node_id`; true = drop this beat.
  [[nodiscard]] bool consume(int node_id);

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::map<int, std::uint32_t> pending_;
  std::uint64_t dropped_ = 0;
  obs::Observer* observer_;
};

/// Cluster layer: fail-stop whole nodes on the cluster's event clock.
class NodeInjector {
 public:
  explicit NodeInjector(cluster::Cluster& cluster, obs::Observer* observer = nullptr)
      : cluster_(&cluster), observer_(observer) {}

  /// Fail-stop `node_id` immediately (e.g. between capture and store).
  void fail_stop_now(int node_id);

  /// Schedule a fail-stop at cluster time `when`.
  void fail_stop_at(int node_id, SimTime when);

  /// Schedule a repair at cluster time `when`.
  void repair_at(int node_id, SimTime when);

 private:
  cluster::Cluster* cluster_;
  obs::Observer* observer_;
};

}  // namespace ckpt::inject
