// Exhaustive crash-point replay for the log-structured journal.
//
// The journal's correctness claim (storage/journal) is a single sentence:
// after a crash at ANY point in the append stream, recovery reconstructs
// exactly the newest fully-committed prefix — no torn commit survives, no
// committed image before the damage is lost.  This harness proves the claim
// by construction rather than by sampling:
//
//   1. Record a >= 30-commit sequence into a journal (migration off, so the
//      append ledger maps every byte of the logical log) and remember each
//      image's serialized truth plus the log offset where its commit record
//      ends.
//   2. Truncate the media at EVERY record boundary (simulating power loss
//      with the device cache dropped at that point), adopt the bytes into a
//      fresh backend, recover, and assert the surviving ids and their
//      re-loaded payloads equal exactly the commits whose end offset fits
//      the prefix.
//   3. Flip one byte at >= 200 rng-chosen intra-record offsets (silent
//      corruption), recover, and assert the survivors equal the commits
//      that ended before the damaged record began.
//
// Flight records ride the recorded stream too: every commit is bracketed by
// kFlightRecord appends (a serialized obs::FlightRecorder under a small key
// set), and every case additionally asserts that recovery surfaces exactly
// the newest flight payload per key whose append ended inside the surviving
// prefix — the journal-side half of the fleet's post-mortem claim.
//
// Every Nth case additionally drains the recovered journal's migrator into
// a fresh home store and re-verifies the payloads through the migrated
// path, so recovery-then-migrate is covered as well as recovery-then-load.
//
// The report is a pure function of CrashReplayOptions: the determinism
// tests run the harness at workers=1 and workers=8 and require operator==
// on the reports (worker pools only pre-decode inside the migrator, which
// must never change any observable outcome).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/journal.hpp"

namespace ckpt::inject {

struct CrashReplayOptions {
  std::uint64_t seed = 0x5eed;
  /// Commits in the recorded sequence (the acceptance floor is 30).
  std::uint64_t commits = 32;
  /// Rng-chosen single-byte corruption cases (the acceptance floor is 200).
  std::uint64_t fuzz_offsets = 220;
  /// Journal migrator worker count: 0 uses the shared CKPT_WORKERS pool, N
  /// pins a private N-worker pool.  The report must be identical for every
  /// value.
  std::uint32_t workers = 0;
  /// Log geometry for the recorded sequence.  Small segments force many
  /// seal/open rollovers so segment-boundary crash points are well covered;
  /// the ring must still hold the whole sequence (migration stays off while
  /// recording so the ledger's logical offsets are stable).
  std::uint64_t segment_bytes = 48 * 1024;
  std::uint32_t segments = 24;
  /// Data pages per recorded image (payload size knob).
  std::uint64_t pages_per_image = 3;
  /// Run the recovered journal's migrator and re-verify through the home
  /// store on every Nth case (0 disables the migration pass).
  std::uint64_t migrate_every = 8;
};

struct CrashReplayReport {
  std::uint64_t commits_recorded = 0;
  std::uint64_t log_bytes_recorded = 0;
  std::uint64_t boundary_cases = 0;  ///< one per record boundary, plus offset 0
  std::uint64_t fuzz_cases = 0;
  std::uint64_t torn_tails = 0;          ///< recoveries that reported damage
  std::uint64_t images_reverified = 0;   ///< payloads byte-compared to truth
  std::uint64_t flight_appends = 0;      ///< kFlightRecord records in the recorded stream
  std::uint64_t flight_reverified = 0;   ///< newest-per-key flight payload matches
  std::uint64_t migrations_checked = 0;  ///< cases re-verified through migrate()
  std::uint64_t failures = 0;            ///< violations of the prefix claim
  /// First few failures, human-rendered (empty when the claim held).
  std::vector<std::string> diagnostics;
  /// CRC64 over every case outcome (cut point, survivors, torn flag) — a
  /// single value two runs can compare to prove identical behaviour.
  std::uint64_t outcome_digest = 0;

  /// The harness verdict: every crash point recovered exactly the newest
  /// fully-committed prefix, over a sequence long enough to count.
  [[nodiscard]] bool ok() const { return failures == 0 && commits_recorded >= 30; }
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const CrashReplayReport&, const CrashReplayReport&) = default;
};

class JournalCrashReplay {
 public:
  explicit JournalCrashReplay(CrashReplayOptions options) : options_(options) {}

  /// Record, then replay every crash point.  Deterministic in options_.seed
  /// (and invariant in options_.workers).  Throws std::invalid_argument when
  /// the geometry cannot hold the recovered sequence.
  CrashReplayReport run();

 private:
  CrashReplayOptions options_;
};

// ---------------------------------------------------------------------------
// mpi_uncoordinated mode
// ---------------------------------------------------------------------------
//
// The uncoordinated-MPI correctness claim (cluster/uncoordinated,
// DESIGN.md §14): for any injected node failure, restarting only the ranks
// on the recovery line from their images + logged message suffixes loses no
// message, delivers no message twice, and reproduces guest state
// byte-identically for any CKPT_WORKERS / pool width.  Each case builds a
// fresh deterministic scenario, runs it under per-rank cadence, kills a
// node at a case-specific point (optionally two nodes at once), recovers,
// runs forward, and folds rank iterations + order-sensitive receive digests
// into the outcome digest.  The determinism tests run workers=1 vs
// workers=8 and require operator== on the reports.

struct MpiReplayOptions {
  std::uint64_t seed = 0x5eed;
  int nranks = 8;
  int nodes = 4;
  /// Crash cases; case k kills node k % nodes after k-dependent progress.
  std::uint64_t crash_points = 8;
  /// ReplicatedStore pool width for the engines' store: 0 uses the shared
  /// CKPT_WORKERS pool, N pins a private N-worker pool.  The report must be
  /// identical for every value.
  std::uint32_t workers = 0;
  /// Persist sender logs through a log-structured journal at every commit
  /// (the concurrent-failure depth-1 configuration).
  bool journal_logs = false;
  /// Kill two nodes at once (exercises domino vs journal-restored logs).
  bool double_failure = false;
  /// Fixed per-rank checkpoint interval (adaptation off for determinism).
  SimTime interval = 20 * kMillisecond;
  std::uint64_t array_bytes = 32 * 1024;
  std::uint64_t halo_bytes = 512;
};

struct MpiReplayReport {
  std::uint64_t cases = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t commits = 0;
  std::uint64_t replayed_messages = 0;
  /// Sequence gaps observed by any receiver — a lost message.  Must be 0.
  std::uint64_t lost_messages = 0;
  /// Re-sent messages receivers correctly deduplicated (nonzero is healthy:
  /// it proves re-execution re-sends happened and were absorbed).
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t journal_restored_logs = 0;
  std::uint32_t max_rollback_depth = 0;
  std::uint64_t failures = 0;
  std::vector<std::string> diagnostics;
  /// CRC64 over every case outcome (rank iterations, receive digests,
  /// replay counts, line depth/width) — two runs compare equal iff recovered
  /// state was byte-identical.
  std::uint64_t outcome_digest = 0;

  [[nodiscard]] bool ok() const {
    return failures == 0 && cases > 0 && lost_messages == 0;
  }
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const MpiReplayReport&, const MpiReplayReport&) = default;
};

class MpiCrashReplay {
 public:
  explicit MpiCrashReplay(MpiReplayOptions options) : options_(options) {}

  /// Run every crash case.  Deterministic in options_.seed and invariant in
  /// options_.workers.
  MpiReplayReport run();

 private:
  MpiReplayOptions options_;
};

}  // namespace ckpt::inject
