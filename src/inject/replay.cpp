#include "inject/replay.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include <map>

#include "cluster/mpi.hpp"
#include "cluster/uncoordinated.hpp"
#include "core/systemlevel.hpp"
#include "obs/flightrec.hpp"
#include "storage/backend.hpp"
#include "storage/replicated.hpp"
#include "storage/image.hpp"
#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::inject {
namespace {

constexpr sim::VAddr kBase = 0x10000;

/// One recorded image: mostly rng pages, with an occasional repeated page so
/// the per-commit chunk table has something to dedup (groups then contain
/// fewer kChunk records than pages — the realistic shape).
storage::CheckpointImage make_image(util::Rng& rng, std::uint64_t index,
                                    std::uint64_t pages) {
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 7;
  image.process_name = "replay";
  image.sequence = index;
  image.taken_at = index * 1000;
  image.threads.push_back(storage::ThreadImage{1, {}});
  image.threads[0].regs.pc = index;
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(kBase), pages, sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::uint64_t p = 0; p < pages; ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data.resize(sim::kPageSize);
    if (rng.next_below(4) == 0) {
      std::fill(page.data.begin(), page.data.end(),
                static_cast<std::byte>(index & 0xFF));
    } else {
      for (std::size_t off = 0; off < page.data.size(); off += 8) {
        const std::uint64_t word = rng.next_u64();
        std::memcpy(page.data.data() + off, &word,
                    std::min<std::size_t>(8, page.data.size() - off));
      }
    }
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

}  // namespace

std::string CrashReplayReport::summary() const {
  std::string out = "replay: " + std::to_string(commits_recorded) + " commits over " +
                    std::to_string(log_bytes_recorded) + " log bytes, " +
                    std::to_string(boundary_cases) + " boundary + " +
                    std::to_string(fuzz_cases) + " fuzz cases, " +
                    std::to_string(torn_tails) + " torn tails, " +
                    std::to_string(images_reverified) + " payloads re-verified, " +
                    std::to_string(flight_appends) + " flight appends (" +
                    std::to_string(flight_reverified) + " re-verified), " +
                    std::to_string(migrations_checked) + " migration checks, " +
                    std::to_string(failures) + " failures";
  for (const std::string& diagnostic : diagnostics) out += "\n  " + diagnostic;
  return out;
}

CrashReplayReport JournalCrashReplay::run() {
  CrashReplayReport report;
  util::Rng rng(options_.seed);

  std::unique_ptr<util::ThreadPool> pinned;
  if (options_.workers > 0) {
    pinned = std::make_unique<util::ThreadPool>(options_.workers);
  }

  const sim::CostModel costs{};
  storage::JournalOptions journal_options;
  journal_options.segment_bytes = options_.segment_bytes;
  journal_options.segments = options_.segments;
  // Migration must stay off while recording: the append ledger's logical
  // offsets are the coordinate system every crash point below is cut in.
  journal_options.migrate_on_demand = false;
  journal_options.pool = pinned.get();
  journal_options.costs = costs;

  // --- 1. Record the commit sequence ---------------------------------------
  storage::LocalDiskBackend record_home(costs);
  storage::LogStructuredBackend journal(&record_home, journal_options);
  struct Recorded {
    storage::ImageId id = storage::kBadImageId;
    std::vector<std::byte> truth;      ///< flat serialization, the byte oracle
    std::uint64_t commit_end = 0;      ///< log offset one past the kCommit record
  };
  std::vector<Recorded> commits;
  commits.reserve(options_.commits);
  // Flight records bracket every commit, the way the fleet's black box
  // persists an open "commit" span before the group and a closed one after.
  struct FlightAppend {
    std::uint64_t key = 0;
    std::vector<std::byte> payload;
    std::uint64_t end = 0;  ///< log offset one past the kFlightRecord record
  };
  std::vector<FlightAppend> flights;
  std::map<std::uint64_t, obs::FlightRecorder> recorders;
  constexpr std::uint64_t kFlightKeys = 3;
  const auto append_flight = [&](std::uint64_t key, const obs::FlightRecorder& fr) {
    std::vector<std::byte> payload = fr.serialize();
    if (!journal.append_flight_record(key, payload, storage::ChargeFn{})) {
      throw std::invalid_argument(
          "JournalCrashReplay: log geometry cannot hold the flight records");
    }
    const storage::JournalRecordInfo& record = journal.appended_records().back();
    flights.push_back({key, std::move(payload), record.log_offset + record.bytes});
    ++report.flight_appends;
  };
  for (std::uint64_t i = 0; i < options_.commits; ++i) {
    const std::uint64_t key = i % kFlightKeys;
    obs::FlightRecorder& recorder =
        recorders.try_emplace(key, obs::FlightRecorder(8)).first->second;
    recorder.span_begin(i * 1000, "commit", i);
    append_flight(key, recorder);
    const storage::CheckpointImage image =
        make_image(rng, i, options_.pages_per_image);
    const storage::ImageId id = journal.store(image, storage::ChargeFn{});
    if (id == storage::kBadImageId) {
      throw std::invalid_argument(
          "JournalCrashReplay: log geometry cannot hold the recorded sequence "
          "(raise segments or segment_bytes)");
    }
    // store() always appends the group's kCommit record last.
    const storage::JournalRecordInfo& commit_record = journal.appended_records().back();
    commits.push_back({id, image.serialize(),
                       commit_record.log_offset + commit_record.bytes});
    recorder.span_end(i * 1000 + 500, "commit", i);
    recorder.counter(i * 1000 + 500, "commits", i + 1);
    append_flight(key, recorder);
  }
  const storage::JournalMedia media = journal.media_snapshot();
  const std::vector<storage::JournalRecordInfo> ledger = journal.appended_records();
  report.commits_recorded = commits.size();
  report.log_bytes_recorded = ledger.back().log_offset + ledger.back().bytes;

  // --- Shared case machinery ------------------------------------------------
  util::Serializer digest;
  std::uint64_t case_index = 0;

  // The claim under test, stated as data: a crash whose damage begins at
  // logical offset `cutoff` must recover exactly the commits whose kCommit
  // record ended at or before `cutoff`.
  const auto run_case = [&](storage::JournalMedia damaged, std::uint64_t cutoff,
                            const char* kind, std::uint64_t at) {
    std::vector<const Recorded*> expected;
    for (const Recorded& recorded : commits) {
      if (recorded.commit_end <= cutoff) expected.push_back(&recorded);
    }

    storage::LocalDiskBackend home(costs);
    storage::LogStructuredBackend replayed(&home, journal_options, std::move(damaged));
    const storage::JournalRecoveryReport recovery = replayed.recover(storage::ChargeFn{});
    if (recovery.tail_torn) ++report.torn_tails;

    bool case_ok = true;
    const auto fail = [&](const std::string& what) {
      case_ok = false;
      ++report.failures;
      if (report.diagnostics.size() < 16) {
        report.diagnostics.push_back(std::string(kind) + " @" + std::to_string(at) +
                                     ": " + what);
      }
    };

    std::vector<storage::ImageId> expected_ids;
    expected_ids.reserve(expected.size());
    for (const Recorded* recorded : expected) expected_ids.push_back(recorded->id);
    std::vector<storage::ImageId> got = replayed.list();
    std::sort(got.begin(), got.end());
    if (got != expected_ids || recovery.recovered_ids != expected_ids) {
      fail("recovered id set != newest fully-committed prefix (got " +
           std::to_string(got.size()) + ", want " + std::to_string(expected_ids.size()) +
           ")");
    } else {
      for (const Recorded* recorded : expected) {
        const auto image = replayed.load(recorded->id, storage::ChargeFn{});
        if (!image || image->serialize() != recorded->truth) {
          fail("image " + std::to_string(recorded->id) +
               " failed byte re-verification after recovery");
          break;
        }
        ++report.images_reverified;
      }
    }

    // Flight-record half of the prefix claim: per key, exactly the newest
    // payload whose append landed inside the surviving prefix is recovered.
    std::map<std::uint64_t, const FlightAppend*> expected_flight;
    for (const FlightAppend& flight : flights) {
      if (flight.end <= cutoff) expected_flight[flight.key] = &flight;
    }
    const auto check_flights = [&](const char* when) {
      for (std::uint64_t key = 0; key < kFlightKeys; ++key) {
        const auto want = expected_flight.find(key);
        const auto got_payload = replayed.flight_record_of(key);
        if (want == expected_flight.end()) {
          if (got_payload.has_value()) {
            fail("flight key " + std::to_string(key) + " recovered " + when +
                 " but no append survives the cutoff");
          }
        } else if (!got_payload.has_value() || *got_payload != want->second->payload) {
          fail("flight key " + std::to_string(key) +
               " != newest surviving payload " + when);
        } else {
          ++report.flight_reverified;
        }
      }
    };
    if (recovery.flight_recovered != expected_flight.size()) {
      fail("flight_recovered count " + std::to_string(recovery.flight_recovered) +
           " != surviving key count " + std::to_string(expected_flight.size()));
    }
    check_flights("after recovery");

    if (case_ok && options_.migrate_every != 0 &&
        case_index % options_.migrate_every == 0) {
      const storage::LogStructuredBackend::MigrateReport drained =
          replayed.migrate(storage::ChargeFn{});
      if (!drained.complete || drained.images_drained != expected_ids.size()) {
        fail("migrator drain incomplete after recovery (" +
             std::to_string(drained.images_drained) + "/" +
             std::to_string(expected_ids.size()) + ")");
      } else if (home.list().size() != expected_ids.size()) {
        fail("home store count != survivors after drain");
      } else {
        for (const Recorded* recorded : expected) {
          const auto image = replayed.load(recorded->id, storage::ChargeFn{});
          if (!image || image->serialize() != recorded->truth) {
            fail("image " + std::to_string(recorded->id) +
                 " failed byte re-verification after migration");
            break;
          }
        }
        if (case_ok) {
          ++report.migrations_checked;
          // Reclaim may have compacted flight records forward; the payload
          // each key surfaces must be unchanged by that movement.
          check_flights("after migration");
        }
      }
    }

    digest.put<std::uint64_t>(cutoff);
    digest.put<std::uint64_t>(at);
    digest.put<std::uint64_t>(got.size());
    digest.put<std::uint8_t>(recovery.tail_torn ? 1 : 0);
    for (const storage::ImageId id : got) digest.put<std::uint64_t>(id);
    for (std::uint64_t key = 0; key < kFlightKeys; ++key) {
      const auto got_payload = replayed.flight_record_of(key);
      digest.put<std::uint8_t>(got_payload.has_value() ? 1 : 0);
      if (got_payload.has_value()) digest.put<std::uint64_t>(util::crc64(*got_payload));
    }
    ++case_index;
  };

  // Power loss at logical offset `cut`: every byte at or past the cut is
  // gone (the device never wrote it), everything before survives verbatim.
  const auto truncate_at = [&](std::uint64_t cut) {
    storage::JournalMedia out = media;
    for (const storage::JournalRecordInfo& record : ledger) {
      if (record.log_offset + record.bytes <= cut) continue;
      const std::uint64_t keep = record.log_offset >= cut ? 0 : cut - record.log_offset;
      std::vector<std::byte>& slot = out.slots[record.slot];
      std::fill(slot.begin() + static_cast<std::ptrdiff_t>(record.slot_offset + keep),
                slot.begin() + static_cast<std::ptrdiff_t>(record.slot_offset + record.bytes),
                std::byte{0});
    }
    return out;
  };

  // --- 2. Truncate at every record boundary ---------------------------------
  run_case(truncate_at(0), 0, "truncate", 0);
  ++report.boundary_cases;
  for (const storage::JournalRecordInfo& record : ledger) {
    const std::uint64_t cut = record.log_offset + record.bytes;
    run_case(truncate_at(cut), cut, "truncate", cut);
    ++report.boundary_cases;
  }

  // --- 3. Flip one byte at fuzzed intra-record offsets ----------------------
  for (std::uint64_t f = 0; f < options_.fuzz_offsets; ++f) {
    const std::uint64_t at = rng.next_below(report.log_bytes_recorded);
    const auto next = std::upper_bound(
        ledger.begin(), ledger.end(), at,
        [](std::uint64_t value, const storage::JournalRecordInfo& record) {
          return value < record.log_offset;
        });
    const storage::JournalRecordInfo& record = *std::prev(next);
    storage::JournalMedia damaged = media;
    damaged.slots[record.slot][record.slot_offset + (at - record.log_offset)] ^=
        std::byte{0xFF};
    // Any damage inside a record invalidates its CRC64 envelope, so the
    // recoverable prefix ends where the damaged record begins.
    run_case(std::move(damaged), record.log_offset, "corrupt", at);
    ++report.fuzz_cases;
  }

  report.outcome_digest = util::crc64(digest.bytes());
  return report;
}

// ---------------------------------------------------------------------------
// mpi_uncoordinated mode
// ---------------------------------------------------------------------------

std::string MpiReplayReport::summary() const {
  std::string out = "mpi replay: " + std::to_string(cases) + " cases, " +
                    std::to_string(recoveries) + " recoveries, " +
                    std::to_string(commits) + " commits, " +
                    std::to_string(replayed_messages) + " replayed, " +
                    std::to_string(lost_messages) + " lost, " +
                    std::to_string(duplicates_dropped) + " dup-dropped, depth<=" +
                    std::to_string(max_rollback_depth) + ", " +
                    std::to_string(failures) + " failures";
  for (const std::string& diagnostic : diagnostics) out += "\n  " + diagnostic;
  return out;
}

namespace {

bool all_ranks_have_cuts(const cluster::UncoordinatedMpi& manager, int nranks) {
  for (int r = 0; r < nranks; ++r) {
    auto it = manager.cuts().find(r);
    if (it == manager.cuts().end() || it->second.empty()) return false;
  }
  return true;
}

}  // namespace

MpiReplayReport MpiCrashReplay::run() {
  MpiReplayReport report;
  util::Serializer digest;
  std::unique_ptr<util::ThreadPool> pinned;
  if (options_.workers > 0) {
    pinned = std::make_unique<util::ThreadPool>(options_.workers);
  }

  auto fail_case = [&](std::uint64_t k, const std::string& what) {
    ++report.failures;
    if (report.diagnostics.size() < 8) {
      report.diagnostics.push_back("case " + std::to_string(k) + ": " + what);
    }
  };

  for (std::uint64_t k = 0; k < options_.crash_points; ++k) {
    // Fresh deterministic scenario per case: the crash point (which node,
    // after how much progress) is the only thing that varies with k.
    cluster::Cluster cluster(options_.nodes, cluster::NodeConfig{});
    storage::ReplicatedOptions store_options;
    store_options.pool = pinned.get();
    storage::ReplicatedStore store({&cluster.remote_storage()}, store_options);

    cluster::MpiFabric::FabricOptions fabric_options;
    fabric_options.latency = cluster.node(0).kernel().costs().net_latency_ns;
    fabric_options.sender_logging = true;
    fabric_options.costs = cluster.node(0).kernel().costs();

    cluster::MpiRankGuest::Config config;
    config.array_bytes = options_.array_bytes;
    config.halo_bytes = options_.halo_bytes;
    cluster::MpiJob job(cluster, options_.nranks, config, fabric_options);
    job.launch();

    std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
    std::vector<core::CheckpointEngine*> raw_engines;
    for (int n = 0; n < options_.nodes; ++n) {
      sim::SimKernel& kernel = cluster.node(n).kernel();
      sim::KernelModule& module = kernel.load_module("blcr");
      engines.push_back(std::make_unique<core::KernelThreadEngine>(
          "blcr", &store, core::EngineOptions{}, kernel,
          core::KernelThreadEngine::ThreadConfig{}, &module));
      raw_engines.push_back(engines.back().get());
    }

    std::unique_ptr<storage::LogStructuredBackend> journal;
    cluster::UncoordinatedOptions manager_options;
    manager_options.policy.initial_interval = options_.interval;
    manager_options.policy.adapt_interval = false;
    manager_options.epoch = 2 * kMillisecond;
    if (options_.journal_logs) {
      journal = std::make_unique<storage::LogStructuredBackend>(&cluster.remote_storage());
      manager_options.log_journal = journal.get();
    }
    cluster::UncoordinatedMpi manager(cluster, job, raw_engines, manager_options);

    // Run to the case-specific crash point, making sure every rank holds at
    // least one checkpoint so the recovery line has images to anchor on.
    manager.run_until(options_.interval * static_cast<SimTime>(2 + k % 3));
    for (int extra = 0; extra < 8 && !all_ranks_have_cuts(manager, options_.nranks);
         ++extra) {
      manager.run_until(cluster.now() + options_.interval);
    }
    if (!all_ranks_have_cuts(manager, options_.nranks)) {
      fail_case(k, "some rank never checkpointed before the crash point");
      continue;
    }
    // Let every rank execute well past its newest cut before the crash, so
    // recovery genuinely rolls state back and re-execution re-sends
    // sequences the receivers already delivered (the dedup seam).  A fixed
    // window is not enough: each commit advances the host node's local
    // kernel clock past cluster time, and those leads are uneven across
    // nodes — a rank whose host leads by more than the window would crash
    // still sitting exactly at its cut frontier.  So run the cluster in
    // chunks (no further commits) until every rank's live send frontier
    // provably exceeds its newest checkpoint cut.
    {
      const auto past_cuts = [&](std::uint64_t margin) {
        const auto sent = job.fabric().current_sent();
        for (const auto& [rank, history] : manager.cuts()) {
          for (const auto& [dst, cut_seq] : history.back().channels.sent) {
            auto live = sent.find({rank, dst});
            const std::uint64_t live_seq = live == sent.end() ? 0 : live->second;
            if (live_seq < cut_seq + margin) return false;
          }
        }
        return true;
      };
      for (int chunk = 0; chunk < 16 && !past_cuts(10); ++chunk) {
        cluster.run_until(cluster.now() + 2 * options_.interval, 2 * kMillisecond);
      }
    }

    const int victim = static_cast<int>(k) % options_.nodes;
    cluster.fail_node(victim);
    if (options_.double_failure) {
      cluster.fail_node((victim + 1) % options_.nodes);
    }
    const std::vector<int> up = cluster.up_nodes();
    if (up.empty()) {
      fail_case(k, "no surviving node to recover onto");
      continue;
    }
    const cluster::UncoordinatedMpi::RecoverResult recovered =
        manager.recover_failed_node(victim, up.front());
    if (!recovered.ok) {
      fail_case(k, "recovery failed: " + recovered.error);
      continue;
    }
    ++report.recoveries;
    report.replayed_messages += recovered.replayed_messages;
    report.journal_restored_logs += recovered.journal_restored_logs;
    report.max_rollback_depth =
        std::max(report.max_rollback_depth, recovered.line.depth);

    // Run forward WITHOUT further commits: the recovery target now hosts
    // extra ranks and its kernel clock sits ahead of cluster time after the
    // restarts, so a manager-driven window would spend it all on checkpoint
    // work.  Driving the cluster directly lets the restarted ranks actually
    // re-execute — the job must make real progress, re-execution re-sends
    // must be absorbed as duplicates, and no receiver may ever observe a
    // sequence gap (lost message).
    // The window scales with the recovery width: the target node's clock
    // leads cluster time by the restart charges, and each restarted rank
    // shares the target CPU — re-executing past its cut (so duplicates are
    // provably absorbed) takes proportionally longer the more ranks were
    // rolled back.
    const SimTime window =
        static_cast<SimTime>(4 + 2 * recovered.line.width) * options_.interval;
    cluster.run_until(cluster.now() + window, 2 * kMillisecond);
    const std::uint64_t progress = job.min_iteration(cluster);
    if (progress == 0) {
      fail_case(k, "no progress after recovery");
    }
    cluster::MpiFabric& fabric = job.fabric();
    report.lost_messages += fabric.sequence_violations();
    report.duplicates_dropped += fabric.duplicates_dropped();
    report.commits += manager.stats().commits;

    // Fold the recovered outcome: per-rank iteration + order-sensitive
    // receive digest are a byte-level fingerprint of guest state evolution.
    digest.put(k);
    digest.put(progress);
    digest.put<std::uint32_t>(recovered.line.depth);
    digest.put<std::uint32_t>(recovered.line.width);
    digest.put(recovered.replayed_messages);
    for (int r = 0; r < options_.nranks; ++r) {
      const cluster::MpiJob::Placement placement =
          job.placements()[static_cast<std::size_t>(r)];
      sim::Process* proc =
          cluster.node(placement.node).kernel().find_process(placement.pid);
      if (proc == nullptr || !proc->alive()) {
        fail_case(k, "rank " + std::to_string(r) + " dead after recovery");
        continue;
      }
      digest.put(cluster::MpiRankGuest::read_iteration(*proc));
      digest.put(cluster::MpiRankGuest::read_recv_digest(*proc));
    }
    ++report.cases;
  }

  report.outcome_digest = util::crc64(digest.bytes());
  return report;
}

}  // namespace ckpt::inject
