#include "inject/replay.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include <map>

#include "obs/flightrec.hpp"
#include "storage/backend.hpp"
#include "storage/image.hpp"
#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::inject {
namespace {

constexpr sim::VAddr kBase = 0x10000;

/// One recorded image: mostly rng pages, with an occasional repeated page so
/// the per-commit chunk table has something to dedup (groups then contain
/// fewer kChunk records than pages — the realistic shape).
storage::CheckpointImage make_image(util::Rng& rng, std::uint64_t index,
                                    std::uint64_t pages) {
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 7;
  image.process_name = "replay";
  image.sequence = index;
  image.taken_at = index * 1000;
  image.threads.push_back(storage::ThreadImage{1, {}});
  image.threads[0].regs.pc = index;
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(kBase), pages, sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::uint64_t p = 0; p < pages; ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data.resize(sim::kPageSize);
    if (rng.next_below(4) == 0) {
      std::fill(page.data.begin(), page.data.end(),
                static_cast<std::byte>(index & 0xFF));
    } else {
      for (std::size_t off = 0; off < page.data.size(); off += 8) {
        const std::uint64_t word = rng.next_u64();
        std::memcpy(page.data.data() + off, &word,
                    std::min<std::size_t>(8, page.data.size() - off));
      }
    }
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

}  // namespace

std::string CrashReplayReport::summary() const {
  std::string out = "replay: " + std::to_string(commits_recorded) + " commits over " +
                    std::to_string(log_bytes_recorded) + " log bytes, " +
                    std::to_string(boundary_cases) + " boundary + " +
                    std::to_string(fuzz_cases) + " fuzz cases, " +
                    std::to_string(torn_tails) + " torn tails, " +
                    std::to_string(images_reverified) + " payloads re-verified, " +
                    std::to_string(flight_appends) + " flight appends (" +
                    std::to_string(flight_reverified) + " re-verified), " +
                    std::to_string(migrations_checked) + " migration checks, " +
                    std::to_string(failures) + " failures";
  for (const std::string& diagnostic : diagnostics) out += "\n  " + diagnostic;
  return out;
}

CrashReplayReport JournalCrashReplay::run() {
  CrashReplayReport report;
  util::Rng rng(options_.seed);

  std::unique_ptr<util::ThreadPool> pinned;
  if (options_.workers > 0) {
    pinned = std::make_unique<util::ThreadPool>(options_.workers);
  }

  const sim::CostModel costs{};
  storage::JournalOptions journal_options;
  journal_options.segment_bytes = options_.segment_bytes;
  journal_options.segments = options_.segments;
  // Migration must stay off while recording: the append ledger's logical
  // offsets are the coordinate system every crash point below is cut in.
  journal_options.migrate_on_demand = false;
  journal_options.pool = pinned.get();
  journal_options.costs = costs;

  // --- 1. Record the commit sequence ---------------------------------------
  storage::LocalDiskBackend record_home(costs);
  storage::LogStructuredBackend journal(&record_home, journal_options);
  struct Recorded {
    storage::ImageId id = storage::kBadImageId;
    std::vector<std::byte> truth;      ///< flat serialization, the byte oracle
    std::uint64_t commit_end = 0;      ///< log offset one past the kCommit record
  };
  std::vector<Recorded> commits;
  commits.reserve(options_.commits);
  // Flight records bracket every commit, the way the fleet's black box
  // persists an open "commit" span before the group and a closed one after.
  struct FlightAppend {
    std::uint64_t key = 0;
    std::vector<std::byte> payload;
    std::uint64_t end = 0;  ///< log offset one past the kFlightRecord record
  };
  std::vector<FlightAppend> flights;
  std::map<std::uint64_t, obs::FlightRecorder> recorders;
  constexpr std::uint64_t kFlightKeys = 3;
  const auto append_flight = [&](std::uint64_t key, const obs::FlightRecorder& fr) {
    std::vector<std::byte> payload = fr.serialize();
    if (!journal.append_flight_record(key, payload, storage::ChargeFn{})) {
      throw std::invalid_argument(
          "JournalCrashReplay: log geometry cannot hold the flight records");
    }
    const storage::JournalRecordInfo& record = journal.appended_records().back();
    flights.push_back({key, std::move(payload), record.log_offset + record.bytes});
    ++report.flight_appends;
  };
  for (std::uint64_t i = 0; i < options_.commits; ++i) {
    const std::uint64_t key = i % kFlightKeys;
    obs::FlightRecorder& recorder =
        recorders.try_emplace(key, obs::FlightRecorder(8)).first->second;
    recorder.span_begin(i * 1000, "commit", i);
    append_flight(key, recorder);
    const storage::CheckpointImage image =
        make_image(rng, i, options_.pages_per_image);
    const storage::ImageId id = journal.store(image, storage::ChargeFn{});
    if (id == storage::kBadImageId) {
      throw std::invalid_argument(
          "JournalCrashReplay: log geometry cannot hold the recorded sequence "
          "(raise segments or segment_bytes)");
    }
    // store() always appends the group's kCommit record last.
    const storage::JournalRecordInfo& commit_record = journal.appended_records().back();
    commits.push_back({id, image.serialize(),
                       commit_record.log_offset + commit_record.bytes});
    recorder.span_end(i * 1000 + 500, "commit", i);
    recorder.counter(i * 1000 + 500, "commits", i + 1);
    append_flight(key, recorder);
  }
  const storage::JournalMedia media = journal.media_snapshot();
  const std::vector<storage::JournalRecordInfo> ledger = journal.appended_records();
  report.commits_recorded = commits.size();
  report.log_bytes_recorded = ledger.back().log_offset + ledger.back().bytes;

  // --- Shared case machinery ------------------------------------------------
  util::Serializer digest;
  std::uint64_t case_index = 0;

  // The claim under test, stated as data: a crash whose damage begins at
  // logical offset `cutoff` must recover exactly the commits whose kCommit
  // record ended at or before `cutoff`.
  const auto run_case = [&](storage::JournalMedia damaged, std::uint64_t cutoff,
                            const char* kind, std::uint64_t at) {
    std::vector<const Recorded*> expected;
    for (const Recorded& recorded : commits) {
      if (recorded.commit_end <= cutoff) expected.push_back(&recorded);
    }

    storage::LocalDiskBackend home(costs);
    storage::LogStructuredBackend replayed(&home, journal_options, std::move(damaged));
    const storage::JournalRecoveryReport recovery = replayed.recover(storage::ChargeFn{});
    if (recovery.tail_torn) ++report.torn_tails;

    bool case_ok = true;
    const auto fail = [&](const std::string& what) {
      case_ok = false;
      ++report.failures;
      if (report.diagnostics.size() < 16) {
        report.diagnostics.push_back(std::string(kind) + " @" + std::to_string(at) +
                                     ": " + what);
      }
    };

    std::vector<storage::ImageId> expected_ids;
    expected_ids.reserve(expected.size());
    for (const Recorded* recorded : expected) expected_ids.push_back(recorded->id);
    std::vector<storage::ImageId> got = replayed.list();
    std::sort(got.begin(), got.end());
    if (got != expected_ids || recovery.recovered_ids != expected_ids) {
      fail("recovered id set != newest fully-committed prefix (got " +
           std::to_string(got.size()) + ", want " + std::to_string(expected_ids.size()) +
           ")");
    } else {
      for (const Recorded* recorded : expected) {
        const auto image = replayed.load(recorded->id, storage::ChargeFn{});
        if (!image || image->serialize() != recorded->truth) {
          fail("image " + std::to_string(recorded->id) +
               " failed byte re-verification after recovery");
          break;
        }
        ++report.images_reverified;
      }
    }

    // Flight-record half of the prefix claim: per key, exactly the newest
    // payload whose append landed inside the surviving prefix is recovered.
    std::map<std::uint64_t, const FlightAppend*> expected_flight;
    for (const FlightAppend& flight : flights) {
      if (flight.end <= cutoff) expected_flight[flight.key] = &flight;
    }
    const auto check_flights = [&](const char* when) {
      for (std::uint64_t key = 0; key < kFlightKeys; ++key) {
        const auto want = expected_flight.find(key);
        const auto got_payload = replayed.flight_record_of(key);
        if (want == expected_flight.end()) {
          if (got_payload.has_value()) {
            fail("flight key " + std::to_string(key) + " recovered " + when +
                 " but no append survives the cutoff");
          }
        } else if (!got_payload.has_value() || *got_payload != want->second->payload) {
          fail("flight key " + std::to_string(key) +
               " != newest surviving payload " + when);
        } else {
          ++report.flight_reverified;
        }
      }
    };
    if (recovery.flight_recovered != expected_flight.size()) {
      fail("flight_recovered count " + std::to_string(recovery.flight_recovered) +
           " != surviving key count " + std::to_string(expected_flight.size()));
    }
    check_flights("after recovery");

    if (case_ok && options_.migrate_every != 0 &&
        case_index % options_.migrate_every == 0) {
      const storage::LogStructuredBackend::MigrateReport drained =
          replayed.migrate(storage::ChargeFn{});
      if (!drained.complete || drained.images_drained != expected_ids.size()) {
        fail("migrator drain incomplete after recovery (" +
             std::to_string(drained.images_drained) + "/" +
             std::to_string(expected_ids.size()) + ")");
      } else if (home.list().size() != expected_ids.size()) {
        fail("home store count != survivors after drain");
      } else {
        for (const Recorded* recorded : expected) {
          const auto image = replayed.load(recorded->id, storage::ChargeFn{});
          if (!image || image->serialize() != recorded->truth) {
            fail("image " + std::to_string(recorded->id) +
                 " failed byte re-verification after migration");
            break;
          }
        }
        if (case_ok) {
          ++report.migrations_checked;
          // Reclaim may have compacted flight records forward; the payload
          // each key surfaces must be unchanged by that movement.
          check_flights("after migration");
        }
      }
    }

    digest.put<std::uint64_t>(cutoff);
    digest.put<std::uint64_t>(at);
    digest.put<std::uint64_t>(got.size());
    digest.put<std::uint8_t>(recovery.tail_torn ? 1 : 0);
    for (const storage::ImageId id : got) digest.put<std::uint64_t>(id);
    for (std::uint64_t key = 0; key < kFlightKeys; ++key) {
      const auto got_payload = replayed.flight_record_of(key);
      digest.put<std::uint8_t>(got_payload.has_value() ? 1 : 0);
      if (got_payload.has_value()) digest.put<std::uint64_t>(util::crc64(*got_payload));
    }
    ++case_index;
  };

  // Power loss at logical offset `cut`: every byte at or past the cut is
  // gone (the device never wrote it), everything before survives verbatim.
  const auto truncate_at = [&](std::uint64_t cut) {
    storage::JournalMedia out = media;
    for (const storage::JournalRecordInfo& record : ledger) {
      if (record.log_offset + record.bytes <= cut) continue;
      const std::uint64_t keep = record.log_offset >= cut ? 0 : cut - record.log_offset;
      std::vector<std::byte>& slot = out.slots[record.slot];
      std::fill(slot.begin() + static_cast<std::ptrdiff_t>(record.slot_offset + keep),
                slot.begin() + static_cast<std::ptrdiff_t>(record.slot_offset + record.bytes),
                std::byte{0});
    }
    return out;
  };

  // --- 2. Truncate at every record boundary ---------------------------------
  run_case(truncate_at(0), 0, "truncate", 0);
  ++report.boundary_cases;
  for (const storage::JournalRecordInfo& record : ledger) {
    const std::uint64_t cut = record.log_offset + record.bytes;
    run_case(truncate_at(cut), cut, "truncate", cut);
    ++report.boundary_cases;
  }

  // --- 3. Flip one byte at fuzzed intra-record offsets ----------------------
  for (std::uint64_t f = 0; f < options_.fuzz_offsets; ++f) {
    const std::uint64_t at = rng.next_below(report.log_bytes_recorded);
    const auto next = std::upper_bound(
        ledger.begin(), ledger.end(), at,
        [](std::uint64_t value, const storage::JournalRecordInfo& record) {
          return value < record.log_offset;
        });
    const storage::JournalRecordInfo& record = *std::prev(next);
    storage::JournalMedia damaged = media;
    damaged.slots[record.slot][record.slot_offset + (at - record.log_offset)] ^=
        std::byte{0xFF};
    // Any damage inside a record invalidates its CRC64 envelope, so the
    // recoverable prefix ends where the damaged record begins.
    run_case(std::move(damaged), record.log_offset, "corrupt", at);
    ++report.fuzz_cases;
  }

  report.outcome_digest = util::crc64(digest.bytes());
  return report;
}

}  // namespace ckpt::inject
