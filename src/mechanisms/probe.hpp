// Capability probing: derive Table 1 from behaviour, not from labels.
//
// For each mechanism the prober builds a fresh kernel, launches unmodified
// guests through the mechanism's own procedure and *measures* each Table 1
// feature:
//
//   incremental   — checkpoint a sparse writer twice; "yes" iff the second
//                   image is much smaller than the first.
//   transparency  — "yes" iff an unmodified, uncooperative application can
//                   be checkpointed without its process image being touched
//                   (no injected library handlers / interposition) — launch
//                   wrappers and kernel-side registration are allowed, as
//                   in the paper's reading for EPCKPT and CHPOX.
//   stable storage— the mechanism's declared localities, verified: images
//                   must actually be retained (or, for "none", must not).
//   initiation    — "user" iff an external agent can initiate, else
//                   "automatic" (the application triggers itself).
//   kernel module — "yes" iff the mechanism registered as a loadable module.
#pragma once

#include <string>
#include <vector>

#include "mechanisms/catalog.hpp"

namespace ckpt::mechanisms {

struct ProbedRow {
  std::string name;
  std::string incremental;
  std::string transparency;
  std::string storage;
  std::string initiation;
  std::string module;
  /// Extra probes beyond Table 1's columns.
  bool multithreaded = false;
  bool restart_verified = false;
};

/// Probe one catalog entry in a fresh kernel.
ProbedRow probe_mechanism(const CatalogEntry& entry);

/// Probe every mechanism in Table 1 order.
std::vector<ProbedRow> probe_all();

/// The paper's published row for a mechanism (from the mechanism class).
PaperRow paper_row_for(const CatalogEntry& entry);

}  // namespace ckpt::mechanisms
