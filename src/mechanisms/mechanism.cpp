#include "mechanisms/mechanism.hpp"

namespace ckpt::mechanisms {

sim::Pid Mechanism::launch(sim::SimKernel& kernel, const std::string& guest,
                           std::vector<std::byte> config,
                           const sim::SpawnOptions& options) {
  // Default: a plain spawn — nothing special required (the transparent
  // mechanisms' path).
  return kernel.spawn(guest, std::move(config), options);
}

bool Mechanism::check_thread_support(sim::SimKernel& kernel, sim::Pid pid,
                                     core::CheckpointResult& out) const {
  const sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) {
    out.error = std::string(name()) + ": no such process";
    return false;
  }
  if (proc->threads.size() > 1 && !supports_multithreaded()) {
    out.error = std::string(name()) + ": cannot checkpoint multithreaded processes";
    return false;
  }
  return true;
}

core::CheckpointResult Mechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  core::CheckpointResult refused;
  if (!check_thread_support(kernel, pid, refused)) return refused;
  if (engine_ == nullptr || !engine_->supports_external_initiation()) {
    refused.error = std::string(name()) +
                    ": no external initiation (application must checkpoint itself)";
    return refused;
  }
  return engine_->request_checkpoint(kernel, pid);
}

core::RestartResult Mechanism::restart(sim::SimKernel& kernel, sim::Pid pid,
                                       const core::RestartOptions& options) {
  if (engine_ == nullptr) {
    core::RestartResult result;
    result.error = std::string(name()) + ": no restart support";
    return result;
  }
  return engine_->restart(kernel, pid, options);
}

bool Mechanism::supports_external_initiation() const {
  return engine_ != nullptr && engine_->supports_external_initiation();
}

}  // namespace ckpt::mechanisms
