#include "mechanisms/catalog.hpp"

namespace ckpt::mechanisms {

const std::vector<CatalogEntry>& mechanism_catalog() {
  static const std::vector<CatalogEntry> catalog = [] {
    std::vector<CatalogEntry> entries;
    auto add = [&entries](std::string name, auto make) {
      entries.push_back(CatalogEntry{
          std::move(name),
          [make](const MechanismContext& context) -> std::unique_ptr<Mechanism> {
            return make(context);
          }});
    };
    add("VMADump", [](const MechanismContext& c) {
      return std::make_unique<VmadumpMechanism>(c);
    });
    add("BPROC", [](const MechanismContext& c) {
      return std::make_unique<BprocMechanism>(c);
    });
    add("EPCKPT", [](const MechanismContext& c) {
      return std::make_unique<EpckptMechanism>(c);
    });
    add("CRAK", [](const MechanismContext& c) { return std::make_unique<CrakMechanism>(c); });
    add("UCLik", [](const MechanismContext& c) {
      return std::make_unique<UclikMechanism>(c);
    });
    add("CHPOX", [](const MechanismContext& c) {
      return std::make_unique<ChpoxMechanism>(c);
    });
    add("ZAP", [](const MechanismContext& c) { return std::make_unique<ZapMechanism>(c); });
    add("BLCR", [](const MechanismContext& c) { return std::make_unique<BlcrMechanism>(c); });
    add("LAM/MPI", [](const MechanismContext& c) {
      return std::make_unique<LamMpiMechanism>(c);
    });
    add("PsncR/C", [](const MechanismContext& c) {
      return std::make_unique<PsncrcMechanism>(c);
    });
    add("Software Suspend", [](const MechanismContext& c) {
      return std::make_unique<SwsuspMechanism>(c);
    });
    add("Checkpoint", [](const MechanismContext& c) {
      return std::make_unique<Checkpoint05Mechanism>(c);
    });
    return entries;
  }();
  return catalog;
}

void register_taxonomy_entries() {
  auto& registry = core::TaxonomyRegistry::instance();
  registry.clear();

  // The surveyed system-level mechanisms: instantiate each against a scratch
  // kernel to obtain its self-declared classification.
  for (const CatalogEntry& entry : mechanism_catalog()) {
    sim::SimKernel scratch;
    storage::LocalDiskBackend local(scratch.costs());
    storage::RemoteBackend remote(scratch.costs());
    MechanismContext context{&scratch, &local, &remote};
    auto mechanism = entry.factory(context);
    registry.add(core::TaxonomyEntry{mechanism->name(), mechanism->taxonomy(),
                                     mechanism->description()});
  }

  // The user-level corner of Figure 1 (surveyed in §3, not in Table 1).
  registry.add(core::TaxonomyEntry{
      "libckpt/libckp/Condor class",
      {core::Context::kUserLevel, core::Agent::kSignalHandlerLib,
       core::Technique::kUserSignalHandler, core::KThreadInterface::kNone},
      "checkpoint library with SIGALRM/SIGUSR handlers"});
  registry.add(core::TaxonomyEntry{
      "source-programmed libraries",
      {core::Context::kUserLevel, core::Agent::kApplicationSource,
       core::Technique::kLibraryCall, core::KThreadInterface::kNone},
      "checkpoint calls written into the application"});
  registry.add(core::TaxonomyEntry{
      "pre-compiler inserted (CCIFT class)",
      {core::Context::kUserLevel, core::Agent::kPrecompiler, core::Technique::kLibraryCall,
       core::KThreadInterface::kNone},
      "calls inserted automatically before compilation"});
  registry.add(core::TaxonomyEntry{
      "LD_PRELOAD libraries",
      {core::Context::kUserLevel, core::Agent::kPreloadLib,
       core::Technique::kUserSignalHandler, core::KThreadInterface::kNone},
      "handlers + interposition installed at load time, no relink"});

  // The hardware corner (§4.2).
  registry.add(core::TaxonomyEntry{
      "ReVive",
      {core::Context::kSystemLevel, core::Agent::kHardware,
       core::Technique::kDirectoryController, core::KThreadInterface::kNone},
      "directory-controller undo logging, cache-line granularity"});
  registry.add(core::TaxonomyEntry{
      "SafetyNet",
      {core::Context::kSystemLevel, core::Agent::kHardware, core::Technique::kCacheBuffer,
       core::KThreadInterface::kNone},
      "cache checkpoint-log buffers (more hardware than ReVive)"});
}

}  // namespace ckpt::mechanisms
