#include "mechanisms/probe.hpp"

#include <sstream>

#include "sim/guests.hpp"

namespace ckpt::mechanisms {
namespace {

struct ProbeRig {
  sim::SimKernel kernel{1};
  storage::LocalDiskBackend local{sim::CostModel{}};
  storage::RemoteBackend remote{sim::CostModel{}};

  ProbeRig() { sim::register_standard_guests(); }

  MechanismContext context() { return MechanismContext{&kernel, &local, &remote}; }
};

std::string locality_string(const std::vector<storage::StorageLocality>& localities) {
  std::ostringstream out;
  for (std::size_t i = 0; i < localities.size(); ++i) {
    if (i != 0) out << ",";
    out << storage::to_string(localities[i]);
  }
  return out.str();
}

/// Was the process image modified beyond a plain spawn?  Injected library
/// handlers or interposition mean the application was relinked/preloaded —
/// the transparency-breaking changes.
bool app_image_modified(const sim::Process& proc) {
  return !proc.library_handlers.empty() || proc.interposer.has_value();
}

}  // namespace

PaperRow paper_row_for(const CatalogEntry& entry) {
  ProbeRig rig;
  auto mechanism = entry.factory(rig.context());
  return mechanism->paper_row();
}

ProbedRow probe_mechanism(const CatalogEntry& entry) {
  ProbedRow row;
  row.name = entry.name;

  // --- Module probe (fresh rig) -------------------------------------------
  {
    ProbeRig rig;
    auto mechanism = entry.factory(rig.context());
    row.module = rig.kernel.loaded_modules().empty() ? "no" : "yes";
    row.initiation = mechanism->supports_external_initiation() ? "user" : "automatic";
    row.storage = locality_string(mechanism->storage_localities());
  }

  // --- Transparency probe ----------------------------------------------------
  {
    ProbeRig rig;
    auto mechanism = entry.factory(rig.context());
    const sim::Pid pid =
        mechanism->launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
    rig.kernel.run_until(rig.kernel.now() + 5 * kMillisecond);
    bool transparent = false;
    if (sim::Process* proc = rig.kernel.find_process(pid);
        proc != nullptr && proc->alive() && !app_image_modified(*proc)) {
      const core::CheckpointResult result = mechanism->checkpoint(rig.kernel, pid);
      transparent = result.ok;
    }
    row.transparency = transparent ? "yes" : "no";
  }

  // --- Incremental probe -------------------------------------------------------
  {
    ProbeRig rig;
    auto mechanism = entry.factory(rig.context());
    sim::WriterConfig config;
    config.array_bytes = 256 * 1024;
    config.working_set_fraction = 0.05;
    const sim::Pid pid =
        mechanism->launch(rig.kernel, sim::SparseWriterGuest::kTypeName, config.encode(),
                          sim::spawn_options_for_array(config.array_bytes));
    rig.kernel.run_until(rig.kernel.now() + 20 * kMillisecond);
    const core::CheckpointResult first = mechanism->checkpoint(rig.kernel, pid);
    rig.kernel.run_until(rig.kernel.now() + 20 * kMillisecond);
    const core::CheckpointResult second = mechanism->checkpoint(rig.kernel, pid);
    const bool incremental =
        first.ok && second.ok &&
        second.payload_bytes * 2 < first.payload_bytes;  // delta clearly smaller
    row.incremental = incremental ? "yes" : "no";
  }

  // --- Multithread probe ----------------------------------------------------------
  {
    ProbeRig rig;
    auto mechanism = entry.factory(rig.context());
    sim::SpawnOptions options;
    options.thread_count = 4;
    const sim::Pid pid =
        mechanism->launch(rig.kernel, sim::CounterGuest::kTypeName, {}, options);
    rig.kernel.run_until(rig.kernel.now() + 5 * kMillisecond);
    const core::CheckpointResult result = mechanism->checkpoint(rig.kernel, pid);
    row.multithreaded = result.ok;
  }

  // --- Restart round-trip probe ------------------------------------------------------
  {
    ProbeRig rig;
    auto mechanism = entry.factory(rig.context());
    const sim::Pid pid =
        mechanism->launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
    rig.kernel.run_until(rig.kernel.now() + 5 * kMillisecond);
    const core::CheckpointResult ckpt = mechanism->checkpoint(rig.kernel, pid);
    if (ckpt.ok) {
      // Kill the original, then bring it back.
      if (sim::Process* proc = rig.kernel.find_process(pid)) {
        rig.kernel.terminate(*proc, 1);
        rig.kernel.reap(pid);
      }
      const core::RestartResult restarted = mechanism->restart(rig.kernel, pid);
      if (restarted.ok) {
        rig.kernel.run_until(rig.kernel.now() + 5 * kMillisecond);
        const sim::Process* revived = rig.kernel.find_process(restarted.pid);
        row.restart_verified = revived != nullptr && revived->alive();
      }
    }
  }

  return row;
}

std::vector<ProbedRow> probe_all() {
  std::vector<ProbedRow> rows;
  for (const CatalogEntry& entry : mechanism_catalog()) {
    rows.push_back(probe_mechanism(entry));
  }
  return rows;
}

}  // namespace ckpt::mechanisms
