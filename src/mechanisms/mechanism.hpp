// The twelve surveyed mechanisms (Table 1), each a working configuration of
// the core engines with the historical system's interface, quirks and
// limitations:
//
//   VMADump, BPROC, EPCKPT, CRAK, UCLiK, CHPOX, ZAP, BLCR, LAM/MPI,
//   PsncR/C, Software Suspend, Checkpoint [5].
//
// Table 1 itself is *derived* by probing these implementations (see
// bench/table1): the matrix cannot drift from the code.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/hibernate.hpp"
#include "core/migrate.hpp"
#include "core/pod.hpp"
#include "core/systemlevel.hpp"
#include "core/taxonomy.hpp"
#include "core/userlevel.hpp"
#include "sim/kernel.hpp"
#include "storage/backend.hpp"

namespace ckpt::mechanisms {

/// The row the paper's Table 1 prints for this mechanism (expected values,
/// used by the bench to diff measured behaviour against the publication).
struct PaperRow {
  const char* incremental;
  const char* transparency;
  const char* storage;
  const char* initiation;
  const char* module;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const char* description() const = 0;
  [[nodiscard]] virtual core::TaxonomyPath taxonomy() const = 0;
  [[nodiscard]] virtual PaperRow paper_row() const = 0;
  [[nodiscard]] virtual bool is_kernel_module() const = 0;
  [[nodiscard]] virtual bool supports_multithreaded() const { return false; }
  [[nodiscard]] virtual bool supports_incremental() const { return false; }
  [[nodiscard]] virtual std::vector<storage::StorageLocality> storage_localities()
      const = 0;

  /// Launch an application by this mechanism's required procedure (plain
  /// spawn for most; EPCKPT requires its launcher tool; BLCR performs the
  /// registration/initialization phase; user-level schemes link or preload
  /// the checkpoint library).
  virtual sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                          std::vector<std::byte> config, const sim::SpawnOptions& options);

  /// Externally initiated checkpoint of `pid` through the mechanism's own
  /// interface.  Mechanisms without external initiation (VMADump,
  /// Checkpoint [5]) refuse; the app checkpoints itself instead.
  virtual core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid);

  virtual core::RestartResult restart(sim::SimKernel& kernel, sim::Pid pid,
                                      const core::RestartOptions& options = {});

  [[nodiscard]] virtual bool supports_external_initiation() const;

  [[nodiscard]] core::CheckpointEngine* engine() { return engine_.get(); }

 protected:
  /// Refuse multithreaded targets unless supported — the BLCR distinction.
  bool check_thread_support(sim::SimKernel& kernel, sim::Pid pid,
                            core::CheckpointResult& out) const;

  std::unique_ptr<core::CheckpointEngine> engine_;
};

/// Context handed to mechanism factories: the kernel to install into plus
/// the node's storage backends.
struct MechanismContext {
  sim::SimKernel* kernel = nullptr;
  storage::StorageBackend* local = nullptr;   ///< node-local disk
  storage::StorageBackend* remote = nullptr;  ///< network stable storage
};

// --- The original implementations (§4.1, "first appearing around 2001") ---

/// VMADump: checkpoint via new syscalls, the app dumps *itself* (the
/// `current` macro); static kernel code; part of BProc.
class VmadumpMechanism final : public Mechanism {
 public:
  explicit VmadumpMechanism(const MechanismContext& context);
  [[nodiscard]] const char* name() const override { return "VMADump"; }
  [[nodiscard]] const char* description() const override {
    return "self-invoked dump syscalls (BProc's Virtual Memory Area Dumper)";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "no", "local,remote", "automatic", "no"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return false; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk, storage::StorageLocality::kRemote};
  }
  /// The syscall a cooperative application must call.
  [[nodiscard]] const std::string& dump_syscall() const;
};

/// BProc: VMADump plus single-system-image process migration; no stable
/// storage of its own.
class BprocMechanism final : public Mechanism {
 public:
  explicit BprocMechanism(const MechanismContext& context);
  [[nodiscard]] const char* name() const override { return "BPROC"; }
  [[nodiscard]] const char* description() const override {
    return "Beowulf distributed process space: VMADump-based migration";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "no", "none", "automatic", "no"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return false; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kNone};
  }
  /// Migrate a process to another node's kernel (its raison d'etre).
  core::MigrationResult migrate(sim::SimKernel& source, sim::SimKernel& destination,
                                sim::Pid pid);

 private:
  std::unique_ptr<storage::NullBackend> null_backend_;
};

/// EPCKPT: dump syscalls keyed by pid plus a new kernel checkpoint signal;
/// applications must be launched through its tool (run-time trace
/// overhead); static kernel code.
class EpckptMechanism final : public Mechanism {
 public:
  explicit EpckptMechanism(const MechanismContext& context);
  [[nodiscard]] const char* name() const override { return "EPCKPT"; }
  [[nodiscard]] const char* description() const override {
    return "pid-addressed dump syscall + checkpoint signal; launcher-tool tracing";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local,remote", "user", "no"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return false; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk, storage::StorageLocality::kRemote};
  }
  sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                  std::vector<std::byte> config, const sim::SpawnOptions& options) override;
  core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid) override;
  [[nodiscard]] bool supports_external_initiation() const override { return true; }

 private:
  std::set<sim::Pid> traced_;
};

// --- Kernel-thread family -------------------------------------------------

/// CRAK: kernel-module kernel thread driven through /dev ioctl; local or
/// remote storage; optional migration.
class CrakMechanism final : public Mechanism {
 public:
  explicit CrakMechanism(const MechanismContext& context);
  ~CrakMechanism() override;
  [[nodiscard]] const char* name() const override { return "CRAK"; }
  [[nodiscard]] const char* description() const override {
    return "kernel module + kernel thread, /dev ioctl interface, migration utility";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local,remote", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk, storage::StorageLocality::kRemote};
  }
  core::MigrationResult migrate(sim::SimKernel& source, sim::SimKernel& destination,
                                sim::Pid pid);
  [[nodiscard]] const std::string& device_path() const;

 private:
  sim::SimKernel* kernel_;
};

/// UCLiK: CRAK lineage; local storage only; restores the original PID and
/// file contents, detects deleted files at restart.
class UclikMechanism final : public Mechanism {
 public:
  explicit UclikMechanism(const MechanismContext& context);
  ~UclikMechanism() override;
  [[nodiscard]] const char* name() const override { return "UCLik"; }
  [[nodiscard]] const char* description() const override {
    return "CRAK-derived module; original-PID and file-content restoration";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk};
  }
  core::RestartResult restart(sim::SimKernel& kernel, sim::Pid pid,
                              const core::RestartOptions& options = {}) override;

 private:
  sim::SimKernel* kernel_;
};

/// CHPOX: kernel module; /proc registration entry plus the SIGSYS kernel
/// signal; processes must be registered before checkpointing; local
/// storage; tuned within MOSIX.
class ChpoxMechanism final : public Mechanism {
 public:
  explicit ChpoxMechanism(const MechanismContext& context);
  ~ChpoxMechanism() override;
  [[nodiscard]] const char* name() const override { return "CHPOX"; }
  [[nodiscard]] const char* description() const override {
    return "module with /proc registration + SIGSYS kernel signal (MOSIX-tested)";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk};
  }
  /// Register a pid by writing to /proc/chpox (required before checkpoint).
  bool register_pid(sim::SimKernel& kernel, sim::Pid pid);
  core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid) override;
  sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                  std::vector<std::byte> config, const sim::SpawnOptions& options) override;

 private:
  sim::SimKernel* kernel_;
  std::set<sim::Pid> registered_;
};

/// BLCR: kernel module + kernel thread + ioctl; handles multithreaded
/// processes; needs an initialization phase (signal handler registration +
/// shared-library load), hence not fully transparent.
class BlcrMechanism final : public Mechanism {
 public:
  explicit BlcrMechanism(const MechanismContext& context);
  ~BlcrMechanism() override;
  [[nodiscard]] const char* name() const override { return "BLCR"; }
  [[nodiscard]] const char* description() const override {
    return "Berkeley Lab C/R: module + kthread + ioctl; multithreaded support";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "no", "local,remote", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] bool supports_multithreaded() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk, storage::StorageLocality::kRemote};
  }
  sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                  std::vector<std::byte> config, const sim::SpawnOptions& options) override;
  core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid) override;
  /// The BLCR initialization phase for an already-running process.
  bool initialize_process(sim::SimKernel& kernel, sim::Pid pid);

 private:
  sim::SimKernel* kernel_;
  std::set<sim::Pid> initialized_;
};

/// PsncR/C: module + kernel thread via /proc + ioctl; local disk only; no
/// data optimization — code, shared libraries and open files are always
/// included in the image.
class PsncrcMechanism final : public Mechanism {
 public:
  explicit PsncrcMechanism(const MechanismContext& context);
  ~PsncrcMechanism() override;
  [[nodiscard]] const char* name() const override { return "PsncR/C"; }
  [[nodiscard]] const char* description() const override {
    return "SUN-lineage module; /proc + ioctl; dumps everything, no optimization";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk};
  }

 private:
  sim::SimKernel* kernel_;
};

// --- Advanced / special-purpose -------------------------------------------

/// ZAP: pods virtualize PIDs/ports for conflict-free migration; kernel
/// module; no stable storage (live migration); per-syscall interception
/// overhead.
class ZapMechanism final : public Mechanism {
 public:
  explicit ZapMechanism(const MechanismContext& context);
  ~ZapMechanism() override;
  [[nodiscard]] const char* name() const override { return "ZAP"; }
  [[nodiscard]] const char* description() const override {
    return "pod virtualization (vPID/vport) for transparent migration";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "none", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kNone};
  }
  sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                  std::vector<std::byte> config, const sim::SpawnOptions& options) override;
  /// Pod-based migration: succeeds even when pid/ports are taken on the
  /// destination.
  core::MigrationResult migrate(sim::SimKernel& source, sim::SimKernel& destination,
                                sim::Pid pid);
  [[nodiscard]] core::PodManager& pods() { return pods_; }
  [[nodiscard]] core::PodId pod_of(sim::Pid pid) const;

 private:
  sim::SimKernel* kernel_;
  core::PodManager pods_;
  std::map<sim::Pid, core::PodId> memberships_;
  std::unique_ptr<storage::MemoryBackend> ram_buffer_;
};

/// LAM/MPI: BLCR underneath, coordination above — transparent to the
/// application but the MPI library is modified to run BLCR's
/// initialization automatically.
class LamMpiMechanism final : public Mechanism {
 public:
  explicit LamMpiMechanism(const MechanismContext& context);
  ~LamMpiMechanism() override;
  [[nodiscard]] const char* name() const override { return "LAM/MPI"; }
  [[nodiscard]] const char* description() const override {
    return "coordinated MPI checkpointing over BLCR (modified MPI library)";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "no", "local,remote", "user", "yes"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return true; }
  [[nodiscard]] bool supports_multithreaded() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk, storage::StorageLocality::kRemote};
  }
  /// Launch "via mpirun": the modified MPI library performs the BLCR
  /// registration transparently to the application.
  sim::Pid launch_mpi_rank(sim::SimKernel& kernel, const std::string& guest,
                           std::vector<std::byte> config, const sim::SpawnOptions& options);
  /// Under LAM/MPI everything starts through mpirun.
  sim::Pid launch(sim::SimKernel& kernel, const std::string& guest,
                  std::vector<std::byte> config, const sim::SpawnOptions& options) override {
    return launch_mpi_rank(kernel, guest, std::move(config), options);
  }
  core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid) override;

 private:
  sim::SimKernel* kernel_;
  std::set<sim::Pid> mpi_launched_;
};

/// Software Suspend: in-tree (static) hibernation via a freeze signal and a
/// RAM image on the swap partition; standby saves to memory instead.
class SwsuspMechanism final : public Mechanism {
 public:
  explicit SwsuspMechanism(const MechanismContext& context);
  [[nodiscard]] const char* name() const override { return "Software Suspend"; }
  [[nodiscard]] const char* description() const override {
    return "whole-machine hibernation: freeze all, RAM image to swap";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "yes", "local", "user", "no"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return false; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk};
  }
  core::CheckpointResult checkpoint(sim::SimKernel& kernel, sim::Pid pid) override;
  [[nodiscard]] bool supports_external_initiation() const override { return true; }
  [[nodiscard]] core::HibernationManager& hibernation() { return *hibernation_; }

 private:
  std::unique_ptr<storage::MemoryBackend> ram_;
  std::unique_ptr<core::HibernationManager> hibernation_;
  sim::SimKernel* kernel_;
  storage::StorageBackend* swap_;
};

/// Checkpoint [5] (Carothers & Szymanski): syscall-invoked, but the dump is
/// performed concurrently with the application via fork()-based snapshot
/// consistency; handles multithreaded programs; static kernel code.
class Checkpoint05Mechanism final : public Mechanism {
 public:
  explicit Checkpoint05Mechanism(const MechanismContext& context);
  [[nodiscard]] const char* name() const override { return "Checkpoint"; }
  [[nodiscard]] const char* description() const override {
    return "fork-consistent concurrent checkpointing via system calls";
  }
  [[nodiscard]] core::TaxonomyPath taxonomy() const override;
  [[nodiscard]] PaperRow paper_row() const override {
    return {"no", "no", "local", "automatic", "no"};
  }
  [[nodiscard]] bool is_kernel_module() const override { return false; }
  [[nodiscard]] bool supports_multithreaded() const override { return true; }
  [[nodiscard]] std::vector<storage::StorageLocality> storage_localities() const override {
    return {storage::StorageLocality::kLocalDisk};
  }
  [[nodiscard]] const std::string& dump_syscall() const;
};

}  // namespace ckpt::mechanisms
