// ZAP, LAM/MPI, Software Suspend and Checkpoint [5].
#include "mechanisms/mechanism.hpp"

namespace ckpt::mechanisms {

using core::Agent;
using core::Context;
using core::KThreadInterface;
using core::TaxonomyPath;
using core::Technique;

// ---------------------------------------------------------------------------
// ZAP
// ---------------------------------------------------------------------------

ZapMechanism::ZapMechanism(const MechanismContext& context)
    : kernel_(context.kernel), pods_(/*translation_ns=*/200) {
  sim::KernelModule& module = context.kernel->load_module("zap");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kDeviceIoctl;
  // ZAP migrates live state; the engine's backend only buffers images in
  // RAM during the move.
  ram_buffer_ = std::make_unique<storage::MemoryBackend>(context.kernel->costs());
  engine_ = std::make_unique<core::KernelThreadEngine>("zap", ram_buffer_.get(), options,
                                                       *context.kernel, config, &module);
}

ZapMechanism::~ZapMechanism() {
  if (kernel_->module_loaded("zap")) kernel_->unload_module("zap");
}

TaxonomyPath ZapMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kDeviceIoctl};
}

sim::Pid ZapMechanism::launch(sim::SimKernel& kernel, const std::string& guest,
                              std::vector<std::byte> config,
                              const sim::SpawnOptions& options) {
  const sim::Pid pid = kernel.spawn(guest, std::move(config), options);
  core::Pod& pod = pods_.create_pod("pod-" + std::to_string(pid));
  pods_.adopt(kernel, pid, pod.id);
  memberships_[pid] = pod.id;
  return pid;
}

core::PodId ZapMechanism::pod_of(sim::Pid pid) const {
  auto it = memberships_.find(pid);
  return it == memberships_.end() ? 0 : it->second;
}

core::MigrationResult ZapMechanism::migrate(sim::SimKernel& source,
                                            sim::SimKernel& destination, sim::Pid pid) {
  core::MigrationOptions options;
  options.pods = &pods_;
  options.pod = pod_of(pid);
  if (options.pod == 0) {
    core::MigrationResult result;
    result.error = "ZAP: process is not in a pod";
    return result;
  }
  core::MigrationResult result = core::migrate_process(source, destination, pid, options);
  if (result.ok) {
    memberships_.erase(pid);
    memberships_[result.new_pid] = options.pod;
  }
  return result;
}

// ---------------------------------------------------------------------------
// LAM/MPI
// ---------------------------------------------------------------------------

LamMpiMechanism::LamMpiMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("lam_blcr");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kDeviceIoctl;
  engine_ = std::make_unique<core::KernelThreadEngine>("lam_blcr", context.remote, options,
                                                       *context.kernel, config, &module);
}

LamMpiMechanism::~LamMpiMechanism() {
  if (kernel_->module_loaded("lam_blcr")) kernel_->unload_module("lam_blcr");
}

TaxonomyPath LamMpiMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kDeviceIoctl};
}

sim::Pid LamMpiMechanism::launch_mpi_rank(sim::SimKernel& kernel, const std::string& guest,
                                          std::vector<std::byte> config,
                                          const sim::SpawnOptions& options) {
  // mpirun: the *modified MPI library* performs BLCR's registration during
  // MPI_Init — invisible to the application, but the library had to change.
  const sim::Pid pid = kernel.spawn(guest, std::move(config), options);
  sim::Process& proc = kernel.process(pid);
  proc.signals.disposition[sim::kSigUsr2] = sim::SignalDisposition::kHandler;
  proc.library_handlers[sim::kSigUsr2] = [](sim::SimKernel&, sim::Process&, sim::Signal) {};
  engine_->attach(kernel, pid);
  mpi_launched_.insert(pid);
  return pid;
}

core::CheckpointResult LamMpiMechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  core::CheckpointResult refused;
  if (!check_thread_support(kernel, pid, refused)) return refused;
  if (mpi_launched_.count(pid) == 0) {
    refused.error = "LAM/MPI: process was not started under mpirun (no BLCR init)";
    return refused;
  }
  return engine_->request_checkpoint(kernel, pid);
}

// ---------------------------------------------------------------------------
// Software Suspend
// ---------------------------------------------------------------------------

SwsuspMechanism::SwsuspMechanism(const MechanismContext& context)
    : kernel_(context.kernel), swap_(context.local) {
  ram_ = std::make_unique<storage::MemoryBackend>(context.kernel->costs());
  hibernation_ =
      std::make_unique<core::HibernationManager>(*context.kernel, swap_, ram_.get());
}

TaxonomyPath SwsuspMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelSignal,
          KThreadInterface::kNone};
}

core::CheckpointResult SwsuspMechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  // Software Suspend checkpoints the *whole machine*; a per-process request
  // is served by hibernating everything (the caller's process included).
  (void)pid;
  core::CheckpointResult result;
  result.initiated_at = kernel.now();
  result.started_at = kernel.now();
  const auto hib = hibernation_->standby();
  result.ok = hib.ok;
  result.error = hib.error;
  result.payload_bytes = hib.total_bytes;
  result.completed_at = kernel.now();
  // The machine stays frozen after a real suspend; for a checkpoint-style
  // probe we resume immediately (standby semantics).
  hibernation_->resume(kernel);
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint [5]
// ---------------------------------------------------------------------------

Checkpoint05Mechanism::Checkpoint05Mechanism(const MechanismContext& context) {
  core::EngineOptions options;
  // The innovation: the dump runs concurrently with the application, with
  // fork() guaranteeing a consistent snapshot.
  options.consistency = core::ConsistencyMode::kForkAndCopy;
  engine_ = std::make_unique<core::SyscallEngine>(
      "checkpoint05", context.local, options, *context.kernel,
      core::SyscallEngine::TargetMode::kCurrent, /*module=*/nullptr);
}

TaxonomyPath Checkpoint05Mechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kSystemCall,
          KThreadInterface::kNone};
}

const std::string& Checkpoint05Mechanism::dump_syscall() const {
  return static_cast<core::SyscallEngine*>(engine_.get())->dump_syscall();
}

}  // namespace ckpt::mechanisms
