// Catalog of the surveyed mechanisms: name -> factory, in Table 1 order.
//
// Each probe/bench builds a fresh kernel per mechanism (static extensions
// cannot be unloaded, so kernels are not reusable across mechanisms) and
// instantiates from this catalog.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mechanisms/mechanism.hpp"

namespace ckpt::mechanisms {

using MechanismFactory = std::function<std::unique_ptr<Mechanism>(const MechanismContext&)>;

struct CatalogEntry {
  std::string name;
  MechanismFactory factory;
};

/// All twelve mechanisms, in the paper's Table 1 row order.
const std::vector<CatalogEntry>& mechanism_catalog();

/// Register every mechanism's taxonomy entry (Figure 1) with the global
/// TaxonomyRegistry, including the user-level engines that appear in the
/// figure but not in Table 1.
void register_taxonomy_entries();

}  // namespace ckpt::mechanisms
