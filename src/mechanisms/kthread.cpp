// The kernel-thread / kernel-module family: CRAK, UCLiK, CHPOX, BLCR,
// PsncR/C.
#include <cstdlib>

#include "mechanisms/mechanism.hpp"

namespace ckpt::mechanisms {

using core::Agent;
using core::Context;
using core::KThreadInterface;
using core::TaxonomyPath;
using core::Technique;

// ---------------------------------------------------------------------------
// CRAK
// ---------------------------------------------------------------------------

CrakMechanism::CrakMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("crak");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kDeviceIoctl;
  engine_ = std::make_unique<core::KernelThreadEngine>("crak", context.local, options,
                                                       *context.kernel, config, &module);
}

CrakMechanism::~CrakMechanism() {
  if (kernel_->module_loaded("crak")) kernel_->unload_module("crak");
}

TaxonomyPath CrakMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kDeviceIoctl};
}

const std::string& CrakMechanism::device_path() const {
  return static_cast<core::KernelThreadEngine*>(engine_.get())->device_path();
}

core::MigrationResult CrakMechanism::migrate(sim::SimKernel& source,
                                             sim::SimKernel& destination, sim::Pid pid) {
  core::MigrationOptions options;
  options.preserve_pid = true;  // naive: fails on pid conflict (no pods)
  return core::migrate_process(source, destination, pid, options);
}

// ---------------------------------------------------------------------------
// UCLiK
// ---------------------------------------------------------------------------

UclikMechanism::UclikMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("uclik");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  // The UCLiK refinements: snapshot file contents into the image so the
  // restart can roll files back and resurrect deleted ones.
  options.capture.save_file_contents = true;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kDeviceIoctl;
  engine_ = std::make_unique<core::KernelThreadEngine>("uclik", context.local, options,
                                                       *context.kernel, config, &module);
}

UclikMechanism::~UclikMechanism() {
  if (kernel_->module_loaded("uclik")) kernel_->unload_module("uclik");
}

TaxonomyPath UclikMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kDeviceIoctl};
}

core::RestartResult UclikMechanism::restart(sim::SimKernel& kernel, sim::Pid pid,
                                            const core::RestartOptions& options) {
  core::RestartOptions uclik_options = options;
  uclik_options.restore_original_pid = true;  // the UCLiK improvement
  return engine_->restart(kernel, pid, uclik_options);
}

// ---------------------------------------------------------------------------
// CHPOX
// ---------------------------------------------------------------------------

ChpoxMechanism::ChpoxMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("chpox");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  // CHPOX reuses SIGSYS as its kernel checkpoint signal.
  engine_ = std::make_unique<core::KernelSignalEngine>("chpox", context.local, options,
                                                       *context.kernel, sim::kSigSys,
                                                       &module);
  // Registration entry: echo <pid> > /proc/chpox
  sim::ProcEntryHooks hooks;
  hooks.write = [this](sim::SimKernel&, sim::Process&, std::string_view in) -> std::int64_t {
    const sim::Pid pid = static_cast<sim::Pid>(std::atoi(std::string(in).c_str()));
    if (pid <= 0) return -22;
    registered_.insert(pid);
    return static_cast<std::int64_t>(in.size());
  };
  hooks.read = [this](sim::SimKernel&) {
    std::string out = "chpox registered pids:";
    for (sim::Pid pid : registered_) out += " " + std::to_string(pid);
    return out + "\n";
  };
  context.kernel->vfs().register_proc_entry("/proc/chpox", std::move(hooks));
  module.add_cleanup([](sim::SimKernel& k) { k.vfs().unregister_proc_entry("/proc/chpox"); });
}

ChpoxMechanism::~ChpoxMechanism() {
  if (kernel_->module_loaded("chpox")) kernel_->unload_module("chpox");
}

TaxonomyPath ChpoxMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelSignal,
          KThreadInterface::kProcFs};
}

bool ChpoxMechanism::register_pid(sim::SimKernel& kernel, sim::Pid pid) {
  (void)kernel;
  if (kernel_->find_process(pid) == nullptr) return false;
  registered_.insert(pid);
  return true;
}

sim::Pid ChpoxMechanism::launch(sim::SimKernel& kernel, const std::string& guest,
                                std::vector<std::byte> config,
                                const sim::SpawnOptions& options) {
  // Launching is ordinary; registration is a separate administrative step
  // (by pid, no application involvement — hence "transparent" in Table 1).
  const sim::Pid pid = kernel.spawn(guest, std::move(config), options);
  register_pid(kernel, pid);
  return pid;
}

core::CheckpointResult ChpoxMechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  core::CheckpointResult refused;
  if (!check_thread_support(kernel, pid, refused)) return refused;
  if (registered_.count(pid) == 0) {
    refused.error = "CHPOX: pid not registered in /proc/chpox";
    return refused;
  }
  return engine_->request_checkpoint(kernel, pid);
}

// ---------------------------------------------------------------------------
// BLCR
// ---------------------------------------------------------------------------

BlcrMechanism::BlcrMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("blcr");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kDeviceIoctl;
  engine_ = std::make_unique<core::KernelThreadEngine>("blcr", context.local, options,
                                                       *context.kernel, config, &module);
}

BlcrMechanism::~BlcrMechanism() {
  if (kernel_->module_loaded("blcr")) kernel_->unload_module("blcr");
}

TaxonomyPath BlcrMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kDeviceIoctl};
}

bool BlcrMechanism::initialize_process(sim::SimKernel& kernel, sim::Pid pid) {
  sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) return false;
  // The initialization phase: load libcr into the process and register a
  // handler on a general-purpose signal — the step that costs BLCR full
  // transparency in Table 1.
  proc->signals.disposition[sim::kSigUsr2] = sim::SignalDisposition::kHandler;
  proc->library_handlers[sim::kSigUsr2] = [](sim::SimKernel&, sim::Process&, sim::Signal) {
    // libcr's handler quiesces the threads; the kernel thread does the rest.
  };
  initialized_.insert(pid);
  return engine_->attach(kernel, pid);
}

sim::Pid BlcrMechanism::launch(sim::SimKernel& kernel, const std::string& guest,
                               std::vector<std::byte> config,
                               const sim::SpawnOptions& options) {
  const sim::Pid pid = kernel.spawn(guest, std::move(config), options);
  initialize_process(kernel, pid);
  return pid;
}

core::CheckpointResult BlcrMechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  core::CheckpointResult refused;
  if (!check_thread_support(kernel, pid, refused)) return refused;
  if (initialized_.count(pid) == 0) {
    refused.error = "BLCR: process did not run the initialization phase (libcr missing)";
    return refused;
  }
  return engine_->request_checkpoint(kernel, pid);
}

// ---------------------------------------------------------------------------
// PsncR/C
// ---------------------------------------------------------------------------

PsncrcMechanism::PsncrcMechanism(const MechanismContext& context) : kernel_(context.kernel) {
  sim::KernelModule& module = context.kernel->load_module("psncrc");
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  // "Does not perform any data optimization": the code segment, shared
  // libraries and open-file contents all go into every image.
  options.capture.skip_code_segment = false;
  options.capture.save_file_contents = true;
  core::KernelThreadEngine::ThreadConfig config;
  config.interface = KThreadInterface::kProcFs;
  engine_ = std::make_unique<core::KernelThreadEngine>("psncrc", context.local, options,
                                                       *context.kernel, config, &module);
}

PsncrcMechanism::~PsncrcMechanism() {
  if (kernel_->module_loaded("psncrc")) kernel_->unload_module("psncrc");
}

TaxonomyPath PsncrcMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kKernelThread,
          KThreadInterface::kProcFs};
}

}  // namespace ckpt::mechanisms
