// The original Linux system-level implementations: VMADump, BProc, EPCKPT.
#include "mechanisms/mechanism.hpp"

namespace ckpt::mechanisms {

using core::Agent;
using core::Context;
using core::KThreadInterface;
using core::TaxonomyPath;
using core::Technique;

// ---------------------------------------------------------------------------
// VMADump
// ---------------------------------------------------------------------------

VmadumpMechanism::VmadumpMechanism(const MechanismContext& context) {
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;  // app stops itself trivially
  // Static kernel code: registered without a module (cannot be unloaded).
  engine_ = std::make_unique<core::SyscallEngine>(
      "vmadump", context.local, options, *context.kernel,
      core::SyscallEngine::TargetMode::kCurrent, /*module=*/nullptr);
}

TaxonomyPath VmadumpMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kSystemCall,
          KThreadInterface::kNone};
}

const std::string& VmadumpMechanism::dump_syscall() const {
  return static_cast<core::SyscallEngine*>(engine_.get())->dump_syscall();
}

// ---------------------------------------------------------------------------
// BProc
// ---------------------------------------------------------------------------

BprocMechanism::BprocMechanism(const MechanismContext& context) {
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  // BProc provides a *distributed process space*, not stable storage:
  // VMADump images go straight into a migration channel (NullBackend).
  null_backend_ = std::make_unique<storage::NullBackend>();
  engine_ = std::make_unique<core::SyscallEngine>(
      "bproc", null_backend_.get(), options, *context.kernel,
      core::SyscallEngine::TargetMode::kCurrent, /*module=*/nullptr);
}

TaxonomyPath BprocMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kSystemCall,
          KThreadInterface::kNone};
}

core::MigrationResult BprocMechanism::migrate(sim::SimKernel& source,
                                              sim::SimKernel& destination, sim::Pid pid) {
  core::MigrationOptions options;
  options.preserve_pid = true;  // single system image: pids are global
  return core::migrate_process(source, destination, pid, options);
}

// ---------------------------------------------------------------------------
// EPCKPT
// ---------------------------------------------------------------------------

EpckptMechanism::EpckptMechanism(const MechanismContext& context) {
  core::EngineOptions options;
  options.consistency = core::ConsistencyMode::kStopTarget;
  engine_ = std::make_unique<core::SyscallEngine>(
      "epckpt", context.local, options, *context.kernel,
      core::SyscallEngine::TargetMode::kByPid, /*module=*/nullptr);
  // EPCKPT also introduces a dedicated kernel checkpoint signal; delivery
  // invokes the same dump path.
  context.kernel->register_kernel_signal(
      sim::kSigCkpt,
      [this](sim::SimKernel& k, sim::Process& proc) {
        if (traced_.count(proc.pid) != 0) {
          engine_->request_checkpoint_async(k, proc.pid);
        }
      },
      /*module=*/nullptr);
}

TaxonomyPath EpckptMechanism::taxonomy() const {
  return {Context::kSystemLevel, Agent::kOperatingSystem, Technique::kSystemCall,
          KThreadInterface::kNone};
}

sim::Pid EpckptMechanism::launch(sim::SimKernel& kernel, const std::string& guest,
                                 std::vector<std::byte> config,
                                 const sim::SpawnOptions& options) {
  // The launcher tool: marks the process for tracing and imposes the
  // run-time overhead the survey calls "undesirable".
  const sim::Pid pid = kernel.spawn(guest, std::move(config), options);
  traced_.insert(pid);
  kernel.process(pid).syscall_extra_ns = 150;  // exec/trace bookkeeping tax
  return pid;
}

core::CheckpointResult EpckptMechanism::checkpoint(sim::SimKernel& kernel, sim::Pid pid) {
  core::CheckpointResult refused;
  if (!check_thread_support(kernel, pid, refused)) return refused;
  if (traced_.count(pid) == 0) {
    refused.error = "EPCKPT: process was not launched through the checkpoint tool";
    return refused;
  }
  return engine_->request_checkpoint(kernel, pid);
}

}  // namespace ckpt::mechanisms
